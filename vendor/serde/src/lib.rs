//! Offline stand-in for `serde`.
//!
//! The build environment has no reachable crates registry, so this crate
//! supplies just enough of serde's surface for the workspace to compile:
//! the two marker traits and the (no-op) derive macros. No data format is
//! wired up yet; when one lands, this stub is replaced by the real crate
//! without touching any call site.

/// Marker for types that can be serialized (no methods in the stub).
pub trait Serialize {}

/// Marker for types that can be deserialized (no methods in the stub).
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
