//! Offline stand-in for `proptest`.
//!
//! The build environment has no reachable crates registry, so this crate
//! implements the subset of the proptest API the workspace's property tests
//! use: the [`Strategy`] trait with ranges, tuples, `prop_map`, `Just`,
//! `any::<T>()`, `prop::collection::vec`, `prop_oneof!`, and the
//! [`proptest!`]/`prop_assert*` macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! - **No shrinking.** A failing case panics with the generated inputs via
//!   the standard assert messages; it is not minimized.
//! - **Fixed seeding.** Each case derives its RNG from a fixed constant and
//!   the case index, so runs are bit-reproducible everywhere (there is no
//!   `PROPTEST_` environment handling).
//!
//! When a registry becomes available the real crate drops in unchanged: the
//! API subset here is call-compatible.

pub mod test_runner {
    /// An explicit property failure, for `return Err(TestCaseError::fail(..))`
    /// bodies. The harness panics with the message (no shrinking).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure carrying `msg`.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic generator used by the [`proptest!`](crate::proptest)
    /// harness: splitmix64, seeded per test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the `case`-th iteration of a test.
        #[must_use]
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: 0x9e37_79b9_7f4a_7c15 ^ case.wrapping_mul(0xbf58_476d_1ce4_e5b9),
            }
        }

        /// Next 64 random bits (splitmix64 step).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Next 128 random bits.
        pub fn next_u128(&mut self) -> u128 {
            (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
        }

        /// Uniform draw in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Multiply-shift rejection-free mapping is fine for tests.
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }

        /// Uniform draw in `[0, n)` over the full 128-bit space.
        pub fn below_u128(&mut self, n: u128) -> u128 {
            debug_assert!(n > 0);
            self.next_u128() % n
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod config {
    /// Per-block configuration, set with
    /// `#![proptest_config(ProptestConfig::with_cases(n))]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` iterations per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; the simulation-heavy properties
            // in this workspace make 64 a better time/coverage trade.
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree and no shrinking: a
    /// strategy is just a deterministic function of the RNG stream.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy behind `dyn Strategy`; used by `prop_oneof!`.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union; `arms` must be non-empty.
        #[must_use]
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add(rng.below_u128(width) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    if width == 0 {
                        // Full u128 domain: every draw is in range.
                        rng.next_u128() as $t
                    } else {
                        lo.wrapping_add(rng.below_u128(width) as $t)
                    }
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, u128, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    (self.start as i128).wrapping_add(rng.below_u128(width) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = ((hi as i128).wrapping_sub(lo as i128) as u128).wrapping_add(1);
                    (lo as i128).wrapping_add(rng.below_u128(width) as i128) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy, via [`any`].
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u128() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over the full domain of `T` (returned by [`any`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Namespaced strategy constructors (`prop::collection::vec`, …).
pub mod prop {
    /// Strategies over `bool`.
    pub mod bool {
        use std::marker::PhantomData;

        /// Uniform `true`/`false`.
        pub const ANY: crate::arbitrary::Any<::core::primitive::bool> =
            crate::arbitrary::Any(PhantomData);
    }

    /// Strategies over collections.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::{Range, RangeInclusive};

        /// Length specification for [`vec`]: an exact `usize` or a range.
        pub trait IntoSizeRange {
            /// Returns the `[lo, hi)` length bounds.
            fn bounds(&self) -> (usize, usize);
        }

        impl IntoSizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self + 1)
            }
        }

        impl IntoSizeRange for Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                (self.start, self.end)
            }
        }

        impl IntoSizeRange for RangeInclusive<usize> {
            fn bounds(&self) -> (usize, usize) {
                (*self.start(), *self.end() + 1)
            }
        }

        /// Strategy returned by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            lo: usize,
            hi: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.lo + rng.below((self.hi - self.lo) as u64) as usize;
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }

        /// `Vec`s of `elem`-generated values with length drawn from `size`.
        pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (lo, hi) = size.bounds();
            assert!(lo < hi, "empty vec size range");
            VecStrategy { elem, lo, hi }
        }
    }
}

/// The usual single import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use config::ProptestConfig;
pub use strategy::Strategy;

/// Asserts a condition inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cases = ($cfg).cases;
            for case in 0..u64::from(cases) {
                let mut __rng = $crate::test_runner::TestRng::for_case(case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                // Real proptest bodies may `return Err(TestCaseError::..)`;
                // run them in a Result-returning closure and panic on Err.
                let __outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = __outcome {
                    ::core::panic!("property failed at case {case}: {e}");
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}
