//! Offline stand-in for `criterion`.
//!
//! The build environment has no reachable crates registry, so this crate
//! implements the slice of criterion's API the workspace's benches use
//! (`benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, the `criterion_group!`/`criterion_main!` macros) as a
//! plain wall-clock harness: each benchmark runs `sample_size` timed samples
//! after one warm-up iteration and prints mean time per iteration plus
//! derived element throughput.
//!
//! There is no statistical analysis, outlier rejection, or HTML report; the
//! numbers are honest means, good enough to compare hot-path variants. The
//! real crate drops in unchanged when a registry is available.

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark name, e.g. `push_pop/1000`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter into `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times closures handed to `Bencher::iter`.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: u32,
    /// Mean wall time of one iteration over the timed samples.
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Runs `f` once untimed, then `samples` timed iterations.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.elapsed_per_iter = start.elapsed() / self.samples.max(1);
    }
}

/// A named group of benchmarks sharing sample-count and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u32,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Annotates subsequent benchmarks with a work-per-iteration figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id.to_string(), b.elapsed_per_iter);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.elapsed_per_iter);
        self
    }

    /// Ends the group (printing happens per-benchmark; this is a no-op).
    pub fn finish(self) {}

    fn report(&self, id: &str, per_iter: Duration) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                format!("  {:.3} Melem/s", n as f64 / per_iter.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                format!(
                    "  {:.3} MiB/s",
                    n as f64 / per_iter.as_secs_f64() / (1024.0 * 1024.0)
                )
            }
            _ => String::new(),
        };
        println!("{}/{}: {:>12.3?}/iter{}", self.name, id, per_iter, rate);
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Bundles bench functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the given groups in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
