//! Offline stand-in for `serde_derive`.
//!
//! The workspace must build without network access to a crates registry, so
//! the real `serde_derive` (and its `syn`/`quote` dependency tree) is
//! replaced by this no-op derive. The workspace uses serde purely as a
//! forward-compatibility marker — nothing serializes through it yet — so the
//! derive expands to nothing and `#[serde(...)]` attributes are accepted and
//! ignored.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; accepts (and ignores) `#[serde(...)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; accepts (and ignores) `#[serde(...)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
