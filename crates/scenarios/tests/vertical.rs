//! Vertical (WLAN → cellular) handover: every scheme completes the
//! cross-technology walk end-to-end, and the SafetyNet bicast's second
//! copy is accounted as `duplicated` in the conservation ledger — never
//! as an inflated `sent`.

use fh_core::{ProtocolConfig, Scheme};
use fh_net::{DropReason, HandoverOutcome, ServiceClass};
use fh_scenarios::{CellularConfig, HmipConfig, HmipScenario, MovementPlan};
use fh_sim::{SimDuration, SimTime};
use fh_wireless::TriggerMode;

/// The corpus `vertical.toml` shape: multi-homed host, MIH triggers, a
/// blanket cellular sector behind the NAR, one real-time flow.
fn vertical_cfg(scheme: Scheme) -> HmipConfig {
    let mut protocol = ProtocolConfig::proposed();
    protocol.scheme = scheme;
    protocol.buffer_request = 40;
    // Soft-state host routes, the scheme-ladder convention: a
    // non-buffering scheme never sends the BF that drops the PAR's
    // route explicitly, so the departed host's entry must age out for
    // the leak audit to come back clean.
    protocol.host_route_lifetime = SimDuration::from_secs(2);
    protocol.dead_peer_timeout = SimDuration::from_secs(3);
    HmipConfig {
        protocol,
        buffer_capacity: 40,
        movement: MovementPlan::OneWay,
        cellular: Some(CellularConfig::default()),
        interfaces: 2,
        trigger: TriggerMode::Mih,
        ..HmipConfig::default()
    }
}

/// Runs one vertical walk; returns the scenario (finalized) and the flow.
fn run_vertical(scheme: Scheme) -> (HmipScenario, fh_net::FlowId) {
    let mut s = HmipScenario::build(vertical_cfg(scheme));
    let f = s.add_cbr_flow(
        0,
        ServiceClass::RealTime,
        1000,
        SimDuration::from_millis(20),
    );
    s.set_traffic_window(
        SimTime::ZERO + SimDuration::from_millis(100),
        SimTime::ZERO + SimDuration::from_millis(12_000),
    );
    s.run_until(SimTime::ZERO + SimDuration::from_millis(25_000));
    let failed = s.finalize();
    assert_eq!(failed, 0, "{scheme:?}: unresolved handover at horizon");
    (s, f)
}

#[test]
fn every_scheme_completes_the_vertical_handover() {
    for scheme in Scheme::ALL {
        let (s, _f) = run_vertical(scheme);
        s.assert_conservation();
        let outcomes = s.outcomes();
        let count = |o: HandoverOutcome| {
            outcomes
                .iter()
                .find(|(k, _)| *k == o)
                .map_or(0, |&(_, n)| n)
        };
        // Make-before-break plus the MIH LinkGoingDown cue: the single
        // WLAN→cellular move resolves predictively, with no reactive
        // recovery and no failure, under every scheme.
        assert_eq!(
            count(HandoverOutcome::Predictive),
            1,
            "{scheme:?}: {outcomes:?}"
        );
        assert_eq!(count(HandoverOutcome::Reactive), 0, "{scheme:?}");
        assert_eq!(count(HandoverOutcome::Failed), 0, "{scheme:?}");
        assert_eq!(s.unresolved_handovers(), 0, "{scheme:?}");
        let leaks = s.leak_report();
        assert!(leaks.is_clean(), "{scheme:?}: {leaks:?}");
        assert_eq!(s.wedged_sessions(), 0, "{scheme:?}");
    }
}

#[test]
fn safetynet_accounts_bicast_copies_as_duplicated_not_sent() {
    let (nar, f_nar) = run_vertical(Scheme::NarOnly);
    let (safety, f_safety) = run_vertical(Scheme::SafetyNet);
    let base = nar.sim.shared.stats.flow_audit(f_nar);
    let bicast = safety.sim.shared.stats.flow_audit(f_safety);

    // Both runs face the identical CBR schedule: the bicast must not
    // inflate the send count — the second copy rides the `duplicated`
    // column of the conservation equation instead.
    assert_eq!(bicast.sent, base.sent, "bicast inflated `sent`");
    assert_eq!(base.duplicated, 0, "NAR-only must not duplicate");
    assert!(bicast.duplicated > 0, "SafetyNet never bicast: {bicast:?}");

    // Whichever copy loses the race is suppressed at the host as a
    // policy drop, so `sent + duplicated == delivered + dropped` holds
    // with zero user-visible loss.
    assert_eq!(bicast.delivered, bicast.sent, "vertical MBB loses packets");
    let suppressed = safety.sim.shared.stats.drops(DropReason::Policy);
    assert!(
        suppressed > 0 && suppressed <= bicast.duplicated,
        "suppression out of range: {suppressed} of {:?}",
        bicast
    );
    safety.assert_conservation();
}

#[test]
fn single_interface_schemes_do_not_duplicate() {
    // The legacy WLAN→WLAN walk under SafetyNet still bicasts (both
    // routers are WLAN; the policy is technology-agnostic), but no
    // scheme other than SafetyNet ever records a duplicate.
    for scheme in Scheme::ALL {
        if scheme.bicasts() {
            continue;
        }
        let mut protocol = ProtocolConfig::proposed();
        protocol.scheme = scheme;
        let mut s = HmipScenario::build(HmipConfig {
            protocol,
            ..HmipConfig::default()
        });
        let f = s.add_cbr_flow(
            0,
            ServiceClass::RealTime,
            1000,
            SimDuration::from_millis(20),
        );
        s.set_traffic_window(
            SimTime::ZERO + SimDuration::from_millis(100),
            SimTime::ZERO + SimDuration::from_millis(12_000),
        );
        s.run_until(SimTime::ZERO + SimDuration::from_millis(25_000));
        s.finalize();
        let audit = s.sim.shared.stats.flow_audit(f);
        assert_eq!(audit.duplicated, 0, "{scheme:?} recorded a duplicate");
    }
}
