//! Builder invariants for the composed scenarios.

use fh_core::{ProtocolConfig, Scheme};
use fh_net::{DropReason, RouteDecision, ServiceClass};
use fh_scenarios::{
    geometry, HmipConfig, HmipScenario, MovementPlan, RoamingConfig, RoamingScenario, WlanConfig,
    WlanScenario,
};
use fh_sim::{SimDuration, SimTime};

#[test]
fn hmip_topology_is_fully_routable() {
    let s = HmipScenario::build(HmipConfig::default());
    let topo = &s.sim.shared.topo;
    // Every node reaches every prefix owner.
    for &from in &[s.cn, s.map, s.par, s.nar] {
        for n in [0u16, 1, 2, 10] {
            let dst = fh_net::doc_subnet(n).host(1);
            assert_ne!(
                topo.route(from, dst),
                RouteDecision::Unroutable,
                "node {from} cannot reach subnet {n}"
            );
        }
    }
}

#[test]
fn hmip_geometry_matches_the_thesis() {
    let s = HmipScenario::build(HmipConfig::default());
    let radio = &s.sim.shared.radio;
    let par_ap = radio.ap(s.par_ap);
    let nar_ap = radio.ap(s.nar_ap);
    assert_eq!(par_ap.pos.distance(nar_ap.pos), geometry::AP_SEPARATION);
    assert_eq!(par_ap.radius, geometry::COVERAGE_RADIUS);
    // The 12 m overlap of §4.1.
    let overlap = 2.0 * geometry::COVERAGE_RADIUS - geometry::AP_SEPARATION;
    assert!((overlap - 12.0).abs() < 1e-9);
}

#[test]
fn mobile_hosts_start_attached_to_the_par() {
    let mut s = HmipScenario::build(HmipConfig {
        n_mhs: 5,
        ..HmipConfig::default()
    });
    s.run_until(SimTime::from_millis(10));
    for &mh in &s.mhs {
        assert_eq!(s.sim.shared.radio.attachment(mh), Some(s.par_ap));
    }
}

#[test]
fn flows_route_to_distinct_hosts() {
    let mut s = HmipScenario::build(HmipConfig {
        n_mhs: 3,
        movement: MovementPlan::Parked,
        ..HmipConfig::default()
    });
    let flows: Vec<_> = (0..3)
        .map(|i| s.add_audio_64k(i, ServiceClass::RealTime))
        .collect();
    s.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(3));
    s.run_until(SimTime::from_secs(5));
    for (i, &f) in flows.iter().enumerate() {
        assert!(
            s.flow_sink(f).received() > 100,
            "host {i} should have received its flow"
        );
        assert_eq!(s.flow_losses(f), 0, "parked hosts lose nothing");
    }
}

#[test]
fn parked_hosts_never_hand_over() {
    let mut s = HmipScenario::build(HmipConfig {
        movement: MovementPlan::Parked,
        ..HmipConfig::default()
    });
    s.run_until(SimTime::from_secs(10));
    assert_eq!(s.mh_agent(0).handoffs, 0);
    assert_eq!(s.par_agent().metrics.par_sessions, 0);
}

#[test]
fn wlan_scenario_serves_tcp_from_the_start() {
    let mut s = WlanScenario::build(WlanConfig::default());
    s.run_until(SimTime::from_secs(2));
    assert!(
        s.tcp_receiver().bytes_in_order() > 100_000,
        "transfer must be under way"
    );
    assert_eq!(s.sim.shared.radio.attachment(s.mh), Some(s.ap0));
}

#[test]
fn wlan_aps_share_one_router_and_prefix() {
    let s = WlanScenario::build(WlanConfig::default());
    let radio = &s.sim.shared.radio;
    assert_eq!(radio.ap(s.ap0).router, s.ar);
    assert_eq!(radio.ap(s.ap1).router, s.ar);
    assert!(fh_net::doc_subnet(1).contains(s.mh_addr));
}

#[test]
fn roaming_scenario_has_working_home_route() {
    let mut s = RoamingScenario::build(RoamingConfig::default());
    s.set_traffic_window(SimTime::from_millis(200), SimTime::from_millis(1_000));
    // The walk triggers the handover at ≈1.2 s; stop just before it.
    s.run_until(SimTime::from_millis(1_100));
    // Pre-handover: the HA intercepts and traffic arrives via MAP1 only.
    assert!(s.sink().received() > 30);
    assert!(s.home_anchor().tunneled > 30);
    assert!(s.map1_anchor().tunneled > 30);
    assert_eq!(s.map2_anchor().tunneled, 0);
}

#[test]
fn scheme_capacity_is_respected_by_builders() {
    for capacity in [0usize, 5, 100] {
        let s = HmipScenario::build(HmipConfig {
            buffer_capacity: capacity,
            ..HmipConfig::default()
        });
        assert_eq!(s.par_agent().pool().capacity(), capacity);
        assert_eq!(s.nar_agent().pool().capacity(), capacity);
    }
}

#[test]
fn custom_blackout_and_link_delay_are_applied() {
    let cfg = HmipConfig {
        l2_handoff_delay: SimDuration::from_millis(321),
        ar_link_delay: SimDuration::from_millis(17),
        ..HmipConfig::default()
    };
    let mut s = HmipScenario::build(cfg);
    let _ = s.add_audio_64k(0, ServiceClass::HighPriority);
    s.run_until(SimTime::from_secs(5));
    // The blackout is visible in the host's log.
    let log = &s.mh_agent(0).log;
    let down = log
        .iter()
        .find(|(_, p)| *p == fh_core::HandoffPhase::LinkDown)
        .map(|&(t, _)| t)
        .expect("link down");
    let up = log
        .iter()
        .find(|&&(t, p)| p == fh_core::HandoffPhase::LinkUp && t > down)
        .map(|&(t, _)| t)
        .expect("link up");
    assert_eq!(up - down, SimDuration::from_millis(321));
    // And the inter-AR link runs at the configured delay.
    assert_eq!(
        s.sim.shared.topo.link(fh_net::LinkId(3)).spec.delay,
        SimDuration::from_millis(17)
    );
}

/// Overload survival, end to end: a byte budget far below the offered
/// load must engage the shed ladder, a blackout longer than the watchdog
/// deadline must force-resolve every session, and afterwards nothing is
/// wedged, the budget was never exceeded, and conservation still
/// balances with the sheds in the ledger.
#[test]
fn overload_sheds_deterministically_and_watchdog_unwedges_sessions() {
    let mut protocol = ProtocolConfig::with_scheme(Scheme::Dual { classify: true });
    protocol.buffer_request = 12;
    protocol.pressure.byte_budget = 2_000;
    protocol.pressure.watchdog_deadline = SimDuration::from_millis(800);
    let mut s = HmipScenario::build(HmipConfig {
        protocol,
        n_mhs: 8,
        buffer_capacity: 42,
        l2_handoff_delay: SimDuration::from_millis(1_500),
        movement: MovementPlan::OneWay,
        ..HmipConfig::default()
    });
    let classes = [
        ServiceClass::RealTime,
        ServiceClass::HighPriority,
        ServiceClass::BestEffort,
    ];
    for h in 0..8 {
        let _ = s.add_cbr_flow(h, classes[h % 3], 160, SimDuration::from_millis(10));
    }
    s.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(13));
    s.run_until(SimTime::from_secs(20));
    let _ = s.finalize();
    assert!(
        s.peak_bytes_parked() <= 2_000,
        "the byte budget is a hard ceiling, peaked at {}",
        s.peak_bytes_parked()
    );
    assert_eq!(s.wedged_sessions(), 0, "no wedged state survives quiesce");
    let stats = &s.sim.shared.stats;
    assert!(
        stats.counter("ar.pressure_sheds") > 0,
        "an 8-host blackout against a 2 kB budget must shed"
    );
    assert!(
        stats.drops(DropReason::PressureShed) > 0,
        "sheds must be ledgered under their own drop reason"
    );
    assert!(
        stats.counter("ar.watchdog_fired") > 0,
        "sessions outliving the 800 ms deadline must be force-resolved"
    );
    assert_eq!(
        stats.counter("ar.shed_order_violations"),
        0,
        "every shed must run with the earlier ladder rungs exhausted"
    );
    assert!(
        stats.conservation_violations().is_empty(),
        "conservation must balance with PressureShed counted: {:?}",
        stats.conservation_violations()
    );
}

#[test]
fn all_schemes_build_and_run() {
    for scheme in [
        Scheme::NoBuffer,
        Scheme::NarOnly,
        Scheme::ParOnly,
        Scheme::Dual { classify: false },
        Scheme::Dual { classify: true },
    ] {
        let mut s = HmipScenario::build(HmipConfig {
            protocol: ProtocolConfig::with_scheme(scheme),
            ..HmipConfig::default()
        });
        let f = s.add_audio_64k(0, ServiceClass::HighPriority);
        s.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(14));
        s.run_until(SimTime::from_secs(16));
        assert_eq!(s.mh_agent(0).handoffs, 1, "{scheme}: handover expected");
        let sent = s.flow_sent(f);
        assert!(sent > 600, "{scheme}: source must have run");
        assert!(
            s.flow_sink(f).received() > sent - 20,
            "{scheme}: most traffic must arrive"
        );
    }
}
