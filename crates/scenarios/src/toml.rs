//! A minimal TOML-subset reader for scenario plans.
//!
//! The workspace vendors no TOML crate, so plans are read by this small,
//! dependency-free parser. It covers exactly the subset the plan schema
//! uses — comments, `[table]` headers, `[[array-of-table]]` headers, and
//! `key = value` pairs whose values are basic strings, integers, floats,
//! booleans or single-line arrays — and rejects everything else with a
//! pointed [`PlanError`] naming the file, line and offending text.
//! Malformed input must never panic: every failure path returns an error
//! a user can act on.

use std::fmt;

/// A plan-loading error: file, location, message.
///
/// `location` is either a line reference (`line 7`) or a schema path
/// (`[topology].hosts`) — whichever pins the mistake best.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanError {
    /// The file being parsed (as given by the caller).
    pub file: String,
    /// Where in the file or schema the problem sits.
    pub location: String,
    /// What went wrong, with observed and expected values.
    pub message: String,
}

impl PlanError {
    /// Builds an error pinned to a source line.
    #[must_use]
    pub fn at_line(file: &str, line: usize, message: impl Into<String>) -> Self {
        PlanError {
            file: file.to_owned(),
            location: format!("line {line}"),
            message: message.into(),
        }
    }

    /// Builds an error pinned to a schema path like `[topology].hosts`.
    #[must_use]
    pub fn at_field(file: &str, table: &str, field: &str, message: impl Into<String>) -> Self {
        let location = if table.is_empty() {
            field.to_owned()
        } else {
            format!("[{table}].{field}")
        };
        PlanError {
            file: file.to_owned(),
            location,
            message: message.into(),
        }
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}: {}", self.file, self.location, self.message)
    }
}

impl std::error::Error for PlanError {}

/// A parsed TOML value (the subset plans use).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic string (`"…"`).
    Str(String),
    /// An integer (underscore separators allowed).
    Int(i64),
    /// A float.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A single-line array `[v, v, …]`.
    Array(Vec<Value>),
}

impl Value {
    /// The value's type name, for error messages.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
        }
    }
}

/// One `key = value` pair with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The bare key.
    pub key: String,
    /// The parsed value.
    pub value: Value,
    /// 1-based source line of the pair.
    pub line: usize,
}

/// One table: its entries in file order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    /// The table's `key = value` pairs, in file order.
    pub entries: Vec<Entry>,
    /// 1-based source line of the table header (0 for the root table).
    pub line: usize,
}

impl Table {
    /// Looks up an entry by key.
    #[must_use]
    #[allow(dead_code)] // exercised by the parser tests
    pub fn get(&self, key: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.key == key)
    }
}

/// A parsed document: named tables plus array-of-tables, in file order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Doc {
    /// Root-level `key = value` pairs (before any header).
    pub root: Table,
    /// `[name]` tables, in file order. Duplicates are a parse error.
    pub tables: Vec<(String, Table)>,
    /// `[[name]]` tables, in file order, possibly several per name.
    pub arrays: Vec<(String, Table)>,
}

impl Doc {
    /// The unique `[name]` table, if present.
    #[must_use]
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// Every `[[name]]` table, in file order.
    #[must_use]
    pub fn array_of(&self, name: &str) -> Vec<&Table> {
        self.arrays
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, t)| t)
            .collect()
    }

    /// All distinct table names (both kinds), in first-appearance order.
    #[must_use]
    #[allow(dead_code)] // exercised by the parser tests
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for (n, _) in self.tables.iter().chain(self.arrays.iter()) {
            if !names.contains(&n.as_str()) {
                names.push(n);
            }
        }
        names
    }
}

/// Parses a TOML-subset document.
///
/// # Errors
///
/// Returns a [`PlanError`] naming `file` and the offending line for any
/// syntax problem: unterminated strings, missing `=`, duplicate tables or
/// keys, multi-line arrays, or values outside the supported subset.
pub fn parse(input: &str, file: &str) -> Result<Doc, PlanError> {
    let mut doc = Doc::default();
    // Index of the table currently receiving keys: None = root,
    // Some((is_array, idx)) = doc.tables[idx] / doc.arrays[idx].
    let mut current: Option<(bool, usize)> = None;
    for (i, raw) in input.lines().enumerate() {
        let line_no = i + 1;
        let line = strip_comment(raw, file, line_no)?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let Some(name) = rest.strip_suffix("]]") else {
                return Err(PlanError::at_line(
                    file,
                    line_no,
                    format!("unclosed table header `{line}` (expected `[[name]]`)"),
                ));
            };
            let name = valid_table_name(name, file, line_no)?;
            if doc.tables.iter().any(|(n, _)| *n == name) {
                return Err(PlanError::at_line(
                    file,
                    line_no,
                    format!("`[[{name}]]` conflicts with an earlier `[{name}]` table"),
                ));
            }
            doc.arrays.push((
                name,
                Table {
                    entries: Vec::new(),
                    line: line_no,
                },
            ));
            current = Some((true, doc.arrays.len() - 1));
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(PlanError::at_line(
                    file,
                    line_no,
                    format!("unclosed table header `{line}` (expected `[name]`)"),
                ));
            };
            let name = valid_table_name(name, file, line_no)?;
            if doc.tables.iter().any(|(n, _)| *n == name) {
                return Err(PlanError::at_line(
                    file,
                    line_no,
                    format!("duplicate table `[{name}]`"),
                ));
            }
            if doc.arrays.iter().any(|(n, _)| *n == name) {
                return Err(PlanError::at_line(
                    file,
                    line_no,
                    format!("`[{name}]` conflicts with an earlier `[[{name}]]` table"),
                ));
            }
            doc.tables.push((
                name,
                Table {
                    entries: Vec::new(),
                    line: line_no,
                },
            ));
            current = Some((false, doc.tables.len() - 1));
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(PlanError::at_line(
                file,
                line_no,
                format!("expected `key = value`, got `{line}`"),
            ));
        };
        let key = line[..eq].trim();
        if key.is_empty()
            || !key
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(PlanError::at_line(
                file,
                line_no,
                format!("invalid key `{key}` (bare keys only: letters, digits, `_`, `-`)"),
            ));
        }
        let value = parse_value(line[eq + 1..].trim(), file, line_no)?;
        let table = match current {
            None => &mut doc.root,
            Some((false, idx)) => &mut doc.tables[idx].1,
            Some((true, idx)) => &mut doc.arrays[idx].1,
        };
        if table.entries.iter().any(|e| e.key == key) {
            return Err(PlanError::at_line(
                file,
                line_no,
                format!("duplicate key `{key}`"),
            ));
        }
        table.entries.push(Entry {
            key: key.to_owned(),
            value,
            line: line_no,
        });
    }
    Ok(doc)
}

/// Removes a trailing `#` comment, respecting string literals.
fn strip_comment<'a>(line: &'a str, file: &str, line_no: usize) -> Result<&'a str, PlanError> {
    let mut in_string = false;
    let mut escaped = false;
    for (pos, c) in line.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
        } else if c == '"' {
            in_string = true;
        } else if c == '#' {
            return Ok(&line[..pos]);
        }
    }
    if in_string {
        return Err(PlanError::at_line(file, line_no, "unterminated string"));
    }
    Ok(line)
}

fn valid_table_name(name: &str, file: &str, line_no: usize) -> Result<String, PlanError> {
    let name = name.trim();
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
    {
        return Err(PlanError::at_line(
            file,
            line_no,
            format!("invalid table name `{name}`"),
        ));
    }
    Ok(name.to_owned())
}

/// Parses one value: string, bool, array, int or float.
fn parse_value(text: &str, file: &str, line_no: usize) -> Result<Value, PlanError> {
    if text.is_empty() {
        return Err(PlanError::at_line(file, line_no, "missing value after `=`"));
    }
    if let Some(rest) = text.strip_prefix('"') {
        return parse_string(rest, file, line_no);
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(rest) = text.strip_prefix('[') {
        let Some(inner) = rest.strip_suffix(']') else {
            return Err(PlanError::at_line(
                file,
                line_no,
                "arrays must open and close on the same line",
            ));
        };
        let mut items = Vec::new();
        for part in split_array(inner, file, line_no)? {
            items.push(parse_value(part.trim(), file, line_no)?);
        }
        return Ok(Value::Array(items));
    }
    parse_number(text, file, line_no)
}

fn parse_string(body: &str, file: &str, line_no: usize) -> Result<Value, PlanError> {
    let mut out = String::new();
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                let rest: String = chars.collect();
                if !rest.trim().is_empty() {
                    return Err(PlanError::at_line(
                        file,
                        line_no,
                        format!("unexpected text after string: `{}`", rest.trim()),
                    ));
                }
                return Ok(Value::Str(out));
            }
            '\\' => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => {
                    return Err(PlanError::at_line(
                        file,
                        line_no,
                        format!("unsupported escape `\\{other}`"),
                    ));
                }
                None => break,
            },
            c => out.push(c),
        }
    }
    Err(PlanError::at_line(file, line_no, "unterminated string"))
}

/// Splits an array body at top-level commas (strings may contain commas).
fn split_array<'a>(inner: &'a str, file: &str, line_no: usize) -> Result<Vec<&'a str>, PlanError> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    let mut escaped = false;
    for (pos, c) in inner.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
        } else if c == '"' {
            in_string = true;
        } else if c == '[' {
            return Err(PlanError::at_line(
                file,
                line_no,
                "nested arrays are not supported",
            ));
        } else if c == ',' {
            parts.push(&inner[start..pos]);
            start = pos + 1;
        }
    }
    // An empty tail is a trailing comma (or an empty array): dropped.
    let last = &inner[start..];
    if !last.trim().is_empty() {
        parts.push(last);
    }
    Ok(parts)
}

fn parse_number(text: &str, file: &str, line_no: usize) -> Result<Value, PlanError> {
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    if cleaned.contains('.') || cleaned.contains('e') || cleaned.contains('E') {
        if let Ok(f) = cleaned.parse::<f64>() {
            if f.is_finite() {
                return Ok(Value::Float(f));
            }
        }
    } else if let Ok(i) = cleaned.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    Err(PlanError::at_line(
        file,
        line_no,
        format!("unrecognized value `{text}` (expected a string, number, boolean or array)"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_arrays_and_every_value_kind() {
        let doc = parse(
            r#"
# A comment.
top = 1

[plan]
name = "demo # not a comment"
seed = 2_003
ratio = 0.25
flag = true

[[workload]]
kbps = 64
classes = ["real-time", "best-effort"]

[[workload]]
kbps = 128.5
sizes = [4, 8, 12]
"#,
            "demo.toml",
        )
        .expect("parses");
        assert_eq!(doc.root.get("top").unwrap().value, Value::Int(1));
        let plan = doc.table("plan").expect("[plan]");
        assert_eq!(
            plan.get("name").unwrap().value,
            Value::Str("demo # not a comment".to_owned())
        );
        assert_eq!(plan.get("seed").unwrap().value, Value::Int(2003));
        assert_eq!(plan.get("ratio").unwrap().value, Value::Float(0.25));
        assert_eq!(plan.get("flag").unwrap().value, Value::Bool(true));
        let workloads = doc.array_of("workload");
        assert_eq!(workloads.len(), 2);
        assert_eq!(
            workloads[0].get("classes").unwrap().value,
            Value::Array(vec![
                Value::Str("real-time".to_owned()),
                Value::Str("best-effort".to_owned())
            ])
        );
        assert_eq!(
            workloads[1].get("sizes").unwrap().value,
            Value::Array(vec![Value::Int(4), Value::Int(8), Value::Int(12)])
        );
        assert_eq!(doc.table_names(), vec!["plan", "workload"]);
    }

    #[test]
    fn syntax_errors_point_at_file_and_line() {
        let err = parse("[plan]\nnope\n", "x.toml").unwrap_err();
        assert_eq!(err.file, "x.toml");
        assert_eq!(err.location, "line 2");
        assert!(err.to_string().contains("key = value"), "{err}");

        let err = parse("[plan\n", "x.toml").unwrap_err();
        assert!(err.message.contains("unclosed table header"), "{err}");

        let err = parse("s = \"oops\n", "x.toml").unwrap_err();
        assert!(err.message.contains("unterminated string"), "{err}");

        let err = parse("v = [1,\n2]\n", "x.toml").unwrap_err();
        assert!(err.message.contains("same line"), "{err}");

        let err = parse("v = @wat\n", "x.toml").unwrap_err();
        assert!(err.message.contains("unrecognized value"), "{err}");
    }

    #[test]
    fn duplicate_tables_and_keys_are_rejected() {
        let err = parse("[a]\n[a]\n", "x.toml").unwrap_err();
        assert!(err.message.contains("duplicate table"), "{err}");
        let err = parse("[a]\nk = 1\nk = 2\n", "x.toml").unwrap_err();
        assert!(err.message.contains("duplicate key"), "{err}");
        let err = parse("[[a]]\nk = 1\n[a]\n", "x.toml").unwrap_err();
        assert!(err.message.contains("conflicts"), "{err}");
    }

    #[test]
    fn comments_inside_strings_survive() {
        let doc = parse("s = \"a#b\" # real comment\n", "x.toml").expect("parses");
        assert_eq!(doc.root.get("s").unwrap().value, Value::Str("a#b".into()));
    }

    #[test]
    fn error_display_has_file_location_message() {
        let e = PlanError::at_field(
            "p.toml",
            "topology",
            "hosts",
            "expected integer, got string",
        );
        assert_eq!(
            e.to_string(),
            "p.toml: [topology].hosts: expected integer, got string"
        );
    }
}
