//! The concrete shared world used by every scenario.

use fh_net::{NetStats, NetWorld, Topology};
use fh_wireless::{RadioEnv, RadioWorld, WirelessSpec};

/// Shared simulation state: wired topology, radio environment, statistics.
#[derive(Debug)]
pub struct World {
    /// The wired network graph and routing.
    pub topo: Topology,
    /// Global statistics hub.
    pub stats: NetStats,
    /// Access points, attachments, and the air interface.
    pub radio: RadioEnv,
}

impl World {
    /// Creates an empty world with the given wireless channel parameters.
    #[must_use]
    pub fn new(wireless: WirelessSpec) -> Self {
        World {
            topo: Topology::new(),
            stats: NetStats::new(),
            radio: RadioEnv::new(wireless),
        }
    }
}

impl NetWorld for World {
    fn topology(&self) -> &Topology {
        &self.topo
    }
    fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }
    fn stats(&self) -> &NetStats {
        &self.stats
    }
    fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }
}

impl RadioWorld for World {
    fn radio(&self) -> &RadioEnv {
        &self.radio
    }
    fn radio_mut(&mut self) -> &mut RadioEnv {
        &mut self.radio
    }
}
