//! # fh-scenarios — composed simulations and experiment runners
//!
//! This crate assembles the substrates (`fh-sim`, `fh-net`, `fh-wireless`,
//! `fh-mip`, `fh-tcp`, `fh-traffic`) and the paper's contribution
//! (`fh-core`) into runnable scenarios:
//!
//! * [`HmipScenario`] — the thesis' Fig 4.1 network: CN → MAP → {PAR, NAR}
//!   with 802.11-style cells 212 m apart and mobile hosts walking between
//!   them.
//! * [`WlanScenario`] — the Fig 4.11 network: one router, two cells, a
//!   pure link-layer handoff under a TCP download.
//! * [`experiments`] — one runner per evaluation figure (4.2 through 4.14)
//!   plus ablations (threshold `a` sweep, black-out sweep, signaling
//!   accounting).
//! * [`plan`] — declarative scenario plans: a TOML file describing
//!   topology, workloads, faults, the sweep axis and post-quiesce
//!   [`expectations`], run through the same deterministic grid engine
//!   the experiments use, plus a seeded plan fuzzer.
//!
//! ## Quickstart
//!
//! ```
//! use fh_net::ServiceClass;
//! use fh_scenarios::{HmipConfig, HmipScenario};
//! use fh_sim::SimTime;
//!
//! let mut scenario = HmipScenario::build(HmipConfig::default());
//! let flow = scenario.add_audio_64k(0, ServiceClass::RealTime);
//! scenario.run_until(SimTime::from_secs(16));
//! assert_eq!(scenario.mh_agent(0).handoffs, 1, "one PAR→NAR handover");
//! assert!(scenario.flow_sink(flow).received() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expectations;
pub mod experiments;
mod hmip;
pub mod metro;
mod nodes;
pub mod plan;
mod roaming;
pub mod sweep;
mod toml;
mod wlan;
mod world;

pub use hmip::{geometry, CellularConfig, HmipConfig, HmipScenario, LeakReport, MovementPlan};
pub use nodes::{ArNode, CnNode, MapNode, MhNode};
pub use roaming::{RoamingConfig, RoamingScenario};
pub use wlan::{WlanConfig, WlanScenario};
pub use world::World;
