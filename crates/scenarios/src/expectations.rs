//! Post-quiesce expectations for scenario plans.
//!
//! An [`Expectations`] block declares the invariants a plan's runs must
//! satisfy after quiesce: per-flow packet conservation, resource-leak
//! freedom, a flight recorder that never wrapped, per-class drop and p99
//! bounds, a ceiling on the failed-handover ratio, and a byte-hash lock
//! on the rendered artifact. Evaluation never panics — each violated
//! check becomes one [`fh_telemetry::ReportEntry`] so the driver can emit
//! a structured [`fh_telemetry::FailureReport`] and a nonzero exit code.
//!
//! The defaults are the universal battery: conservation and recorder
//! checks on, bounds off. Leak-freedom is opt-in because it is only
//! meaningful for plans that actually quiesce (a ping-pong host keeps
//! creating handover state right up to the horizon by design).

use fh_telemetry::report::{fnv1a64, fnv1a64_hex, ReportEntry};

/// Class labels used in expectation messages, in flow order (F1–F3).
pub const CLASS_LABELS: [&str; 3] = ["real-time", "high-priority", "best-effort"];

/// The audited outcome of one grid point, as the expectations engine
/// sees it. Filled by the plan runner from the run's stats, leak report
/// and flight recorder.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PointAudit {
    /// One message per flow whose conservation equation does not balance.
    pub conservation_violations: Vec<String>,
    /// Whether the post-quiesce leak report came back clean.
    pub leak_clean: bool,
    /// The leak report, rendered, when it was not clean.
    pub leak_detail: String,
    /// Flight-recorder events lost to ring wrap-around.
    pub recorder_overwritten: u64,
    /// Whether the flight recorder was on for this run (the recorder
    /// check is meaningless otherwise).
    pub telemetry_enabled: bool,
    /// Handover attempts that completed predictively.
    pub predictive: u64,
    /// Handover attempts that fell back to the reactive path.
    pub reactive: u64,
    /// Handover attempts still unresolved at the horizon.
    pub failed: u64,
    /// Per-class data drops (F1–F3), all reasons combined.
    pub class_drops: [u64; 3],
    /// Worst per-flow p99 end-to-end delay per class, in milliseconds.
    pub class_p99_ms: [f64; 3],
    /// Lifetime high-water mark of bytes parked at either router.
    pub peak_bytes_parked: usize,
    /// Sessions still holding parked packets after quiesce.
    pub wedged_sessions: usize,
    /// Sheds the ladder audit flagged as out of declared order.
    pub shed_order_violations: u64,
}

/// The invariants a plan's runs must satisfy, evaluated per grid point
/// (plus one artifact-level hash lock).
#[derive(Debug, Clone, PartialEq)]
pub struct Expectations {
    /// Require `sent + duplicated == delivered + Σ drops` per flow.
    pub conservation: bool,
    /// Require a clean post-quiesce leak report (routers quiesced, no
    /// stale routes, no wedged hosts).
    pub no_leaks: bool,
    /// Require `overwritten() == 0` on the flight recorder (only checked
    /// when telemetry was on).
    pub recorder_clean: bool,
    /// Ceiling on `failed / (predictive + reactive + failed)`.
    pub max_failed_ratio: Option<f64>,
    /// Per-class ceilings on data drops (F1–F3).
    pub class_drop_max: Option<[u64; 3]>,
    /// Per-class ceilings on the worst p99 delay, in milliseconds.
    pub class_p99_max_ms: Option<[f64; 3]>,
    /// Ceiling on the byte high-water mark of either router's pool — the
    /// overload plans prove the byte budget actually bounds memory.
    pub max_bytes_parked: Option<usize>,
    /// Require zero sessions still holding parked packets post-quiesce
    /// (the watchdog's contract: no wedged state survives).
    pub zero_wedged_sessions: bool,
    /// Require the shed-order audit to have flagged nothing: every shed
    /// happened with all earlier ladder rungs exhausted.
    pub shed_order_respected: bool,
    /// FNV-1a content lock on the rendered artifact. Cleared
    /// automatically when the plan runs under a different seed than the
    /// one the lock was pinned for.
    pub artifact_fnv1a: Option<u64>,
}

impl Default for Expectations {
    fn default() -> Self {
        Expectations {
            conservation: true,
            no_leaks: false,
            recorder_clean: true,
            max_failed_ratio: None,
            class_drop_max: None,
            class_p99_max_ms: None,
            max_bytes_parked: None,
            zero_wedged_sessions: false,
            shed_order_respected: false,
            artifact_fnv1a: None,
        }
    }
}

impl Expectations {
    /// Evaluates every per-point check against one audited run. Returns
    /// one entry per violated check; empty means the point passed.
    #[must_use]
    pub fn check_point(&self, subject: &str, audit: &PointAudit) -> Vec<ReportEntry> {
        let mut entries = Vec::new();
        let mut fail = |check: &str, detail: String| {
            entries.push(ReportEntry {
                subject: subject.to_owned(),
                check: check.to_owned(),
                detail,
            });
        };
        if self.conservation {
            for v in &audit.conservation_violations {
                fail("conservation", v.clone());
            }
        }
        if self.no_leaks && !audit.leak_clean {
            fail("no_leaks", audit.leak_detail.clone());
        }
        if self.recorder_clean && audit.telemetry_enabled && audit.recorder_overwritten > 0 {
            fail(
                "recorder_clean",
                format!(
                    "flight recorder wrapped: {} events overwritten",
                    audit.recorder_overwritten
                ),
            );
        }
        if let Some(max) = self.max_failed_ratio {
            let total = audit.predictive + audit.reactive + audit.failed;
            if total > 0 {
                let ratio = audit.failed as f64 / total as f64;
                if ratio > max {
                    fail(
                        "max_failed_ratio",
                        format!(
                            "failed {}/{} handovers = {ratio:.4} > {max}",
                            audit.failed, total
                        ),
                    );
                }
            }
        }
        if let Some(bounds) = self.class_drop_max {
            for k in 0..3 {
                if audit.class_drops[k] > bounds[k] {
                    fail(
                        "class_drop_max",
                        format!(
                            "{} drops {} > {}",
                            CLASS_LABELS[k], audit.class_drops[k], bounds[k]
                        ),
                    );
                }
            }
        }
        if let Some(bounds) = self.class_p99_max_ms {
            for k in 0..3 {
                if audit.class_p99_ms[k] > bounds[k] {
                    fail(
                        "class_p99_max_ms",
                        format!(
                            "{} p99 {:.3} ms > {} ms",
                            CLASS_LABELS[k], audit.class_p99_ms[k], bounds[k]
                        ),
                    );
                }
            }
        }
        if let Some(max) = self.max_bytes_parked {
            if audit.peak_bytes_parked > max {
                fail(
                    "max_bytes_parked",
                    format!(
                        "peak {} bytes parked > {} allowed",
                        audit.peak_bytes_parked, max
                    ),
                );
            }
        }
        if self.zero_wedged_sessions && audit.wedged_sessions > 0 {
            fail(
                "zero_wedged_sessions",
                format!(
                    "{} sessions still hold parked packets after quiesce",
                    audit.wedged_sessions
                ),
            );
        }
        if self.shed_order_respected && audit.shed_order_violations > 0 {
            fail(
                "shed_order_respected",
                format!(
                    "{} sheds ran with an earlier ladder rung unexhausted",
                    audit.shed_order_violations
                ),
            );
        }
        entries
    }

    /// Evaluates the artifact hash lock against the rendered bytes.
    #[must_use]
    pub fn check_artifact(&self, artifact: &str) -> Option<ReportEntry> {
        let expected = self.artifact_fnv1a?;
        let got = fnv1a64(artifact.as_bytes());
        if got == expected {
            return None;
        }
        Some(ReportEntry {
            subject: "artifact".to_owned(),
            check: "artifact_fnv1a".to_owned(),
            detail: format!(
                "content hash {} != locked {:#018x}",
                fnv1a64_hex(artifact.as_bytes()),
                expected
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_audit() -> PointAudit {
        PointAudit {
            leak_clean: true,
            predictive: 9,
            reactive: 1,
            ..PointAudit::default()
        }
    }

    #[test]
    fn clean_audit_passes_the_default_battery() {
        let exp = Expectations::default();
        assert!(exp.check_point("p", &clean_audit()).is_empty());
    }

    #[test]
    fn each_check_fires_with_a_pointed_entry() {
        let exp = Expectations {
            no_leaks: true,
            max_failed_ratio: Some(0.05),
            class_drop_max: Some([10, 0, 100]),
            class_p99_max_ms: Some([50.0, 50.0, 50.0]),
            max_bytes_parked: Some(4_000),
            zero_wedged_sessions: true,
            shed_order_respected: true,
            ..Expectations::default()
        };
        let audit = PointAudit {
            conservation_violations: vec!["flow 1: sent 10, accounted 9".to_owned()],
            leak_clean: false,
            leak_detail: "par holds 2 reservations".to_owned(),
            recorder_overwritten: 3,
            telemetry_enabled: true,
            predictive: 5,
            reactive: 0,
            failed: 5,
            class_drops: [0, 4, 0],
            class_p99_ms: [10.0, 80.0, 0.0],
            peak_bytes_parked: 4_160,
            wedged_sessions: 2,
            shed_order_violations: 1,
        };
        let entries = exp.check_point("point[2]", &audit);
        let checks: Vec<&str> = entries.iter().map(|e| e.check.as_str()).collect();
        assert_eq!(
            checks,
            vec![
                "conservation",
                "no_leaks",
                "recorder_clean",
                "max_failed_ratio",
                "class_drop_max",
                "class_p99_max_ms",
                "max_bytes_parked",
                "zero_wedged_sessions",
                "shed_order_respected"
            ]
        );
        assert!(entries[4].detail.contains("high-priority"), "{entries:?}");
        assert!(entries[6].detail.contains("4160"), "{entries:?}");
        assert!(entries.iter().all(|e| e.subject == "point[2]"));
    }

    #[test]
    fn recorder_check_is_skipped_without_telemetry() {
        let exp = Expectations::default();
        let audit = PointAudit {
            recorder_overwritten: 100,
            telemetry_enabled: false,
            ..clean_audit()
        };
        assert!(exp.check_point("p", &audit).is_empty());
    }

    #[test]
    fn failed_ratio_uses_the_attempt_total() {
        let exp = Expectations {
            max_failed_ratio: Some(0.5),
            ..Expectations::default()
        };
        let mut audit = clean_audit();
        audit.failed = 10; // 10 / 20 = 0.5, not above the ceiling
        assert!(exp.check_point("p", &audit).is_empty());
        audit.failed = 11;
        assert_eq!(exp.check_point("p", &audit).len(), 1);
    }

    #[test]
    fn artifact_lock_compares_content_hashes() {
        let mut exp = Expectations::default();
        assert!(exp.check_artifact("anything").is_none());
        exp.artifact_fnv1a = Some(fnv1a64(b"expected bytes"));
        assert!(exp.check_artifact("expected bytes").is_none());
        let entry = exp.check_artifact("tampered").expect("violation");
        assert_eq!(entry.check, "artifact_fnv1a");
        assert!(entry.detail.contains("0x"), "{}", entry.detail);
    }
}
