//! The plan-layer adapter for the [`fh_metro`] sharded kernel.
//!
//! A plan with `report = "metro"` runs each grid point on the
//! multi-domain epoch executor instead of the actor fabric: the
//! `[topology.domains]` table becomes a [`fh_metro::MetroConfig`], the
//! point's scheme and seed slot in from the grid, and the results fold
//! back into the same [`PointRun`] / [`PointAudit`] shapes the
//! expectations engine already judges. The artifact renderer emits one
//! row per grid point with deterministic columns only — epoch and
//! message counts are functions of the simulated world, wall-clock
//! never is, so the CSV stays byte-identical at any thread count.

use fh_core::Scheme;
use fh_metro::MetroConfig;
use fh_telemetry::{Cell, CsvTable};

use crate::expectations::PointAudit;
use crate::plan::{PointRun, ScenarioPlan};

/// The metro-kernel extras one grid point measured, carried alongside
/// the common [`PointRun`] fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetroPoint {
    /// Domains (shards) the point ran across.
    pub domains: u32,
    /// Packets generated, all classes.
    pub generated: u64,
    /// Packets delivered, all classes.
    pub delivered: u64,
    /// Packets that crossed an inter-MAP boundary.
    pub boundary_packets: u64,
    /// Epoch barriers the executor ran.
    pub epochs: u64,
    /// Cross-shard messages exchanged at barriers.
    pub messages: u64,
}

/// Resolves a plan + grid point into the kernel's config.
#[must_use]
pub fn metro_config(plan: &ScenarioPlan, hosts: usize, scheme: Scheme, seed: u64) -> MetroConfig {
    let d = plan.topology.domains;
    let w = plan.workloads[0];
    MetroConfig {
        domains: d.count,
        hosts: u32::try_from(hosts).expect("host counts fit in u32"),
        ars_per_domain: d.ars_per_domain,
        boundary_latency: d.boundary_latency,
        remote_fraction: d.remote_fraction,
        mean_residence: d.mean_residence,
        blackout: plan.topology.l2_blackout,
        scheme,
        buffer_request: plan.protocol.buffer_request,
        flush_spacing: plan.protocol.flush_spacing,
        packet_interval: w.interval,
        packet_bytes: w.packet_bytes,
        traffic_start: plan.run.traffic_start,
        traffic_stop: plan.run.traffic_stop,
        horizon: plan.run.horizon,
        seed,
    }
}

/// Runs one metro grid point and folds the results into a [`PointRun`].
#[must_use]
pub fn run_metro_point(
    plan: &ScenarioPlan,
    hosts: usize,
    scheme: Scheme,
    seed: u64,
    threads: usize,
) -> PointRun {
    let cfg = metro_config(plan, hosts, scheme, seed);
    let r = fh_metro::run(&cfg, threads);
    let class_drops = [r.counts.drops(0), r.counts.drops(1), r.counts.drops(2)];
    let class_p99_ms = r.class_p99_ms();
    let audit = PointAudit {
        conservation_violations: r.counts.conservation_violations(),
        leak_clean: r.leak_clean,
        leak_detail: if r.leak_clean {
            String::new()
        } else {
            "a domain packet pool did not drain to empty".to_owned()
        },
        // The metro kernel has no flight recorder; the plan layer
        // rejects `telemetry_ring > 0` for metro plans.
        recorder_overwritten: 0,
        telemetry_enabled: false,
        // Metro handovers always resolve (blackout end is scheduled with
        // the start), so the whole population counts as predictive and
        // the failed-ratio expectation stays meaningful.
        predictive: r.handovers,
        reactive: 0,
        failed: 0,
        class_drops,
        class_p99_ms,
        peak_bytes_parked: 0,
        wedged_sessions: 0,
        shed_order_violations: 0,
    };
    PointRun {
        loss: None,
        hosts,
        scheme,
        predictive: r.handovers,
        reactive: 0,
        failed: 0,
        recovery_ms: 0.0,
        class_drops,
        class_p99_ms,
        fault_drops: 0,
        retransmissions: 0,
        degradations: 0,
        expired: 0,
        reclaimed: 0,
        routes_expired: 0,
        events: r.events_processed,
        audit,
        metro: Some(MetroPoint {
            domains: cfg.domains,
            generated: r.counts.generated.iter().sum(),
            delivered: r.counts.delivered.iter().sum(),
            boundary_packets: r.boundary_packets,
            epochs: r.report.epochs,
            messages: r.report.messages,
        }),
    }
}

/// The metro artifact: one row per grid point, deterministic columns
/// only.
#[must_use]
pub fn render_metro(points: &[PointRun]) -> String {
    let mut t = CsvTable::new(&[
        "hosts",
        "scheme",
        "domains",
        "generated",
        "delivered",
        "drop_rt",
        "drop_hp",
        "drop_be",
        "p99_rt_ms",
        "p99_hp_ms",
        "p99_be_ms",
        "handovers",
        "boundary_pkts",
        "epochs",
        "messages",
        "events",
    ]);
    for p in points {
        let m = p
            .metro
            .expect("metro plans produce metro points for every grid entry");
        t.row(&[
            Cell::from(p.hosts),
            Cell::from(p.scheme.label()),
            Cell::U64(u64::from(m.domains)),
            Cell::U64(m.generated),
            Cell::U64(m.delivered),
            Cell::U64(p.class_drops[0]),
            Cell::U64(p.class_drops[1]),
            Cell::U64(p.class_drops[2]),
            Cell::Fixed(p.class_p99_ms[0], 3),
            Cell::Fixed(p.class_p99_ms[1], 3),
            Cell::Fixed(p.class_p99_ms[2], 3),
            Cell::U64(p.predictive),
            Cell::U64(m.boundary_packets),
            Cell::U64(m.epochs),
            Cell::U64(m.messages),
            Cell::U64(p.events),
        ]);
    }
    t.finish()
}
