//! The Fig 4.1 scenario: a hierarchical Mobile IPv6 access network.
//!
//! ```text
//!                 CN
//!                  |
//!                 MAP          (HMIPv6 anchor, RCoA prefix)
//!                /   \
//!             PAR --- NAR      (fast-handover access routers)
//!              |       |
//!            (AP0)   (AP1)     x = 0 m      x = 212 m, radius 112 m
//!                 MH(s) →      10 m/s
//! ```
//!
//! Parameters follow §4.1 of the thesis: 212 m AP separation, 112 m
//! coverage (12 m overlap), 1 s router advertisements, 200 ms link-layer
//! black-out, 10 m/s hosts. Everything else (link speeds, buffer sizes,
//! the PAR↔NAR delay that Figs 4.9/4.10 sweep) is configurable.

use std::net::Ipv6Addr;

use fh_sim::{derive_seed, QueueKind, SimDuration, SimTime, Simulator};

use fh_core::{ArAgent, ArSoftState, MhAgent, ProtocolConfig};
use fh_mip::{MipClient, MobilityAnchor};
use fh_net::{
    doc_subnet, ApId, FaultSpec, FlowId, HandoverOutcome, LinkSpec, NetMsg, NodeFaultSpec, NodeId,
    ServiceClass,
};
use fh_traffic::{CbrSource, UdpSink};
use fh_wireless::{
    MhRadio, Mobility, Position, RadioConfig, RadioTechnology, TriggerMode, WirelessSpec,
};

use crate::nodes::{ArNode, CnNode, MapNode, MhNode};
use crate::world::World;

/// How the mobile hosts move.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MovementPlan {
    /// One PAR→NAR crossing: start near the PAR, park under the NAR.
    OneWay,
    /// Shuttle between the two cells forever (repeated handovers).
    PingPong,
    /// Stay parked under the PAR (no handover; control runs).
    Parked,
    /// Hosts cross in opposite directions: even-indexed hosts walk
    /// PAR→NAR, odd-indexed hosts walk NAR→PAR at the same time, so each
    /// router plays both roles simultaneously.
    Crossing,
}

/// Configuration of the Fig 4.1 scenario.
#[derive(Debug, Clone, Copy)]
pub struct HmipConfig {
    /// Protocol parameters (scheme, buffer request, threshold `a`, …).
    pub protocol: ProtocolConfig,
    /// Number of mobile hosts.
    pub n_mhs: usize,
    /// Handover buffer capacity per access router, in packets.
    pub buffer_capacity: usize,
    /// PAR↔NAR link propagation delay (2 ms default; Fig 4.10 uses 50 ms).
    pub ar_link_delay: SimDuration,
    /// Wireless channel parameters.
    pub wireless: WirelessSpec,
    /// L2 black-out duration (200 ms in the thesis).
    pub l2_handoff_delay: SimDuration,
    /// Host movement pattern.
    pub movement: MovementPlan,
    /// Host speed in m/s.
    pub speed: f64,
    /// RNG seed for the run.
    pub seed: u64,
    /// Fault injection on the PAR↔NAR wired link, applied to both
    /// directions (control-plane chaos: HI/HAck/BF and tunneled data all
    /// ride this link). No-op by default.
    pub ar_link_fault: FaultSpec,
    /// Fault injection on both wireless cells (applies to every uplink and
    /// downlink transmission in the cell). No-op by default.
    pub wireless_fault: FaultSpec,
    /// Scheduled crash/restart fault on the PAR. No-op by default.
    pub par_fault: NodeFaultSpec,
    /// Scheduled crash/restart fault on the NAR. No-op by default.
    pub nar_fault: NodeFaultSpec,
    /// Scheduled power-loss fault on mobile host 0. No-op by default.
    pub mh_fault: NodeFaultSpec,
    /// Handover-storm stagger: host `i` starts its one-way walk
    /// `i × storm_stagger` later (implemented as a start-position offset,
    /// clamped to stay inside PAR coverage), so N hosts hand over spread
    /// across a window instead of in lock-step. Zero (the default) keeps
    /// every host on the classic synchronized walk.
    pub storm_stagger: SimDuration,
    /// Event-queue backend for the run. [`QueueKind::Heap`] (the
    /// default) and [`QueueKind::Calendar`] are bit-identical in pop
    /// order; the calendar trades a small bookkeeping overhead for O(1)
    /// scheduling on large event populations (the `hotpath` bench).
    pub queue: QueueKind,
    /// Vertical-handover overlay: when `Some`, the NAR's AP becomes a
    /// wide-area cellular sector (own channel spec and coverage radius)
    /// instead of the second WLAN cell, so the walk crosses technologies.
    /// `None` (the default) keeps the thesis' WLAN→WLAN topology.
    pub cellular: Option<CellularConfig>,
    /// Radio interfaces per host: 1 (the default, single card — handover
    /// goes through a black-out) or 2 (multi-homed; cross-technology
    /// handovers run make-before-break on the second interface).
    pub interfaces: u8,
    /// L2 trigger source: [`TriggerMode::Legacy`] geometry/hysteresis
    /// (the default) or [`TriggerMode::Mih`] 802.21-style link events.
    pub trigger: TriggerMode,
}

/// Wide-area overlay cell for vertical-handover scenarios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellularConfig {
    /// Channel parameters of the cellular sector (defaults to the
    /// [`RadioTechnology::Cellular`] spec: 2 Mb/s, 40 ms).
    pub spec: WirelessSpec,
    /// Coverage radius in meters (defaults to 1500 m, blanketing the
    /// whole walk so the wide-area link is always available).
    pub radius: f64,
}

impl Default for CellularConfig {
    fn default() -> Self {
        CellularConfig {
            spec: RadioTechnology::Cellular.default_spec(),
            radius: RadioTechnology::Cellular.default_radius_m(),
        }
    }
}

impl Default for HmipConfig {
    fn default() -> Self {
        HmipConfig {
            protocol: ProtocolConfig::proposed(),
            n_mhs: 1,
            buffer_capacity: 20,
            ar_link_delay: SimDuration::from_millis(2),
            wireless: WirelessSpec {
                bandwidth_bps: 2_000_000,
                delay: SimDuration::from_millis(1),
            },
            l2_handoff_delay: SimDuration::from_millis(200),
            movement: MovementPlan::OneWay,
            speed: 10.0,
            seed: 42,
            ar_link_fault: FaultSpec::default(),
            wireless_fault: FaultSpec::default(),
            par_fault: NodeFaultSpec::default(),
            nar_fault: NodeFaultSpec::default(),
            mh_fault: NodeFaultSpec::default(),
            storm_stagger: SimDuration::ZERO,
            queue: QueueKind::Heap,
            cellular: None,
            interfaces: 1,
            trigger: TriggerMode::Legacy,
        }
    }
}

/// Geometry constants of the thesis topology (§4.1).
pub mod geometry {
    /// Distance between the two access points, in meters.
    pub const AP_SEPARATION: f64 = 212.0;
    /// Coverage radius of each access point, in meters.
    pub const COVERAGE_RADIUS: f64 = 112.0;
    /// One-way walk start (inside PAR coverage, short lead-in).
    pub const WALK_START: f64 = 88.0;
    /// Ping-pong turnaround points.
    pub const PP_LEFT: f64 = 60.0;
    /// Right ping-pong turnaround (well inside NAR coverage).
    pub const PP_RIGHT: f64 = 152.0;
}

/// A flow registered in the scenario.
#[derive(Debug, Clone, Copy)]
struct FlowEntry {
    flow: FlowId,
    cbr_index: usize,
    mh_index: usize,
    sink_index: usize,
}

/// The built Fig 4.1 scenario.
pub struct HmipScenario {
    /// The simulator, ready to run.
    pub sim: Simulator<NetMsg, World>,
    /// Correspondent node.
    pub cn: NodeId,
    /// The MAP router.
    pub map: NodeId,
    /// Previous access router (hosts start here).
    pub par: NodeId,
    /// New access router.
    pub nar: NodeId,
    /// Mobile host nodes.
    pub mhs: Vec<NodeId>,
    /// Each host's regional care-of address (traffic destination).
    pub rcoas: Vec<Ipv6Addr>,
    /// The PAR's address.
    pub par_addr: Ipv6Addr,
    /// The NAR's address.
    pub nar_addr: Ipv6Addr,
    /// The MAP's address.
    pub map_addr: Ipv6Addr,
    /// The PAR-side AP.
    pub par_ap: ApId,
    /// The NAR-side AP.
    pub nar_ap: ApId,
    flows: Vec<FlowEntry>,
    next_flow: u32,
}

impl HmipScenario {
    /// Builds the scenario.
    #[must_use]
    pub fn build(cfg: HmipConfig) -> Self {
        let mut sim: Simulator<NetMsg, World> =
            Simulator::with_queue_kind(World::new(cfg.wireless), cfg.seed, cfg.queue);

        // Prefixes and addresses.
        let cn_prefix = doc_subnet(0);
        let par_prefix = doc_subnet(1);
        let nar_prefix = doc_subnet(2);
        let map_prefix = doc_subnet(10);
        let cn_addr = cn_prefix.host(1);
        let par_addr = par_prefix.host(1);
        let nar_addr = nar_prefix.host(1);
        let map_addr = map_prefix.host(1);

        // Actors.
        let cn = sim.add_actor(Box::new(CnNode::new(
            // placeholder id, patched right below (actor ids are assigned
            // by the simulator at insertion).
            fh_net::Topology::new().add_node("tmp"),
        )));
        sim.actor_mut::<CnNode>(cn).expect("cn").node = cn;

        let map_anchor_node = sim.add_actor(Box::new(MapNode {
            anchor: MobilityAnchor::map(
                fh_net::Topology::new().add_node("tmp"),
                map_addr,
                map_prefix,
            ),
        }));
        sim.actor_mut::<MapNode>(map_anchor_node)
            .expect("map")
            .anchor
            .node = map_anchor_node;

        // Radio environment first (AP ids needed by the AR agents).
        let par_node = sim.add_actor(Box::new(ArNode {
            agent: ArAgent::new(
                fh_net::Topology::new().add_node("tmp"),
                par_addr,
                par_prefix,
                Vec::new(),
                map_addr,
                cfg.protocol,
                cfg.buffer_capacity,
            ),
        }));
        let nar_node = sim.add_actor(Box::new(ArNode {
            agent: ArAgent::new(
                fh_net::Topology::new().add_node("tmp"),
                nar_addr,
                nar_prefix,
                Vec::new(),
                map_addr,
                cfg.protocol,
                cfg.buffer_capacity,
            ),
        }));
        let par_ap =
            sim.shared
                .radio
                .add_ap(par_node, Position::new(0.0, 0.0), geometry::COVERAGE_RADIUS);
        let nar_ap = match cfg.cellular {
            Some(cell) => {
                sim.shared.radio.set_cellular_spec(cell.spec);
                sim.shared.radio.add_ap_tech(
                    nar_node,
                    Position::new(geometry::AP_SEPARATION, 0.0),
                    cell.radius,
                    RadioTechnology::Cellular,
                )
            }
            None => sim.shared.radio.add_ap(
                nar_node,
                Position::new(geometry::AP_SEPARATION, 0.0),
                geometry::COVERAGE_RADIUS,
            ),
        };
        {
            let par_agent = &mut sim.actor_mut::<ArNode>(par_node).expect("par").agent;
            par_agent.set_node(par_node);
            par_agent.set_aps(vec![par_ap]);
            par_agent.learn_ap(nar_ap, nar_addr);
            par_agent.node_fault = cfg.par_fault;
        }
        {
            let nar_agent = &mut sim.actor_mut::<ArNode>(nar_node).expect("nar").agent;
            nar_agent.set_node(nar_node);
            nar_agent.set_aps(vec![nar_ap]);
            nar_agent.learn_ap(par_ap, par_addr);
            nar_agent.node_fault = cfg.nar_fault;
        }

        // Mobile hosts.
        let mut mhs = Vec::new();
        let mut rcoas = Vec::new();
        for i in 0..cfg.n_mhs {
            let iid = 0x100 + i as u64;
            let rcoa = map_prefix.host(iid);
            let eastbound = i % 2 == 0;
            // Storm stagger: push host i's start back along the walk so it
            // reaches the cell edge i × storm_stagger later. The offset is
            // clamped to keep the start inside PAR coverage (and outside
            // the NAR's), so very large storms saturate the window instead
            // of spawning hosts out of range.
            let stagger_x = (cfg.speed * cfg.storm_stagger.as_secs_f64() * i as f64)
                .min(geometry::WALK_START + geometry::COVERAGE_RADIUS - 22.0);
            let mobility = match cfg.movement {
                MovementPlan::OneWay => Mobility::linear(
                    Position::new(geometry::WALK_START - stagger_x, 0.0),
                    Position::new(geometry::AP_SEPARATION, 0.0),
                    cfg.speed,
                ),
                MovementPlan::PingPong => Mobility::ping_pong(
                    Position::new(geometry::PP_LEFT, 0.0),
                    Position::new(geometry::PP_RIGHT, 0.0),
                    cfg.speed,
                ),
                MovementPlan::Parked => Mobility::Stationary(Position::new(0.0, 0.0)),
                MovementPlan::Crossing => {
                    if eastbound {
                        Mobility::linear(
                            Position::new(geometry::WALK_START, 0.0),
                            Position::new(geometry::AP_SEPARATION, 0.0),
                            cfg.speed,
                        )
                    } else {
                        // The mirror walk, starting under the NAR.
                        Mobility::linear(
                            Position::new(geometry::AP_SEPARATION - geometry::WALK_START, 0.0),
                            Position::new(0.0, 0.0),
                            cfg.speed,
                        )
                    }
                }
            };
            let mh_node = sim.add_actor(Box::new(MhNode::new(MhAgent::new(
                fh_net::Topology::new().add_node("tmp"),
                MhRadio::new(
                    fh_net::Topology::new().add_node("tmp"),
                    mobility.clone(),
                    RadioConfig {
                        l2_handoff_delay: cfg.l2_handoff_delay,
                        trigger: cfg.trigger,
                        multi_iface: cfg.interfaces > 1,
                        ..RadioConfig::default()
                    },
                ),
                MipClient::new(rcoa, map_addr, SimDuration::from_secs(600)),
                cfg.protocol,
                iid,
            ))));
            {
                let node = &mut sim.actor_mut::<MhNode>(mh_node).expect("mh").agent;
                node.node = mh_node;
                node.radio = MhRadio::new(
                    mh_node,
                    mobility,
                    RadioConfig {
                        l2_handoff_delay: cfg.l2_handoff_delay,
                        trigger: cfg.trigger,
                        multi_iface: cfg.interfaces > 1,
                        ..RadioConfig::default()
                    },
                );
                node.mip.enter_map_domain(map_addr, rcoa);
                if i == 0 {
                    node.node_fault = cfg.mh_fault;
                }
                if cfg.movement == MovementPlan::Crossing && i % 2 == 1 {
                    // Westbound hosts start under the NAR.
                    node.configure_initial(nar_ap, nar_addr, nar_prefix);
                } else {
                    node.configure_initial(par_ap, par_addr, par_prefix);
                }
            }
            mhs.push(mh_node);
            rcoas.push(rcoa);
        }

        // Wired topology.
        let inter_ar_link;
        {
            let topo = &mut sim.shared.topo;
            topo.register_node(cn, "cn");
            topo.register_node(map_anchor_node, "map");
            topo.register_node(par_node, "par");
            topo.register_node(nar_node, "nar");
            for (i, &mh) in mhs.iter().enumerate() {
                topo.register_node(mh, format!("mh{i}"));
            }
            let backbone = LinkSpec::new(10_000_000, SimDuration::from_millis(10), 100);
            let distribution = LinkSpec::new(10_000_000, SimDuration::from_millis(5), 100);
            let inter_ar = LinkSpec::new(10_000_000, cfg.ar_link_delay, 100);
            topo.add_link(cn, map_anchor_node, backbone);
            topo.add_link(map_anchor_node, par_node, distribution);
            topo.add_link(map_anchor_node, nar_node, distribution);
            let ar_link = topo.add_link(par_node, nar_node, inter_ar);
            inter_ar_link = Some(ar_link);
            topo.add_prefix(cn_prefix, cn);
            topo.add_prefix(map_prefix, map_anchor_node);
            topo.add_prefix(par_prefix, par_node);
            topo.add_prefix(nar_prefix, nar_node);
            topo.compute_routes();
        }

        // Fault injection (chaos experiments). Every fault stream gets its
        // own deterministic seed derived from the scenario seed, so runs
        // are reproducible and independent of thread count.
        if !cfg.wireless_fault.is_noop() {
            sim.shared.radio.set_fault(
                par_ap,
                cfg.wireless_fault,
                derive_seed(cfg.seed, 0xFA01_0000),
            );
            sim.shared.radio.set_fault(
                nar_ap,
                cfg.wireless_fault,
                derive_seed(cfg.seed, 0xFA02_0000),
            );
        }
        if !cfg.ar_link_fault.is_noop() {
            if let Some(link) = inter_ar_link {
                let l = sim.shared.topo.link_mut(link);
                l.set_fault(
                    par_node,
                    cfg.ar_link_fault,
                    derive_seed(cfg.seed, 0xFA03_0000),
                );
                l.set_fault(
                    nar_node,
                    cfg.ar_link_fault,
                    derive_seed(cfg.seed, 0xFA04_0000),
                );
            }
        }

        // The FMIPv6 tunnel rides the direct inter-AR link regardless of
        // shortest-path routing (Figs 4.9/4.10 sweep its delay).
        if let Some(link) = inter_ar_link {
            sim.actor_mut::<ArNode>(par_node)
                .expect("par")
                .agent
                .learn_peer_link(nar_addr, link);
            sim.actor_mut::<ArNode>(nar_node)
                .expect("nar")
                .agent
                .learn_peer_link(par_addr, link);
        }

        // CN address bookkeeping and kick-off events.
        {
            let cn_node = sim.actor_mut::<CnNode>(cn).expect("cn");
            cn_node.node = cn;
        }
        for id in [cn, map_anchor_node, par_node, nar_node]
            .into_iter()
            .chain(mhs.iter().copied())
        {
            sim.schedule(SimTime::ZERO, id, NetMsg::Start);
        }

        let _ = cn_addr;
        HmipScenario {
            sim,
            cn,
            map: map_anchor_node,
            par: par_node,
            nar: nar_node,
            mhs,
            rcoas,
            par_addr,
            nar_addr,
            map_addr,
            par_ap,
            nar_ap,
            flows: Vec::new(),
            next_flow: 1,
        }
    }

    /// The correspondent node's address.
    #[must_use]
    pub fn cn_addr(&self) -> Ipv6Addr {
        doc_subnet(0).host(1)
    }

    /// Adds a CBR flow from the CN to mobile host `mh_index`.
    ///
    /// Returns the flow id; counters are read back with
    /// [`HmipScenario::flow_sent`] and [`HmipScenario::flow_sink`].
    pub fn add_cbr_flow(
        &mut self,
        mh_index: usize,
        class: ServiceClass,
        size: u32,
        interval: SimDuration,
    ) -> FlowId {
        let flow = FlowId(self.next_flow);
        self.next_flow += 1;
        let src = self.cn_addr();
        let dst = self.rcoas[mh_index];
        let cbr = CbrSource::new(flow, src, dst, class, size, interval);
        let cn = self.sim.actor_mut::<CnNode>(self.cn).expect("cn");
        let cbr_index = cn.cbr.len();
        cn.cbr.push(cbr);
        let mh = self
            .sim
            .actor_mut::<MhNode>(self.mhs[mh_index])
            .expect("mh");
        let sink_index = mh.sinks.len();
        mh.sinks.push(UdpSink::new(flow));
        self.flows.push(FlowEntry {
            flow,
            cbr_index,
            mh_index,
            sink_index,
        });
        flow
    }

    /// The thesis' 64 kb/s audio flow (160 B @ 20 ms).
    pub fn add_audio_64k(&mut self, mh_index: usize, class: ServiceClass) -> FlowId {
        self.add_cbr_flow(mh_index, class, 160, SimDuration::from_millis(20))
    }

    /// The thesis' 128 kb/s audio flow (160 B @ 10 ms).
    pub fn add_audio_128k(&mut self, mh_index: usize, class: ServiceClass) -> FlowId {
        self.add_cbr_flow(mh_index, class, 160, SimDuration::from_millis(10))
    }

    /// Sets the window in which CBR sources generate.
    pub fn set_traffic_window(&mut self, start: SimTime, stop: SimTime) {
        let cn = self.sim.actor_mut::<CnNode>(self.cn).expect("cn");
        cn.cbr_start = start;
        cn.cbr_stop = stop;
    }

    fn entry(&self, flow: FlowId) -> &FlowEntry {
        self.flows
            .iter()
            .find(|e| e.flow == flow)
            .expect("unknown flow id")
    }

    /// Packets the CN emitted on `flow`.
    #[must_use]
    pub fn flow_sent(&self, flow: FlowId) -> u64 {
        let e = self.entry(flow);
        self.sim.actor::<CnNode>(self.cn).expect("cn").cbr[e.cbr_index].sent()
    }

    /// The sink of `flow` (received counts, delays).
    #[must_use]
    pub fn flow_sink(&self, flow: FlowId) -> &UdpSink {
        let e = self.entry(flow);
        &self
            .sim
            .actor::<MhNode>(self.mhs[e.mh_index])
            .expect("mh")
            .sinks[e.sink_index]
    }

    /// Losses on `flow` so far (sent − received).
    #[must_use]
    pub fn flow_losses(&self, flow: FlowId) -> u64 {
        self.flow_sink(flow).losses(self.flow_sent(flow))
    }

    /// The mobile-host agent of host `i` (handoff counts, timeline).
    #[must_use]
    pub fn mh_agent(&self, i: usize) -> &MhAgent {
        &self.sim.actor::<MhNode>(self.mhs[i]).expect("mh").agent
    }

    /// The PAR's protocol agent.
    #[must_use]
    pub fn par_agent(&self) -> &ArAgent {
        &self.sim.actor::<ArNode>(self.par).expect("par").agent
    }

    /// The NAR's protocol agent.
    #[must_use]
    pub fn nar_agent(&self) -> &ArAgent {
        &self.sim.actor::<ArNode>(self.nar).expect("nar").agent
    }

    /// The MAP anchor.
    #[must_use]
    pub fn map_anchor(&self) -> &MobilityAnchor {
        &self.sim.actor::<MapNode>(self.map).expect("map").anchor
    }

    /// Runs the simulation until `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }

    /// Switches the observability subsystem on for this run: the flight
    /// recorder rings `cap` protocol events and every handover attempt is
    /// tracked as a span. Call before `run_until`; read the results back
    /// with [`HmipScenario::chrome_trace_into`] or the stats' `trace` /
    /// `spans` fields. Costs one branch per event when off (the default).
    pub fn enable_telemetry(&mut self, cap: usize) {
        self.sim.shared.stats.trace.enable(cap);
        self.sim.shared.stats.spans.enable();
    }

    /// Exports this run's telemetry into a Chrome-trace builder under
    /// process id `pid`: one `"X"` span per handover attempt (with its
    /// phase marks) followed by one instant per flight-recorder event.
    /// Spans still open render to the current sim time with outcome
    /// `"open"`. Deterministic: spans in begin order, events in ring
    /// order.
    pub fn chrome_trace_into(&self, trace: &mut fh_telemetry::ChromeTrace, pid: u64) {
        let stats = &self.sim.shared.stats;
        let now = self.sim.now();
        for span in stats.spans.spans() {
            trace.add_span(pid, span, now);
        }
        for (t, event) in stats.trace.events() {
            trace.add_instant(pid, *t, event);
        }
    }

    /// End-of-run bookkeeping: classifies every still-open handover
    /// attempt as [`HandoverOutcome::Failed`] and mirrors the routers'
    /// activity counters into the shared stats registry. Call once, after
    /// the final `run_until`. Returns the number of failed attempts.
    pub fn finalize(&mut self) -> u64 {
        let mhs = self.mhs.clone();
        let mut failed = 0u64;
        for mh in mhs {
            let agent = &mut self.sim.actor_mut::<MhNode>(mh).expect("mh").agent;
            if agent.close_unresolved() {
                failed += 1;
            }
        }
        for _ in 0..failed {
            self.sim
                .shared
                .stats
                .record_outcome(HandoverOutcome::Failed);
        }
        // Mirror the outcome bookkeeping onto the span timeline: an
        // attempt still open at the horizon is a failed handover.
        let now = self.sim.now();
        let spans = &mut self.sim.shared.stats.spans;
        for id in spans.open_spans() {
            spans.end(id, now, HandoverOutcome::Failed.label());
        }
        let pm = self.par_agent().metrics;
        let nm = self.nar_agent().metrics;
        pm.export(&mut self.sim.shared.stats);
        nm.export(&mut self.sim.shared.stats);
        failed
    }

    /// Asserts per-flow packet conservation:
    /// `sent + duplicated == delivered + Σ drops(reason)` for every flow
    /// whose source was recorded. Panics with the offending flow's audit
    /// on violation.
    pub fn assert_conservation(&self) {
        self.sim.shared.stats.assert_conservation();
    }

    /// Handover outcome tally `[(Predictive, n), (Reactive, n), (Failed, n)]`.
    #[must_use]
    pub fn outcomes(&self) -> [(HandoverOutcome, u64); 3] {
        self.sim.shared.stats.outcomes()
    }

    /// Hosts whose current handover attempt has not resolved (should be
    /// zero after [`HmipScenario::finalize`]).
    #[must_use]
    pub fn unresolved_handovers(&self) -> usize {
        self.mhs
            .iter()
            .filter(|&&mh| self.sim.actor::<MhNode>(mh).expect("mh").agent.unresolved())
            .count()
    }

    /// End-of-run resource-leak audit: snapshots both routers' soft state
    /// and cross-checks every installed host route against the radio
    /// attachment table. Meaningful after a quiesce period longer than
    /// every reservation lifetime (and, for soft-state routes, the route
    /// lifetime) with no traffic flowing.
    #[must_use]
    pub fn leak_report(&self) -> LeakReport {
        let mut stale_routes = 0;
        for agent in [self.par_agent(), self.nar_agent()] {
            for (_, node) in agent.neighbor_entries() {
                let attached_here = self
                    .sim
                    .shared
                    .radio
                    .attachment(node)
                    .is_some_and(|ap| agent.owns_ap(ap));
                if !attached_here {
                    stale_routes += 1;
                }
            }
        }
        LeakReport {
            par: self.par_agent().soft_state(),
            nar: self.nar_agent().soft_state(),
            stale_routes,
            unresolved_hosts: self.unresolved_handovers(),
        }
    }

    /// The larger of the two routers' lifetime byte high-water marks —
    /// flash-crowd plans bound this with the `max_bytes_parked`
    /// expectation.
    #[must_use]
    pub fn peak_bytes_parked(&self) -> usize {
        self.par_agent()
            .pool()
            .peak_bytes()
            .max(self.nar_agent().pool().peak_bytes())
    }

    /// Sessions still holding parked packets across both routers. After
    /// quiesce this must be zero — the handover watchdog exists precisely
    /// so no wedged session survives.
    #[must_use]
    pub fn wedged_sessions(&self) -> usize {
        self.par_agent().pool().wedged_sessions() + self.nar_agent().pool().wedged_sessions()
    }

    /// Panics unless [`HmipScenario::leak_report`] is clean: no live
    /// sessions, reservations, buffered packets, paced flushes or pending
    /// non-route timers on either router, no host route pointing at a
    /// host that is not attached to that router, and no host wedged in an
    /// unresolved handover attempt.
    pub fn assert_no_leaks(&self) {
        let report = self.leak_report();
        assert!(report.is_clean(), "resource leak after quiesce: {report:?}");
    }
}

/// Combined soft-state audit of a finished run (see
/// [`HmipScenario::leak_report`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeakReport {
    /// The PAR's soft-state snapshot.
    pub par: ArSoftState,
    /// The NAR's soft-state snapshot.
    pub nar: ArSoftState,
    /// Host routes whose host is not attached to the owning router.
    pub stale_routes: usize,
    /// Hosts still wedged in an open handover attempt.
    pub unresolved_hosts: usize,
}

impl LeakReport {
    /// `true` when nothing leaked: both routers quiesced, every remaining
    /// host route backs an attached host, and no attempt is wedged.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.par.quiesced()
            && self.nar.quiesced()
            && self.stale_routes == 0
            && self.unresolved_hosts == 0
    }
}
