//! Declarative scenario plans: one TOML file describes a whole run.
//!
//! A [`ScenarioPlan`] bundles everything the repro/chaos/storm/timeline
//! drivers used to hard-code — topology, protocol tunables, workloads,
//! fault and storm specs, the sweep axis, the RNG seed — together with an
//! [`Expectations`] block evaluated after quiesce. Plans load from a
//! small TOML subset (see [`ScenarioPlan::from_toml`]), run through the
//! same [`crate::sweep::parallel_map`] grid engine as the hand-written
//! experiments, and render the established artifacts (chaos CSV, storm
//! CSV, Chrome-trace JSON) byte-for-byte.
//!
//! The three legacy drivers are themselves plans now:
//! [`reference_chaos`], [`reference_storm`] and [`reference_timeline`]
//! encode their exact configurations, and
//! [`crate::experiments::chaos_sweep`] /
//! [`crate::experiments::storm_sweep`] /
//! [`crate::experiments::storm_timeline`] are thin adapters over
//! [`run_plan`]. The corpus TOML files in `crates/bench/plans/` parse to
//! these constructors exactly (a test asserts it), so the CSV bytes CI
//! locked in `tests/golden/` cannot drift.
//!
//! [`fuzz_plan`] derives random-but-valid plans from a seed for the
//! `plan --fuzz` smoke battery: every fuzzed plan must conserve packets,
//! keep its flight recorder intact, terminate, and produce identical
//! artifacts at any thread count.

use std::str::FromStr;

use fh_core::{ProtocolConfig, RetransmitConfig, Scheme};
use fh_net::{DropReason, FaultSpec, FlowId, GilbertElliott, NodeFaultSpec, ServiceClass};
use fh_sim::{derive_seed, Rng64, SimDuration, SimTime};
use fh_telemetry::{Cell, ChromeTrace, CsvTable, FailureReport};

use crate::expectations::{Expectations, PointAudit};
use crate::experiments::FLOW_CLASSES;
use crate::hmip::{CellularConfig, HmipConfig, HmipScenario, MovementPlan};
use crate::sweep::parallel_map;
use fh_wireless::TriggerMode;

pub use crate::toml::PlanError;

/// Flight-recorder capacity used when a timeline plan does not set one:
/// large enough that no storm-timeline point ever wraps.
pub const DEFAULT_TIMELINE_RING: usize = 1 << 16;

/// Which artifact a plan renders from its grid results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportKind {
    /// The chaos-sweep CSV (`loss,predictive,…,degradations`).
    Chaos,
    /// The storm-sweep CSV (`mhs,scheme,…,routes_expired`).
    Storm,
    /// The merged Chrome-trace JSON timeline.
    Timeline,
    /// The generic per-point CSV (every recorded metric, one row per
    /// grid point) — the default for ad-hoc and fuzzed plans.
    Points,
    /// The metro-scale CSV from the sharded multi-domain kernel
    /// (`hosts,scheme,domains,…,epochs,messages`).
    Metro,
}

impl ReportKind {
    /// The name used by the `[plan] report` key.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ReportKind::Chaos => "chaos",
            ReportKind::Storm => "storm",
            ReportKind::Timeline => "timeline",
            ReportKind::Points => "points",
            ReportKind::Metro => "metro",
        }
    }
}

/// The `[topology.domains]` block: how a metro plan partitions the
/// world into MAP domains. The default (one domain) leaves every
/// non-metro plan untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainsSpec {
    /// Number of MAP domains (shards). 1 means the classic single-queue
    /// kernel.
    pub count: u32,
    /// One-way latency of every inter-MAP boundary link — the
    /// conservative lookahead. Must be positive when `count > 1`.
    pub boundary_latency: SimDuration,
    /// Access routers per domain.
    pub ars_per_domain: u32,
    /// Fraction of hosts whose correspondent lives in another domain.
    pub remote_fraction: f64,
    /// Mean exponential dwell time between handovers.
    pub mean_residence: SimDuration,
}

impl Default for DomainsSpec {
    fn default() -> Self {
        DomainsSpec {
            count: 1,
            boundary_latency: SimDuration::from_millis(8),
            ars_per_domain: 4,
            remote_fraction: 0.2,
            mean_residence: SimDuration::from_secs(4),
        }
    }
}

/// The Fig 4.1 topology knobs a plan can turn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologySpec {
    /// Number of mobile hosts (overridden per point by a `hosts` axis).
    pub hosts: usize,
    /// Handover buffer capacity per access router, in packets.
    pub buffer_capacity: usize,
    /// Host movement pattern.
    pub movement: MovementPlan,
    /// PAR↔NAR wired link propagation delay.
    pub ar_link_delay: SimDuration,
    /// L2 black-out duration.
    pub l2_blackout: SimDuration,
    /// Host speed in m/s.
    pub speed: f64,
    /// Handover-storm stagger between hosts' walks.
    pub stagger: SimDuration,
    /// Multi-domain partitioning (`[topology.domains]`); defaults to a
    /// single domain, which every non-metro plan uses.
    pub domains: DomainsSpec,
    /// Vertical-handover overlay (`[topology.cellular]`): when present,
    /// the NAR side of the walk is a wide-area cellular sector instead of
    /// the second WLAN cell. `None` keeps the thesis topology.
    pub cellular: Option<CellularConfig>,
    /// Radio interfaces per host (`interfaces` key): 1 single-card, 2
    /// multi-homed (cross-technology handovers run make-before-break).
    pub interfaces: u8,
    /// L2 trigger source (`trigger` key): `"legacy"` geometry/hysteresis
    /// or `"mih"` 802.21-style link events.
    pub trigger: TriggerMode,
}

impl Default for TopologySpec {
    fn default() -> Self {
        let base = HmipConfig::default();
        TopologySpec {
            hosts: base.n_mhs,
            buffer_capacity: base.buffer_capacity,
            movement: base.movement,
            ar_link_delay: base.ar_link_delay,
            l2_blackout: base.l2_handoff_delay,
            speed: base.speed,
            stagger: base.storm_stagger,
            domains: DomainsSpec::default(),
            cellular: base.cellular,
            interfaces: base.interfaces,
            trigger: base.trigger,
        }
    }
}

/// The sweep axis: what varies across grid points.
#[derive(Debug, Clone, PartialEq)]
pub enum Axis {
    /// A single point per scheme, at the topology's host count.
    None,
    /// Injected loss probability on the AR link and both air interfaces
    /// (the chaos x-axis).
    Loss(Vec<f64>),
    /// Number of simultaneously-moving hosts (the storm x-axis).
    Hosts(Vec<usize>),
}

/// Which hosts a workload attaches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostSelector {
    /// One flow per host in the run.
    All,
    /// A single flow, to the given host index.
    One(usize),
}

/// How a workload assigns service classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassPlan {
    /// Every flow carries this class.
    Fixed(ServiceClass),
    /// Host `i` gets `FLOW_CLASSES[i % 3]` (the storm convention).
    RoundRobin,
}

/// One CBR workload: who receives it, its class, its shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Receiving host(s).
    pub hosts: HostSelector,
    /// Class assignment.
    pub class: ClassPlan,
    /// Packet size in bytes.
    pub packet_bytes: u32,
    /// Inter-packet interval.
    pub interval: SimDuration,
}

/// Every fault a plan can inject, all no-op by default.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Impairments on the PAR↔NAR wire (both directions).
    pub ar_link: FaultSpec,
    /// Impairments on both air interfaces.
    pub wireless: FaultSpec,
    /// Scheduled crash/restart on the PAR.
    pub par: NodeFaultSpec,
    /// Scheduled crash/restart on the NAR.
    pub nar: NodeFaultSpec,
    /// Scheduled power loss on mobile host 0.
    pub mh: NodeFaultSpec,
}

impl FaultPlan {
    /// `true` when no fault of any kind is configured.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.ar_link.is_noop()
            && self.wireless.is_noop()
            && self.par.is_noop()
            && self.nar.is_noop()
            && self.mh.is_noop()
    }
}

/// The run schedule: traffic window, horizon, telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSpec {
    /// When CBR sources start generating.
    pub traffic_start: SimTime,
    /// When CBR sources stop (well before the horizon, so the network
    /// quiesces and the post-run audits are meaningful).
    pub traffic_stop: SimTime,
    /// When the simulation ends.
    pub horizon: SimTime,
    /// Flight-recorder ring capacity; zero leaves telemetry off.
    pub telemetry_ring: usize,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            traffic_start: SimTime::from_millis(500),
            traffic_stop: SimTime::from_secs(13),
            horizon: SimTime::from_secs(20),
            telemetry_ring: 0,
        }
    }
}

/// A complete declarative scenario: everything the plan driver needs to
/// run a grid, render its artifact, and judge the outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPlan {
    /// The plan's name (reports and corpus listings).
    pub name: String,
    /// Base RNG seed; each axis point derives its own stream.
    pub seed: u64,
    /// Which artifact to render.
    pub report: ReportKind,
    /// Topology knobs.
    pub topology: TopologySpec,
    /// Protocol tunables (the scheme field is overridden per grid point
    /// by `schemes`).
    pub protocol: ProtocolConfig,
    /// The schemes to run at every axis point, in artifact row order.
    pub schemes: Vec<Scheme>,
    /// The sweep axis.
    pub axis: Axis,
    /// The CBR workloads, added in order.
    pub workloads: Vec<WorkloadSpec>,
    /// Fault injection.
    pub faults: FaultPlan,
    /// Run schedule.
    pub run: RunSpec,
    /// Post-quiesce invariants.
    pub expectations: Expectations,
}

impl ScenarioPlan {
    /// Rebases the plan onto a different seed. A byte-hash lock pinned
    /// for the original seed cannot hold under another one, so it is
    /// cleared when the seed actually changes.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        if seed != self.seed {
            self.seed = seed;
            self.expectations.artifact_fnv1a = None;
        }
        self
    }

    /// The smallest host count any grid point runs with — workload host
    /// indices must stay below this.
    #[must_use]
    pub fn min_hosts(&self) -> usize {
        match &self.axis {
            Axis::Hosts(ns) => ns.iter().copied().min().unwrap_or(self.topology.hosts),
            _ => self.topology.hosts,
        }
    }
}

// ---------------------------------------------------------------------
// Reference plans — the legacy drivers, as data
// ---------------------------------------------------------------------

/// The chaos sweep as a plan: hardened signaling, a ping-pong host under
/// three classified 128 kb/s flows, loss injected on every control-plane
/// path. Exactly [`crate::experiments::chaos_sweep`]'s configuration.
#[must_use]
pub fn reference_chaos() -> ScenarioPlan {
    let mut protocol = ProtocolConfig::proposed();
    protocol.buffer_request = 40;
    protocol.rtx = RetransmitConfig::hardened();
    ScenarioPlan {
        name: "chaos".to_owned(),
        seed: 2003,
        report: ReportKind::Chaos,
        topology: TopologySpec {
            hosts: 1,
            buffer_capacity: 40,
            movement: MovementPlan::PingPong,
            ..TopologySpec::default()
        },
        protocol,
        schemes: vec![Scheme::PROPOSED],
        axis: Axis::Loss(crate::experiments::CHAOS_LOSS_PROBS.to_vec()),
        workloads: FLOW_CLASSES
            .iter()
            .map(|&class| WorkloadSpec {
                hosts: HostSelector::One(0),
                class: ClassPlan::Fixed(class),
                packet_bytes: 160,
                interval: SimDuration::from_millis(10),
            })
            .collect(),
        faults: FaultPlan::default(),
        run: RunSpec {
            traffic_start: SimTime::from_millis(500),
            traffic_stop: SimTime::from_secs(30),
            horizon: SimTime::from_secs(45),
            telemetry_ring: 0,
        },
        expectations: Expectations::default(),
    }
}

/// The handover storm as a plan: staggered one-way walks, one 64 kb/s
/// flow per host with round-robin classes, soft-state lifetimes armed,
/// original FMIPv6 against the enhanced scheme. Exactly
/// [`crate::experiments::storm_sweep`]'s configuration.
#[must_use]
pub fn reference_storm() -> ScenarioPlan {
    let mut protocol = ProtocolConfig::with_scheme(Scheme::NarOnly);
    protocol.buffer_request = 12;
    protocol.host_route_lifetime = SimDuration::from_secs(2);
    protocol.dead_peer_timeout = SimDuration::from_secs(3);
    ScenarioPlan {
        name: "storm".to_owned(),
        seed: 2003,
        report: ReportKind::Storm,
        topology: TopologySpec {
            hosts: 4,
            buffer_capacity: 42,
            movement: MovementPlan::OneWay,
            stagger: SimDuration::from_millis(500),
            ..TopologySpec::default()
        },
        protocol,
        schemes: vec![Scheme::NarOnly, Scheme::Dual { classify: true }],
        axis: Axis::Hosts(crate::experiments::STORM_SIZES.to_vec()),
        workloads: vec![WorkloadSpec {
            hosts: HostSelector::All,
            class: ClassPlan::RoundRobin,
            packet_bytes: 160,
            interval: SimDuration::from_millis(20),
        }],
        faults: FaultPlan::default(),
        run: RunSpec::default(),
        expectations: Expectations {
            no_leaks: true,
            ..Expectations::default()
        },
    }
}

/// The storm timeline as a plan: the storm run at two sizes with the
/// full observability subsystem on, rendered as Chrome-trace JSON.
/// Exactly [`crate::experiments::storm_timeline`]'s configuration.
#[must_use]
pub fn reference_timeline() -> ScenarioPlan {
    let mut plan = reference_storm();
    plan.name = "timeline".to_owned();
    plan.report = ReportKind::Timeline;
    plan.axis = Axis::Hosts(crate::experiments::TIMELINE_SIZES.to_vec());
    plan.run.telemetry_ring = DEFAULT_TIMELINE_RING;
    plan
}

// ---------------------------------------------------------------------
// The grid engine
// ---------------------------------------------------------------------

/// One grid point, fully resolved: axis value, scheme and seed.
#[derive(Debug, Clone, Copy, PartialEq)]
struct GridPoint {
    loss: Option<f64>,
    hosts: usize,
    scheme: Scheme,
    seed: u64,
}

fn build_grid(plan: &ScenarioPlan) -> Vec<GridPoint> {
    let axis_points: Vec<(Option<f64>, usize)> = match &plan.axis {
        Axis::None => vec![(None, plan.topology.hosts)],
        Axis::Loss(ps) => ps.iter().map(|&p| (Some(p), plan.topology.hosts)).collect(),
        Axis::Hosts(ns) => ns.iter().map(|&n| (None, n)).collect(),
    };
    let mut grid = Vec::with_capacity(axis_points.len() * plan.schemes.len());
    for (axis_idx, &(loss, hosts)) in axis_points.iter().enumerate() {
        // Every scheme at the same axis point shares a seed, so the
        // schemes face an identical workload — the curves stay
        // comparable, exactly as in the hand-written sweeps.
        let seed = derive_seed(plan.seed, axis_idx as u64);
        for &scheme in &plan.schemes {
            grid.push(GridPoint {
                loss,
                hosts,
                scheme,
                seed,
            });
        }
    }
    grid
}

/// Everything one grid point measured, plus its audit for the
/// expectations engine.
#[derive(Debug, Clone)]
pub struct PointRun {
    /// Injected loss at this point (`Loss` axis only).
    pub loss: Option<f64>,
    /// Host count at this point.
    pub hosts: usize,
    /// Scheme this point ran.
    pub scheme: Scheme,
    /// Handovers that completed the predictive exchange.
    pub predictive: u64,
    /// Handovers that fell back to the reactive path.
    pub reactive: u64,
    /// Handover attempts still unresolved at the horizon.
    pub failed: u64,
    /// Mean LinkDown → MAP-binding-restored latency, in milliseconds.
    pub recovery_ms: f64,
    /// Per-class data drops (F1–F3), all reasons combined.
    pub class_drops: [u64; 3],
    /// Worst per-flow p99 end-to-end delay per class, in milliseconds.
    pub class_p99_ms: [f64; 3],
    /// Packets the fault layer discarded.
    pub fault_drops: u64,
    /// Control retransmissions spent.
    pub retransmissions: u64,
    /// Degradation-ladder steps taken.
    pub degradations: u64,
    /// Packets released by soft-state lifetime expiry.
    pub expired: u64,
    /// Packets reclaimed from dead or abandoned state.
    pub reclaimed: u64,
    /// Host routes the lifetime sweep expired unrefreshed.
    pub routes_expired: u64,
    /// Simulator events processed by this point.
    pub events: u64,
    /// The audit the expectations engine judges.
    pub audit: PointAudit,
    /// Metro-kernel extras (`report = "metro"` points only).
    pub metro: Option<crate::metro::MetroPoint>,
}

/// A finished plan run: the rendered artifact, the per-point metrics,
/// and the expectation report (empty means the plan passed).
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// The rendered artifact (CSV or Chrome-trace JSON).
    pub artifact: String,
    /// Per-point metrics, in grid order.
    pub points: Vec<PointRun>,
    /// Total simulator events across all points.
    pub events: u64,
    /// Every expectation violation, in evaluation order.
    pub report: FailureReport,
}

impl PlanOutcome {
    /// Returns the outcome unchanged when every expectation held.
    ///
    /// # Panics
    ///
    /// Panics with the structured report when any expectation was
    /// violated — the legacy sweeps' panic-on-violation contract.
    #[must_use]
    pub fn expect_clean(self) -> Self {
        assert!(
            self.report.is_empty(),
            "scenario plan expectations violated:\n{}",
            self.report.to_json()
        );
        self
    }
}

fn run_point(plan: &ScenarioPlan, gp: &GridPoint, pid: u64) -> (PointRun, Option<ChromeTrace>) {
    let mut protocol = plan.protocol;
    protocol.scheme = gp.scheme;
    let mut ar_link_fault = plan.faults.ar_link;
    let mut wireless_fault = plan.faults.wireless;
    if let Some(p) = gp.loss {
        ar_link_fault.loss = p;
        wireless_fault.loss = p;
    }
    let cfg = HmipConfig {
        protocol,
        n_mhs: gp.hosts,
        buffer_capacity: plan.topology.buffer_capacity,
        ar_link_delay: plan.topology.ar_link_delay,
        l2_handoff_delay: plan.topology.l2_blackout,
        movement: plan.topology.movement,
        speed: plan.topology.speed,
        seed: gp.seed,
        ar_link_fault,
        wireless_fault,
        par_fault: plan.faults.par,
        nar_fault: plan.faults.nar,
        mh_fault: plan.faults.mh,
        storm_stagger: plan.topology.stagger,
        cellular: plan.topology.cellular,
        interfaces: plan.topology.interfaces,
        trigger: plan.topology.trigger,
        ..HmipConfig::default()
    };
    let mut scenario = HmipScenario::build(cfg);
    if plan.run.telemetry_ring > 0 {
        scenario.enable_telemetry(plan.run.telemetry_ring);
    }
    let mut flows: Vec<(usize, FlowId)> = Vec::new();
    for w in &plan.workloads {
        let hosts: Vec<usize> = match w.hosts {
            HostSelector::All => (0..gp.hosts).collect(),
            HostSelector::One(i) => vec![i],
        };
        for h in hosts {
            let class = match w.class {
                ClassPlan::Fixed(c) => c,
                ClassPlan::RoundRobin => FLOW_CLASSES[h % 3],
            };
            let k = FLOW_CLASSES
                .iter()
                .position(|&c| c == class.effective())
                .unwrap_or(2);
            let flow = scenario.add_cbr_flow(h, class, w.packet_bytes, w.interval);
            flows.push((k, flow));
        }
    }
    scenario.set_traffic_window(plan.run.traffic_start, plan.run.traffic_stop);
    scenario.run_until(plan.run.horizon);

    // Flow metrics, read before finalize exactly as the legacy sweeps do.
    let mut class_drops = [0u64; 3];
    let mut class_p99_ms = [0f64; 3];
    for &(k, f) in &flows {
        class_drops[k] += scenario.flow_losses(f);
        let report =
            fh_traffic::FlowReport::from_sink(scenario.flow_sink(f), scenario.flow_sent(f));
        class_p99_ms[k] = class_p99_ms[k].max(report.p99_delay.as_millis_f64());
    }

    // Service-restoration latency: each LinkDown paired with the next
    // MAP BindingComplete on host 0's timeline.
    let recovery_ms = if gp.hosts > 0 {
        let log = &scenario.mh_agent(0).log;
        let mut gaps_ms = Vec::new();
        for (i, &(down, phase)) in log.iter().enumerate() {
            if phase != fh_core::HandoffPhase::LinkDown {
                continue;
            }
            if let Some(&(done, _)) = log[i + 1..]
                .iter()
                .find(|(_, q)| *q == fh_core::HandoffPhase::BindingComplete)
            {
                gaps_ms.push((done.as_secs_f64() - down.as_secs_f64()) * 1e3);
            }
        }
        if gaps_ms.is_empty() {
            0.0
        } else {
            gaps_ms.iter().sum::<f64>() / gaps_ms.len() as f64
        }
    } else {
        0.0
    };

    let failed = scenario.finalize();
    let leak = scenario.leak_report();
    let outcomes = scenario.outcomes();
    let trace = if plan.report == ReportKind::Timeline {
        let mut fragment = ChromeTrace::new();
        scenario.chrome_trace_into(&mut fragment, pid);
        Some(fragment)
    } else {
        None
    };
    let stats = &scenario.sim.shared.stats;
    let audit = PointAudit {
        conservation_violations: stats
            .conservation_violations()
            .into_iter()
            .map(|(flow, a)| format!("{flow:?}: {a:?}"))
            .collect(),
        leak_clean: leak.is_clean(),
        leak_detail: format!("{leak:?}"),
        recorder_overwritten: stats.trace.overwritten(),
        telemetry_enabled: plan.run.telemetry_ring > 0,
        predictive: outcomes[0].1,
        reactive: outcomes[1].1,
        failed,
        class_drops,
        class_p99_ms,
        peak_bytes_parked: scenario.peak_bytes_parked(),
        wedged_sessions: scenario.wedged_sessions(),
        shed_order_violations: stats.counter("ar.shed_order_violations"),
    };
    let point = PointRun {
        loss: gp.loss,
        hosts: gp.hosts,
        scheme: gp.scheme,
        predictive: outcomes[0].1,
        reactive: outcomes[1].1,
        failed,
        recovery_ms,
        class_drops,
        class_p99_ms,
        fault_drops: stats.drops(DropReason::FaultInjected),
        retransmissions: stats.counter("mh.retransmissions") + stats.counter("ar.retransmissions"),
        degradations: stats.counter("mh.degradations") + stats.counter("ar.hi_exhausted"),
        expired: stats.drops(DropReason::Expired),
        reclaimed: stats.drops(DropReason::Reclaimed),
        routes_expired: stats.counter("ar.routes_expired"),
        events: scenario.sim.events_processed(),
        audit,
        metro: None,
    };
    (point, trace)
}

/// Runs a plan's whole grid across `threads` workers and evaluates its
/// expectations. Deterministic: the artifact and the report are
/// byte-identical at any thread count.
#[must_use]
pub fn run_plan(plan: &ScenarioPlan, threads: usize) -> PlanOutcome {
    let grid = build_grid(plan);
    let runs: Vec<(PointRun, Option<ChromeTrace>)> = if plan.report == ReportKind::Metro {
        // Metro points parallelize *inside* the run (one worker per
        // domain shard), so the grid itself stays sequential — nesting
        // parallel_map around the epoch executor would oversubscribe.
        grid.iter()
            .map(|gp| {
                (
                    crate::metro::run_metro_point(plan, gp.hosts, gp.scheme, gp.seed, threads),
                    None,
                )
            })
            .collect()
    } else {
        parallel_map(threads, &grid, |pid, gp| run_point(plan, gp, pid as u64))
    };
    let mut report = FailureReport::new(plan.name.clone());
    // Thread count is deliberately NOT part of the context: the same
    // violations must render the same bytes at any worker count.
    report.context("seed", plan.seed.to_string());
    let mut points = Vec::with_capacity(runs.len());
    let mut traces = Vec::new();
    let mut events = 0u64;
    for (i, (point, trace)) in runs.into_iter().enumerate() {
        let subject = match point.loss {
            Some(p) => format!("point[{i}] loss={p} scheme={}", point.scheme.label()),
            None => format!(
                "point[{i}] hosts={} scheme={}",
                point.hosts,
                point.scheme.label()
            ),
        };
        report
            .entries
            .extend(plan.expectations.check_point(&subject, &point.audit));
        events += point.events;
        if let Some(t) = trace {
            traces.push(t);
        }
        points.push(point);
    }
    let artifact = render_artifact(plan, &points, traces);
    if let Some(entry) = plan.expectations.check_artifact(&artifact) {
        report.entries.push(entry);
    }
    PlanOutcome {
        artifact,
        points,
        events,
        report,
    }
}

// ---------------------------------------------------------------------
// Artifact renderers
// ---------------------------------------------------------------------

fn render_artifact(plan: &ScenarioPlan, points: &[PointRun], traces: Vec<ChromeTrace>) -> String {
    match plan.report {
        ReportKind::Chaos => render_chaos(points),
        ReportKind::Storm => render_storm(points),
        ReportKind::Timeline => {
            // Fragments merge in grid order, so the JSON is byte-identical
            // at any thread count.
            let mut trace = ChromeTrace::new();
            for fragment in traces {
                trace.append(fragment);
            }
            trace.finish()
        }
        ReportKind::Points => render_points(plan, points),
        ReportKind::Metro => crate::metro::render_metro(points),
    }
}

fn render_chaos(points: &[PointRun]) -> String {
    let mut table = CsvTable::new(&[
        "loss",
        "predictive",
        "reactive",
        "failed",
        "recovery_ms",
        "f1_drops",
        "f2_drops",
        "f3_drops",
        "fault_drops",
        "retransmissions",
        "degradations",
    ]);
    for p in points {
        table.row(&[
            p.loss.unwrap_or(0.0).into(),
            p.predictive.into(),
            p.reactive.into(),
            p.failed.into(),
            Cell::Fixed(p.recovery_ms, 3),
            p.class_drops[0].into(),
            p.class_drops[1].into(),
            p.class_drops[2].into(),
            p.fault_drops.into(),
            p.retransmissions.into(),
            p.degradations.into(),
        ]);
    }
    table.finish()
}

fn render_storm(points: &[PointRun]) -> String {
    let mut table = CsvTable::new(&[
        "mhs",
        "scheme",
        "f1_drops",
        "f2_drops",
        "f3_drops",
        "f1_p99_ms",
        "f2_p99_ms",
        "f3_p99_ms",
        "expired",
        "reclaimed",
        "failed",
        "routes_expired",
    ]);
    for p in points {
        let scheme = p.scheme.label().to_lowercase();
        table.row(&[
            p.hosts.into(),
            scheme.as_str().into(),
            p.class_drops[0].into(),
            p.class_drops[1].into(),
            p.class_drops[2].into(),
            Cell::Fixed(p.class_p99_ms[0], 3),
            Cell::Fixed(p.class_p99_ms[1], 3),
            Cell::Fixed(p.class_p99_ms[2], 3),
            p.expired.into(),
            p.reclaimed.into(),
            p.failed.into(),
            p.routes_expired.into(),
        ]);
    }
    table.finish()
}

fn render_points(plan: &ScenarioPlan, points: &[PointRun]) -> String {
    let mut table = CsvTable::new(&[
        "x",
        "scheme",
        "predictive",
        "reactive",
        "failed",
        "recovery_ms",
        "f1_drops",
        "f2_drops",
        "f3_drops",
        "f1_p99_ms",
        "f2_p99_ms",
        "f3_p99_ms",
        "fault_drops",
        "retransmissions",
        "degradations",
        "expired",
        "reclaimed",
        "routes_expired",
    ]);
    for p in points {
        let x: Cell<'_> = match plan.axis {
            Axis::Loss(_) => p.loss.unwrap_or(0.0).into(),
            _ => p.hosts.into(),
        };
        let scheme = p.scheme.label().to_lowercase();
        table.row(&[
            x,
            scheme.as_str().into(),
            p.predictive.into(),
            p.reactive.into(),
            p.failed.into(),
            Cell::Fixed(p.recovery_ms, 3),
            p.class_drops[0].into(),
            p.class_drops[1].into(),
            p.class_drops[2].into(),
            Cell::Fixed(p.class_p99_ms[0], 3),
            Cell::Fixed(p.class_p99_ms[1], 3),
            Cell::Fixed(p.class_p99_ms[2], 3),
            p.fault_drops.into(),
            p.retransmissions.into(),
            p.degradations.into(),
            p.expired.into(),
            p.reclaimed.into(),
            p.routes_expired.into(),
        ]);
    }
    table.finish()
}

// ---------------------------------------------------------------------
// TOML loading
// ---------------------------------------------------------------------

use crate::toml::{Entry, Value};

const KNOWN_TABLES: [&str; 13] = [
    "plan",
    "topology",
    "topology.domains",
    "topology.cellular",
    "protocol",
    "pressure",
    "matrix",
    "faults",
    "faults.par",
    "faults.nar",
    "faults.mh",
    "run",
    "expectations",
];

struct Ctx<'a> {
    file: &'a str,
    table: &'a str,
}

impl Ctx<'_> {
    fn err(&self, field: &str, message: impl Into<String>) -> PlanError {
        PlanError::at_field(self.file, self.table, field, message)
    }

    fn type_err(&self, e: &Entry, expected: &str) -> PlanError {
        self.err(
            &e.key,
            format!("expected {expected}, got {}", e.value.type_name()),
        )
    }

    fn str<'v>(&self, e: &'v Entry) -> Result<&'v str, PlanError> {
        match &e.value {
            Value::Str(s) => Ok(s),
            _ => Err(self.type_err(e, "a string")),
        }
    }

    fn bool(&self, e: &Entry) -> Result<bool, PlanError> {
        match e.value {
            Value::Bool(b) => Ok(b),
            _ => Err(self.type_err(e, "a boolean")),
        }
    }

    fn int(&self, e: &Entry) -> Result<i64, PlanError> {
        match e.value {
            Value::Int(i) => Ok(i),
            _ => Err(self.type_err(e, "an integer")),
        }
    }

    fn usize(&self, e: &Entry) -> Result<usize, PlanError> {
        let i = self.int(e)?;
        usize::try_from(i).map_err(|_| self.err(&e.key, format!("must be non-negative, got {i}")))
    }

    fn u32(&self, e: &Entry) -> Result<u32, PlanError> {
        let i = self.int(e)?;
        u32::try_from(i).map_err(|_| self.err(&e.key, format!("out of range, got {i}")))
    }

    fn u64(&self, e: &Entry) -> Result<u64, PlanError> {
        let i = self.int(e)?;
        u64::try_from(i).map_err(|_| self.err(&e.key, format!("must be non-negative, got {i}")))
    }

    fn f64(&self, e: &Entry) -> Result<f64, PlanError> {
        match e.value {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            _ => Err(self.type_err(e, "a number")),
        }
    }

    fn prob(&self, e: &Entry) -> Result<f64, PlanError> {
        let p = self.f64(e)?;
        if (0.0..=1.0).contains(&p) {
            Ok(p)
        } else {
            Err(self.err(&e.key, format!("must be a probability in [0, 1], got {p}")))
        }
    }

    /// A duration given in milliseconds (integer or float, non-negative).
    fn ms(&self, e: &Entry) -> Result<SimDuration, PlanError> {
        let ms = self.f64(e)?;
        if ms < 0.0 || !ms.is_finite() {
            return Err(self.err(&e.key, format!("must be a non-negative duration, got {ms}")));
        }
        Ok(SimDuration::from_nanos((ms * 1e6).round() as u64))
    }

    /// A duration given in microseconds.
    fn us(&self, e: &Entry) -> Result<SimDuration, PlanError> {
        let us = self.f64(e)?;
        if us < 0.0 || !us.is_finite() {
            return Err(self.err(&e.key, format!("must be a non-negative duration, got {us}")));
        }
        Ok(SimDuration::from_nanos((us * 1e3).round() as u64))
    }

    fn floats(&self, e: &Entry) -> Result<Vec<f64>, PlanError> {
        let Value::Array(items) = &e.value else {
            return Err(self.type_err(e, "an array of numbers"));
        };
        items
            .iter()
            .map(|v| match v {
                Value::Float(f) => Ok(*f),
                Value::Int(i) => Ok(*i as f64),
                other => Err(self.err(
                    &e.key,
                    format!("expected numbers, found a {}", other.type_name()),
                )),
            })
            .collect()
    }

    fn unknown_key(&self, e: &Entry, valid: &[&str]) -> PlanError {
        self.err(
            &e.key,
            format!("unknown key (valid keys: {})", valid.join(", ")),
        )
    }
}

fn check_tables(doc: &crate::toml::Doc, file: &str) -> Result<(), PlanError> {
    if let Some(first) = doc.root.entries.first() {
        return Err(PlanError::at_line(
            file,
            first.line,
            format!(
                "key `{}` outside any table (every key belongs to a [table])",
                first.key
            ),
        ));
    }
    for (name, table) in &doc.tables {
        if name == "workload" {
            return Err(PlanError::at_line(
                file,
                table.line,
                "workloads are an array of tables: write `[[workload]]`, not `[workload]`",
            ));
        }
        if !KNOWN_TABLES.contains(&name.as_str()) {
            return Err(PlanError::at_line(
                file,
                table.line,
                format!(
                    "unknown table `[{name}]` (valid tables: {}, plus [[workload]])",
                    KNOWN_TABLES.join(", ")
                ),
            ));
        }
    }
    for (name, table) in &doc.arrays {
        if name != "workload" {
            return Err(PlanError::at_line(
                file,
                table.line,
                format!("unknown array of tables `[[{name}]]` (only [[workload]] is supported)"),
            ));
        }
    }
    Ok(())
}

#[allow(clippy::too_many_lines)]
impl ScenarioPlan {
    /// Loads a plan from its TOML source. `file` is the display name
    /// used in error messages.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] naming the file, table and field for any
    /// syntax error, unknown table/key, type mismatch, out-of-range
    /// value or cross-field inconsistency. Never panics on malformed
    /// input.
    pub fn from_toml(input: &str, file: &str) -> Result<Self, PlanError> {
        let doc = crate::toml::parse(input, file)?;
        check_tables(&doc, file)?;

        // [plan]
        let mut name = None;
        let mut seed = 2003u64;
        let mut report = ReportKind::Points;
        if let Some(t) = doc.table("plan") {
            let c = Ctx {
                file,
                table: "plan",
            };
            for e in &t.entries {
                match e.key.as_str() {
                    "name" => name = Some(c.str(e)?.to_owned()),
                    "seed" => seed = c.u64(e)?,
                    "report" => {
                        let s = c.str(e)?;
                        report = match s {
                            "chaos" => ReportKind::Chaos,
                            "storm" => ReportKind::Storm,
                            "timeline" => ReportKind::Timeline,
                            "points" => ReportKind::Points,
                            "metro" => ReportKind::Metro,
                            other => {
                                return Err(c.err(
                                    "report",
                                    format!(
                                        "unknown report `{other}` (expected chaos, storm, \
                                         timeline, points or metro)"
                                    ),
                                ))
                            }
                        };
                    }
                    _ => return Err(c.unknown_key(e, &["name", "seed", "report"])),
                }
            }
        }
        let name = name
            .ok_or_else(|| PlanError::at_field(file, "plan", "name", "required key is missing"))?;

        // [topology]
        let mut topology = TopologySpec::default();
        if let Some(t) = doc.table("topology") {
            let c = Ctx {
                file,
                table: "topology",
            };
            for e in &t.entries {
                match e.key.as_str() {
                    "hosts" => {
                        topology.hosts = c.usize(e)?;
                        if topology.hosts == 0 {
                            return Err(c.err("hosts", "must be at least 1"));
                        }
                    }
                    "buffer_capacity" => topology.buffer_capacity = c.usize(e)?,
                    "movement" => {
                        let s = c.str(e)?;
                        topology.movement = match s {
                            "one-way" => MovementPlan::OneWay,
                            "ping-pong" => MovementPlan::PingPong,
                            "parked" => MovementPlan::Parked,
                            "crossing" => MovementPlan::Crossing,
                            other => {
                                return Err(c.err(
                                    "movement",
                                    format!(
                                        "unknown movement `{other}` (expected one-way, \
                                         ping-pong, parked or crossing)"
                                    ),
                                ))
                            }
                        };
                    }
                    "ar_link_delay_ms" => topology.ar_link_delay = c.ms(e)?,
                    "l2_blackout_ms" => topology.l2_blackout = c.ms(e)?,
                    "speed_mps" => {
                        topology.speed = c.f64(e)?;
                        if topology.speed <= 0.0 || !topology.speed.is_finite() {
                            return Err(c.err("speed_mps", "must be positive"));
                        }
                    }
                    "stagger_ms" => topology.stagger = c.ms(e)?,
                    "interfaces" => {
                        let n = c.usize(e)?;
                        if !(1..=2).contains(&n) {
                            return Err(
                                c.err("interfaces", "must be 1 (single card) or 2 (multi-homed)")
                            );
                        }
                        topology.interfaces = n as u8;
                    }
                    "trigger" => {
                        let s = c.str(e)?;
                        topology.trigger = match s {
                            "legacy" => TriggerMode::Legacy,
                            "mih" => TriggerMode::Mih,
                            other => {
                                return Err(c.err(
                                    "trigger",
                                    format!("unknown trigger `{other}` (expected legacy or mih)"),
                                ))
                            }
                        };
                    }
                    _ => {
                        return Err(c.unknown_key(
                            e,
                            &[
                                "hosts",
                                "buffer_capacity",
                                "movement",
                                "ar_link_delay_ms",
                                "l2_blackout_ms",
                                "speed_mps",
                                "stagger_ms",
                                "interfaces",
                                "trigger",
                            ],
                        ))
                    }
                }
            }
        }

        // [topology.domains] — the metro-kernel partitioning.
        if let Some(t) = doc.table("topology.domains") {
            let c = Ctx {
                file,
                table: "topology.domains",
            };
            let d = &mut topology.domains;
            for e in &t.entries {
                match e.key.as_str() {
                    "count" => {
                        d.count = c.u32(e)?;
                        if d.count == 0 {
                            return Err(c.err("count", "must be at least 1"));
                        }
                    }
                    "boundary_latency_ms" => d.boundary_latency = c.ms(e)?,
                    "ars_per_domain" => {
                        d.ars_per_domain = c.u32(e)?;
                        if d.ars_per_domain == 0 {
                            return Err(c.err("ars_per_domain", "must be at least 1"));
                        }
                    }
                    "remote_fraction" => d.remote_fraction = c.prob(e)?,
                    "mean_residence_ms" => {
                        d.mean_residence = c.ms(e)?;
                        if d.mean_residence.is_zero() {
                            return Err(c.err("mean_residence_ms", "must be positive"));
                        }
                    }
                    _ => {
                        return Err(c.unknown_key(
                            e,
                            &[
                                "count",
                                "boundary_latency_ms",
                                "ars_per_domain",
                                "remote_fraction",
                                "mean_residence_ms",
                            ],
                        ))
                    }
                }
            }
            // The boundary latency IS the conservative lookahead: a
            // zero-latency boundary would let a cross-domain packet
            // arrive inside the epoch that sent it.
            if d.count > 1 && d.boundary_latency.is_zero() {
                return Err(c.err(
                    "boundary_latency_ms",
                    "lookahead must be > 0 when domains > 1",
                ));
            }
            if d.count > 1 && report != ReportKind::Metro {
                return Err(c.err(
                    "count",
                    format!(
                        "multi-domain topologies run on the metro kernel: \
                         set report = \"metro\" (this plan says `{}`)",
                        report.name()
                    ),
                ));
            }
        }

        // [topology.cellular] — the vertical-handover overlay. The table's
        // presence (even empty) turns the NAR cell into a wide-area sector.
        if let Some(t) = doc.table("topology.cellular") {
            let c = Ctx {
                file,
                table: "topology.cellular",
            };
            let mut cell = CellularConfig::default();
            for e in &t.entries {
                match e.key.as_str() {
                    "bandwidth_bps" => {
                        cell.spec.bandwidth_bps = c.u64(e)?;
                        if cell.spec.bandwidth_bps == 0 {
                            return Err(c.err("bandwidth_bps", "must be positive"));
                        }
                    }
                    "delay_ms" => cell.spec.delay = c.ms(e)?,
                    "radius_m" => {
                        cell.radius = c.f64(e)?;
                        if cell.radius <= 0.0 || !cell.radius.is_finite() {
                            return Err(c.err("radius_m", "must be positive"));
                        }
                    }
                    _ => return Err(c.unknown_key(e, &["bandwidth_bps", "delay_ms", "radius_m"])),
                }
            }
            if topology.domains.count > 1 {
                return Err(c.err(
                    "radius_m",
                    "the cellular overlay runs on the Fig 4.1 kernel; \
                     it cannot combine with [topology.domains]",
                ));
            }
            topology.cellular = Some(cell);
        }

        // [protocol]
        let mut protocol = ProtocolConfig::default();
        if let Some(t) = doc.table("protocol") {
            let c = Ctx {
                file,
                table: "protocol",
            };
            for e in &t.entries {
                match e.key.as_str() {
                    "scheme" => {
                        protocol.scheme = Scheme::from_str(c.str(e)?)
                            .map_err(|err| c.err("scheme", err.to_string()))?;
                    }
                    "buffer_request" => protocol.buffer_request = c.u32(e)?,
                    "threshold_a" => protocol.threshold_a = c.u32(e)?,
                    "flush_spacing_us" => protocol.flush_spacing = c.us(e)?,
                    "retransmit" => {
                        protocol.rtx = RetransmitConfig::from_str(c.str(e)?)
                            .map_err(|err| c.err("retransmit", err.to_string()))?;
                    }
                    "host_route_lifetime_ms" => protocol.host_route_lifetime = c.ms(e)?,
                    "dead_peer_timeout_ms" => protocol.dead_peer_timeout = c.ms(e)?,
                    _ => {
                        return Err(c.unknown_key(
                            e,
                            &[
                                "scheme",
                                "buffer_request",
                                "threshold_a",
                                "flush_spacing_us",
                                "retransmit",
                                "host_route_lifetime_ms",
                                "dead_peer_timeout_ms",
                            ],
                        ))
                    }
                }
            }
        }

        // [pressure] — the overload-survival knobs, everything off by
        // default (zero budget disarms byte accounting, zero deadline
        // disarms the watchdog).
        if let Some(t) = doc.table("pressure") {
            let c = Ctx {
                file,
                table: "pressure",
            };
            for e in &t.entries {
                match e.key.as_str() {
                    "byte_budget" => protocol.pressure.byte_budget = c.usize(e)?,
                    "high_watermark_pct" | "low_watermark_pct" => {
                        let i = c.int(e)?;
                        if !(1..=100).contains(&i) {
                            return Err(c.err(
                                &e.key,
                                format!("must be a percentage in [1, 100], got {i}"),
                            ));
                        }
                        if e.key == "high_watermark_pct" {
                            protocol.pressure.high_watermark_pct = i as u8;
                        } else {
                            protocol.pressure.low_watermark_pct = i as u8;
                        }
                    }
                    "watchdog_deadline_ms" => {
                        let d = c.ms(e)?;
                        protocol.pressure.watchdog_deadline =
                            if d.is_zero() { SimDuration::MAX } else { d };
                    }
                    _ => {
                        return Err(c.unknown_key(
                            e,
                            &[
                                "byte_budget",
                                "high_watermark_pct",
                                "low_watermark_pct",
                                "watchdog_deadline_ms",
                            ],
                        ))
                    }
                }
            }
            if protocol.pressure.low_watermark_pct > protocol.pressure.high_watermark_pct {
                return Err(c.err(
                    "low_watermark_pct",
                    format!(
                        "low watermark {}% above high watermark {}%",
                        protocol.pressure.low_watermark_pct, protocol.pressure.high_watermark_pct
                    ),
                ));
            }
        }

        // [matrix]
        let mut axis = Axis::None;
        let mut schemes = vec![protocol.scheme];
        if let Some(t) = doc.table("matrix") {
            let c = Ctx {
                file,
                table: "matrix",
            };
            let mut axis_name: Option<String> = None;
            let mut values: Option<&Entry> = None;
            for e in &t.entries {
                match e.key.as_str() {
                    "axis" => axis_name = Some(c.str(e)?.to_owned()),
                    "values" => values = Some(e),
                    "schemes" => {
                        let Value::Array(items) = &e.value else {
                            return Err(c.type_err(e, "an array of scheme names"));
                        };
                        if items.is_empty() {
                            return Err(c.err("schemes", "must not be empty"));
                        }
                        let mut parsed = Vec::with_capacity(items.len());
                        for v in items {
                            let Value::Str(s) = v else {
                                return Err(c.err(
                                    "schemes",
                                    format!("expected strings, found a {}", v.type_name()),
                                ));
                            };
                            let scheme = Scheme::from_str(s)
                                .map_err(|err| c.err("schemes", err.to_string()))?;
                            if parsed.contains(&scheme) {
                                return Err(c.err(
                                    "schemes",
                                    format!("scheme `{}` listed twice", scheme.label()),
                                ));
                            }
                            parsed.push(scheme);
                        }
                        schemes = parsed;
                    }
                    _ => return Err(c.unknown_key(e, &["axis", "values", "schemes"])),
                }
            }
            match (axis_name.as_deref(), values) {
                (None, None) => {}
                (None, Some(_)) => {
                    return Err(c.err("values", "`values` needs an `axis` (loss or hosts)"))
                }
                (Some(_), None) => return Err(c.err("axis", "an axis needs `values` to sweep")),
                (Some("loss"), Some(e)) => {
                    let probs = c.floats(e)?;
                    if probs.is_empty() {
                        return Err(c.err("values", "must not be empty"));
                    }
                    for &p in &probs {
                        if !(0.0..=1.0).contains(&p) {
                            return Err(c.err(
                                "values",
                                format!("loss must be a probability in [0, 1], got {p}"),
                            ));
                        }
                    }
                    axis = Axis::Loss(probs);
                }
                (Some("hosts"), Some(e)) => {
                    let Value::Array(items) = &e.value else {
                        return Err(c.type_err(e, "an array of host counts"));
                    };
                    if items.is_empty() {
                        return Err(c.err("values", "must not be empty"));
                    }
                    let mut ns = Vec::with_capacity(items.len());
                    for v in items {
                        let Value::Int(i) = v else {
                            return Err(c.err(
                                "values",
                                format!("expected integers, found a {}", v.type_name()),
                            ));
                        };
                        if *i < 1 {
                            return Err(c.err(
                                "values",
                                format!("host counts must be at least 1, got {i}"),
                            ));
                        }
                        ns.push(*i as usize);
                    }
                    axis = Axis::Hosts(ns);
                }
                (Some(other), Some(_)) => {
                    return Err(c.err(
                        "axis",
                        format!("unknown axis `{other}` (expected loss or hosts)"),
                    ))
                }
            }
        }

        // [faults] and its node sub-tables.
        let mut faults = FaultPlan::default();
        if let Some(t) = doc.table("faults") {
            let c = Ctx {
                file,
                table: "faults",
            };
            for e in &t.entries {
                match e.key.as_str() {
                    "ar_link_loss" => faults.ar_link.loss = c.prob(e)?,
                    "ar_link_jitter_us" => faults.ar_link.jitter = c.us(e)?,
                    "wireless_loss" => faults.wireless.loss = c.prob(e)?,
                    "wireless_jitter_us" => faults.wireless.jitter = c.us(e)?,
                    "wireless_duplicate" => faults.wireless.duplicate = c.prob(e)?,
                    "wireless_burst" => {
                        let ps = c.floats(e)?;
                        let [g2b, b2g, lg, lb] = ps.as_slice() else {
                            return Err(c.err(
                                "wireless_burst",
                                format!(
                                    "expected 4 probabilities [p_good_to_bad, p_bad_to_good, \
                                     loss_good, loss_bad], got {}",
                                    ps.len()
                                ),
                            ));
                        };
                        faults.wireless.burst = Some(GilbertElliott {
                            p_good_to_bad: *g2b,
                            p_bad_to_good: *b2g,
                            loss_good: *lg,
                            loss_bad: *lb,
                        });
                    }
                    _ => {
                        return Err(c.unknown_key(
                            e,
                            &[
                                "ar_link_loss",
                                "ar_link_jitter_us",
                                "wireless_loss",
                                "wireless_jitter_us",
                                "wireless_duplicate",
                                "wireless_burst",
                            ],
                        ))
                    }
                }
            }
            faults.ar_link = faults
                .ar_link
                .validated()
                .map_err(|m| PlanError::at_field(file, "faults", "ar_link", m))?;
            faults.wireless = faults
                .wireless
                .validated()
                .map_err(|m| PlanError::at_field(file, "faults", "wireless", m))?;
        }
        for (table_name, router) in [
            ("faults.par", true),
            ("faults.nar", true),
            ("faults.mh", false),
        ] {
            let Some(t) = doc.table(table_name) else {
                continue;
            };
            let c = Ctx {
                file,
                table: table_name,
            };
            let mut spec = NodeFaultSpec::default();
            for e in &t.entries {
                match (e.key.as_str(), router) {
                    ("crash_at_ms", true) => {
                        spec.crash_at = Some(SimTime::ZERO + c.ms(e)?);
                    }
                    ("restart_after_ms", true) => spec.restart_after = Some(c.ms(e)?),
                    ("power_off_at_ms", false) => {
                        spec.power_off_at = Some(SimTime::ZERO + c.ms(e)?);
                    }
                    _ => {
                        let valid: &[&str] = if router {
                            &["crash_at_ms", "restart_after_ms"]
                        } else {
                            &["power_off_at_ms"]
                        };
                        return Err(c.unknown_key(e, valid));
                    }
                }
            }
            if spec.restart_after.is_some() && spec.crash_at.is_none() {
                return Err(c.err("restart_after_ms", "`restart_after_ms` needs `crash_at_ms`"));
            }
            match table_name {
                "faults.par" => faults.par = spec,
                "faults.nar" => faults.nar = spec,
                _ => faults.mh = spec,
            }
        }

        // [[workload]]
        let mut workloads = Vec::new();
        for t in doc.array_of("workload") {
            let c = Ctx {
                file,
                table: "workload",
            };
            let mut hosts = HostSelector::All;
            let mut class = ClassPlan::Fixed(ServiceClass::Unspecified);
            let mut packet_bytes = 160u32;
            let mut interval_ms: Option<&Entry> = None;
            let mut kbps: Option<&Entry> = None;
            for e in &t.entries {
                match e.key.as_str() {
                    "host" => {
                        hosts = match &e.value {
                            Value::Str(s) if s == "all" => HostSelector::All,
                            Value::Int(i) if *i >= 0 => HostSelector::One(*i as usize),
                            Value::Int(i) => {
                                return Err(c.err("host", format!("must be non-negative, got {i}")))
                            }
                            _ => {
                                return Err(c.err(
                                    "host",
                                    format!(
                                        "expected a host index or \"all\", got a {}",
                                        e.value.type_name()
                                    ),
                                ))
                            }
                        };
                    }
                    "class" => {
                        let s = c.str(e)?;
                        class = if s.eq_ignore_ascii_case("round-robin") {
                            ClassPlan::RoundRobin
                        } else {
                            ClassPlan::Fixed(
                                ServiceClass::from_str(s)
                                    .map_err(|err| c.err("class", err.to_string()))?,
                            )
                        };
                    }
                    "packet_bytes" => {
                        packet_bytes = c.u32(e)?;
                        if packet_bytes == 0 {
                            return Err(c.err("packet_bytes", "must be at least 1"));
                        }
                    }
                    "interval_ms" => interval_ms = Some(e),
                    "kbps" => kbps = Some(e),
                    _ => {
                        return Err(c.unknown_key(
                            e,
                            &["host", "class", "packet_bytes", "interval_ms", "kbps"],
                        ))
                    }
                }
            }
            let interval = match (interval_ms, kbps) {
                (Some(e), None) => {
                    let d = c.ms(e)?;
                    if d == SimDuration::ZERO {
                        return Err(c.err("interval_ms", "must be positive"));
                    }
                    d
                }
                (None, Some(e)) => {
                    let rate = c.f64(e)?;
                    if rate <= 0.0 || !rate.is_finite() {
                        return Err(c.err("kbps", "must be positive"));
                    }
                    SimDuration::from_secs_f64(f64::from(packet_bytes) * 8.0 / (rate * 1000.0))
                }
                (Some(_), Some(_)) => {
                    return Err(c.err("kbps", "give either `interval_ms` or `kbps`, not both"))
                }
                (None, None) => {
                    return Err(c.err("interval_ms", "a workload needs `interval_ms` or `kbps`"))
                }
            };
            workloads.push(WorkloadSpec {
                hosts,
                class,
                packet_bytes,
                interval,
            });
        }

        // [run]
        let mut run = RunSpec::default();
        if report == ReportKind::Timeline {
            run.telemetry_ring = DEFAULT_TIMELINE_RING;
        }
        if let Some(t) = doc.table("run") {
            let c = Ctx { file, table: "run" };
            for e in &t.entries {
                match e.key.as_str() {
                    "traffic_start_ms" => run.traffic_start = SimTime::ZERO + c.ms(e)?,
                    "traffic_stop_ms" => run.traffic_stop = SimTime::ZERO + c.ms(e)?,
                    "horizon_ms" => run.horizon = SimTime::ZERO + c.ms(e)?,
                    "telemetry_ring" => run.telemetry_ring = c.usize(e)?,
                    _ => {
                        return Err(c.unknown_key(
                            e,
                            &[
                                "traffic_start_ms",
                                "traffic_stop_ms",
                                "horizon_ms",
                                "telemetry_ring",
                            ],
                        ))
                    }
                }
            }
        }
        if run.traffic_start >= run.traffic_stop {
            return Err(PlanError::at_field(
                file,
                "run",
                "traffic_stop_ms",
                format!(
                    "traffic window is empty: start {:?} >= stop {:?}",
                    run.traffic_start, run.traffic_stop
                ),
            ));
        }
        if run.traffic_stop > run.horizon {
            return Err(PlanError::at_field(
                file,
                "run",
                "horizon_ms",
                format!(
                    "horizon {:?} ends before traffic stops at {:?}",
                    run.horizon, run.traffic_stop
                ),
            ));
        }

        // [expectations]
        let mut expectations = Expectations::default();
        if let Some(t) = doc.table("expectations") {
            let c = Ctx {
                file,
                table: "expectations",
            };
            for e in &t.entries {
                match e.key.as_str() {
                    "conservation" => expectations.conservation = c.bool(e)?,
                    "no_leaks" => expectations.no_leaks = c.bool(e)?,
                    "recorder_clean" => expectations.recorder_clean = c.bool(e)?,
                    "max_failed_ratio" => {
                        expectations.max_failed_ratio = Some(c.prob(e)?);
                    }
                    "class_drop_max" => {
                        let Value::Array(items) = &e.value else {
                            return Err(c.type_err(e, "an array of 3 integers"));
                        };
                        let mut bounds = [0u64; 3];
                        if items.len() != 3 {
                            return Err(c.err(
                                "class_drop_max",
                                format!("expected 3 per-class bounds, got {}", items.len()),
                            ));
                        }
                        for (k, v) in items.iter().enumerate() {
                            let Value::Int(i) = v else {
                                return Err(c.err(
                                    "class_drop_max",
                                    format!("expected integers, found a {}", v.type_name()),
                                ));
                            };
                            bounds[k] = u64::try_from(*i).map_err(|_| {
                                c.err("class_drop_max", format!("must be non-negative, got {i}"))
                            })?;
                        }
                        expectations.class_drop_max = Some(bounds);
                    }
                    "class_p99_max_ms" => {
                        let ps = c.floats(e)?;
                        let [a, b, d] = ps.as_slice() else {
                            return Err(c.err(
                                "class_p99_max_ms",
                                format!("expected 3 per-class bounds, got {}", ps.len()),
                            ));
                        };
                        expectations.class_p99_max_ms = Some([*a, *b, *d]);
                    }
                    "max_bytes_parked" => {
                        expectations.max_bytes_parked = Some(c.usize(e)?);
                    }
                    "zero_wedged_sessions" => expectations.zero_wedged_sessions = c.bool(e)?,
                    "shed_order_respected" => expectations.shed_order_respected = c.bool(e)?,
                    "artifact_fnv1a" => {
                        let s = c.str(e)?;
                        let Some(hex) = s.strip_prefix("0x") else {
                            return Err(c.err(
                                "artifact_fnv1a",
                                format!("expected a 0x-prefixed hex hash, got `{s}`"),
                            ));
                        };
                        let hash = u64::from_str_radix(hex, 16).map_err(|_| {
                            c.err("artifact_fnv1a", format!("not a 64-bit hex hash: `{s}`"))
                        })?;
                        expectations.artifact_fnv1a = Some(hash);
                    }
                    _ => {
                        return Err(c.unknown_key(
                            e,
                            &[
                                "conservation",
                                "no_leaks",
                                "recorder_clean",
                                "max_failed_ratio",
                                "class_drop_max",
                                "class_p99_max_ms",
                                "max_bytes_parked",
                                "zero_wedged_sessions",
                                "shed_order_respected",
                                "artifact_fnv1a",
                            ],
                        ))
                    }
                }
            }
        }

        let plan = ScenarioPlan {
            name,
            seed,
            report,
            topology,
            protocol,
            schemes,
            axis,
            workloads,
            faults,
            run,
            expectations,
        };

        // Cross-validation: every explicit workload host must exist at
        // every grid point.
        let min_hosts = plan.min_hosts();
        for w in &plan.workloads {
            if let HostSelector::One(i) = w.hosts {
                if i >= min_hosts {
                    return Err(PlanError::at_field(
                        file,
                        "workload",
                        "host",
                        format!(
                            "host index {i} out of range: the smallest grid point runs \
                             {min_hosts} host(s)"
                        ),
                    ));
                }
            }
        }

        // Cross-validation: the metro kernel models handovers and
        // buffering natively, so a metro plan's surface is narrower than
        // the actor fabric's.
        if plan.report == ReportKind::Metro {
            if matches!(plan.axis, Axis::Loss(_)) {
                return Err(PlanError::at_field(
                    file,
                    "matrix",
                    "axis",
                    "metro plans sweep hosts, not loss (the metro kernel has no fault layer)",
                ));
            }
            if !plan.faults.is_noop() {
                return Err(PlanError::at_field(
                    file,
                    "",
                    "[faults]",
                    "metro plans do not support fault injection; remove the [faults] tables",
                ));
            }
            if plan.run.telemetry_ring > 0 {
                return Err(PlanError::at_field(
                    file,
                    "run",
                    "telemetry_ring",
                    "metro runs have no flight recorder; leave telemetry_ring at 0",
                ));
            }
            if plan.workloads.len() != 1 {
                return Err(PlanError::at_field(
                    file,
                    "",
                    "[[workload]]",
                    format!(
                        "metro plans take exactly one [[workload]] (found {})",
                        plan.workloads.len()
                    ),
                ));
            }
            let w = &plan.workloads[0];
            if w.hosts != HostSelector::All {
                return Err(PlanError::at_field(
                    file,
                    "workload",
                    "host",
                    "metro workloads drive every host: write host = \"all\"",
                ));
            }
            if w.class != ClassPlan::RoundRobin {
                return Err(PlanError::at_field(
                    file,
                    "workload",
                    "class",
                    "the metro kernel assigns classes round-robin by host: \
                     write class = \"round-robin\"",
                ));
            }
        }
        Ok(plan)
    }
}

// ---------------------------------------------------------------------
// The seeded plan fuzzer
// ---------------------------------------------------------------------

/// Derives the `index`-th random-but-valid plan from `base_seed`.
///
/// Fuzzed plans explore the full configuration surface — every movement
/// pattern and scheme, storms, faults (loss, bursts, duplication,
/// jitter, router crash/restart, host power loss), telemetry on and off,
/// overload pressure (finite byte budgets, shed watermarks, the handover
/// watchdog) — while always demanding the universal battery: packet
/// conservation and an intact flight recorder. Leak-freedom is additionally demanded
/// when the plan is fault-free and actually quiesces (no ping-pong
/// host, no crash).
#[must_use]
pub fn fuzz_plan(base_seed: u64, index: u64) -> ScenarioPlan {
    let mut rng = Rng64::seed_from(derive_seed(base_seed, index));
    let hosts = 1 + rng.gen_range_u64(6) as usize;
    let movement = [
        MovementPlan::OneWay,
        MovementPlan::PingPong,
        MovementPlan::Parked,
        MovementPlan::Crossing,
    ][rng.gen_range_u64(4) as usize];

    let mut schemes = vec![Scheme::ALL[rng.gen_range_u64(6) as usize]];
    if rng.gen_bool(0.4) {
        let second = Scheme::ALL[rng.gen_range_u64(6) as usize];
        if !schemes.contains(&second) {
            schemes.push(second);
        }
    }

    let axis = if rng.gen_bool(0.3) {
        let a = 1 + rng.gen_range_u64(4) as usize;
        let b = a + 1 + rng.gen_range_u64(4) as usize;
        Axis::Hosts(vec![a, b])
    } else {
        Axis::None
    };

    let mut protocol = ProtocolConfig::with_scheme(schemes[0]);
    protocol.buffer_request = 4 + rng.gen_range_u64(37) as u32;
    protocol.threshold_a = rng.gen_range_u64(16) as u32;
    if rng.gen_bool(0.5) {
        protocol.rtx = RetransmitConfig::hardened();
    }
    // Soft state always armed: fuzzing hunts for lifetimes reclaiming
    // state the protocol still needs.
    protocol.host_route_lifetime = SimDuration::from_secs(2);
    protocol.dead_peer_timeout = SimDuration::from_secs(3);

    let topology = TopologySpec {
        hosts,
        buffer_capacity: 8 + rng.gen_range_u64(57) as usize,
        movement,
        l2_blackout: SimDuration::from_millis(60 + rng.gen_range_u64(341)),
        speed: 5.0 + rng.next_f64() * 15.0,
        stagger: if movement == MovementPlan::OneWay && rng.gen_bool(0.5) {
            SimDuration::from_millis(100 + rng.gen_range_u64(401))
        } else {
            SimDuration::ZERO
        },
        ..TopologySpec::default()
    };

    let mut faults = FaultPlan::default();
    if rng.gen_bool(0.4) {
        faults.wireless.loss = rng.next_f64() * 0.15;
    }
    if rng.gen_bool(0.3) {
        faults.ar_link.loss = rng.next_f64() * 0.15;
    }
    if rng.gen_bool(0.2) {
        faults.wireless.duplicate = rng.next_f64() * 0.1;
    }
    if rng.gen_bool(0.2) {
        faults.wireless.jitter = SimDuration::from_micros(rng.gen_range_u64(2001));
    }
    if rng.gen_bool(0.15) {
        faults.par = NodeFaultSpec::crash_restart(
            SimTime::from_millis(3000 + rng.gen_range_u64(3001)),
            SimDuration::from_millis(500 + rng.gen_range_u64(1001)),
        );
    }
    if rng.gen_bool(0.1) {
        faults.mh = NodeFaultSpec::power_off(SimTime::from_millis(3000 + rng.gen_range_u64(3001)));
    }

    let min_hosts = match &axis {
        Axis::Hosts(ns) => ns.iter().copied().min().unwrap_or(hosts),
        _ => hosts,
    };
    let n_workloads = 1 + rng.gen_range_u64(3);
    let mut workloads = Vec::with_capacity(n_workloads as usize);
    for _ in 0..n_workloads {
        let selector = if rng.gen_bool(0.5) {
            HostSelector::All
        } else {
            HostSelector::One(rng.gen_range_u64(min_hosts as u64) as usize)
        };
        let class = if rng.gen_bool(0.3) {
            ClassPlan::RoundRobin
        } else {
            ClassPlan::Fixed(ServiceClass::ALL[rng.gen_range_u64(4) as usize])
        };
        workloads.push(WorkloadSpec {
            hosts: selector,
            class,
            packet_bytes: 160,
            interval: SimDuration::from_millis(10 + rng.gen_range_u64(31)),
        });
    }

    let stop_ms = 4000 + rng.gen_range_u64(6001);
    let run = RunSpec {
        traffic_start: SimTime::from_millis(500),
        traffic_stop: SimTime::from_millis(stop_ms),
        horizon: SimTime::from_millis(stop_ms + 10_000),
        telemetry_ring: if rng.gen_bool(0.25) {
            DEFAULT_TIMELINE_RING
        } else {
            0
        },
    };

    // Overload pressure, drawn after every legacy knob so earlier fuzz
    // indices keep their exact historical shapes. A finite byte budget
    // exercises byte-accounted admission and the shed ladder; a finite
    // watchdog deadline exercises forced resolution of wedged sessions.
    if rng.gen_bool(0.3) {
        protocol.pressure.byte_budget = 2_000 + rng.gen_range_u64(30_001) as usize;
        protocol.pressure.high_watermark_pct = (75 + rng.gen_range_u64(21)) as u8;
        protocol.pressure.low_watermark_pct = (40 + rng.gen_range_u64(31)) as u8;
    }
    if rng.gen_bool(0.25) {
        // Well inside the 10 s post-traffic quiesce window, so a fired
        // watchdog's state is always reclaimed before the audit.
        protocol.pressure.watchdog_deadline =
            SimDuration::from_millis(1_500 + rng.gen_range_u64(3_001));
    }

    // Leak-freedom needs a run that actually quiesces: no host still
    // shuttling at the horizon and no fault tearing state down under
    // the audit.
    let quiesces = movement != MovementPlan::PingPong && faults.is_noop();
    ScenarioPlan {
        name: format!("fuzz-{index:04}"),
        seed: derive_seed(base_seed, index),
        report: ReportKind::Points,
        topology,
        protocol,
        schemes,
        axis,
        workloads,
        faults,
        run,
        expectations: Expectations {
            no_leaks: quiesces,
            ..Expectations::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fh_telemetry::report::fnv1a64;

    const MINIMAL: &str = r#"
[plan]
name = "minimal"
seed = 7

[topology]
hosts = 1
movement = "parked"

[[workload]]
host = 0
class = "high-priority"
interval_ms = 20

[run]
traffic_start_ms = 500
traffic_stop_ms = 1500
horizon_ms = 3000
"#;

    #[test]
    fn minimal_plan_parses_runs_and_passes() {
        let plan = ScenarioPlan::from_toml(MINIMAL, "minimal.toml").expect("parses");
        assert_eq!(plan.name, "minimal");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.report, ReportKind::Points);
        assert_eq!(plan.topology.movement, MovementPlan::Parked);
        let outcome = run_plan(&plan, 1);
        assert!(outcome.report.is_empty(), "{}", outcome.report.to_json());
        assert!(outcome.artifact.starts_with("x,scheme,"));
        assert_eq!(outcome.points.len(), 1);
    }

    #[test]
    fn plans_are_thread_count_invariant() {
        let mut plan = ScenarioPlan::from_toml(MINIMAL, "minimal.toml").expect("parses");
        plan.axis = Axis::Hosts(vec![1, 2, 3]);
        let seq = run_plan(&plan, 1);
        let par = run_plan(&plan, 4);
        assert_eq!(seq.artifact, par.artifact);
        assert_eq!(seq.report.to_json(), par.report.to_json());
        assert_eq!(seq.events, par.events);
    }

    #[test]
    fn violated_bound_produces_a_structured_report() {
        let mut plan = ScenarioPlan::from_toml(MINIMAL, "minimal.toml").expect("parses");
        // A parked host never hands over, so demanding at least 95%
        // predictive completions cannot hold… but with zero attempts the
        // ratio check is skipped; bound the p99 instead, impossibly low.
        plan.expectations.class_p99_max_ms = Some([0.0; 3]);
        let outcome = run_plan(&plan, 1);
        assert!(!outcome.report.is_empty());
        let json = outcome.report.to_json();
        assert!(json.contains("class_p99_max_ms"), "{json}");
        assert!(json.contains("high-priority"), "{json}");
    }

    #[test]
    fn artifact_lock_round_trips_and_with_seed_clears_it() {
        let plan = ScenarioPlan::from_toml(MINIMAL, "minimal.toml").expect("parses");
        let artifact = run_plan(&plan, 1).artifact;
        let mut locked = plan.clone();
        locked.expectations.artifact_fnv1a = Some(fnv1a64(artifact.as_bytes()));
        assert!(run_plan(&locked, 1).report.is_empty());
        // A wrong lock is a violation…
        locked.expectations.artifact_fnv1a = Some(1);
        let outcome = run_plan(&locked, 1);
        assert_eq!(outcome.report.entries.len(), 1);
        assert_eq!(outcome.report.entries[0].check, "artifact_fnv1a");
        // …and rebasing the seed clears the stale lock.
        locked.expectations.artifact_fnv1a = Some(1);
        let rebased = locked.clone().with_seed(99);
        assert_eq!(rebased.expectations.artifact_fnv1a, None);
        // Same seed keeps the lock.
        let kept = locked.clone().with_seed(locked.seed);
        assert_eq!(kept.expectations.artifact_fnv1a, Some(1));
    }

    #[test]
    fn grid_shares_seeds_across_schemes_at_one_axis_point() {
        let mut plan = reference_storm();
        plan.axis = Axis::Hosts(vec![4, 8]);
        let grid = build_grid(&plan);
        assert_eq!(grid.len(), 4);
        assert_eq!(grid[0].seed, grid[1].seed, "schemes share the point seed");
        assert_ne!(grid[0].seed, grid[2].seed, "axis points differ");
        assert_eq!(grid[0].scheme, Scheme::NarOnly);
        assert_eq!(grid[1].scheme, Scheme::Dual { classify: true });
        assert_eq!(grid[2].hosts, 8);
    }

    #[test]
    fn missing_plan_name_is_a_pointed_error() {
        let err = ScenarioPlan::from_toml("[plan]\nseed = 1\n", "p.toml").unwrap_err();
        assert_eq!(
            err.to_string(),
            "p.toml: [plan].name: required key is missing"
        );
    }

    #[test]
    fn unknown_table_and_key_are_pointed_errors() {
        let err =
            ScenarioPlan::from_toml("[plan]\nname = \"x\"\n[wat]\nk = 1\n", "p.toml").unwrap_err();
        assert!(err.message.contains("unknown table `[wat]`"), "{err}");

        let err = ScenarioPlan::from_toml("[plan]\nname = \"x\"\nwat = 1\n", "p.toml").unwrap_err();
        assert_eq!(err.location, "[plan].wat");
        assert!(err.message.contains("unknown key"), "{err}");
    }

    #[test]
    fn type_mismatches_name_the_field() {
        let err = ScenarioPlan::from_toml(
            "[plan]\nname = \"x\"\n[topology]\nhosts = \"many\"\n",
            "p.toml",
        )
        .unwrap_err();
        assert_eq!(err.location, "[topology].hosts");
        assert!(
            err.message.contains("expected an integer, got string"),
            "{err}"
        );
    }

    #[test]
    fn out_of_range_loss_is_rejected() {
        let err = ScenarioPlan::from_toml(
            "[plan]\nname = \"x\"\n[faults]\nwireless_loss = 1.5\n",
            "p.toml",
        )
        .unwrap_err();
        assert_eq!(err.location, "[faults].wireless_loss");
        assert!(err.message.contains("probability"), "{err}");
    }

    #[test]
    fn bad_scheme_and_class_names_are_pointed_errors() {
        let err = ScenarioPlan::from_toml(
            "[plan]\nname = \"x\"\n[protocol]\nscheme = \"TRIPLE\"\n",
            "p.toml",
        )
        .unwrap_err();
        assert_eq!(err.location, "[protocol].scheme");
        assert!(err.message.contains("DUAL+class"), "{err}");

        let err = ScenarioPlan::from_toml(
            "[plan]\nname = \"x\"\n[[workload]]\nclass = \"bulk\"\ninterval_ms = 20\n",
            "p.toml",
        )
        .unwrap_err();
        assert_eq!(err.location, "[workload].class");
        assert!(err.message.contains("best-effort"), "{err}");
    }

    #[test]
    fn singular_workload_table_is_redirected_to_the_array_form() {
        let err = ScenarioPlan::from_toml(
            "[plan]\nname = \"x\"\n[workload]\ninterval_ms = 20\n",
            "p.toml",
        )
        .unwrap_err();
        assert!(err.message.contains("[[workload]]"), "{err}");
    }

    #[test]
    fn empty_traffic_window_and_short_horizon_are_rejected() {
        let base = "[plan]\nname = \"x\"\n[run]\n";
        let err = ScenarioPlan::from_toml(
            &format!("{base}traffic_start_ms = 500\ntraffic_stop_ms = 500\n"),
            "p.toml",
        )
        .unwrap_err();
        assert_eq!(err.location, "[run].traffic_stop_ms");

        let err = ScenarioPlan::from_toml(
            &format!("{base}traffic_stop_ms = 5000\nhorizon_ms = 4000\n"),
            "p.toml",
        )
        .unwrap_err();
        assert_eq!(err.location, "[run].horizon_ms");
    }

    #[test]
    fn workload_host_must_exist_at_the_smallest_grid_point() {
        let err = ScenarioPlan::from_toml(
            "[plan]\nname = \"x\"\n[topology]\nhosts = 4\n[matrix]\naxis = \"hosts\"\n\
             values = [2, 8]\n[[workload]]\nhost = 3\ninterval_ms = 20\n",
            "p.toml",
        )
        .unwrap_err();
        assert_eq!(err.location, "[workload].host");
        assert!(err.message.contains("2 host(s)"), "{err}");
    }

    #[test]
    fn pressure_table_parses_and_validates() {
        let plan = ScenarioPlan::from_toml(
            "[plan]\nname = \"x\"\n[pressure]\nbyte_budget = 8000\nhigh_watermark_pct = 85\n\
             low_watermark_pct = 60\nwatchdog_deadline_ms = 1500\n",
            "p.toml",
        )
        .expect("parses");
        assert_eq!(plan.protocol.pressure.byte_budget, 8000);
        assert!(plan.protocol.pressure.engaged());
        assert_eq!(
            plan.protocol.pressure.watchdog_deadline,
            SimDuration::from_millis(1500)
        );
        // An explicit zero deadline means "watchdog off", like the default.
        let plan = ScenarioPlan::from_toml(
            "[plan]\nname = \"x\"\n[pressure]\nwatchdog_deadline_ms = 0\n",
            "p.toml",
        )
        .expect("parses");
        assert_eq!(plan.protocol.pressure.watchdog_deadline, SimDuration::MAX);

        let err = ScenarioPlan::from_toml(
            "[plan]\nname = \"x\"\n[pressure]\nhigh_watermark_pct = 50\n\
             low_watermark_pct = 70\n",
            "p.toml",
        )
        .unwrap_err();
        assert_eq!(err.location, "[pressure].low_watermark_pct");
        assert!(err.message.contains("above high watermark"), "{err}");

        let err = ScenarioPlan::from_toml(
            "[plan]\nname = \"x\"\n[pressure]\nhigh_watermark_pct = 120\n",
            "p.toml",
        )
        .unwrap_err();
        assert!(err.message.contains("[1, 100]"), "{err}");
    }

    #[test]
    fn restart_without_crash_is_rejected() {
        let err = ScenarioPlan::from_toml(
            "[plan]\nname = \"x\"\n[faults.par]\nrestart_after_ms = 1000\n",
            "p.toml",
        )
        .unwrap_err();
        assert_eq!(err.location, "[faults.par].restart_after_ms");
    }

    #[test]
    fn interval_and_kbps_are_mutually_exclusive_and_one_is_required() {
        let err = ScenarioPlan::from_toml(
            "[plan]\nname = \"x\"\n[[workload]]\ninterval_ms = 20\nkbps = 64\n",
            "p.toml",
        )
        .unwrap_err();
        assert!(err.message.contains("not both"), "{err}");

        let err =
            ScenarioPlan::from_toml("[plan]\nname = \"x\"\n[[workload]]\nhost = 0\n", "p.toml")
                .unwrap_err();
        assert!(err.message.contains("`interval_ms` or `kbps`"), "{err}");
    }

    #[test]
    fn kbps_matches_the_rate_sweep_arithmetic() {
        let plan =
            ScenarioPlan::from_toml("[plan]\nname = \"x\"\n[[workload]]\nkbps = 64\n", "p.toml")
                .expect("parses");
        // 160 B at 64 kb/s = 160*8/64000 s = 20 ms, the thesis audio flow.
        assert_eq!(plan.workloads[0].interval, SimDuration::from_millis(20));
    }

    #[test]
    fn fuzz_plans_are_deterministic_and_structurally_valid() {
        for i in 0..50 {
            let a = fuzz_plan(7, i);
            let b = fuzz_plan(7, i);
            assert_eq!(a, b, "fuzz plan {i} must be reproducible");
            assert!(!a.schemes.is_empty());
            assert!(a.min_hosts() >= 1);
            assert!(a.run.traffic_start < a.run.traffic_stop);
            assert!(a.run.traffic_stop <= a.run.horizon);
            for w in &a.workloads {
                if let HostSelector::One(h) = w.hosts {
                    assert!(h < a.min_hosts(), "plan {i} workload host out of range");
                }
                assert!(w.interval > SimDuration::ZERO);
            }
            assert!(a.faults.ar_link.validated().is_ok());
            assert!(a.faults.wireless.validated().is_ok());
            assert!(
                a.protocol.pressure.low_watermark_pct <= a.protocol.pressure.high_watermark_pct,
                "plan {i} drew an inverted watermark pair"
            );
            if a.expectations.no_leaks {
                assert!(a.faults.is_noop());
                assert_ne!(a.topology.movement, MovementPlan::PingPong);
            }
        }
        assert_ne!(
            fuzz_plan(7, 0),
            fuzz_plan(7, 1),
            "indices explore the space"
        );
        assert_ne!(fuzz_plan(7, 0), fuzz_plan(8, 0), "seeds explore the space");
    }

    const METRO: &str = r#"
[plan]
name = "metro-test"
seed = 11
report = "metro"

[topology]
hosts = 90
l2_blackout_ms = 120

[topology.domains]
count = 3
boundary_latency_ms = 8
ars_per_domain = 4
remote_fraction = 0.2
mean_residence_ms = 1500

[protocol]
scheme = "DUAL+class"
buffer_request = 16
flush_spacing_us = 200

[[workload]]
host = "all"
class = "round-robin"
packet_bytes = 160
interval_ms = 40

[run]
traffic_start_ms = 200
traffic_stop_ms = 1500
horizon_ms = 2500
"#;

    #[test]
    fn metro_plan_parses_with_its_domain_table() {
        let plan = ScenarioPlan::from_toml(METRO, "metro.toml").expect("parses");
        assert_eq!(plan.report, ReportKind::Metro);
        let d = plan.topology.domains;
        assert_eq!(d.count, 3);
        assert_eq!(d.boundary_latency, SimDuration::from_millis(8));
        assert_eq!(d.ars_per_domain, 4);
        assert!((d.remote_fraction - 0.2).abs() < 1e-12);
        assert_eq!(d.mean_residence, SimDuration::from_millis(1500));
    }

    #[test]
    fn metro_plans_are_thread_count_invariant_end_to_end() {
        let plan = ScenarioPlan::from_toml(METRO, "metro.toml").expect("parses");
        let seq = run_plan(&plan, 1);
        let par = run_plan(&plan, 4);
        assert!(seq.report.is_empty(), "{}", seq.report.to_json());
        assert_eq!(seq.artifact, par.artifact);
        assert_eq!(seq.events, par.events);
        assert!(seq.artifact.starts_with("hosts,scheme,domains,"));
        let m = seq.points[0].metro.expect("metro extras present");
        assert_eq!(m.domains, 3);
        assert!(m.boundary_packets > 0, "remote hosts must cross boundaries");
    }

    #[test]
    fn zero_lookahead_with_domains_is_a_pointed_error() {
        let toml = METRO.replace("boundary_latency_ms = 8", "boundary_latency_ms = 0");
        let err = ScenarioPlan::from_toml(&toml, "metro.toml").unwrap_err();
        assert_eq!(err.location, "[topology.domains].boundary_latency_ms");
        assert_eq!(err.message, "lookahead must be > 0 when domains > 1");
    }

    #[test]
    fn multi_domain_without_metro_report_is_rejected() {
        let toml = METRO.replace("report = \"metro\"", "report = \"points\"");
        let err = ScenarioPlan::from_toml(&toml, "metro.toml").unwrap_err();
        assert_eq!(err.location, "[topology.domains].count");
        assert!(err.message.contains("set report = \"metro\""), "{err}");
    }

    #[test]
    fn metro_surface_restrictions_are_pointed_errors() {
        let err = ScenarioPlan::from_toml(
            &format!("{METRO}\n[faults]\nar_link_loss = 0.1\n"),
            "metro.toml",
        )
        .unwrap_err();
        assert_eq!(err.location, "[faults]");
        assert!(err.message.contains("fault injection"), "{err}");

        let toml = METRO.replace("host = \"all\"", "host = 0");
        let err = ScenarioPlan::from_toml(&toml, "metro.toml").unwrap_err();
        assert_eq!(err.location, "[workload].host");
        assert!(err.message.contains("host = \"all\""), "{err}");

        let toml = METRO.replace("class = \"round-robin\"", "class = \"real-time\"");
        let err = ScenarioPlan::from_toml(&toml, "metro.toml").unwrap_err();
        assert_eq!(err.location, "[workload].class");

        let err = ScenarioPlan::from_toml(&format!("{METRO}telemetry_ring = 64\n"), "metro.toml")
            .unwrap_err();
        assert_eq!(err.location, "[run].telemetry_ring");

        let err = ScenarioPlan::from_toml(
            &format!("{METRO}\n[matrix]\naxis = \"loss\"\nvalues = [0.0, 0.1]\n"),
            "metro.toml",
        )
        .unwrap_err();
        assert_eq!(err.location, "[matrix].axis");
    }

    #[test]
    fn single_domain_table_stays_on_the_fabric_kernel() {
        // A [topology.domains] table with count = 1 is legal on any
        // report kind — it only describes the (degenerate) partitioning.
        let toml = "[plan]\nname = \"x\"\n[topology]\nhosts = 1\nmovement = \"parked\"\n\
                    [topology.domains]\ncount = 1\n\
                    [[workload]]\nhost = 0\ninterval_ms = 20\n";
        let plan = ScenarioPlan::from_toml(toml, "p.toml").expect("parses");
        assert_eq!(plan.report, ReportKind::Points);
        assert_eq!(plan.topology.domains.count, 1);
        let outcome = run_plan(&plan, 1);
        assert!(outcome.points[0].metro.is_none());
    }
}
