//! The Fig 4.11 scenario: a simple WLAN for pure link-layer handoffs.
//!
//! ```text
//!    CN ——— AR ——— (AP0)   (AP1)
//!                    ↑  MH  →      same subnet, two cells
//! ```
//!
//! One access router, two access points under the *same prefix*: moving
//! between them is a pure L2 handoff — no new care-of address, no binding
//! update, just a 200 ms black-out. The original fast-handover protocol
//! offers no buffering here; the thesis' scheme does (Fig 3.5), which is
//! what rescues the TCP connection in Figs 4.12–4.14.

use std::net::Ipv6Addr;

use fh_sim::{SimDuration, SimTime, Simulator};

use fh_core::{ArAgent, MhAgent, ProtocolConfig};
use fh_mip::MipClient;
use fh_net::{doc_subnet, ApId, ConnId, FlowId, LinkSpec, NetMsg, NodeId, ServiceClass};
use fh_tcp::{TcpConfig, TcpReceiver, TcpSender};
use fh_wireless::{MhRadio, Mobility, Position, RadioConfig, WirelessSpec};

use crate::nodes::{ArNode, CnNode, MhNode};
use crate::world::World;

/// Configuration of the Fig 4.11 scenario.
#[derive(Debug, Clone, Copy)]
pub struct WlanConfig {
    /// Protocol parameters; `scheme.buffers()` decides whether the AR
    /// buffers during the L2 handoff.
    pub protocol: ProtocolConfig,
    /// AR buffer capacity in packets.
    pub buffer_capacity: usize,
    /// L2 black-out duration.
    pub l2_handoff_delay: SimDuration,
    /// Wireless channel (11 Mb/s 802.11b by default).
    pub wireless: WirelessSpec,
    /// TCP parameters (Reno, 500 ms ticks).
    pub tcp: TcpConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WlanConfig {
    fn default() -> Self {
        WlanConfig {
            protocol: ProtocolConfig::proposed(),
            buffer_capacity: 40,
            l2_handoff_delay: SimDuration::from_millis(200),
            wireless: WirelessSpec::default_80211b(),
            tcp: TcpConfig::default(),
            seed: 7,
        }
    }
}

/// The built Fig 4.11 scenario.
pub struct WlanScenario {
    /// The simulator, ready to run.
    pub sim: Simulator<NetMsg, World>,
    /// Correspondent node (the FTP server).
    pub cn: NodeId,
    /// The access router.
    pub ar: NodeId,
    /// The mobile host (the FTP client).
    pub mh: NodeId,
    /// First access point (start cell).
    pub ap0: ApId,
    /// Second access point (destination cell).
    pub ap1: ApId,
    /// The TCP flow id.
    pub flow: FlowId,
    /// The MH's (fixed) address.
    pub mh_addr: Ipv6Addr,
}

impl WlanScenario {
    /// Builds the scenario with an FTP/TCP transfer from CN to MH.
    #[must_use]
    pub fn build(cfg: WlanConfig) -> Self {
        let mut sim: Simulator<NetMsg, World> = Simulator::new(World::new(cfg.wireless), cfg.seed);

        let cn_prefix = doc_subnet(0);
        let ar_prefix = doc_subnet(1);
        let cn_addr = cn_prefix.host(1);
        let ar_addr = ar_prefix.host(1);
        let iid = 0x99;
        let mh_addr = ar_prefix.host(iid);
        let flow = FlowId(1);
        let conn = ConnId(1);

        let cn = sim.add_actor(Box::new(CnNode::new(
            fh_net::Topology::new().add_node("tmp"),
        )));
        let ar = sim.add_actor(Box::new(ArNode {
            agent: ArAgent::new(
                fh_net::Topology::new().add_node("tmp"),
                ar_addr,
                ar_prefix,
                Vec::new(),
                ar_addr, // no MAP in this flat network
                cfg.protocol,
                cfg.buffer_capacity,
            ),
        }));

        // Two cells 100 m apart with 70 m radius: overlap x ∈ [30, 70].
        let ap0 = sim.shared.radio.add_ap(ar, Position::new(0.0, 0.0), 70.0);
        let ap1 = sim.shared.radio.add_ap(ar, Position::new(100.0, 0.0), 70.0);
        {
            let agent = &mut sim.actor_mut::<ArNode>(ar).expect("ar").agent;
            agent.set_node(ar);
            agent.set_aps(vec![ap0, ap1]);
        }

        // The mobile host walks from cell 0 into cell 1.
        let mobility = Mobility::linear(Position::new(0.0, 0.0), Position::new(100.0, 0.0), 10.0);
        let mh = sim.add_actor(Box::new(MhNode::new(MhAgent::new(
            fh_net::Topology::new().add_node("tmp"),
            MhRadio::new(
                fh_net::Topology::new().add_node("tmp"),
                mobility.clone(),
                RadioConfig {
                    l2_handoff_delay: cfg.l2_handoff_delay,
                    ..RadioConfig::default()
                },
            ),
            MipClient::new(mh_addr, ar_addr, SimDuration::from_secs(600)),
            cfg.protocol,
            iid,
        ))));
        {
            let node = sim.actor_mut::<MhNode>(mh).expect("mh");
            node.agent.node = mh;
            node.agent.radio = MhRadio::new(
                mh,
                mobility,
                RadioConfig {
                    l2_handoff_delay: cfg.l2_handoff_delay,
                    ..RadioConfig::default()
                },
            );
            node.agent.mip.enter_map_domain(ar_addr, mh_addr);
            node.agent.configure_initial(ap0, ar_addr, ar_prefix);
            node.tcp_rx = Some(TcpReceiver::new(
                conn,
                flow,
                mh_addr,
                cn_addr,
                ServiceClass::BestEffort,
            ));
        }

        {
            let topo = &mut sim.shared.topo;
            topo.register_node(cn, "cn");
            topo.register_node(ar, "ar");
            topo.register_node(mh, "mh");
            topo.add_link(
                cn,
                ar,
                LinkSpec::new(100_000_000, SimDuration::from_millis(5), 100),
            );
            topo.add_prefix(cn_prefix, cn);
            topo.add_prefix(ar_prefix, ar);
            topo.compute_routes();
        }

        {
            let cn_node = sim.actor_mut::<CnNode>(cn).expect("cn");
            cn_node.node = cn;
            let mut tx = TcpSender::new(
                conn,
                flow,
                cn_addr,
                mh_addr,
                ServiceClass::BestEffort,
                cfg.tcp,
            );
            // Greedy FTP: unlimited data.
            tx.set_dst(mh_addr);
            cn_node.tcp = Some(tx);
            cn_node.tcp_start = SimTime::from_millis(500);
        }

        for id in [cn, ar, mh] {
            sim.schedule(SimTime::ZERO, id, NetMsg::Start);
        }

        WlanScenario {
            sim,
            cn,
            ar,
            mh,
            ap0,
            ap1,
            flow,
            mh_addr,
        }
    }

    /// The TCP sender (trace access).
    #[must_use]
    pub fn tcp_sender(&self) -> &TcpSender {
        self.sim
            .actor::<CnNode>(self.cn)
            .expect("cn")
            .tcp
            .as_ref()
            .expect("tcp configured")
    }

    /// The TCP receiver (trace access).
    #[must_use]
    pub fn tcp_receiver(&self) -> &TcpReceiver {
        self.sim
            .actor::<MhNode>(self.mh)
            .expect("mh")
            .tcp_rx
            .as_ref()
            .expect("tcp configured")
    }

    /// The mobile host's protocol agent.
    #[must_use]
    pub fn mh_agent(&self) -> &MhAgent {
        &self.sim.actor::<MhNode>(self.mh).expect("mh").agent
    }

    /// The access router's protocol agent.
    #[must_use]
    pub fn ar_agent(&self) -> &ArAgent {
        &self.sim.actor::<ArNode>(self.ar).expect("ar").agent
    }

    /// Runs the simulation until `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }
}
