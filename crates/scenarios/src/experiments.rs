//! Experiment runners: one function per table/figure of the evaluation.
//!
//! Every runner builds a scenario, runs it, and returns a serializable
//! result struct with exactly the series the corresponding figure plots.
//! The `fh-bench` crate wraps these in Criterion benchmarks and in the
//! `repro` binary that regenerates EXPERIMENTS.md.
//!
//! Sweep-shaped runners (grids of independent simulation points) take a
//! `threads` argument and fan their points across the
//! [`crate::sweep::parallel_map`] worker pool. Each point's RNG stream is
//! derived from the sweep's base seed and the point's **x-axis index** via
//! [`fh_sim::derive_seed`], so (a) results are bit-identical at any thread
//! count, and (b) every series of one figure (the four schemes of Fig 4.2,
//! the with/without pair of the black-out ablation) faces the *same*
//! workload at the same x — the curves stay comparable, as in the paper.
//! Every result struct also reports the total simulator `events`
//! processed, which `fh-bench` turns into events/second.

use serde::{Deserialize, Serialize};

use fh_core::{ProtocolConfig, Scheme};
use fh_net::{FlowId, ServiceClass};
use fh_sim::{derive_seed, QueueKind, SimDuration, SimTime};

use crate::hmip::{HmipConfig, HmipScenario, MovementPlan};
use crate::sweep::parallel_map;
use crate::wlan::{WlanConfig, WlanScenario};

/// Classes of the three flows F1/F2/F3 used throughout §4.2.
pub const FLOW_CLASSES: [ServiceClass; 3] = [
    ServiceClass::RealTime,     // F1
    ServiceClass::HighPriority, // F2
    ServiceClass::BestEffort,   // F3
];

// ---------------------------------------------------------------------
// Fig 4.2 — buffer utilization
// ---------------------------------------------------------------------

/// One scheme's drop counts versus the number of simultaneous handoffs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemeSeries {
    /// Figure legend (`NAR`, `PAR`, `DUAL`, `FH`).
    pub label: String,
    /// `(number of mobile hosts, total packets dropped)`.
    pub points: Vec<(usize, u64)>,
}

/// Parameters of the Fig 4.2 run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BufferUtilizationParams {
    /// Largest simultaneous-handoff count to test.
    pub max_mhs: usize,
    /// Buffer capacity per access router.
    pub buffer_capacity: usize,
    /// Buffer request per handover.
    pub buffer_request: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BufferUtilizationParams {
    fn default() -> Self {
        BufferUtilizationParams {
            max_mhs: 20,
            buffer_capacity: 42,
            buffer_request: 12,
            seed: 42,
        }
    }
}

/// The Fig 4.2 series plus run accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BufferUtilizationResult {
    /// One series per scheme (`NAR`, `PAR`, `DUAL`, `FH`), scheme-major.
    pub series: Vec<SchemeSeries>,
    /// Total simulator events processed across all points.
    pub events: u64,
}

/// Fig 4.2: packet drops vs number of simultaneously-handing-off hosts,
/// for the four buffering schemes. The `scheme × n` grid fans out across
/// `threads` workers; all four schemes at the same `n` share a seed so
/// they face an identical workload.
#[must_use]
pub fn buffer_utilization(
    params: BufferUtilizationParams,
    threads: usize,
) -> BufferUtilizationResult {
    buffer_utilization_with_queue(params, threads, QueueKind::Heap)
}

/// [`buffer_utilization`] with an explicit event-queue backend.
///
/// The backends are bit-identical in pop order, so the returned series
/// must not depend on `queue` — the `hotpath` gauge runs both and
/// asserts exactly that while timing them.
#[must_use]
pub fn buffer_utilization_with_queue(
    params: BufferUtilizationParams,
    threads: usize,
    queue: QueueKind,
) -> BufferUtilizationResult {
    // Fig 4.2 plots exactly the thesis' class-blind schemes, pinned
    // explicitly: deriving the series from `Scheme::ALL` would silently
    // grow the golden figure whenever a non-thesis scheme (e.g. SAFETY)
    // is added to the registry.
    let schemes: Vec<Scheme> = vec![
        Scheme::NarOnly,
        Scheme::ParOnly,
        Scheme::Dual { classify: false },
        Scheme::NoBuffer,
    ];
    let mut grid = Vec::with_capacity(schemes.len() * params.max_mhs);
    for &scheme in &schemes {
        for n in 1..=params.max_mhs {
            grid.push((scheme, n));
        }
    }
    let runs = parallel_map(threads, &grid, |_, &(scheme, n)| {
        let mut protocol = ProtocolConfig::with_scheme(scheme);
        protocol.buffer_request = params.buffer_request;
        let cfg = HmipConfig {
            protocol,
            n_mhs: n,
            buffer_capacity: params.buffer_capacity,
            movement: MovementPlan::OneWay,
            seed: derive_seed(params.seed, (n - 1) as u64),
            queue,
            ..HmipConfig::default()
        };
        let mut scenario = HmipScenario::build(cfg);
        let mut flows = Vec::new();
        for i in 0..n {
            flows.push(scenario.add_audio_64k(i, ServiceClass::Unspecified));
        }
        scenario.set_traffic_window(SimTime::from_millis(500), SimTime::from_millis(13_000));
        scenario.run_until(SimTime::from_secs(16));
        let drops: u64 = flows.iter().map(|&f| scenario.flow_losses(f)).sum();
        (drops, scenario.sim.events_processed())
    });
    let mut events = 0;
    let series = schemes
        .iter()
        .enumerate()
        .map(|(s_idx, &scheme)| {
            let points = (1..=params.max_mhs)
                .map(|n| {
                    let (drops, ev) = runs[s_idx * params.max_mhs + (n - 1)];
                    events += ev;
                    (n, drops)
                })
                .collect();
            SchemeSeries {
                label: scheme.label().to_owned(),
                points,
            }
        })
        .collect();
    BufferUtilizationResult { series, events }
}

// ---------------------------------------------------------------------
// Figs 4.3–4.5 — QoS drop rate over repeated handoffs
// ---------------------------------------------------------------------

/// Cumulative per-flow drops after each handoff (Figs 4.3–4.5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QosDropsResult {
    /// Scheme label.
    pub label: String,
    /// Buffer capacity per router used in the run.
    pub buffer_capacity: usize,
    /// `drops[k][h]` = cumulative drops of flow k (F1..F3) after handoff
    /// `h+1`.
    pub drops: [Vec<u64>; 3],
    /// Total simulator events processed by the run.
    pub events: u64,
}

/// Figs 4.3–4.5: one host shuttling between the routers; three audio
/// flows (real-time / high-priority / best effort); cumulative per-flow
/// drops per handoff.
///
/// The flows run at 128 kb/s (the §4.2.3 rate): with this simulator's
/// tight signaling, the thesis' 64 kb/s load fits entirely into the
/// figure-caption buffer sizes and no scheme ever drops — the higher rate
/// restores the paper's demand-to-capacity overload ratio (~60 packets
/// per black-out against 40 buffered).
#[must_use]
pub fn qos_drops(
    scheme: Scheme,
    buffer_capacity: usize,
    buffer_request: u32,
    n_handoffs: u64,
    seed: u64,
) -> QosDropsResult {
    let mut protocol = ProtocolConfig::with_scheme(scheme);
    protocol.buffer_request = buffer_request;
    let cfg = HmipConfig {
        protocol,
        n_mhs: 1,
        buffer_capacity,
        movement: MovementPlan::PingPong,
        seed,
        ..HmipConfig::default()
    };
    let mut scenario = HmipScenario::build(cfg);
    let flows: Vec<FlowId> = FLOW_CLASSES
        .iter()
        .map(|&class| scenario.add_audio_128k(0, class))
        .collect();
    let mut drops: [Vec<u64>; 3] = Default::default();
    let mut t = SimTime::ZERO;
    let step = SimDuration::from_millis(250);
    let deadline = SimTime::from_secs(20 * n_handoffs + 60);
    let mut recorded = 0;
    while recorded < n_handoffs && t < deadline {
        t += step;
        scenario.run_until(t);
        let completed = scenario.mh_agent(0).handoffs;
        while recorded < completed.min(n_handoffs) {
            recorded += 1;
            for (k, &f) in flows.iter().enumerate() {
                drops[k].push(scenario.flow_losses(f));
            }
        }
    }
    QosDropsResult {
        label: scheme.label().to_owned(),
        buffer_capacity,
        drops,
        events: scenario.sim.events_processed(),
    }
}

// ---------------------------------------------------------------------
// Fig 4.6 — drops vs data rate
// ---------------------------------------------------------------------

/// Per-flow drops for one handoff at increasing data rates (Fig 4.6).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateSweepResult {
    /// Tested per-flow rates in kb/s.
    pub rates_kbps: Vec<f64>,
    /// `drops[k][r]` = drops of flow k at rate index r during one handoff.
    pub drops: [Vec<u64>; 3],
    /// Total simulator events processed across all points.
    pub events: u64,
}

/// The x-axis of Fig 4.6.
pub const FIG_4_6_RATES: [f64; 12] = [
    51.2, 55.7, 61.0, 67.4, 75.3, 85.3, 98.5, 116.4, 142.2, 182.9, 256.0, 426.7,
];

/// Fig 4.6: three classified flows, one handoff, sweeping the per-flow
/// data rate. High-priority losses should stay lowest throughout.
#[must_use]
pub fn rate_sweep(
    rates_kbps: &[f64],
    buffer_capacity: usize,
    buffer_request: u32,
    seed: u64,
    threads: usize,
) -> RateSweepResult {
    let mut result = RateSweepResult {
        rates_kbps: rates_kbps.to_vec(),
        drops: Default::default(),
        events: 0,
    };
    let runs = parallel_map(threads, rates_kbps, |idx, &rate| {
        let mut protocol = ProtocolConfig::proposed();
        protocol.buffer_request = buffer_request;
        let cfg = HmipConfig {
            protocol,
            n_mhs: 1,
            buffer_capacity,
            movement: MovementPlan::OneWay,
            seed: derive_seed(seed, idx as u64),
            ..HmipConfig::default()
        };
        let mut scenario = HmipScenario::build(cfg);
        let bits_per_pkt = 160.0 * 8.0;
        let interval = SimDuration::from_secs_f64(bits_per_pkt / (rate * 1000.0));
        let flows: Vec<FlowId> = FLOW_CLASSES
            .iter()
            .map(|&class| scenario.add_cbr_flow(0, class, 160, interval))
            .collect();
        scenario.set_traffic_window(SimTime::from_millis(500), SimTime::from_millis(13_000));
        scenario.run_until(SimTime::from_secs(16));
        let drops: Vec<u64> = flows.iter().map(|&f| scenario.flow_losses(f)).collect();
        (drops, scenario.sim.events_processed())
    });
    for (drops, events) in runs {
        for (k, d) in drops.into_iter().enumerate() {
            result.drops[k].push(d);
        }
        result.events += events;
    }
    result
}

// ---------------------------------------------------------------------
// Figs 4.7–4.10 — end-to-end delay around a handoff
// ---------------------------------------------------------------------

/// Per-packet end-to-end delay traces for the three flows (Figs 4.7–4.10).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DelayTraceResult {
    /// Scheme label.
    pub label: String,
    /// PAR↔NAR link delay used, in milliseconds.
    pub ar_link_delay_ms: f64,
    /// `series[k]` = `(sequence number, delay in seconds)` per packet of
    /// flow k, arrival order.
    pub series: [Vec<(u64, f64)>; 3],
    /// The first sequence number affected by the handoff (delay spike),
    /// if any — the window Figs 4.7–4.10 zoom into.
    pub spike_start: Option<u64>,
    /// Total simulator events processed by the run.
    pub events: u64,
}

/// Figs 4.7–4.10: one host, one handoff, three 128 kb/s flows; per-packet
/// end-to-end delay. `classify` off reproduces Figs 4.7/4.8; on, with the
/// PAR↔NAR delay swept, reproduces Figs 4.9/4.10.
#[must_use]
pub fn delay_trace(
    scheme: Scheme,
    buffer_capacity: usize,
    buffer_request: u32,
    ar_link_delay: SimDuration,
    seed: u64,
) -> DelayTraceResult {
    let mut protocol = ProtocolConfig::with_scheme(scheme);
    protocol.buffer_request = buffer_request;
    let cfg = HmipConfig {
        protocol,
        n_mhs: 1,
        buffer_capacity,
        ar_link_delay,
        movement: MovementPlan::OneWay,
        seed,
        ..HmipConfig::default()
    };
    let mut scenario = HmipScenario::build(cfg);
    let flows: Vec<FlowId> = FLOW_CLASSES
        .iter()
        .map(|&class| scenario.add_audio_128k(0, class))
        .collect();
    scenario.set_traffic_window(SimTime::from_millis(500), SimTime::from_millis(13_000));
    scenario.run_until(SimTime::from_secs(16));
    let mut series: [Vec<(u64, f64)>; 3] = Default::default();
    for (k, &f) in flows.iter().enumerate() {
        series[k] = scenario
            .flow_sink(f)
            .delays
            .iter()
            .map(|&(seq, d)| (seq, d.as_secs_f64()))
            .collect();
    }
    // The spike: first packet whose delay exceeds twice the pre-handoff
    // baseline.
    let spike_start = series
        .iter()
        .flat_map(|s| {
            let base = s.first().map_or(0.0, |&(_, d)| d);
            s.iter()
                .find(|&&(_, d)| d > base * 2.0 + 0.01)
                .map(|&(seq, _)| seq)
        })
        .min();
    DelayTraceResult {
        label: scheme.label().to_owned(),
        ar_link_delay_ms: ar_link_delay.as_millis_f64(),
        series,
        spike_start,
        events: scenario.sim.events_processed(),
    }
}

// ---------------------------------------------------------------------
// Figs 4.12–4.14 — TCP during a pure link-layer handoff
// ---------------------------------------------------------------------

/// TCP sequence/throughput traces around a pure L2 handoff.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TcpHandoffResult {
    /// `true` if the AR buffered during the black-out.
    pub buffering: bool,
    /// Sender transmissions `(time s, segment number)`.
    pub sent: Vec<(f64, u64)>,
    /// Cumulative ACK arrivals at the sender `(time s, segments)`.
    pub acked: Vec<(f64, u64)>,
    /// Receiver arrivals `(time s, segment number)`.
    pub received: Vec<(f64, u64)>,
    /// Coarse RTO firings at the sender (seconds).
    pub timeouts: Vec<f64>,
    /// When the black-out began/ended, in seconds.
    pub blackout: Option<(f64, f64)>,
    /// Receiver goodput per 100 ms window `(time s, Mbit/s)`.
    pub throughput: Vec<(f64, f64)>,
    /// Total bytes delivered in order.
    pub bytes_delivered: u64,
    /// Total simulator events processed by the run.
    pub events: u64,
}

/// Figs 4.12/4.13: TCP sequence trace through a pure L2 handoff, with or
/// without the proposed buffering. Fig 4.14 reads the `throughput` field
/// of both runs.
#[must_use]
pub fn tcp_l2_handoff(buffering: bool, seed: u64) -> TcpHandoffResult {
    let protocol = if buffering {
        ProtocolConfig::proposed()
    } else {
        ProtocolConfig::with_scheme(Scheme::NoBuffer)
    };
    let cfg = WlanConfig {
        protocol,
        seed,
        ..WlanConfig::default()
    };
    let mut scenario = WlanScenario::build(cfg);
    scenario.run_until(SimTime::from_secs(12));

    let tx = scenario.tcp_sender();
    let rx = scenario.tcp_receiver();
    let sent = tx
        .trace
        .sent
        .iter()
        .map(|&(t, s)| (t.as_secs_f64(), s))
        .collect();
    let acked = tx
        .trace
        .acked
        .iter()
        .map(|&(t, s)| (t.as_secs_f64(), s))
        .collect();
    let received = rx
        .trace
        .received
        .iter()
        .map(|&(t, s)| (t.as_secs_f64(), s))
        .collect();
    let timeouts = tx.trace.timeouts.iter().map(|&t| t.as_secs_f64()).collect();

    // Black-out window from the host's L2 log: the first LinkDown, and
    // the first LinkUp after it (earlier LinkUps are the boot attach).
    let log = &scenario.mh_agent().log;
    let down = log
        .iter()
        .find(|(_, p)| *p == fh_core::HandoffPhase::LinkDown)
        .map(|&(t, _)| t.as_secs_f64());
    let up = down.and_then(|d| {
        log.iter()
            .find(|(t, p)| *p == fh_core::HandoffPhase::LinkUp && t.as_secs_f64() > d)
            .map(|&(t, _)| t.as_secs_f64())
    });
    let blackout = down.zip(up);

    // Throughput: in-order goodput per 100 ms bin.
    let bin = SimDuration::from_millis(100);
    let series: fh_sim::stats::TimeSeries =
        rx.trace.bytes.iter().map(|&(t, b)| (t, b as f64)).collect();
    let throughput = series
        .windowed_rate(SimTime::ZERO, SimTime::from_secs(12), bin)
        .into_iter()
        .map(|(t, bytes_per_s)| (t.as_secs_f64(), bytes_per_s * 8.0 / 1e6))
        .collect();

    TcpHandoffResult {
        buffering,
        sent,
        acked,
        received,
        timeouts,
        blackout,
        throughput,
        bytes_delivered: rx.bytes_in_order(),
        events: scenario.sim.events_processed(),
    }
}

// ---------------------------------------------------------------------
// Ablations beyond the paper's figures
// ---------------------------------------------------------------------

/// Best-effort losses as a function of the admission threshold `a`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThresholdSweepResult {
    /// Tested thresholds.
    pub thresholds: Vec<u32>,
    /// Best-effort drops at each threshold.
    pub best_effort_drops: Vec<u64>,
    /// High-priority drops at each threshold (should stay flat).
    pub high_priority_drops: Vec<u64>,
    /// Total simulator events processed across all points.
    pub events: u64,
}

/// Ablation: sweep the administrator constant `a` (Table 3.3 case 1.c).
#[must_use]
pub fn threshold_sweep(thresholds: &[u32], seed: u64, threads: usize) -> ThresholdSweepResult {
    let mut result = ThresholdSweepResult {
        thresholds: thresholds.to_vec(),
        best_effort_drops: Vec::new(),
        high_priority_drops: Vec::new(),
        events: 0,
    };
    let runs = parallel_map(threads, thresholds, |idx, &a| {
        let mut protocol = ProtocolConfig::proposed();
        protocol.buffer_request = 40;
        protocol.threshold_a = a;
        let cfg = HmipConfig {
            protocol,
            n_mhs: 1,
            buffer_capacity: 20,
            movement: MovementPlan::OneWay,
            seed: derive_seed(seed, idx as u64),
            ..HmipConfig::default()
        };
        let mut scenario = HmipScenario::build(cfg);
        let flows: Vec<FlowId> = FLOW_CLASSES
            .iter()
            .map(|&class| scenario.add_audio_128k(0, class))
            .collect();
        scenario.set_traffic_window(SimTime::from_millis(500), SimTime::from_millis(13_000));
        scenario.run_until(SimTime::from_secs(16));
        (
            scenario.flow_losses(flows[1]),
            scenario.flow_losses(flows[2]),
            scenario.sim.events_processed(),
        )
    });
    for (hp, be, events) in runs {
        result.high_priority_drops.push(hp);
        result.best_effort_drops.push(be);
        result.events += events;
    }
    result
}

/// Losses with and without buffering as the L2 black-out grows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlackoutSweepResult {
    /// Tested black-out durations in milliseconds.
    pub blackout_ms: Vec<u64>,
    /// Total drops with the proposed scheme.
    pub with_buffering: Vec<u64>,
    /// Total drops without buffering.
    pub without_buffering: Vec<u64>,
    /// Total simulator events processed across all points.
    pub events: u64,
}

/// Ablation: the 802.11 handoff measurement range (60–400 ms) as black-out
/// duration, with and without the proposed scheme. The with/without pair
/// at each duration shares a seed, so the buffered and unbuffered runs
/// see the same traffic.
#[must_use]
pub fn blackout_sweep(blackout_ms: &[u64], seed: u64, threads: usize) -> BlackoutSweepResult {
    let mut result = BlackoutSweepResult {
        blackout_ms: blackout_ms.to_vec(),
        with_buffering: Vec::new(),
        without_buffering: Vec::new(),
        events: 0,
    };
    let mut grid = Vec::with_capacity(blackout_ms.len() * 2);
    for (idx, &ms) in blackout_ms.iter().enumerate() {
        for buffering in [true, false] {
            grid.push((idx, ms, buffering));
        }
    }
    let runs = parallel_map(threads, &grid, |_, &(idx, ms, buffering)| {
        let mut protocol = if buffering {
            ProtocolConfig::proposed()
        } else {
            ProtocolConfig::with_scheme(Scheme::NoBuffer)
        };
        // Provision for the longest black-out tested: 400 ms at
        // 150 packets/s needs ≈60 buffered packets plus slack.
        protocol.buffer_request = 140;
        let cfg = HmipConfig {
            protocol,
            n_mhs: 1,
            buffer_capacity: 70,
            l2_handoff_delay: SimDuration::from_millis(ms),
            movement: MovementPlan::OneWay,
            seed: derive_seed(seed, idx as u64),
            ..HmipConfig::default()
        };
        let mut scenario = HmipScenario::build(cfg);
        let flows: Vec<FlowId> = FLOW_CLASSES
            .iter()
            .map(|&class| scenario.add_audio_64k(0, class))
            .collect();
        scenario.set_traffic_window(SimTime::from_millis(500), SimTime::from_millis(13_000));
        scenario.run_until(SimTime::from_secs(16));
        let total: u64 = flows.iter().map(|&f| scenario.flow_losses(f)).sum();
        (total, scenario.sim.events_processed())
    });
    for (&(_, _, buffering), &(total, events)) in grid.iter().zip(runs.iter()) {
        if buffering {
            result.with_buffering.push(total);
        } else {
            result.without_buffering.push(total);
        }
        result.events += events;
    }
    result
}

/// Delay impact of the router's per-packet flush processing cost.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlushPacingResult {
    /// Tested per-packet flush spacings, in microseconds.
    pub spacing_us: Vec<u64>,
    /// 99th-percentile end-to-end delay of the high-priority flow (the
    /// spike packets are ≈2% of the run, so pacing moves this directly).
    pub p99_delay_ms: Vec<f64>,
    /// Losses on the high-priority flow (should stay 0 throughout).
    pub hp_losses: Vec<u64>,
    /// Total simulator events processed across all points.
    pub events: u64,
}

/// Ablation: the thesis notes a flushing router "cannot dump all the
/// buffered packets at the same time" (§4.2.3). Sweep that per-packet
/// processing cost and measure the delay it adds to the buffered burst.
#[must_use]
pub fn flush_pacing_sweep(spacing_us: &[u64], seed: u64, threads: usize) -> FlushPacingResult {
    let mut result = FlushPacingResult {
        spacing_us: spacing_us.to_vec(),
        p99_delay_ms: Vec::new(),
        hp_losses: Vec::new(),
        events: 0,
    };
    let runs = parallel_map(threads, spacing_us, |idx, &us| {
        let mut protocol = ProtocolConfig::proposed();
        protocol.buffer_request = 40;
        protocol.flush_spacing = SimDuration::from_micros(us);
        let cfg = HmipConfig {
            protocol,
            n_mhs: 1,
            buffer_capacity: 20,
            movement: MovementPlan::OneWay,
            seed: derive_seed(seed, idx as u64),
            ..HmipConfig::default()
        };
        let mut scenario = HmipScenario::build(cfg);
        let hp = scenario.add_audio_128k(0, ServiceClass::HighPriority);
        scenario.set_traffic_window(SimTime::from_millis(500), SimTime::from_millis(13_000));
        scenario.run_until(SimTime::from_secs(16));
        let report =
            fh_traffic::FlowReport::from_sink(scenario.flow_sink(hp), scenario.flow_sent(hp));
        (
            report.p99_delay.as_millis_f64(),
            report.lost,
            scenario.sim.events_processed(),
        )
    });
    for (p99, lost, events) in runs {
        result.p99_delay_ms.push(p99);
        result.hp_losses.push(lost);
        result.events += events;
    }
    result
}

/// Handover quality under background load in the same cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BackgroundLoadResult {
    /// Background rates tested, in kb/s.
    pub bg_kbps: Vec<f64>,
    /// High-priority losses of the moving host during its handover.
    pub hp_losses: Vec<u64>,
    /// p99 delay of the high-priority flow, in ms.
    pub hp_p99_ms: Vec<f64>,
    /// Losses of the (parked) background flow itself.
    pub bg_losses: Vec<u64>,
    /// Total simulator events processed across all points.
    pub events: u64,
}

/// Ablation: a parked neighbor saturates the PAR's cell with best-effort
/// traffic while another host hands over. The handover's high-priority
/// protection must survive contention for the shared air interface.
#[must_use]
pub fn background_load(bg_kbps: &[f64], seed: u64, threads: usize) -> BackgroundLoadResult {
    let mut result = BackgroundLoadResult {
        bg_kbps: bg_kbps.to_vec(),
        hp_losses: Vec::new(),
        hp_p99_ms: Vec::new(),
        bg_losses: Vec::new(),
        events: 0,
    };
    let runs = parallel_map(threads, bg_kbps, |idx, &kbps| {
        let mut protocol = ProtocolConfig::proposed();
        protocol.buffer_request = 40;
        let cfg = HmipConfig {
            protocol,
            n_mhs: 2,
            buffer_capacity: 40,
            movement: MovementPlan::OneWay,
            seed: derive_seed(seed, idx as u64),
            ..HmipConfig::default()
        };
        let mut scenario = HmipScenario::build(cfg);
        // Host 0 moves and carries the HP flow; host 1 is parked under the
        // PAR soaking the cell. (With OneWay movement both hosts walk, so
        // park host 1 by replacing its radio's mobility — simplest is to
        // point its flow at it regardless: it hands over too, which only
        // makes the contention harsher and the test stronger.)
        let hp = scenario.add_audio_128k(0, ServiceClass::HighPriority);
        let bits_per_pkt = 160.0 * 8.0;
        let interval = SimDuration::from_secs_f64(bits_per_pkt / (kbps * 1000.0));
        let bg = scenario.add_cbr_flow(1, ServiceClass::BestEffort, 160, interval);
        scenario.set_traffic_window(SimTime::from_millis(500), SimTime::from_millis(13_000));
        scenario.run_until(SimTime::from_secs(16));
        let report =
            fh_traffic::FlowReport::from_sink(scenario.flow_sink(hp), scenario.flow_sent(hp));
        (
            report.lost,
            report.p99_delay.as_millis_f64(),
            scenario.flow_losses(bg),
            scenario.sim.events_processed(),
        )
    });
    for (hp_lost, hp_p99, bg_lost, events) in runs {
        result.hp_losses.push(hp_lost);
        result.hp_p99_ms.push(hp_p99);
        result.bg_losses.push(bg_lost);
        result.events += events;
    }
    result
}

// ---------------------------------------------------------------------
// Chaos sweep — handover robustness vs control-plane loss
// ---------------------------------------------------------------------

/// Robustness metrics at one injected loss probability.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosPoint {
    /// Per-packet loss probability injected on the PAR↔NAR wire and on
    /// both air interfaces.
    pub loss: f64,
    /// Handovers that completed the anticipated (predictive) exchange.
    pub predictive: u64,
    /// Handovers that fell back to the reactive path.
    pub reactive: u64,
    /// Handovers still unresolved when the run ended (wedged).
    pub failed: u64,
    /// Mean LinkDown → MAP-binding-restored latency, in milliseconds
    /// (grows with every retransmission round the signaling needed).
    pub recovery_ms: f64,
    /// Per-class data drops (F1 real-time, F2 high-priority, F3 best
    /// effort), all reasons combined.
    pub class_drops: [u64; 3],
    /// Packets the fault layer itself discarded, control and data.
    pub fault_drops: u64,
    /// Control retransmissions spent (host solicit/FNA + router HI).
    pub retransmissions: u64,
    /// Degradation-ladder steps taken (exchanges that exhausted their
    /// retry budget).
    pub degradations: u64,
    /// Simulator events processed by this point.
    pub events: u64,
}

/// The chaos sweep series plus run accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosSweepResult {
    /// One point per tested loss probability.
    pub points: Vec<ChaosPoint>,
    /// Total simulator events across all points.
    pub events: u64,
}

/// The x-axis of the chaos figure: loss up to the 20 % acceptance bound.
pub const CHAOS_LOSS_PROBS: [f64; 6] = [0.0, 0.025, 0.05, 0.10, 0.15, 0.20];

/// Chaos sweep: seeded fault injection on every control-plane path (the
/// PAR↔NAR wire plus both air interfaces) with hardened signaling
/// retransmission, a ping-pong host and three classified 128 kb/s flows.
/// Each point classifies every handover attempt
/// (predictive / reactive / failed) and must pass the end-of-run
/// packet-conservation audit — a wedged scenario panics here rather than
/// producing a quietly wrong figure.
///
/// A thin adapter over [`crate::plan::reference_chaos`]: the sweep *is*
/// that plan with `loss_probs` as its axis, run through
/// [`crate::plan::run_plan`].
#[must_use]
pub fn chaos_sweep(loss_probs: &[f64], seed: u64, threads: usize) -> ChaosSweepResult {
    let mut plan = crate::plan::reference_chaos().with_seed(seed);
    plan.axis = crate::plan::Axis::Loss(loss_probs.to_vec());
    let outcome = crate::plan::run_plan(&plan, threads).expect_clean();
    let points = outcome
        .points
        .iter()
        .map(|p| ChaosPoint {
            loss: p.loss.unwrap_or(0.0),
            predictive: p.predictive,
            reactive: p.reactive,
            failed: p.failed,
            recovery_ms: p.recovery_ms,
            class_drops: p.class_drops,
            fault_drops: p.fault_drops,
            retransmissions: p.retransmissions,
            degradations: p.degradations,
            events: p.events,
        })
        .collect();
    ChaosSweepResult {
        points,
        events: outcome.events,
    }
}

// ---------------------------------------------------------------------
// Handover storm — admission overload and soft-state survival at scale
// ---------------------------------------------------------------------

/// One scheme's outcome at one storm size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StormScheme {
    /// Scheme label (`NAR` = original FMIPv6, the enhanced scheme's label
    /// for classified dual buffering).
    pub label: String,
    /// Per-class data drops (real-time, high-priority, best effort), all
    /// reasons combined.
    pub class_drops: [u64; 3],
    /// Worst per-flow p99 end-to-end delay per class, in milliseconds.
    pub class_p99_ms: [f64; 3],
    /// Packets released by soft-state lifetime expiry.
    pub expired: u64,
    /// Packets reclaimed from dead or abandoned state.
    pub reclaimed: u64,
    /// Handover attempts still unresolved at the end of the run.
    pub failed: u64,
    /// Host routes the lifetime sweep expired unrefreshed.
    pub routes_expired: u64,
    /// Simulator events processed by the run.
    pub events: u64,
}

/// Both schemes' outcomes at one storm size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StormPoint {
    /// Number of hosts handing over in the storm window.
    pub n_mhs: usize,
    /// Original FMIPv6 (NAR-only buffering).
    pub fmipv6: StormScheme,
    /// The enhanced scheme (classified dual buffering).
    pub enhanced: StormScheme,
}

/// The storm sweep series plus run accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StormSweepResult {
    /// One point per tested storm size.
    pub points: Vec<StormPoint>,
    /// Total simulator events across all points.
    pub events: u64,
}

/// The x-axis of the storm figure: hosts handing over in one window.
pub const STORM_SIZES: [usize; 6] = [4, 8, 12, 16, 20, 24];

/// Handover storm: `n` hosts hand over within a staggered window against
/// routers provisioned for far fewer, for original FMIPv6 (NAR-only)
/// versus the enhanced classified dual buffering — Fig 4.2 at scale, with
/// per-class drops and delays under admission exhaustion. Every point
/// runs with soft-state lifetimes armed and must pass both the
/// packet-conservation audit and the resource-leak audit; both schemes at
/// the same storm size share a seed so they face an identical workload.
///
/// A thin adapter over [`crate::plan::reference_storm`]: the sweep *is*
/// that plan with `sizes` as its axis, run through
/// [`crate::plan::run_plan`].
#[must_use]
pub fn storm_sweep(sizes: &[usize], seed: u64, threads: usize) -> StormSweepResult {
    let mut plan = crate::plan::reference_storm().with_seed(seed);
    plan.axis = crate::plan::Axis::Hosts(sizes.to_vec());
    let outcome = crate::plan::run_plan(&plan, threads).expect_clean();
    let as_scheme = |p: &crate::plan::PointRun| StormScheme {
        label: p.scheme.label().to_owned(),
        class_drops: p.class_drops,
        class_p99_ms: p.class_p99_ms,
        expired: p.expired,
        reclaimed: p.reclaimed,
        failed: p.failed,
        routes_expired: p.routes_expired,
        events: p.events,
    };
    let points = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| StormPoint {
            n_mhs: n,
            fmipv6: as_scheme(&outcome.points[2 * i]),
            enhanced: as_scheme(&outcome.points[2 * i + 1]),
        })
        .collect();
    StormSweepResult {
        points,
        events: outcome.events,
    }
}

// ---------------------------------------------------------------------
// Storm timeline — the observability subsystem's reference export
// ---------------------------------------------------------------------

/// Storm sizes exported as timelines: a small cut of [`STORM_SIZES`] —
/// the export is for *inspecting* handovers, not for the figure's x-axis.
pub const TIMELINE_SIZES: [usize; 2] = [4, 8];

/// A merged Chrome-trace timeline plus run accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineResult {
    /// The Chrome-trace ("trace event format") JSON array — loadable in
    /// Perfetto / `chrome://tracing`. Byte-identical at any thread count.
    pub chrome_json: String,
    /// Total simulator events across all exported points.
    pub events: u64,
}

/// Exports the handover-storm runs as one merged Chrome-trace timeline:
/// each grid point (storm size × scheme) becomes a `pid` partition whose
/// tracks are the simulation's actors, with handover spans, phase marks
/// and per-class buffer events. Points fan across the worker pool and
/// fragments merge in grid order, so the JSON is **byte-identical at any
/// thread count** — CI `cmp`s these bytes across `--threads` values.
/// Seeds derive exactly as in [`storm_sweep`], so a timeline can be laid
/// next to the matching storm CSV row.
///
/// A thin adapter over [`crate::plan::reference_timeline`] run through
/// [`crate::plan::run_plan`].
#[must_use]
pub fn storm_timeline(sizes: &[usize], seed: u64, threads: usize) -> TimelineResult {
    let mut plan = crate::plan::reference_timeline().with_seed(seed);
    plan.axis = crate::plan::Axis::Hosts(sizes.to_vec());
    let outcome = crate::plan::run_plan(&plan, threads).expect_clean();
    TimelineResult {
        chrome_json: outcome.artifact,
        events: outcome.events,
    }
}

/// Control-plane accounting for one handover (§3.3 signaling argument).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SignalingResult {
    /// Control messages sent, by kind.
    pub by_kind: Vec<(String, u64)>,
    /// Total control bytes.
    pub control_bytes: u64,
    /// Messages that carried a piggybacked buffer option.
    pub piggybacked: u64,
    /// Total control messages.
    pub total: u64,
    /// Total simulator events processed by the run.
    pub events: u64,
}

/// Ablation: signaling overhead of one proposed-scheme handover — how much
/// of the buffer management rides piggybacked on FMIPv6 messages.
#[must_use]
pub fn signaling_overhead(seed: u64) -> SignalingResult {
    let cfg = HmipConfig {
        protocol: ProtocolConfig::proposed(),
        n_mhs: 1,
        buffer_capacity: 40,
        movement: MovementPlan::OneWay,
        seed,
        ..HmipConfig::default()
    };
    let mut scenario = HmipScenario::build(cfg);
    let _ = scenario.add_audio_64k(0, ServiceClass::HighPriority);
    scenario.set_traffic_window(SimTime::from_millis(500), SimTime::from_millis(13_000));
    scenario.run_until(SimTime::from_secs(16));
    let stats = &scenario.sim.shared.stats;
    let kinds = [
        "RA",
        "RS",
        "RtSolPr",
        "PrRtAdv",
        "HI",
        "HAck",
        "FBU",
        "FBAck",
        "FNA",
        "BI",
        "BA",
        "BF",
        "BufferFull",
        "BU",
        "BAck",
    ];
    SignalingResult {
        by_kind: kinds
            .iter()
            .map(|&k| (k.to_owned(), stats.control_count(k)))
            .collect(),
        control_bytes: stats.control_bytes,
        piggybacked: stats.piggybacked,
        total: stats.control_total(),
        events: scenario.sim.events_processed(),
    }
}
