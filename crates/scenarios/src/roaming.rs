//! Macro-mobility scenario: roaming across two MAP domains.
//!
//! Chapter 2 of the thesis describes the full Mobile IPv6 hierarchy: a
//! home agent handles global (macro) mobility while MAPs hide local
//! movement. The fast-handover experiments stay inside one MAP domain;
//! this scenario exercises the rest of the stack — a host whose traffic
//! is addressed to its **home address**, crossing from one MAP domain
//! into another:
//!
//! ```text
//!   CN ── HA ──┬── MAP1 ── AR1 (AP0, x = 0)
//!              └── MAP2 ── AR2 (AP1, x = 212)
//!                     AR1 ───── AR2   (inter-AR tunnel link)
//! ```
//!
//! The handover itself is ordinary FMIPv6 with the enhanced buffering;
//! what is new is the aftermath: the host discovers the new MAP from the
//! first router advertisement, forms a fresh RCoA, registers locally, and
//! sends its home agent the only binding update macro movement requires.
//! Until those bindings land, traffic keeps flowing through the *old*
//! chain (HA → MAP1 → the stale LCoA → the PAR's tunnel) — so the
//! crossing is seamless.

use std::net::Ipv6Addr;

use fh_sim::{SimDuration, SimTime, Simulator};

use fh_core::{ArAgent, MhAgent, ProtocolConfig};
use fh_mip::{MipClient, MobilityAnchor};
use fh_net::{doc_subnet, FlowId, LinkSpec, NetMsg, NodeId, ServiceClass};
use fh_traffic::{CbrSource, UdpSink};
use fh_wireless::{MhRadio, Mobility, Position, RadioConfig, WirelessSpec};

use crate::nodes::{ArNode, CnNode, MapNode, MhNode};
use crate::world::World;

/// Configuration for the two-domain roaming scenario.
#[derive(Debug, Clone, Copy)]
pub struct RoamingConfig {
    /// Protocol parameters for the fast handover in the middle.
    pub protocol: ProtocolConfig,
    /// Buffer capacity per access router.
    pub buffer_capacity: usize,
    /// L2 black-out duration.
    pub l2_handoff_delay: SimDuration,
    /// Enable route optimization: the host sends the correspondent binding
    /// updates so traffic bypasses the home agent (§2.2.1 step 2).
    pub route_optimization: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RoamingConfig {
    fn default() -> Self {
        RoamingConfig {
            protocol: ProtocolConfig::proposed(),
            buffer_capacity: 20,
            l2_handoff_delay: SimDuration::from_millis(200),
            route_optimization: false,
            seed: 23,
        }
    }
}

/// The built two-MAP-domain network.
pub struct RoamingScenario {
    /// The simulator, ready to run.
    pub sim: Simulator<NetMsg, World>,
    /// Correspondent node.
    pub cn: NodeId,
    /// Home agent node.
    pub ha: NodeId,
    /// First (starting) mobility anchor point.
    pub map1: NodeId,
    /// Second (destination) mobility anchor point.
    pub map2: NodeId,
    /// Access router in domain 1.
    pub ar1: NodeId,
    /// Access router in domain 2.
    pub ar2: NodeId,
    /// The mobile host.
    pub mh: NodeId,
    /// The host's permanent home address — where the CN sends.
    pub home_addr: Ipv6Addr,
    /// The flow from the CN to the home address.
    pub flow: FlowId,
}

impl RoamingScenario {
    /// Builds the scenario with one 64 kb/s high-priority flow addressed
    /// to the host's home address.
    #[must_use]
    pub fn build(cfg: RoamingConfig) -> Self {
        let mut sim: Simulator<NetMsg, World> = Simulator::new(
            World::new(WirelessSpec {
                bandwidth_bps: 2_000_000,
                delay: SimDuration::from_millis(1),
            }),
            cfg.seed,
        );

        let cn_prefix = doc_subnet(0);
        let home_prefix = doc_subnet(100);
        let map1_prefix = doc_subnet(10);
        let map2_prefix = doc_subnet(20);
        let ar1_prefix = doc_subnet(1);
        let ar2_prefix = doc_subnet(2);
        let cn_addr = cn_prefix.host(1);
        let ha_addr = home_prefix.host(1);
        let map1_addr = map1_prefix.host(1);
        let map2_addr = map2_prefix.host(1);
        let ar1_addr = ar1_prefix.host(1);
        let ar2_addr = ar2_prefix.host(1);
        let iid = 0x77;
        let home_addr = home_prefix.host(iid);
        let rcoa1 = map1_prefix.host(iid);
        let flow = FlowId(1);

        // Nodes.
        let cn = sim.add_actor(Box::new(CnNode::new(
            fh_net::Topology::new().add_node("tmp"),
        )));
        let ha = sim.add_actor(Box::new(MapNode {
            anchor: MobilityAnchor::home_agent(
                fh_net::Topology::new().add_node("tmp"),
                ha_addr,
                home_prefix,
            ),
        }));
        let map1 = sim.add_actor(Box::new(MapNode {
            anchor: MobilityAnchor::map(
                fh_net::Topology::new().add_node("tmp"),
                map1_addr,
                map1_prefix,
            ),
        }));
        let map2 = sim.add_actor(Box::new(MapNode {
            anchor: MobilityAnchor::map(
                fh_net::Topology::new().add_node("tmp"),
                map2_addr,
                map2_prefix,
            ),
        }));
        let ar1 = sim.add_actor(Box::new(ArNode {
            agent: ArAgent::new(
                fh_net::Topology::new().add_node("tmp"),
                ar1_addr,
                ar1_prefix,
                Vec::new(),
                map1_addr,
                cfg.protocol,
                cfg.buffer_capacity,
            ),
        }));
        let ar2 = sim.add_actor(Box::new(ArNode {
            agent: ArAgent::new(
                fh_net::Topology::new().add_node("tmp"),
                ar2_addr,
                ar2_prefix,
                Vec::new(),
                map2_addr,
                cfg.protocol,
                cfg.buffer_capacity,
            ),
        }));
        sim.actor_mut::<MapNode>(ha).expect("ha").anchor.node = ha;
        sim.actor_mut::<MapNode>(map1).expect("map1").anchor.node = map1;
        sim.actor_mut::<MapNode>(map2).expect("map2").anchor.node = map2;

        let ap0 = sim.shared.radio.add_ap(ar1, Position::new(0.0, 0.0), 112.0);
        let ap1 = sim
            .shared
            .radio
            .add_ap(ar2, Position::new(212.0, 0.0), 112.0);
        {
            let a = &mut sim.actor_mut::<ArNode>(ar1).expect("ar1").agent;
            a.set_node(ar1);
            a.set_aps(vec![ap0]);
            a.learn_ap(ap1, ar2_addr);
        }
        {
            let a = &mut sim.actor_mut::<ArNode>(ar2).expect("ar2").agent;
            a.set_node(ar2);
            a.set_aps(vec![ap1]);
            a.learn_ap(ap0, ar1_addr);
        }

        // The mobile host: a real home address, starting in domain 1.
        let mh = sim.add_actor(Box::new(MhNode::new(MhAgent::new(
            fh_net::Topology::new().add_node("tmp"),
            MhRadio::new(
                fh_net::Topology::new().add_node("tmp"),
                Mobility::linear(Position::new(88.0, 0.0), Position::new(212.0, 0.0), 10.0),
                RadioConfig {
                    l2_handoff_delay: cfg.l2_handoff_delay,
                    ..RadioConfig::default()
                },
            ),
            MipClient::new(home_addr, ha_addr, SimDuration::from_secs(600)),
            cfg.protocol,
            iid,
        ))));
        {
            let node = sim.actor_mut::<MhNode>(mh).expect("mh");
            node.agent.node = mh;
            node.agent.radio = MhRadio::new(
                mh,
                Mobility::linear(Position::new(88.0, 0.0), Position::new(212.0, 0.0), 10.0),
                RadioConfig {
                    l2_handoff_delay: cfg.l2_handoff_delay,
                    ..RadioConfig::default()
                },
            );
            node.agent.mip.enter_map_domain(map1_addr, rcoa1);
            node.agent.configure_initial(ap0, ar1_addr, ar1_prefix);
            if cfg.route_optimization {
                node.agent.mip.add_correspondent(cn_addr);
            }
            node.sinks.push(UdpSink::new(flow));
        }

        // Wired topology.
        let inter_ar_link;
        {
            let topo = &mut sim.shared.topo;
            topo.register_node(cn, "cn");
            topo.register_node(ha, "ha");
            topo.register_node(map1, "map1");
            topo.register_node(map2, "map2");
            topo.register_node(ar1, "ar1");
            topo.register_node(ar2, "ar2");
            topo.register_node(mh, "mh");
            let backbone = LinkSpec::new(10_000_000, SimDuration::from_millis(10), 100);
            let distribution = LinkSpec::new(10_000_000, SimDuration::from_millis(5), 100);
            let inter_ar = LinkSpec::new(10_000_000, SimDuration::from_millis(2), 100);
            topo.add_link(cn, ha, backbone);
            topo.add_link(ha, map1, backbone);
            topo.add_link(ha, map2, backbone);
            topo.add_link(map1, ar1, distribution);
            topo.add_link(map2, ar2, distribution);
            inter_ar_link = topo.add_link(ar1, ar2, inter_ar);
            topo.add_prefix(cn_prefix, cn);
            topo.add_prefix(home_prefix, ha);
            topo.add_prefix(map1_prefix, map1);
            topo.add_prefix(map2_prefix, map2);
            topo.add_prefix(ar1_prefix, ar1);
            topo.add_prefix(ar2_prefix, ar2);
            topo.compute_routes();
        }
        sim.actor_mut::<ArNode>(ar1)
            .expect("ar1")
            .agent
            .learn_peer_link(ar2_addr, inter_ar_link);
        sim.actor_mut::<ArNode>(ar2)
            .expect("ar2")
            .agent
            .learn_peer_link(ar1_addr, inter_ar_link);

        // CN traffic to the home address.
        {
            let cn_node = sim.actor_mut::<CnNode>(cn).expect("cn");
            cn_node.node = cn;
            cn_node.addr = Some(cn_addr);
            cn_node.cbr.push(CbrSource::audio_64k(
                flow,
                cn_addr,
                home_addr,
                ServiceClass::HighPriority,
            ));
        }

        for id in [cn, ha, map1, map2, ar1, ar2, mh] {
            sim.schedule(SimTime::ZERO, id, NetMsg::Start);
        }

        RoamingScenario {
            sim,
            cn,
            ha,
            map1,
            map2,
            ar1,
            ar2,
            mh,
            home_addr,
            flow,
        }
    }

    /// Sets the CBR generation window.
    pub fn set_traffic_window(&mut self, start: SimTime, stop: SimTime) {
        let cn = self.sim.actor_mut::<CnNode>(self.cn).expect("cn");
        cn.cbr_start = start;
        cn.cbr_stop = stop;
    }

    /// Packets sent on the home-address flow.
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.sim.actor::<CnNode>(self.cn).expect("cn").cbr[0].sent()
    }

    /// The sink at the mobile host.
    #[must_use]
    pub fn sink(&self) -> &UdpSink {
        &self.sim.actor::<MhNode>(self.mh).expect("mh").sinks[0]
    }

    /// The host agent.
    #[must_use]
    pub fn mh_agent(&self) -> &MhAgent {
        &self.sim.actor::<MhNode>(self.mh).expect("mh").agent
    }

    /// The home agent anchor.
    #[must_use]
    pub fn home_anchor(&self) -> &MobilityAnchor {
        &self.sim.actor::<MapNode>(self.ha).expect("ha").anchor
    }

    /// The first domain's MAP anchor.
    #[must_use]
    pub fn map1_anchor(&self) -> &MobilityAnchor {
        &self.sim.actor::<MapNode>(self.map1).expect("map1").anchor
    }

    /// The second domain's MAP anchor.
    #[must_use]
    pub fn map2_anchor(&self) -> &MobilityAnchor {
        &self.sim.actor::<MapNode>(self.map2).expect("map2").anchor
    }

    /// Runs until `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(t);
    }
}
