//! The composed node actors: correspondent node, MAP, access router and
//! mobile host.
//!
//! Each actor is a thin shell around the protocol components of the lower
//! crates: the [`CnNode`] drives traffic generators and a TCP sender, the
//! [`MapNode`] wraps an HMIPv6 [`MobilityAnchor`], the [`ArNode`] wraps
//! the fast-handover [`ArAgent`], and the [`MhNode`] wraps the [`MhAgent`]
//! plus per-flow sinks and an optional TCP receiver.

use fh_sim::{Actor, SimDuration, SimTime};

use fh_core::{ArAgent, MhAgent};
use fh_mip::{BindingCache, MobilityAnchor};
use fh_net::{
    msg::{AckStatus, BindingKind},
    send_from, start_timer, ControlMsg, NetCtx, NetMsg, NodeId, Packet, Payload, TimerKind,
};
use fh_tcp::{TcpReceiver, TcpSender};
use fh_traffic::{CbrSource, UdpSink};

use crate::world::World;

/// A correspondent node: CBR sources and/or one greedy TCP connection.
pub struct CnNode {
    /// This node's id.
    pub node: NodeId,
    /// CBR flows this node generates.
    pub cbr: Vec<CbrSource>,
    /// When to start generating (lets bindings settle first).
    pub cbr_start: SimTime,
    /// When to stop generating (lets in-flight packets drain before the
    /// harness reads final counters).
    pub cbr_stop: SimTime,
    /// Optional greedy TCP sender (the FTP workload).
    pub tcp: Option<TcpSender>,
    /// When the TCP transfer starts.
    pub tcp_start: SimTime,
    tcp_tick: SimDuration,
    /// Route-optimization bindings learned from mobile peers
    /// (home address → current RCoA).
    pub bindings: BindingCache,
    /// This node's own address (needed to answer binding updates).
    pub addr: Option<std::net::Ipv6Addr>,
    /// Reusable buffer for segments the TCP sender releases — the 500 ms
    /// tick and every ACK run through here, so the capacity is allocated
    /// once per connection lifetime instead of once per event.
    tcp_out: Vec<Packet>,
}

impl CnNode {
    /// Creates a correspondent node with no traffic configured.
    #[must_use]
    pub fn new(node: NodeId) -> Self {
        CnNode {
            node,
            cbr: Vec::new(),
            cbr_start: SimTime::from_millis(500),
            cbr_stop: SimTime::MAX,
            tcp: None,
            tcp_start: SimTime::from_millis(500),
            tcp_tick: SimDuration::from_millis(500),
            bindings: BindingCache::new(),
            addr: None,
            tcp_out: Vec::new(),
        }
    }

    /// Transmits everything the TCP sender queued in `tcp_out`, leaving
    /// the buffer empty but with its capacity intact.
    fn transmit_tcp_out(&mut self, ctx: &mut NetCtx<'_, World>) {
        let mut pkts = std::mem::take(&mut self.tcp_out);
        for p in pkts.drain(..) {
            self.transmit(ctx, p);
        }
        self.tcp_out = pkts;
    }

    fn transmit(&mut self, ctx: &mut NetCtx<'_, World>, mut pkt: Packet) {
        // Route optimization: if a mobile peer told us its current RCoA,
        // address it directly instead of via its home agent.
        if let Some(coa) = self.bindings.lookup(pkt.dst, ctx.now()) {
            pkt.dst = coa;
        }
        let node = self.node;
        let _ = send_from(ctx, node, pkt);
    }
}

impl Actor<NetMsg, World> for CnNode {
    fn handle(&mut self, ctx: &mut NetCtx<'_, World>, msg: NetMsg) {
        match msg {
            NetMsg::Start => {
                for i in 0..self.cbr.len() {
                    // Stagger flows by a few microseconds so same-instant
                    // bursts do not alias.
                    let at = self.cbr_start + SimDuration::from_micros(i as u64 * 7);
                    ctx.send_at(
                        ctx.self_id(),
                        at,
                        NetMsg::Timer {
                            kind: TimerKind::CbrSend,
                            token: i as u64,
                        },
                    );
                }
                if self.tcp.is_some() {
                    let at = self.tcp_start;
                    ctx.send_at(
                        ctx.self_id(),
                        at,
                        NetMsg::Timer {
                            kind: TimerKind::App(0),
                            token: 0,
                        },
                    );
                }
            }
            NetMsg::Timer {
                kind: TimerKind::CbrSend,
                token,
            } => {
                let i = token as usize;
                if i >= self.cbr.len() || ctx.now() >= self.cbr_stop {
                    return;
                }
                let now = ctx.now();
                let pkt = self.cbr[i].next_packet(now);
                let interval = self.cbr[i].interval;
                // Per-flow source accounting for the end-of-run packet
                // conservation audit (sent == delivered + Σ drops).
                ctx.shared.stats.record_sent(pkt.flow);
                self.transmit(ctx, pkt);
                start_timer(ctx, interval, TimerKind::CbrSend, token);
            }
            NetMsg::Timer {
                kind: TimerKind::App(0),
                ..
            } => {
                // TCP connection establishment.
                if let Some(tcp) = self.tcp.as_mut() {
                    let now = ctx.now();
                    tcp.on_start_into(now, &mut self.tcp_out);
                    self.transmit_tcp_out(ctx);
                    start_timer(ctx, self.tcp_tick, TimerKind::TcpTick, 0);
                }
            }
            NetMsg::Timer {
                kind: TimerKind::TcpTick,
                ..
            } => {
                if let Some(tcp) = self.tcp.as_mut() {
                    let now = ctx.now();
                    tcp.on_tick_into(now, &mut self.tcp_out);
                    self.transmit_tcp_out(ctx);
                    start_timer(ctx, self.tcp_tick, TimerKind::TcpTick, 0);
                }
            }
            NetMsg::LinkPacket { pkt, .. } => {
                let node = self.node;
                if let Some(local) = send_from(ctx, node, pkt) {
                    match &local.payload {
                        Payload::Tcp(seg) if seg.flags.ack => {
                            let seg = *seg;
                            if let Some(tcp) = self.tcp.as_mut() {
                                let now = ctx.now();
                                tcp.on_ack_into(now, &seg, &mut self.tcp_out);
                                self.transmit_tcp_out(ctx);
                            }
                        }
                        Payload::Control(msg) => {
                            if let ControlMsg::BindingUpdate {
                                kind: BindingKind::Correspondent,
                                home,
                                coa,
                                lifetime,
                            } = msg.as_ref()
                            {
                                // Route optimization: accept and acknowledge.
                                let (home, coa, lifetime) = (*home, *coa, *lifetime);
                                let now = ctx.now();
                                self.bindings.update(home, coa, lifetime, now);
                                if let Some(my_addr) = self.addr {
                                    let ack = ControlMsg::BindingAck {
                                        kind: BindingKind::Correspondent,
                                        home,
                                        status: AckStatus::Accepted,
                                    };
                                    fh_net::record_control(ctx, &ack);
                                    let reply = Packet::control(my_addr, local.src, ack, now);
                                    self.transmit(ctx, reply);
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
}

/// A router node hosting the HMIPv6 mobility anchor point.
pub struct MapNode {
    /// The anchor component.
    pub anchor: MobilityAnchor,
}

impl Actor<NetMsg, World> for MapNode {
    fn handle(&mut self, ctx: &mut NetCtx<'_, World>, msg: NetMsg) {
        if let NetMsg::LinkPacket { pkt, .. } = msg {
            let node = self.anchor.node;
            if let Some(local) = send_from(ctx, node, pkt) {
                let _ = self.anchor.handle_local(ctx, local);
            }
        }
    }
}

/// An access-router node (fast handover PAR/NAR roles + WLAN AP).
pub struct ArNode {
    /// The protocol agent.
    pub agent: ArAgent,
}

impl Actor<NetMsg, World> for ArNode {
    fn handle(&mut self, ctx: &mut NetCtx<'_, World>, msg: NetMsg) {
        self.agent.handle(ctx, msg);
    }
}

/// A mobile-host node: protocol agent plus application endpoints.
pub struct MhNode {
    /// The fast-handover protocol agent (radio + Mobile IP inside).
    pub agent: MhAgent,
    /// Per-flow UDP sinks.
    pub sinks: Vec<UdpSink>,
    /// Optional TCP receiver (the FTP download endpoint).
    pub tcp_rx: Option<TcpReceiver>,
}

impl MhNode {
    /// Creates a host node around a protocol agent.
    #[must_use]
    pub fn new(agent: MhAgent) -> Self {
        MhNode {
            agent,
            sinks: Vec::new(),
            tcp_rx: None,
        }
    }
}

impl Actor<NetMsg, World> for MhNode {
    fn handle(&mut self, ctx: &mut NetCtx<'_, World>, msg: NetMsg) {
        if let Some(app) = self.agent.handle(ctx, msg) {
            match &app.payload {
                Payload::Tcp(seg) => {
                    if let Some(rx) = self.tcp_rx.as_mut() {
                        let now = ctx.now();
                        if let Some(ack) = rx.on_segment(now, seg) {
                            let _ = self.agent.send_data(ctx, ack);
                        }
                    }
                }
                _ => {
                    let now = ctx.now();
                    ctx.shared.stats.record_delivered(app.flow);
                    for sink in &mut self.sinks {
                        sink.on_packet(now, &app);
                    }
                }
            }
        }
    }
}
