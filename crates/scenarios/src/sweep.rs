//! Deterministic parallel sweep engine.
//!
//! Every multi-point experiment in [`crate::experiments`] is a *sweep*: a
//! grid of independent `(scenario-builder, run_until)` points whose results
//! are read off in grid order. Points share nothing — each builds its own
//! [`crate::HmipScenario`] and derives its own RNG stream via
//! [`fh_sim::derive_seed`] — so they can run on any number of worker
//! threads and still produce **bit-identical** tables: the output vector is
//! indexed by point position, never by completion order.
//!
//! The pool is built on [`std::thread::scope`] — no runtime dependency,
//! no global state, workers borrow the grid directly. Work is handed out
//! through a single atomic cursor, so long points (a 20-host run) do not
//! convoy short ones behind a static partition.
//!
//! # Examples
//!
//! ```
//! use fh_scenarios::sweep::parallel_map;
//!
//! let xs = [1u64, 2, 3, 4, 5];
//! let seq = parallel_map(1, &xs, |i, &x| x * x + i as u64);
//! let par = parallel_map(8, &xs, |i, &x| x * x + i as u64);
//! assert_eq!(seq, par);
//! ```

use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a requested thread count: `0` means "one worker per available
/// core", anything else is taken literally.
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        requested
    }
}

/// Applies `f` to every item and returns the results **in item order**,
/// fanning the calls across up to `threads` scoped worker threads.
///
/// `f` receives `(index, &item)`; deriving any per-point randomness from
/// `index` (not from shared mutable state) is what makes the output
/// independent of the thread count. `threads == 0` resolves to the number
/// of available cores; `threads <= 1` runs inline with no pool at all, so
/// the sequential path stays trivially equivalent.
///
/// # Panics
///
/// Re-raises the first worker panic on the calling thread (the scope joins
/// all workers first), so a failing point behaves like it would in a plain
/// sequential loop.
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = resolve_threads(threads);
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let workers = threads.min(items.len());
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(i, item)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => {
                    for (i, r) in local {
                        slots[i] = Some(r);
                    }
                }
                Err(cause) => panic::resume_unwind(cause),
            }
        }
    });

    slots
        .into_iter()
        .map(|r| r.expect("sweep worker pool covered every point"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_item_order_at_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_map(threads, &items, |_, &x| x * 3 + 1);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn passes_the_point_index_through() {
        let items = ["a", "b", "c", "d"];
        let got = parallel_map(3, &items, |i, &s| format!("{i}{s}"));
        assert_eq!(got, vec!["0a", "1b", "2c", "3d"]);
    }

    #[test]
    fn visits_every_point_exactly_once() {
        let items: Vec<usize> = (0..50).collect();
        let calls = AtomicU64::new(0);
        let got = parallel_map(7, &items, |i, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, x);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 50);
        let distinct: HashSet<usize> = got.iter().copied().collect();
        assert_eq!(distinct.len(), 50);
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(4, &[9u8], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = [1u32, 2, 3];
        assert_eq!(parallel_map(100, &items, |_, &x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn zero_threads_resolves_to_available_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(5), 5);
        let items: Vec<u32> = (0..10).collect();
        let got = parallel_map(0, &items, |_, &x| x + 1);
        assert_eq!(got, (1..=10).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "point 3 exploded")]
    fn worker_panics_propagate_to_the_caller() {
        let items: Vec<usize> = (0..8).collect();
        let _ = parallel_map(2, &items, |i, _| {
            assert!(i != 3, "point {i} exploded");
            i
        });
    }
}
