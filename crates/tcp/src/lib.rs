//! # fh-tcp — TCP Reno with coarse-grained timers
//!
//! A from-scratch TCP Reno implementation in the style of the ns-2 agents
//! the thesis used for its link-layer handoff experiments (§4.2.4):
//!
//! * slow start, congestion avoidance, fast retransmit, fast recovery;
//! * BSD-style **coarse timers**: a 500 ms tick clock, a 1 s minimum
//!   retransmission timeout, exponential backoff, Karn's algorithm;
//! * an immediate-ACK receiver with out-of-order hole tracking;
//! * built-in sequence/throughput tracing for the Fig 4.12–4.14 plots.
//!
//! Both endpoints are sans-I/O components: they consume segments and
//! return packets, so the same code runs on a wired correspondent node and
//! on a mobile host behind a lossy radio.
//!
//! The coarse timers are the whole point of the TCP experiments: a 200 ms
//! radio black-out loses a window of data, and the connection then sits
//! idle for 1–1.5 s waiting for the coarse RTO — unless the access router
//! buffered the packets, in which case the window arrives late but intact
//! and the sender never notices.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod receiver;
mod sender;

pub use receiver::{ReceiverTrace, TcpReceiver};
pub use sender::{SenderTrace, TcpConfig, TcpSender};
