//! The TCP receiver: cumulative, immediate acknowledgements.
//!
//! Mirrors the ns-2 `TCPSink`: every arriving data segment is answered at
//! once with a cumulative ACK (no delayed-ACK timer), out-of-order
//! segments are held and acknowledged with duplicate ACKs, and the
//! in-order byte stream length is what the application sees.

use std::collections::BTreeMap;
use std::net::Ipv6Addr;

use fh_sim::SimTime;
use serde::{Deserialize, Serialize};

use fh_net::{ConnId, FlowId, Packet, ServiceClass, TcpFlags, TcpSegment};

/// Receiver-side trace for the sequence plots.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReceiverTrace {
    /// `(time, segment number)` of every data arrival.
    pub received: Vec<(SimTime, u64)>,
    /// `(time, bytes)` per arrival, for throughput binning (Fig 4.14).
    pub bytes: Vec<(SimTime, u64)>,
}

/// A TCP receiver for one connection.
#[derive(Debug)]
pub struct TcpReceiver {
    conn: ConnId,
    flow: FlowId,
    addr: Ipv6Addr,
    peer: Ipv6Addr,
    class: ServiceClass,
    rcv_nxt: u64,
    out_of_order: BTreeMap<u64, u32>,
    /// Arrival trace.
    pub trace: ReceiverTrace,
    /// Duplicate ACKs generated (a hole was seen).
    pub dupacks_sent: u64,
}

impl TcpReceiver {
    /// Creates a receiver answering to `peer`.
    #[must_use]
    pub fn new(
        conn: ConnId,
        flow: FlowId,
        addr: Ipv6Addr,
        peer: Ipv6Addr,
        class: ServiceClass,
    ) -> Self {
        TcpReceiver {
            conn,
            flow,
            addr,
            peer,
            class,
            rcv_nxt: 0,
            out_of_order: BTreeMap::new(),
            trace: ReceiverTrace::default(),
            dupacks_sent: 0,
        }
    }

    /// The receiver's own address (moves with the mobile host).
    pub fn set_addr(&mut self, addr: Ipv6Addr) {
        self.addr = addr;
    }

    /// Bytes delivered in order to the application so far.
    #[must_use]
    pub fn bytes_in_order(&self) -> u64 {
        self.rcv_nxt
    }

    /// Segments currently parked out of order.
    #[must_use]
    pub fn out_of_order_len(&self) -> usize {
        self.out_of_order.len()
    }

    /// Processes a data segment and returns the ACK to send back.
    /// Returns `None` for segments of other connections.
    pub fn on_segment(&mut self, now: SimTime, seg: &TcpSegment) -> Option<Packet> {
        if seg.conn != self.conn || seg.len == 0 {
            return None;
        }
        let mss = u64::from(seg.len);
        self.trace.received.push((now, seg.seq / mss.max(1)));
        self.trace.bytes.push((now, u64::from(seg.len)));
        let end = seg.seq + u64::from(seg.len);
        if seg.seq <= self.rcv_nxt {
            // In order (or old retransmission): advance and absorb any
            // parked continuation.
            self.rcv_nxt = self.rcv_nxt.max(end);
            while let Some((&s, &l)) = self.out_of_order.iter().next() {
                if s <= self.rcv_nxt {
                    self.rcv_nxt = self.rcv_nxt.max(s + u64::from(l));
                    self.out_of_order.remove(&s);
                } else {
                    break;
                }
            }
        } else {
            // A hole: park and emit a duplicate ACK.
            self.out_of_order.insert(seg.seq, seg.len);
            self.dupacks_sent += 1;
        }
        let ack = TcpSegment {
            conn: self.conn,
            seq: 0,
            ack: self.rcv_nxt,
            len: 0,
            flags: TcpFlags {
                ack: true,
                ..TcpFlags::default()
            },
        };
        Some(Packet::tcp(
            self.flow, self.addr, self.peer, self.class, ack, now,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rx() -> TcpReceiver {
        TcpReceiver::new(
            ConnId(1),
            FlowId(1),
            "2001:db8::2".parse().unwrap(),
            "2001:db8::1".parse().unwrap(),
            ServiceClass::BestEffort,
        )
    }

    fn seg(seq: u64) -> TcpSegment {
        TcpSegment {
            conn: ConnId(1),
            seq,
            ack: 0,
            len: 1000,
            flags: TcpFlags::default(),
        }
    }

    #[test]
    fn in_order_stream_advances() {
        let mut r = rx();
        for i in 0..5 {
            let ack = r
                .on_segment(SimTime::from_millis(i), &seg(i * 1000))
                .unwrap();
            match &ack.payload {
                fh_net::Payload::Tcp(a) => assert_eq!(a.ack, (i + 1) * 1000),
                _ => panic!("expected tcp ack"),
            }
        }
        assert_eq!(r.bytes_in_order(), 5000);
        assert_eq!(r.dupacks_sent, 0);
    }

    #[test]
    fn hole_generates_dupacks_then_heals() {
        let mut r = rx();
        let _ = r.on_segment(SimTime::ZERO, &seg(0));
        // Segment 1 lost; 2, 3, 4 arrive.
        for s in [2000, 3000, 4000] {
            let ack = r.on_segment(SimTime::from_millis(1), &seg(s)).unwrap();
            match &ack.payload {
                fh_net::Payload::Tcp(a) => assert_eq!(a.ack, 1000, "dup ack at the hole"),
                _ => unreachable!(),
            }
        }
        assert_eq!(r.dupacks_sent, 3);
        assert_eq!(r.out_of_order_len(), 3);
        // Retransmission fills the hole: cumulative ack jumps.
        let ack = r.on_segment(SimTime::from_millis(2), &seg(1000)).unwrap();
        match &ack.payload {
            fh_net::Payload::Tcp(a) => assert_eq!(a.ack, 5000),
            _ => unreachable!(),
        }
        assert_eq!(r.out_of_order_len(), 0);
    }

    #[test]
    fn duplicate_arrivals_are_harmless() {
        let mut r = rx();
        let _ = r.on_segment(SimTime::ZERO, &seg(0));
        let ack = r.on_segment(SimTime::from_millis(1), &seg(0)).unwrap();
        match &ack.payload {
            fh_net::Payload::Tcp(a) => assert_eq!(a.ack, 1000),
            _ => unreachable!(),
        }
        assert_eq!(r.bytes_in_order(), 1000);
    }

    #[test]
    fn foreign_and_empty_segments_ignored() {
        let mut r = rx();
        let foreign = TcpSegment {
            conn: ConnId(7),
            ..seg(0)
        };
        assert!(r.on_segment(SimTime::ZERO, &foreign).is_none());
        let empty = TcpSegment { len: 0, ..seg(0) };
        assert!(r.on_segment(SimTime::ZERO, &empty).is_none());
    }

    #[test]
    fn moves_keep_the_connection() {
        let mut r = rx();
        let _ = r.on_segment(SimTime::ZERO, &seg(0));
        r.set_addr("2001:db8:2::9".parse().unwrap());
        let ack = r.on_segment(SimTime::from_millis(1), &seg(1000)).unwrap();
        assert_eq!(ack.src, "2001:db8:2::9".parse::<Ipv6Addr>().unwrap());
        assert_eq!(r.bytes_in_order(), 2000);
    }
}
