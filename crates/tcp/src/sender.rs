//! The TCP Reno sender.
//!
//! A faithful-to-ns-2 Reno sender with BSD-style **coarse-grained timers**:
//! the retransmission clock advances in 500 ms ticks and the retransmission
//! timeout is bounded below by 1 s, which is why a 200 ms link-layer
//! black-out costs a TCP connection 1–1.5 s of idleness (thesis §4.2.4) —
//! unless the access router buffers the packets, in which case nothing is
//! lost and no timeout fires.
//!
//! The sender is sans-I/O: it *returns* packets to transmit; the owning
//! actor decides how they travel. Drive it with:
//!
//! * [`TcpSender::on_start`] once,
//! * [`TcpSender::on_tick`] every [`TcpConfig::tick`],
//! * [`TcpSender::on_ack`] for every ACK segment that arrives.
//!
//! # Examples
//!
//! ```
//! use fh_net::{ConnId, FlowId, ServiceClass};
//! use fh_sim::SimTime;
//! use fh_tcp::{TcpConfig, TcpSender};
//!
//! let src = "2001:db8::1".parse().unwrap();
//! let dst = "2001:db8::2".parse().unwrap();
//! let mut tx = TcpSender::new(ConnId(1), FlowId(1), src, dst,
//!                             ServiceClass::BestEffort, TcpConfig::default());
//! let initial = tx.on_start(SimTime::ZERO);
//! assert_eq!(initial.len(), 1, "slow start begins with one segment");
//! ```

use std::net::Ipv6Addr;

use fh_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use fh_net::{ConnId, FlowId, Packet, ServiceClass, TcpFlags, TcpSegment};

/// TCP parameters (ns-2 flavoured defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpConfig {
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Receiver window in segments.
    pub window: u32,
    /// Coarse timer granularity (500 ms, as in most BSD implementations).
    pub tick: SimDuration,
    /// Minimum retransmission timeout in ticks (2 ticks = 1 s).
    pub min_rto_ticks: u32,
    /// Maximum retransmission timeout in ticks.
    pub max_rto_ticks: u32,
    /// Initial slow-start threshold in segments.
    pub initial_ssthresh: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1000,
            window: 20,
            tick: SimDuration::from_millis(500),
            min_rto_ticks: 2,
            max_rto_ticks: 128,
            initial_ssthresh: 64,
        }
    }
}

/// Sender-side trace for sequence/throughput plots (Figs 4.12–4.14).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SenderTrace {
    /// `(time, segment number)` for every data transmission (including
    /// retransmissions).
    pub sent: Vec<(SimTime, u64)>,
    /// `(time, cumulative ack in segments)` for every ACK processed.
    pub acked: Vec<(SimTime, u64)>,
    /// Times at which an RTO fired.
    pub timeouts: Vec<SimTime>,
    /// Times at which a fast retransmit fired.
    pub fast_retransmits: Vec<SimTime>,
}

/// A TCP Reno sender.
#[derive(Debug)]
pub struct TcpSender {
    conn: ConnId,
    flow: FlowId,
    src: Ipv6Addr,
    /// Current destination address (a mobile peer may move; the owner can
    /// retarget the connection with [`TcpSender::set_dst`]).
    dst: Ipv6Addr,
    class: ServiceClass,
    config: TcpConfig,
    /// Next new sequence number (bytes).
    next_seq: u64,
    /// Oldest unacknowledged byte.
    snd_una: u64,
    cwnd: f64,
    ssthresh: f64,
    dupacks: u32,
    /// End of the window at the time fast recovery was entered.
    recover: u64,
    in_fast_recovery: bool,
    /// Bytes the application still wants to send (`None` = unlimited FTP).
    app_limit: Option<u64>,
    // --- coarse timers ---
    rto_ticks: u32,
    backoff: u32,
    /// Ticks remaining until the retransmission timer fires.
    countdown: Option<u32>,
    /// RTT estimation in ticks (srtt scaled by 8, rttvar scaled by 4,
    /// exactly as 4.3BSD).
    srtt8: i64,
    rttvar4: i64,
    /// The one timed segment (Karn's algorithm): `(first byte, tick sent)`.
    timed: Option<(u64, u64)>,
    tick_count: u64,
    /// Transmission/ack trace.
    pub trace: SenderTrace,
}

impl TcpSender {
    /// Creates a sender for one connection.
    #[must_use]
    pub fn new(
        conn: ConnId,
        flow: FlowId,
        src: Ipv6Addr,
        dst: Ipv6Addr,
        class: ServiceClass,
        config: TcpConfig,
    ) -> Self {
        TcpSender {
            conn,
            flow,
            src,
            dst,
            class,
            config,
            next_seq: 0,
            snd_una: 0,
            cwnd: 1.0,
            ssthresh: f64::from(config.initial_ssthresh),
            dupacks: 0,
            recover: 0,
            in_fast_recovery: false,
            app_limit: None,
            rto_ticks: 6, // 3 s initial RTO, as classic BSD
            backoff: 1,
            countdown: None,
            srtt8: 0,
            rttvar4: 3 * 4, // 1.5 s initial variance, scaled
            timed: None,
            tick_count: 0,
            trace: SenderTrace::default(),
        }
    }

    /// Limits the transfer to `bytes` in total (default: unlimited).
    pub fn set_app_limit(&mut self, bytes: u64) {
        self.app_limit = Some(bytes);
    }

    /// Retargets the connection to a new peer address (Mobile IP keeps the
    /// connection identity; only routing changes).
    pub fn set_dst(&mut self, dst: Ipv6Addr) {
        self.dst = dst;
    }

    /// Current congestion window in segments.
    #[must_use]
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Bytes acknowledged so far.
    #[must_use]
    pub fn acked_bytes(&self) -> u64 {
        self.snd_una
    }

    /// `true` once the (finite) transfer is fully acknowledged.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.app_limit.is_some_and(|limit| self.snd_una >= limit)
    }

    /// Opens the connection: returns the initial window of segments.
    pub fn on_start(&mut self, now: SimTime) -> Vec<Packet> {
        let mut out = Vec::new();
        self.on_start_into(now, &mut out);
        out
    }

    /// Allocation-free [`TcpSender::on_start`]: appends released segments
    /// to `out` (the caller's reusable scratch buffer).
    pub fn on_start_into(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        self.fill_window_into(now, out);
    }

    /// Advances the coarse clock by one tick; may return a timeout
    /// retransmission. Call every [`TcpConfig::tick`].
    pub fn on_tick(&mut self, now: SimTime) -> Vec<Packet> {
        let mut out = Vec::new();
        self.on_tick_into(now, &mut out);
        out
    }

    /// Allocation-free [`TcpSender::on_tick`]: appends to `out`.
    ///
    /// The 500 ms tick fires for every connection for the whole run and
    /// almost always releases nothing — this variant makes the idle tick
    /// a pure decrement, with no `Vec` round-trip to throw away.
    pub fn on_tick_into(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        self.tick_count += 1;
        let Some(cd) = self.countdown else {
            return;
        };
        if self.next_seq <= self.snd_una {
            // Nothing outstanding: a stale timer, disarm instead of firing.
            self.countdown = None;
            return;
        }
        if cd > 1 {
            self.countdown = Some(cd - 1);
            return;
        }
        // Retransmission timeout.
        self.trace.timeouts.push(now);
        let flight = (self.next_seq - self.snd_una) / u64::from(self.config.mss);
        self.ssthresh = (flight as f64 / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.dupacks = 0;
        self.in_fast_recovery = false;
        self.backoff = (self.backoff * 2).min(64);
        self.timed = None; // Karn: do not time retransmissions
        self.arm_timer();
        let pkt = self.make_segment(now, self.snd_una);
        // Go-back-N, as BSD: everything after the hole will be resent as
        // the window reopens in slow start.
        self.next_seq = self.snd_una + u64::from(self.config.mss);
        out.push(pkt);
    }

    /// Processes an acknowledgement; returns any segments released.
    pub fn on_ack(&mut self, now: SimTime, seg: &TcpSegment) -> Vec<Packet> {
        let mut out = Vec::new();
        self.on_ack_into(now, seg, &mut out);
        out
    }

    /// Allocation-free [`TcpSender::on_ack`]: appends to `out`.
    pub fn on_ack_into(&mut self, now: SimTime, seg: &TcpSegment, out: &mut Vec<Packet>) {
        if seg.conn != self.conn || !seg.flags.ack {
            return;
        }
        let mss = u64::from(self.config.mss);
        if seg.ack > self.snd_una {
            // New data acknowledged.
            self.snd_una = seg.ack;
            // After a go-back-N reset an old in-flight ACK can overtake
            // the resend point; never send below the acknowledged edge.
            self.next_seq = self.next_seq.max(self.snd_una);
            self.trace.acked.push((now, seg.ack / mss));
            self.backoff = 1;
            // RTT sample (Karn: only for the timed, un-retransmitted seg).
            if let Some((timed_seq, sent_tick)) = self.timed {
                if seg.ack > timed_seq {
                    let sample = (self.tick_count - sent_tick) as i64;
                    self.update_rtt(sample);
                    self.timed = None;
                }
            }
            if self.in_fast_recovery {
                if seg.ack >= self.recover {
                    self.in_fast_recovery = false;
                    self.cwnd = self.ssthresh;
                    self.dupacks = 0;
                } else {
                    // Reno partial ack: retransmit next hole, deflate.
                    let pkt = self.make_segment(now, self.snd_una);
                    self.cwnd = (self.cwnd - (seg.ack as f64 / mss as f64)).max(1.0);
                    self.arm_or_disarm();
                    out.push(pkt);
                    self.fill_window_into(now, out);
                    return;
                }
            } else if self.cwnd < self.ssthresh {
                self.cwnd += 1.0; // slow start
            } else {
                self.cwnd += 1.0 / self.cwnd; // congestion avoidance
            }
            self.dupacks = 0;
            self.arm_or_disarm();
            self.fill_window_into(now, out);
        } else if seg.ack == self.snd_una && self.next_seq > self.snd_una {
            // Duplicate ack.
            self.dupacks += 1;
            if self.in_fast_recovery {
                self.cwnd += 1.0;
                self.fill_window_into(now, out);
                return;
            }
            if self.dupacks == 3 {
                // Fast retransmit + fast recovery.
                self.trace.fast_retransmits.push(now);
                let flight = (self.next_seq - self.snd_una) as f64 / mss as f64;
                self.ssthresh = (flight / 2.0).max(2.0);
                self.cwnd = self.ssthresh + 3.0;
                self.recover = self.next_seq;
                self.in_fast_recovery = true;
                self.arm_timer();
                let pkt = self.make_segment(now, self.snd_una);
                out.push(pkt);
            }
        }
    }

    fn update_rtt(&mut self, sample_ticks: i64) {
        // 4.3BSD integer RTT filter.
        if self.srtt8 == 0 {
            self.srtt8 = sample_ticks * 8;
            self.rttvar4 = sample_ticks * 2;
        } else {
            let err = sample_ticks - self.srtt8 / 8;
            self.srtt8 = (self.srtt8 + err).max(0);
            // Ceiling division in the decay term so the variance can reach
            // zero on a stable sub-tick path (plain `/4` wedges at 3 and
            // inflates every timeout by 1.5 s).
            self.rttvar4 += err.abs() - (self.rttvar4 + 3) / 4;
            self.rttvar4 = self.rttvar4.max(0);
        }
        let rto = (self.srtt8 / 8 + self.rttvar4) as u32;
        self.rto_ticks = rto.clamp(self.config.min_rto_ticks, self.config.max_rto_ticks);
    }

    fn arm_timer(&mut self) {
        // +1 tick because arming happens between ticks (BSD coarse grain):
        // the effective timeout lies in [rto, rto + tick).
        self.countdown = Some(self.rto_ticks * self.backoff + 1);
    }

    fn arm_or_disarm(&mut self) {
        if self.next_seq > self.snd_una {
            self.arm_timer();
        } else {
            self.countdown = None;
        }
    }

    fn window_bytes(&self) -> u64 {
        let w = self.cwnd.min(f64::from(self.config.window));
        (w as u64) * u64::from(self.config.mss)
    }

    fn fill_window_into(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        let before = out.len();
        let mss = u64::from(self.config.mss);
        loop {
            if self.next_seq >= self.snd_una + self.window_bytes() {
                break;
            }
            if let Some(limit) = self.app_limit {
                if self.next_seq >= limit {
                    break;
                }
            }
            let pkt = self.make_segment(now, self.next_seq);
            if self.timed.is_none() {
                self.timed = Some((self.next_seq, self.tick_count));
            }
            self.next_seq += mss;
            out.push(pkt);
        }
        if out.len() > before && self.countdown.is_none() {
            self.arm_timer();
        }
    }

    fn make_segment(&mut self, now: SimTime, seq: u64) -> Packet {
        let mss = u64::from(self.config.mss);
        self.trace.sent.push((now, seq / mss));
        let seg = TcpSegment {
            conn: self.conn,
            seq,
            ack: 0,
            len: self.config.mss,
            flags: TcpFlags::default(),
        };
        Packet::tcp(self.flow, self.src, self.dst, self.class, seg, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sender() -> TcpSender {
        TcpSender::new(
            ConnId(1),
            FlowId(1),
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
            ServiceClass::BestEffort,
            TcpConfig::default(),
        )
    }

    fn ack(n_segs: u64) -> TcpSegment {
        TcpSegment {
            conn: ConnId(1),
            seq: 0,
            ack: n_segs * 1000,
            len: 0,
            flags: TcpFlags {
                ack: true,
                ..TcpFlags::default()
            },
        }
    }

    #[test]
    fn slow_start_doubles_per_flight() {
        let mut tx = sender();
        let w0 = tx.on_start(SimTime::ZERO);
        assert_eq!(w0.len(), 1);
        let w1 = tx.on_ack(SimTime::from_millis(10), &ack(1));
        assert_eq!(w1.len(), 2, "cwnd 2 after first ack");
        let mut released = 0;
        released += tx.on_ack(SimTime::from_millis(20), &ack(2)).len();
        released += tx.on_ack(SimTime::from_millis(21), &ack(3)).len();
        assert_eq!(released, 4, "cwnd 4 after two more acks");
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let mut tx = sender();
        tx.ssthresh = 2.0;
        let _ = tx.on_start(SimTime::ZERO);
        let _ = tx.on_ack(SimTime::from_millis(1), &ack(1));
        let _ = tx.on_ack(SimTime::from_millis(2), &ack(2));
        let before = tx.cwnd();
        assert!(before >= 2.0);
        let _ = tx.on_ack(SimTime::from_millis(3), &ack(3));
        let growth = tx.cwnd() - before;
        assert!(growth > 0.0 && growth < 1.0, "sub-linear growth {growth}");
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let mut tx = sender();
        tx.cwnd = 8.0;
        let _ = tx.on_start(SimTime::ZERO);
        assert!(tx.trace.sent.len() >= 8);
        // Receiver saw a hole at 0: duplicate acks for 0.
        let dup = TcpSegment {
            conn: ConnId(1),
            seq: 0,
            ack: 0,
            len: 0,
            flags: TcpFlags {
                ack: true,
                ..TcpFlags::default()
            },
        };
        assert!(tx.on_ack(SimTime::from_millis(1), &dup).is_empty());
        assert!(tx.on_ack(SimTime::from_millis(2), &dup).is_empty());
        let rtx = tx.on_ack(SimTime::from_millis(3), &dup);
        assert_eq!(rtx.len(), 1, "fast retransmit");
        assert_eq!(rtx[0].seq, 0);
        assert_eq!(tx.trace.fast_retransmits.len(), 1);
        // Recovery exit on full ack.
        let _ = tx.on_ack(SimTime::from_millis(5), &ack(8));
        assert!(!tx.in_fast_recovery);
        assert_eq!(tx.cwnd(), tx.ssthresh);
    }

    #[test]
    fn coarse_timeout_fires_between_rto_and_rto_plus_tick() {
        let mut tx = sender();
        let _ = tx.on_start(SimTime::ZERO);
        // No acks at all: RTO = 6 ticks (3 s init) + 1 arming tick.
        let mut fired_at_tick = None;
        for tick in 1..=10 {
            let t = SimTime::from_millis(500 * tick);
            if !tx.on_tick(t).is_empty() {
                fired_at_tick = Some(tick);
                break;
            }
        }
        assert_eq!(fired_at_tick, Some(7));
        assert_eq!(tx.trace.timeouts.len(), 1);
        assert_eq!(tx.cwnd(), 1.0);
        assert_eq!(tx.backoff, 2, "exponential backoff engaged");
    }

    #[test]
    fn min_rto_is_one_second() {
        let mut tx = sender();
        let _ = tx.on_start(SimTime::ZERO);
        // Instant ack → tiny RTT sample; RTO must clamp to 2 ticks.
        let _ = tx.on_ack(SimTime::from_millis(1), &ack(1));
        assert_eq!(tx.rto_ticks, 2);
        // After the ack releases data, a timeout needs 2+1 ticks.
        let mut ticks_to_fire = 0;
        for tick in 1..=10 {
            ticks_to_fire = tick;
            if !tx.on_tick(SimTime::from_millis(500 * tick)).is_empty() {
                break;
            }
        }
        assert_eq!(ticks_to_fire, 3, "1 s min RTO + arming tick");
    }

    #[test]
    fn timer_disarms_when_all_data_acked() {
        let mut tx = sender();
        tx.set_app_limit(2000);
        let w = tx.on_start(SimTime::ZERO);
        assert_eq!(w.len(), 1);
        let more = tx.on_ack(SimTime::from_millis(1), &ack(1));
        assert_eq!(more.len(), 1);
        let done = tx.on_ack(SimTime::from_millis(2), &ack(2));
        assert!(done.is_empty());
        assert!(tx.is_complete());
        // No timeout ever fires.
        for tick in 1..=20 {
            assert!(tx.on_tick(SimTime::from_millis(500 * tick)).is_empty());
        }
        assert!(tx.trace.timeouts.is_empty());
    }

    #[test]
    fn window_is_bounded_by_receiver_window() {
        let mut tx = sender();
        tx.cwnd = 100.0;
        let w = tx.on_start(SimTime::ZERO);
        assert_eq!(w.len(), 20, "receiver window caps the burst");
    }

    #[test]
    fn foreign_connection_acks_are_ignored() {
        let mut tx = sender();
        let _ = tx.on_start(SimTime::ZERO);
        let foreign = TcpSegment {
            conn: ConnId(9),
            seq: 0,
            ack: 1000,
            len: 0,
            flags: TcpFlags {
                ack: true,
                ..TcpFlags::default()
            },
        };
        assert!(tx.on_ack(SimTime::ZERO, &foreign).is_empty());
        assert_eq!(tx.acked_bytes(), 0);
    }

    #[test]
    fn retarget_changes_destination() {
        let mut tx = sender();
        let _ = tx.on_start(SimTime::ZERO);
        tx.set_dst("2001:db8::9".parse().unwrap());
        let pkts = tx.on_ack(SimTime::from_millis(1), &ack(1));
        assert!(pkts
            .iter()
            .all(|p| p.dst == "2001:db8::9".parse::<Ipv6Addr>().unwrap()));
    }
}
