//! Property tests: TCP Reno delivers a gapless stream over arbitrary loss.
//!
//! A sender and receiver are joined by a scripted channel that drops
//! packets according to an arbitrary boolean pattern and delivers the rest
//! with a fixed small delay. Whatever the loss pattern, the receiver's
//! in-order stream must be a gapless prefix, and once losses stop the
//! transfer must complete.

use std::collections::VecDeque;

use fh_net::{ConnId, FlowId, Packet, Payload, ServiceClass, TcpSegment};
use fh_sim::{SimDuration, SimTime};
use fh_tcp::{TcpConfig, TcpReceiver, TcpSender};
use proptest::prelude::*;

struct Channel {
    /// In-flight packets as (arrival time, packet).
    queue: VecDeque<(SimTime, Packet)>,
    delay: SimDuration,
}

impl Channel {
    fn new() -> Self {
        Channel {
            queue: VecDeque::new(),
            delay: SimDuration::from_millis(10),
        }
    }
    fn send(&mut self, now: SimTime, pkt: Packet, drop: bool) {
        if !drop {
            self.queue.push_back((now + self.delay, pkt));
        }
    }
    fn deliveries(&mut self, now: SimTime) -> Vec<Packet> {
        let mut out = Vec::new();
        while let Some(&(t, _)) = self.queue.front() {
            if t <= now {
                out.push(self.queue.pop_front().expect("front").1);
            } else {
                break;
            }
        }
        out
    }
}

fn seg_of(pkt: &Packet) -> TcpSegment {
    match &pkt.payload {
        Payload::Tcp(seg) => *seg,
        _ => panic!("non-TCP packet in TCP test"),
    }
}

/// Drives sender/receiver over the lossy channel for up to `ticks`
/// half-second steps (stopping early once the transfer completes);
/// returns (receiver bytes in order, sender acked bytes).
fn drive(total_bytes: u64, losses: &[bool], ticks: usize) -> (u64, u64, TcpReceiver, TcpSender) {
    let src = "2001:db8::1".parse().unwrap();
    let dst = "2001:db8::2".parse().unwrap();
    let mut tx = TcpSender::new(
        ConnId(1),
        FlowId(1),
        src,
        dst,
        ServiceClass::BestEffort,
        TcpConfig::default(),
    );
    tx.set_app_limit(total_bytes);
    let mut rx = TcpReceiver::new(ConnId(1), FlowId(1), dst, src, ServiceClass::BestEffort);
    let mut down = Channel::new(); // data
    let mut up = Channel::new(); // acks
    let mut loss_iter = losses.iter().copied().chain(std::iter::repeat(false));

    let mut now = SimTime::ZERO;
    for p in tx.on_start(now) {
        down.send(now, p, loss_iter.next().expect("infinite"));
    }
    for step in 0..ticks {
        if tx.is_complete() {
            break;
        }
        // Sub-steps: deliver, ack, tick — 10 ms granularity.
        for _ in 0..50 {
            now += SimDuration::from_millis(10);
            for pkt in down.deliveries(now) {
                if let Some(ack) = rx.on_segment(now, &seg_of(&pkt)) {
                    up.send(now, ack, false); // acks ride a clean path
                }
            }
            for pkt in up.deliveries(now) {
                for out in tx.on_ack(now, &seg_of(&pkt)) {
                    down.send(now, out, loss_iter.next().expect("infinite"));
                }
            }
        }
        let _ = step;
        for out in tx.on_tick(now) {
            down.send(now, out, loss_iter.next().expect("infinite"));
        }
    }
    (rx.bytes_in_order(), tx.acked_bytes(), rx, tx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the loss pattern, the receiver's stream is a gapless
    /// prefix and the sender never believes more than was delivered.
    #[test]
    fn stream_is_gapless_under_arbitrary_loss(
        losses in prop::collection::vec(any::<bool>(), 0..120),
        kb in 5u64..60
    ) {
        let total = kb * 1000;
        let (delivered, acked, rx, _tx) = drive(total, &losses, 20);
        prop_assert_eq!(delivered % 1000, 0);
        prop_assert!(acked <= delivered);
        prop_assert!(delivered <= total);
        // No duplicate delivery beyond what retransmission implies: the
        // in-order stream equals rcv_nxt, out-of-order set drains.
        prop_assert!(rx.out_of_order_len() <= 20);
    }

    /// Once losses stop, the whole transfer completes.
    #[test]
    fn transfer_completes_after_losses_cease(
        losses in prop::collection::vec(any::<bool>(), 0..60),
        kb in 5u64..40
    ) {
        let total = kb * 1000;
        // Horizon: consecutive losses of one segment cost exponentially
        // backed-off RTOs (3.5, 6.5, 12.5, … s, capped at ~192 s), exactly
        // as in real TCP — budget for the worst pattern generated.
        let horizon_ticks = 800 + losses.len() * 400;
        let (delivered, acked, _rx, tx) = drive(total, &losses, horizon_ticks);
        prop_assert_eq!(delivered, total, "receiver must get everything");
        prop_assert_eq!(acked, total, "sender must learn it");
        prop_assert!(tx.is_complete());
    }

    /// A loss-free path never times out and never retransmits.
    #[test]
    fn clean_path_never_retransmits(kb in 5u64..80) {
        let total = kb * 1000;
        let (delivered, _acked, rx, tx) = drive(total, &[], 200);
        prop_assert_eq!(delivered, total);
        prop_assert!(tx.trace.timeouts.is_empty());
        prop_assert!(tx.trace.fast_retransmits.is_empty());
        prop_assert_eq!(rx.dupacks_sent, 0);
        // Exactly total/mss transmissions.
        prop_assert_eq!(tx.trace.sent.len() as u64, total / 1000);
    }

    /// The congestion window never exceeds the receiver window bound and
    /// in-flight data never exceeds the advertised window.
    #[test]
    fn window_bound_respected(losses in prop::collection::vec(any::<bool>(), 0..80)) {
        let src = "2001:db8::1".parse().unwrap();
        let dst = "2001:db8::2".parse().unwrap();
        let cfg = TcpConfig::default();
        let mut tx = TcpSender::new(ConnId(1), FlowId(1), src, dst, ServiceClass::BestEffort, cfg);
        let mut rx = TcpReceiver::new(ConnId(1), FlowId(1), dst, src, ServiceClass::BestEffort);
        let mut chan = Channel::new();
        let mut up = Channel::new();
        let mut loss = losses.iter().copied().chain(std::iter::repeat(false));
        let mut now = SimTime::ZERO;
        let mut in_flight_max = 0u64;
        for p in tx.on_start(now) {
            chan.send(now, p, loss.next().expect("inf"));
        }
        for _ in 0..100 {
            for _ in 0..50 {
                now += SimDuration::from_millis(10);
                for pkt in chan.deliveries(now) {
                    if let Some(ack) = rx.on_segment(now, &seg_of(&pkt)) {
                        up.send(now, ack, false);
                    }
                }
                for pkt in up.deliveries(now) {
                    for out in tx.on_ack(now, &seg_of(&pkt)) {
                        chan.send(now, out, loss.next().expect("inf"));
                    }
                }
            }
            for out in tx.on_tick(now) {
                chan.send(now, out, loss.next().expect("inf"));
            }
            in_flight_max = in_flight_max.max(chan.queue.len() as u64);
            prop_assert!(tx.cwnd() >= 1.0, "cwnd floor");
        }
        // Window 20 segments + retransmission in the same tick.
        prop_assert!(in_flight_max <= u64::from(cfg.window) + 1);
    }
}
