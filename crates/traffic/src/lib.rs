//! # fh-traffic — workload generators and sinks
//!
//! The traffic the thesis evaluates with (§4.1–§4.2): constant-bit-rate
//! UDP "audio" flows (160-byte packets every 20 ms for 64 kb/s, every
//! 10 ms for 128 kb/s) and sinks that account per-packet end-to-end delay
//! and per-flow loss. FTP-over-TCP workloads reuse `fh-tcp` directly.
//!
//! Sources and sinks are sans-I/O: the source mints packets on demand and
//! the owning actor schedules/transmits them; the sink consumes arrivals.
//!
//! ## Example
//!
//! ```
//! use fh_net::{FlowId, ServiceClass};
//! use fh_sim::{SimDuration, SimTime};
//! use fh_traffic::{CbrSource, UdpSink};
//!
//! let src = "2001:db8::1".parse().unwrap();
//! let dst = "2001:db8::2".parse().unwrap();
//! let mut cbr = CbrSource::audio_64k(FlowId(1), src, dst, ServiceClass::RealTime);
//! let mut sink = UdpSink::new(FlowId(1));
//!
//! let t0 = SimTime::ZERO;
//! let pkt = cbr.next_packet(t0);
//! sink.on_packet(t0 + SimDuration::from_millis(7), &pkt);
//! assert_eq!(sink.received(), 1);
//! assert_eq!(cbr.interval, SimDuration::from_millis(20));
//! assert_eq!(sink.losses(cbr.sent()), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;

pub use analysis::FlowReport;

use std::net::Ipv6Addr;

use serde::{Deserialize, Serialize};

use fh_net::{FlowId, Packet, ServiceClass};
use fh_sim::{SimDuration, SimTime};

/// A constant-bit-rate UDP source.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CbrSource {
    /// The flow this source feeds.
    pub flow: FlowId,
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address (typically a mobile host's RCoA).
    pub dst: Ipv6Addr,
    /// Class-of-service field stamped on every packet.
    pub class: ServiceClass,
    /// Packet size in bytes (on-wire, headers included).
    pub size: u32,
    /// Inter-packet interval.
    pub interval: SimDuration,
    next_seq: u64,
}

impl CbrSource {
    /// Creates a CBR source.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or `size` is zero.
    #[must_use]
    pub fn new(
        flow: FlowId,
        src: Ipv6Addr,
        dst: Ipv6Addr,
        class: ServiceClass,
        size: u32,
        interval: SimDuration,
    ) -> Self {
        assert!(!interval.is_zero(), "interval must be positive");
        assert!(size > 0, "size must be positive");
        CbrSource {
            flow,
            src,
            dst,
            class,
            size,
            interval,
            next_seq: 0,
        }
    }

    /// The thesis' 64 kb/s audio flow: 160-byte packets every 20 ms.
    #[must_use]
    pub fn audio_64k(flow: FlowId, src: Ipv6Addr, dst: Ipv6Addr, class: ServiceClass) -> Self {
        CbrSource::new(flow, src, dst, class, 160, SimDuration::from_millis(20))
    }

    /// The thesis' 128 kb/s audio flow: 160-byte packets every 10 ms.
    #[must_use]
    pub fn audio_128k(flow: FlowId, src: Ipv6Addr, dst: Ipv6Addr, class: ServiceClass) -> Self {
        CbrSource::new(flow, src, dst, class, 160, SimDuration::from_millis(10))
    }

    /// A CBR flow with the given rate in kilobits/second, using 160-byte
    /// packets (the Fig 4.6 rate sweep).
    ///
    /// # Panics
    ///
    /// Panics if `kbps` is not finite and positive.
    #[must_use]
    pub fn audio_rate(
        flow: FlowId,
        src: Ipv6Addr,
        dst: Ipv6Addr,
        class: ServiceClass,
        kbps: f64,
    ) -> Self {
        assert!(kbps.is_finite() && kbps > 0.0, "rate must be positive");
        let bits_per_pkt = 160.0 * 8.0;
        let pps = kbps * 1000.0 / bits_per_pkt;
        let interval = SimDuration::from_secs_f64(1.0 / pps);
        CbrSource::new(flow, src, dst, class, 160, interval)
    }

    /// Mints the next packet.
    pub fn next_packet(&mut self, now: SimTime) -> Packet {
        let seq = self.next_seq;
        self.next_seq += 1;
        Packet::data(
            self.flow, seq, self.src, self.dst, self.class, self.size, now,
        )
    }

    /// Packets emitted so far.
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.next_seq
    }

    /// Retargets the flow (e.g. after the peer obtained a new address).
    pub fn set_dst(&mut self, dst: Ipv6Addr) {
        self.dst = dst;
    }
}

/// A UDP sink with delay and loss accounting for one flow.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UdpSink {
    /// The flow this sink terminates.
    pub flow: FlowId,
    received: u64,
    duplicate: u64,
    highest_seq: Option<u64>,
    /// `(sequence, end-to-end delay)` per received packet, in arrival
    /// order — the raw material of the Fig 4.7–4.10 delay plots.
    pub delays: Vec<(u64, SimDuration)>,
    /// `(arrival time, bytes)` per received packet, for throughput plots.
    pub bytes: Vec<(SimTime, u64)>,
    seen: std::collections::HashSet<u64>,
}

impl UdpSink {
    /// Creates a sink for `flow`.
    #[must_use]
    pub fn new(flow: FlowId) -> Self {
        UdpSink {
            flow,
            ..UdpSink::default()
        }
    }

    /// Consumes an arrival. Packets of other flows are ignored; duplicate
    /// sequence numbers are counted separately.
    pub fn on_packet(&mut self, now: SimTime, pkt: &Packet) {
        if pkt.flow != self.flow {
            return;
        }
        if !self.seen.insert(pkt.seq) {
            self.duplicate += 1;
            return;
        }
        self.received += 1;
        self.highest_seq = Some(self.highest_seq.map_or(pkt.seq, |h| h.max(pkt.seq)));
        self.delays
            .push((pkt.seq, now.saturating_since(pkt.created)));
        self.bytes.push((now, u64::from(pkt.size)));
    }

    /// Distinct packets received.
    #[must_use]
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Duplicate arrivals (should stay zero in a correct run).
    #[must_use]
    pub fn duplicates(&self) -> u64 {
        self.duplicate
    }

    /// Losses given how many packets the source emitted.
    ///
    /// # Panics
    ///
    /// Panics if `sent` is smaller than the number received (accounting
    /// mismatch — the caller paired the wrong source and sink).
    #[must_use]
    pub fn losses(&self, sent: u64) -> u64 {
        assert!(
            sent >= self.received,
            "sink saw more packets than the source sent"
        );
        sent - self.received
    }

    /// Mean end-to-end delay over everything received.
    #[must_use]
    pub fn mean_delay(&self) -> Option<SimDuration> {
        if self.delays.is_empty() {
            return None;
        }
        let total: u64 = self.delays.iter().map(|&(_, d)| d.as_nanos()).sum();
        Some(SimDuration::from_nanos(total / self.delays.len() as u64))
    }

    /// Largest observed end-to-end delay.
    #[must_use]
    pub fn max_delay(&self) -> Option<SimDuration> {
        self.delays.iter().map(|&(_, d)| d).max()
    }

    /// Delay of the packet with sequence number `seq`, if it arrived.
    #[must_use]
    pub fn delay_of(&self, seq: u64) -> Option<SimDuration> {
        self.delays
            .iter()
            .find(|&&(s, _)| s == seq)
            .map(|&(_, d)| d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv6Addr, Ipv6Addr) {
        (
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
        )
    }

    #[test]
    fn audio_presets_match_the_thesis() {
        let (s, d) = addrs();
        let a = CbrSource::audio_64k(FlowId(1), s, d, ServiceClass::RealTime);
        assert_eq!(a.size, 160);
        assert_eq!(a.interval, SimDuration::from_millis(20));
        let b = CbrSource::audio_128k(FlowId(2), s, d, ServiceClass::RealTime);
        assert_eq!(b.interval, SimDuration::from_millis(10));
        // 64 kb/s through the generic constructor.
        let c = CbrSource::audio_rate(FlowId(3), s, d, ServiceClass::RealTime, 64.0);
        assert_eq!(c.interval, SimDuration::from_millis(20));
    }

    #[test]
    fn sequence_numbers_are_consecutive() {
        let (s, d) = addrs();
        let mut src = CbrSource::audio_64k(FlowId(1), s, d, ServiceClass::BestEffort);
        for i in 0..10 {
            let p = src.next_packet(SimTime::from_millis(i * 20));
            assert_eq!(p.seq, i);
            assert_eq!(p.size, 160);
        }
        assert_eq!(src.sent(), 10);
    }

    #[test]
    fn sink_counts_losses_by_difference() {
        let (s, d) = addrs();
        let mut src = CbrSource::audio_64k(FlowId(1), s, d, ServiceClass::BestEffort);
        let mut sink = UdpSink::new(FlowId(1));
        for i in 0..10u64 {
            let p = src.next_packet(SimTime::from_millis(i * 20));
            if i % 3 != 0 {
                sink.on_packet(SimTime::from_millis(i * 20 + 5), &p);
            }
        }
        assert_eq!(sink.received(), 6);
        assert_eq!(sink.losses(src.sent()), 4);
    }

    #[test]
    fn delay_accounting() {
        let (s, d) = addrs();
        let mut src = CbrSource::audio_64k(FlowId(1), s, d, ServiceClass::RealTime);
        let mut sink = UdpSink::new(FlowId(1));
        let p = src.next_packet(SimTime::from_millis(100));
        sink.on_packet(SimTime::from_millis(112), &p);
        assert_eq!(sink.delay_of(0), Some(SimDuration::from_millis(12)));
        assert_eq!(sink.mean_delay(), Some(SimDuration::from_millis(12)));
        assert_eq!(sink.max_delay(), Some(SimDuration::from_millis(12)));
        assert_eq!(sink.delay_of(99), None);
    }

    #[test]
    fn duplicates_and_foreign_flows_filtered() {
        let (s, d) = addrs();
        let mut src = CbrSource::audio_64k(FlowId(1), s, d, ServiceClass::RealTime);
        let mut other = CbrSource::audio_64k(FlowId(2), s, d, ServiceClass::RealTime);
        let mut sink = UdpSink::new(FlowId(1));
        let p = src.next_packet(SimTime::ZERO);
        sink.on_packet(SimTime::from_millis(1), &p);
        sink.on_packet(SimTime::from_millis(2), &p); // duplicate
        sink.on_packet(SimTime::from_millis(3), &other.next_packet(SimTime::ZERO));
        assert_eq!(sink.received(), 1);
        assert_eq!(sink.duplicates(), 1);
    }

    #[test]
    fn rate_sweep_intervals_shrink() {
        let (s, d) = addrs();
        let rates = [51.2, 85.3, 142.2, 426.7];
        let mut last = SimDuration::MAX;
        for (i, &r) in rates.iter().enumerate() {
            let src = CbrSource::audio_rate(FlowId(i as u32), s, d, ServiceClass::RealTime, r);
            assert!(src.interval < last, "interval must shrink as rate grows");
            last = src.interval;
        }
    }

    #[test]
    #[should_panic(expected = "more packets")]
    fn loss_accounting_mismatch_panics() {
        let (s, d) = addrs();
        let mut src = CbrSource::audio_64k(FlowId(1), s, d, ServiceClass::RealTime);
        let mut sink = UdpSink::new(FlowId(1));
        let p = src.next_packet(SimTime::ZERO);
        sink.on_packet(SimTime::ZERO, &p);
        let _ = sink.losses(0);
    }
}
