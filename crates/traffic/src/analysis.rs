//! Flow-quality analysis: jitter, loss bursts, delay percentiles.
//!
//! [`FlowReport`] condenses a [`UdpSink`](crate::UdpSink)'s raw samples
//! into the numbers a media-quality evaluation reports: RFC 3550
//! interarrival jitter, the longest consecutive loss burst (what a codec's
//! concealment actually has to survive), and delay percentiles.
//!
//! # Examples
//!
//! ```
//! use fh_net::{FlowId, ServiceClass};
//! use fh_sim::{SimDuration, SimTime};
//! use fh_traffic::{CbrSource, FlowReport, UdpSink};
//!
//! let src = "2001:db8::1".parse().unwrap();
//! let dst = "2001:db8::2".parse().unwrap();
//! let mut cbr = CbrSource::audio_64k(FlowId(1), src, dst, ServiceClass::RealTime);
//! let mut sink = UdpSink::new(FlowId(1));
//! for i in 0..50 {
//!     let p = cbr.next_packet(SimTime::from_millis(i * 20));
//!     if i != 7 && i != 8 {               // a 2-packet loss burst
//!         sink.on_packet(SimTime::from_millis(i * 20 + 15), &p);
//!     }
//! }
//! let report = FlowReport::from_sink(&sink, cbr.sent());
//! assert_eq!(report.lost, 2);
//! assert_eq!(report.longest_loss_burst, 2);
//! assert!(report.jitter < SimDuration::from_millis(1)); // perfectly regular
//! ```

use serde::{Deserialize, Serialize};

use fh_sim::SimDuration;

use crate::UdpSink;

/// A condensed quality report for one flow.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowReport {
    /// Packets the source emitted.
    pub sent: u64,
    /// Distinct packets that arrived.
    pub received: u64,
    /// Packets lost.
    pub lost: u64,
    /// Longest run of consecutive sequence numbers lost.
    pub longest_loss_burst: u64,
    /// Number of distinct loss episodes (maximal runs of missing seqs).
    pub loss_bursts: u64,
    /// Mean end-to-end delay.
    pub mean_delay: SimDuration,
    /// Median end-to-end delay.
    pub p50_delay: SimDuration,
    /// 99th-percentile end-to-end delay.
    pub p99_delay: SimDuration,
    /// Largest end-to-end delay.
    pub max_delay: SimDuration,
    /// RFC 3550 §6.4.1 interarrival jitter (smoothed |ΔD|).
    pub jitter: SimDuration,
}

impl FlowReport {
    /// Builds a report from a sink and the source's emitted count.
    ///
    /// # Panics
    ///
    /// Panics if `sent` is smaller than the number the sink received (the
    /// caller paired the wrong source and sink).
    #[must_use]
    pub fn from_sink(sink: &UdpSink, sent: u64) -> Self {
        let received = sink.received();
        let lost = sink.losses(sent);

        // Loss bursts over the sequence space [0, sent).
        let mut seen = vec![false; sent as usize];
        for &(seq, _) in &sink.delays {
            if let Some(slot) = seen.get_mut(seq as usize) {
                *slot = true;
            }
        }
        let mut longest = 0u64;
        let mut bursts = 0u64;
        let mut run = 0u64;
        for got in seen {
            if got {
                if run > 0 {
                    bursts += 1;
                    longest = longest.max(run);
                }
                run = 0;
            } else {
                run += 1;
            }
        }
        if run > 0 {
            bursts += 1;
            longest = longest.max(run);
        }

        // Delay percentiles (delays are recorded in arrival order; sort a
        // copy of the raw nanosecond values).
        let mut delays: Vec<u64> = sink.delays.iter().map(|&(_, d)| d.as_nanos()).collect();
        delays.sort_unstable();
        let pick = |q: f64| -> SimDuration {
            if delays.is_empty() {
                return SimDuration::ZERO;
            }
            let idx = ((delays.len() - 1) as f64 * q).round() as usize;
            SimDuration::from_nanos(delays[idx])
        };
        let mean = if delays.is_empty() {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(delays.iter().sum::<u64>() / delays.len() as u64)
        };

        // RFC 3550 interarrival jitter: J += (|D(i-1, i)| - J) / 16, with
        // D the difference of one-way delays of consecutive arrivals.
        let mut jitter_ns: f64 = 0.0;
        let mut prev: Option<u64> = None;
        for &(_, d) in &sink.delays {
            let d = d.as_nanos();
            if let Some(p) = prev {
                let diff = p.abs_diff(d) as f64;
                jitter_ns += (diff - jitter_ns) / 16.0;
            }
            prev = Some(d);
        }

        FlowReport {
            sent,
            received,
            lost,
            longest_loss_burst: longest,
            loss_bursts: bursts,
            mean_delay: mean,
            p50_delay: pick(0.50),
            p99_delay: pick(0.99),
            max_delay: pick(1.0),
            jitter: SimDuration::from_nanos(jitter_ns.round() as u64),
        }
    }

    /// Loss ratio in `[0, 1]`.
    #[must_use]
    pub fn loss_ratio(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.lost as f64 / self.sent as f64
        }
    }
}

impl std::fmt::Display for FlowReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sent {} lost {} ({:.2}%), worst burst {}, delay p50/p99/max {}/{}/{}, jitter {}",
            self.sent,
            self.lost,
            self.loss_ratio() * 100.0,
            self.longest_loss_burst,
            self.p50_delay,
            self.p99_delay,
            self.max_delay,
            self.jitter
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fh_net::{FlowId, ServiceClass};
    use fh_sim::SimTime;

    use crate::CbrSource;

    fn addrs() -> (std::net::Ipv6Addr, std::net::Ipv6Addr) {
        (
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
        )
    }

    fn run(loss: &[u64], delay_ms: impl Fn(u64) -> u64, n: u64) -> FlowReport {
        let (s, d) = addrs();
        let mut cbr = CbrSource::audio_64k(FlowId(1), s, d, ServiceClass::RealTime);
        let mut sink = UdpSink::new(FlowId(1));
        for i in 0..n {
            let p = cbr.next_packet(SimTime::from_millis(i * 20));
            if !loss.contains(&i) {
                sink.on_packet(SimTime::from_millis(i * 20 + delay_ms(i)), &p);
            }
        }
        FlowReport::from_sink(&sink, cbr.sent())
    }

    #[test]
    fn clean_flow_has_zero_everything() {
        let r = run(&[], |_| 15, 100);
        assert_eq!(r.lost, 0);
        assert_eq!(r.loss_bursts, 0);
        assert_eq!(r.longest_loss_burst, 0);
        assert_eq!(r.mean_delay, SimDuration::from_millis(15));
        assert_eq!(r.p50_delay, SimDuration::from_millis(15));
        assert_eq!(r.p99_delay, SimDuration::from_millis(15));
        assert_eq!(r.jitter, SimDuration::ZERO);
        assert_eq!(r.loss_ratio(), 0.0);
    }

    #[test]
    fn burst_accounting() {
        // Two bursts: {3}, {10, 11, 12}.
        let r = run(&[3, 10, 11, 12], |_| 15, 50);
        assert_eq!(r.lost, 4);
        assert_eq!(r.loss_bursts, 2);
        assert_eq!(r.longest_loss_burst, 3);
    }

    #[test]
    fn tail_loss_counts_as_a_burst() {
        let r = run(&[48, 49], |_| 15, 50);
        assert_eq!(r.loss_bursts, 1);
        assert_eq!(r.longest_loss_burst, 2);
    }

    #[test]
    fn percentiles_order_correctly() {
        // One packet in a hundred suffers a 200 ms buffering delay.
        let r = run(&[], |i| if i == 42 { 200 } else { 15 }, 100);
        assert_eq!(r.p50_delay, SimDuration::from_millis(15));
        assert_eq!(r.max_delay, SimDuration::from_millis(200));
        assert!(r.p99_delay <= r.max_delay);
        assert!(r.mean_delay > SimDuration::from_millis(15));
    }

    #[test]
    fn jitter_tracks_delay_variation() {
        let steady = run(&[], |_| 15, 200);
        let wobbly = run(&[], |i| 15 + (i % 2) * 10, 200);
        assert!(wobbly.jitter > steady.jitter);
        // The RFC filter converges toward the mean |ΔD| = 10 ms.
        assert!(wobbly.jitter > SimDuration::from_millis(5));
        assert!(wobbly.jitter < SimDuration::from_millis(11));
    }

    #[test]
    fn display_is_informative() {
        let r = run(&[5], |_| 15, 10);
        let s = r.to_string();
        assert!(s.contains("lost 1"));
        assert!(s.contains("burst 1"));
    }
}
