//! Mobility anchors: the Mobile IPv6 home agent and the HMIPv6 MAP.
//!
//! Both devices do the same job at different scopes (§2.2.1: the MAP "can be
//! thought of as a local home agent"): they accept binding updates, keep a
//! [`BindingCache`], intercept packets addressed into their prefix, and
//! tunnel them to the registered care-of address with IPv6-in-IPv6
//! encapsulation. [`MobilityAnchor`] implements that shared behaviour; the
//! [`MobilityAnchor::map`] and [`MobilityAnchor::home_agent`] constructors
//! pick which binding kind the anchor serves.
//!
//! The anchor is a *component*: the owning node actor routes packets
//! normally and passes locally-terminating ones to
//! [`MobilityAnchor::handle_local`].

use std::net::Ipv6Addr;

use fh_net::{
    msg::{AckStatus, BindingKind},
    send_control, send_from, ControlMsg, DropReason, NetCtx, NetWorld, NodeId, Packet, Prefix,
};

use crate::binding::BindingCache;

/// A home agent or mobility anchor point component.
#[derive(Debug)]
pub struct MobilityAnchor {
    /// The node this anchor runs on.
    pub node: NodeId,
    /// The anchor's own address (where binding updates are sent).
    pub addr: Ipv6Addr,
    /// The prefix the anchor intercepts (home prefix, or MAP/RCoA prefix).
    pub prefix: Prefix,
    kind: BindingKind,
    /// The binding cache.
    pub cache: BindingCache,
    /// Packets successfully intercepted and tunneled.
    pub tunneled: u64,
    /// Packets for the prefix that had no live binding.
    pub intercept_failures: u64,
}

impl MobilityAnchor {
    /// Creates an HMIPv6 mobility anchor point serving `prefix` (the RCoA
    /// prefix mobile hosts derive their regional addresses from).
    #[must_use]
    pub fn map(node: NodeId, addr: Ipv6Addr, prefix: Prefix) -> Self {
        MobilityAnchor::new(node, addr, prefix, BindingKind::Map)
    }

    /// Creates a Mobile IPv6 home agent serving the home prefix.
    #[must_use]
    pub fn home_agent(node: NodeId, addr: Ipv6Addr, prefix: Prefix) -> Self {
        MobilityAnchor::new(node, addr, prefix, BindingKind::HomeAgent)
    }

    fn new(node: NodeId, addr: Ipv6Addr, prefix: Prefix, kind: BindingKind) -> Self {
        assert!(
            prefix.contains(addr),
            "anchor address must live inside its prefix"
        );
        MobilityAnchor {
            node,
            addr,
            prefix,
            kind,
            cache: BindingCache::new(),
            tunneled: 0,
            intercept_failures: 0,
        }
    }

    /// The binding kind this anchor serves.
    #[must_use]
    pub fn kind(&self) -> BindingKind {
        self.kind
    }

    /// Prefix for this anchor's entries in the shared stats registry.
    fn counter_prefix(&self) -> &'static str {
        match self.kind {
            BindingKind::Map => "map",
            _ => "ha",
        }
    }

    /// Processes a packet that routing delivered to this anchor's node.
    ///
    /// Consumes binding updates addressed to the anchor and packets it can
    /// intercept-and-tunnel; anything else is handed back to the caller.
    pub fn handle_local<S: NetWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        pkt: Packet,
    ) -> Option<Packet> {
        // Binding updates addressed to the anchor itself.
        if pkt.dst == self.addr {
            if let Some(ControlMsg::BindingUpdate {
                kind,
                home,
                coa,
                lifetime,
            }) = pkt.as_control()
            {
                if *kind == self.kind {
                    self.cache.update(*home, *coa, *lifetime, ctx.now());
                    let node = self.node;
                    let reply_to = pkt.src;
                    let ack = ControlMsg::BindingAck {
                        kind: *kind,
                        home: *home,
                        status: AckStatus::Accepted,
                    };
                    let _ = send_control(ctx, node, self.addr, reply_to, ack);
                    return None;
                }
            }
            return Some(pkt);
        }
        // Interception: traffic into the served prefix.
        if self.prefix.contains(pkt.dst) {
            let now = ctx.now();
            if let Some(coa) = self.cache.lookup(pkt.dst, now) {
                let outer = pkt.encapsulate(self.addr, coa);
                self.tunneled += 1;
                if self.tunneled == 1 {
                    // Register the counter on first use so end-of-run
                    // reports list it even when failures never happen.
                    let name = format!("{}.intercept_failures", self.counter_prefix());
                    ctx.shared.stats_mut().bump(&name, 0);
                }
                let name = format!("{}.tunneled", self.counter_prefix());
                ctx.shared.stats_mut().bump(&name, 1);
                let node = self.node;
                if let Some(returned) = send_from(ctx, node, outer) {
                    // The CoA routes back to this very node (the MH is at
                    // home, or misconfigured): deliver the inner packet.
                    return returned.decapsulate();
                }
                return None;
            }
            self.intercept_failures += 1;
            let name = format!("{}.intercept_failures", self.counter_prefix());
            ctx.shared.stats_mut().bump(&name, 1);
            fh_net::record_drop(ctx, pkt.flow, DropReason::Unroutable);
            return None;
        }
        Some(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fh_net::{doc_subnet, FlowId, LinkId, LinkSpec, NetMsg, NetStats, ServiceClass, Topology};
    use fh_sim::{Actor, SimDuration, SimTime, Simulator};

    struct World {
        topo: Topology,
        stats: NetStats,
    }
    impl NetWorld for World {
        fn topology(&self) -> &Topology {
            &self.topo
        }
        fn topology_mut(&mut self) -> &mut Topology {
            &mut self.topo
        }
        fn stats(&self) -> &NetStats {
            &self.stats
        }
        fn stats_mut(&mut self) -> &mut NetStats {
            &mut self.stats
        }
    }

    /// Node that runs a MobilityAnchor.
    struct AnchorNode {
        anchor: Option<MobilityAnchor>,
        swallowed: Vec<Packet>,
    }
    impl Actor<NetMsg, World> for AnchorNode {
        fn handle(&mut self, ctx: &mut NetCtx<'_, World>, msg: NetMsg) {
            if let NetMsg::LinkPacket { pkt, .. } = msg {
                let me = ctx.self_id();
                if let Some(local) = send_from(ctx, me, pkt) {
                    let mut anchor = self.anchor.take().unwrap();
                    if let Some(rest) = anchor.handle_local(ctx, local) {
                        self.swallowed.push(rest);
                    }
                    self.anchor = Some(anchor);
                }
            }
        }
    }

    /// Leaf node recording everything it receives (after decapsulation).
    struct Leaf {
        got: Vec<Packet>,
    }
    impl Actor<NetMsg, World> for Leaf {
        fn handle(&mut self, ctx: &mut NetCtx<'_, World>, msg: NetMsg) {
            if let NetMsg::LinkPacket { pkt, .. } = msg {
                let me = ctx.self_id();
                if let Some(local) = send_from(ctx, me, pkt) {
                    let inner = local.clone().decapsulate().unwrap_or(local);
                    self.got.push(inner);
                }
            }
        }
    }

    /// CN — MAP — AR(+MH as leaf).
    struct Net {
        sim: Simulator<NetMsg, World>,
        cn: NodeId,
        map: NodeId,
        mh: NodeId,
        rcoa: Ipv6Addr,
        lcoa: Ipv6Addr,
        map_addr: Ipv6Addr,
    }

    fn build() -> Net {
        let mut sim = Simulator::new(
            World {
                topo: Topology::new(),
                stats: NetStats::new(),
            },
            11,
        );
        let cn = sim.add_actor(Box::new(Leaf { got: vec![] }));
        let map = sim.add_actor(Box::new(AnchorNode {
            anchor: None,
            swallowed: vec![],
        }));
        let mh = sim.add_actor(Box::new(Leaf { got: vec![] }));
        let t = &mut sim.shared.topo;
        t.register_node(cn, "cn");
        t.register_node(map, "map");
        t.register_node(mh, "mh");
        let spec = LinkSpec::new(100_000_000, SimDuration::from_millis(2), 50);
        t.add_link(cn, map, spec);
        t.add_link(map, mh, spec);
        let map_prefix = doc_subnet(10);
        let map_addr = map_prefix.host(1);
        let lcoa_prefix = doc_subnet(1);
        let lcoa = lcoa_prefix.host(0x99);
        let rcoa = map_prefix.host(0x99);
        t.add_prefix(doc_subnet(0), cn);
        t.add_prefix(map_prefix, map);
        t.add_prefix(lcoa_prefix, mh);
        t.compute_routes();
        let anchor = MobilityAnchor::map(map, map_addr, map_prefix);
        sim.actor_mut::<AnchorNode>(map).unwrap().anchor = Some(anchor);
        Net {
            sim,
            cn,
            map,
            mh,
            rcoa,
            lcoa,
            map_addr,
        }
    }

    fn inject(sim: &mut Simulator<NetMsg, World>, from: NodeId, pkt: Packet) {
        let now = sim.now();
        sim.schedule(
            now,
            from,
            NetMsg::LinkPacket {
                link: LinkId(0),
                pkt,
            },
        );
    }

    #[test]
    fn binding_update_is_acked_and_cached() {
        let mut net = build();
        let bu = ControlMsg::BindingUpdate {
            kind: BindingKind::Map,
            home: net.rcoa,
            coa: net.lcoa,
            lifetime: SimDuration::from_secs(60),
        };
        let pkt = Packet::control(net.lcoa, net.map_addr, bu, SimTime::ZERO);
        inject(&mut net.sim, net.map, pkt);
        net.sim.run();
        let anchor = net
            .sim
            .actor::<AnchorNode>(net.map)
            .unwrap()
            .anchor
            .as_ref()
            .unwrap();
        assert_eq!(anchor.cache.lookup(net.rcoa, net.sim.now()), Some(net.lcoa));
        // The MH leaf received a BindingAck.
        let got = &net.sim.actor::<Leaf>(net.mh).unwrap().got;
        assert_eq!(got.len(), 1);
        assert!(matches!(
            got[0].as_control(),
            Some(ControlMsg::BindingAck {
                status: AckStatus::Accepted,
                ..
            })
        ));
    }

    #[test]
    fn intercepted_traffic_is_tunneled_to_the_lcoa() {
        let mut net = build();
        // Register first.
        let bu = ControlMsg::BindingUpdate {
            kind: BindingKind::Map,
            home: net.rcoa,
            coa: net.lcoa,
            lifetime: SimDuration::from_secs(60),
        };
        inject(
            &mut net.sim,
            net.map,
            Packet::control(net.lcoa, net.map_addr, bu, SimTime::ZERO),
        );
        net.sim.run();
        // CN sends to the RCoA.
        let data = Packet::data(
            FlowId(1),
            5,
            doc_subnet(0).host(1),
            net.rcoa,
            ServiceClass::RealTime,
            160,
            net.sim.now(),
        );
        inject(&mut net.sim, net.cn, data);
        net.sim.run();
        let got = &net.sim.actor::<Leaf>(net.mh).unwrap().got;
        let data_pkts: Vec<_> = got.iter().filter(|p| p.flow == FlowId(1)).collect();
        assert_eq!(data_pkts.len(), 1);
        assert_eq!(data_pkts[0].dst, net.rcoa); // inner packet, post-decap
        assert_eq!(data_pkts[0].seq, 5);
        let anchor = net
            .sim
            .actor::<AnchorNode>(net.map)
            .unwrap()
            .anchor
            .as_ref()
            .unwrap();
        assert_eq!(anchor.tunneled, 1);
    }

    #[test]
    fn unbound_rcoa_traffic_is_dropped() {
        let mut net = build();
        let data = Packet::data(
            FlowId(2),
            0,
            doc_subnet(0).host(1),
            net.rcoa,
            ServiceClass::BestEffort,
            160,
            SimTime::ZERO,
        );
        inject(&mut net.sim, net.cn, data);
        net.sim.run();
        assert!(net.sim.actor::<Leaf>(net.mh).unwrap().got.is_empty());
        assert_eq!(net.sim.shared.stats.drops(DropReason::Unroutable), 1);
        let anchor = net
            .sim
            .actor::<AnchorNode>(net.map)
            .unwrap()
            .anchor
            .as_ref()
            .unwrap();
        assert_eq!(anchor.intercept_failures, 1);
    }

    #[test]
    fn wrong_kind_binding_update_is_not_consumed() {
        let mut net = build();
        let bu = ControlMsg::BindingUpdate {
            kind: BindingKind::HomeAgent, // MAP must not process this
            home: net.rcoa,
            coa: net.lcoa,
            lifetime: SimDuration::from_secs(60),
        };
        inject(
            &mut net.sim,
            net.map,
            Packet::control(net.lcoa, net.map_addr, bu, SimTime::ZERO),
        );
        net.sim.run();
        let node = net.sim.actor::<AnchorNode>(net.map).unwrap();
        assert_eq!(node.swallowed.len(), 1);
        assert!(node.anchor.as_ref().unwrap().cache.is_empty());
    }

    #[test]
    fn deregistration_stops_interception() {
        let mut net = build();
        let register = ControlMsg::BindingUpdate {
            kind: BindingKind::Map,
            home: net.rcoa,
            coa: net.lcoa,
            lifetime: SimDuration::from_secs(60),
        };
        inject(
            &mut net.sim,
            net.map,
            Packet::control(net.lcoa, net.map_addr, register, SimTime::ZERO),
        );
        net.sim.run();
        let deregister = ControlMsg::BindingUpdate {
            kind: BindingKind::Map,
            home: net.rcoa,
            coa: net.lcoa,
            lifetime: SimDuration::ZERO,
        };
        inject(
            &mut net.sim,
            net.map,
            Packet::control(net.lcoa, net.map_addr, deregister, SimTime::ZERO),
        );
        net.sim.run();
        let anchor = net
            .sim
            .actor::<AnchorNode>(net.map)
            .unwrap()
            .anchor
            .as_ref()
            .unwrap();
        assert_eq!(anchor.cache.lookup(net.rcoa, net.sim.now()), None);
    }

    #[test]
    #[should_panic(expected = "inside its prefix")]
    fn anchor_address_outside_prefix_panics() {
        let mut topo = Topology::new();
        let n = topo.add_node("x");
        let _ = MobilityAnchor::map(n, doc_subnet(2).host(1), doc_subnet(1));
    }
}
