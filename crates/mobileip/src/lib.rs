//! # fh-mip — Mobile IPv6 and Hierarchical Mobile IPv6
//!
//! The mobility-management substrate under the fast-handover scheme
//! (thesis chapter 2):
//!
//! * [`BindingCache`] — the mobility binding table of home agents, MAPs and
//!   correspondents, with association lifetimes.
//! * [`MobilityAnchor`] — home agent and HMIPv6 Mobility Anchor Point
//!   behaviour: binding-update processing, interception of traffic into the
//!   served prefix and IPv6-in-IPv6 tunneling toward the registered care-of
//!   address.
//! * [`MipClient`] — the mobile-host side: home address / RCoA / LCoA
//!   bookkeeping, binding-update construction, acknowledgement handling and
//!   registration-delay measurement.
//!
//! Hierarchy is what makes the fast-handover experiments meaningful: with a
//! MAP in the domain, an intra-domain handoff needs only a *local* binding
//! update (LCoA at the MAP), so the residual disruption is exactly the L2
//! black-out plus buffer flushing — the part the thesis' scheme manages.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anchor;
mod binding;
mod client;

pub use anchor::MobilityAnchor;
pub use binding::{BindingCache, BindingEntry};
pub use client::MipClient;
