//! Mobility binding caches.
//!
//! A binding maps a stable address (home address, or RCoA at a MAP) to the
//! mobile host's current care-of address with an association lifetime —
//! the "mobility binding table" of Mobile IP (§2.1.1 of the thesis).
//! Entries expire lazily: lookups take the current time and ignore entries
//! whose lifetime has lapsed.
//!
//! # Examples
//!
//! ```
//! use fh_mip::BindingCache;
//! use fh_sim::{SimDuration, SimTime};
//!
//! let mut cache = BindingCache::new();
//! let home = "2001:db8:100::1".parse().unwrap();
//! let coa = "2001:db8:1::1".parse().unwrap();
//! cache.update(home, coa, SimDuration::from_secs(10), SimTime::ZERO);
//! assert_eq!(cache.lookup(home, SimTime::from_secs(5)), Some(coa));
//! assert_eq!(cache.lookup(home, SimTime::from_secs(11)), None);
//! ```

use std::collections::HashMap;
use std::net::Ipv6Addr;

use fh_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One binding-cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BindingEntry {
    /// Current care-of address.
    pub coa: Ipv6Addr,
    /// Association lifetime from `registered_at`.
    pub lifetime: SimDuration,
    /// When the binding was (re)registered.
    pub registered_at: SimTime,
}

impl BindingEntry {
    /// `true` if the entry is still valid at `now`.
    #[must_use]
    pub fn is_valid_at(&self, now: SimTime) -> bool {
        match self.registered_at.checked_add(self.lifetime) {
            Some(expiry) => now < expiry,
            None => true, // effectively infinite lifetime
        }
    }
}

/// A table of stable-address → care-of-address bindings.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BindingCache {
    entries: HashMap<Ipv6Addr, BindingEntry>,
    /// Total successful registrations (for statistics).
    pub registrations: u64,
}

impl BindingCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        BindingCache::default()
    }

    /// Registers or refreshes a binding. A zero lifetime deregisters
    /// (Mobile IP's deregistration convention).
    ///
    /// Returns the previous care-of address, if one was bound.
    pub fn update(
        &mut self,
        stable: Ipv6Addr,
        coa: Ipv6Addr,
        lifetime: SimDuration,
        now: SimTime,
    ) -> Option<Ipv6Addr> {
        if lifetime.is_zero() {
            return self.entries.remove(&stable).map(|e| e.coa);
        }
        self.registrations += 1;
        self.entries
            .insert(
                stable,
                BindingEntry {
                    coa,
                    lifetime,
                    registered_at: now,
                },
            )
            .map(|e| e.coa)
    }

    /// The current care-of address for `stable`, if a live binding exists.
    #[must_use]
    pub fn lookup(&self, stable: Ipv6Addr, now: SimTime) -> Option<Ipv6Addr> {
        self.entries
            .get(&stable)
            .filter(|e| e.is_valid_at(now))
            .map(|e| e.coa)
    }

    /// Full entry access (valid or not), for inspection.
    #[must_use]
    pub fn entry(&self, stable: Ipv6Addr) -> Option<&BindingEntry> {
        self.entries.get(&stable)
    }

    /// Removes a binding outright. Returns the removed care-of address.
    pub fn remove(&mut self, stable: Ipv6Addr) -> Option<Ipv6Addr> {
        self.entries.remove(&stable).map(|e| e.coa)
    }

    /// Number of entries (including expired ones not yet purged).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every expired entry.
    pub fn purge_expired(&mut self, now: SimTime) {
        self.entries.retain(|_, e| e.is_valid_at(now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u16) -> Ipv6Addr {
        Ipv6Addr::new(0x2001, 0xdb8, n, 0, 0, 0, 0, 1)
    }

    #[test]
    fn update_and_lookup() {
        let mut c = BindingCache::new();
        assert_eq!(
            c.update(a(100), a(1), SimDuration::from_secs(10), SimTime::ZERO),
            None
        );
        assert_eq!(c.lookup(a(100), SimTime::from_secs(1)), Some(a(1)));
        assert_eq!(c.len(), 1);
        assert_eq!(c.registrations, 1);
    }

    #[test]
    fn reregistration_returns_old_coa() {
        let mut c = BindingCache::new();
        c.update(a(100), a(1), SimDuration::from_secs(10), SimTime::ZERO);
        let old = c.update(
            a(100),
            a(2),
            SimDuration::from_secs(10),
            SimTime::from_secs(1),
        );
        assert_eq!(old, Some(a(1)));
        assert_eq!(c.lookup(a(100), SimTime::from_secs(2)), Some(a(2)));
    }

    #[test]
    fn lifetime_expiry_is_lazy() {
        let mut c = BindingCache::new();
        c.update(
            a(100),
            a(1),
            SimDuration::from_secs(10),
            SimTime::from_secs(5),
        );
        assert_eq!(c.lookup(a(100), SimTime::from_secs(14)), Some(a(1)));
        assert_eq!(c.lookup(a(100), SimTime::from_secs(15)), None);
        assert_eq!(c.len(), 1); // still stored
        c.purge_expired(SimTime::from_secs(15));
        assert!(c.is_empty());
    }

    #[test]
    fn zero_lifetime_deregisters() {
        let mut c = BindingCache::new();
        c.update(a(100), a(1), SimDuration::from_secs(10), SimTime::ZERO);
        let removed = c.update(a(100), a(1), SimDuration::ZERO, SimTime::from_secs(1));
        assert_eq!(removed, Some(a(1)));
        assert!(c.is_empty());
        assert_eq!(c.registrations, 1); // deregistration is not a registration
    }

    #[test]
    fn remove_unknown_is_none() {
        let mut c = BindingCache::new();
        assert_eq!(c.remove(a(1)), None);
        assert_eq!(c.lookup(a(1), SimTime::ZERO), None);
        assert_eq!(c.entry(a(1)), None);
    }

    #[test]
    fn near_infinite_lifetime_never_expires() {
        let mut c = BindingCache::new();
        c.update(a(1), a(2), SimDuration::MAX, SimTime::from_secs(1));
        assert_eq!(c.lookup(a(1), SimTime::MAX), Some(a(2)));
    }
}
