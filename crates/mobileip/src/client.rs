//! The mobile host's Mobile IPv6 / HMIPv6 client state.
//!
//! In HMIPv6 a mobile host holds three addresses (§2.2.1): its permanent
//! **home address**, a **regional care-of address** (RCoA) on the MAP's
//! subnet, and an **on-link care-of address** (LCoA) on the current access
//! router's subnet. While roaming inside one MAP domain only the LCoA
//! changes, and only the MAP needs a binding update.
//!
//! [`MipClient`] tracks those addresses and registration state. It *builds*
//! binding-update packets and *consumes* acknowledgements; the owning actor
//! decides how to transmit (over the air, through a tunnel, …), which keeps
//! this crate independent of the radio layer.
//!
//! # Examples
//!
//! ```
//! use fh_mip::MipClient;
//! use fh_sim::{SimDuration, SimTime};
//!
//! let home = "2001:db8:100::9".parse().unwrap();
//! let ha = "2001:db8:100::1".parse().unwrap();
//! let mut client = MipClient::new(home, ha, SimDuration::from_secs(60));
//! client.enter_map_domain("2001:db8:10::1".parse().unwrap(), "2001:db8:10::9".parse().unwrap());
//! client.set_lcoa("2001:db8:1::9".parse().unwrap());
//! let bu = client.make_map_bu(SimTime::ZERO);
//! assert_eq!(bu.dst, "2001:db8:10::1".parse::<std::net::Ipv6Addr>().unwrap());
//! assert!(!client.map_registered());
//! ```

use std::net::Ipv6Addr;

use fh_sim::{SimDuration, SimTime};

use fh_net::{msg::BindingKind, ControlMsg, Packet};

/// Mobile-host-side Mobile IPv6 / HMIPv6 state machine.
#[derive(Debug, Clone)]
pub struct MipClient {
    /// Permanent home address.
    pub home_addr: Ipv6Addr,
    /// The home agent's address.
    pub ha_addr: Ipv6Addr,
    map_addr: Option<Ipv6Addr>,
    rcoa: Option<Ipv6Addr>,
    lcoa: Option<Ipv6Addr>,
    lifetime: SimDuration,
    map_registered: bool,
    ha_registered: bool,
    correspondents: Vec<Ipv6Addr>,
    bu_sent_at: Option<(BindingKind, SimTime)>,
    /// Measured binding-registration delays `(kind, round trip)`.
    pub registration_delays: Vec<(BindingKind, SimDuration)>,
}

impl MipClient {
    /// Creates a client for a host with the given home address and agent.
    #[must_use]
    pub fn new(home_addr: Ipv6Addr, ha_addr: Ipv6Addr, lifetime: SimDuration) -> Self {
        MipClient {
            home_addr,
            ha_addr,
            map_addr: None,
            rcoa: None,
            lcoa: None,
            lifetime,
            map_registered: false,
            ha_registered: false,
            correspondents: Vec::new(),
            bu_sent_at: None,
            registration_delays: Vec::new(),
        }
    }

    /// Enters a MAP domain: adopts the advertised MAP and forms an RCoA.
    /// Resets both registrations (the home agent must learn the new RCoA).
    pub fn enter_map_domain(&mut self, map_addr: Ipv6Addr, rcoa: Ipv6Addr) {
        self.map_addr = Some(map_addr);
        self.rcoa = Some(rcoa);
        self.map_registered = false;
        self.ha_registered = false;
    }

    /// Adopts a new on-link care-of address (after moving to a new access
    /// router inside the same MAP domain). Only the MAP registration is
    /// invalidated — the point of the hierarchical scheme.
    pub fn set_lcoa(&mut self, lcoa: Ipv6Addr) {
        if self.lcoa != Some(lcoa) {
            self.lcoa = Some(lcoa);
            self.map_registered = false;
        }
    }

    /// Current on-link care-of address.
    #[must_use]
    pub fn lcoa(&self) -> Option<Ipv6Addr> {
        self.lcoa
    }

    /// Current regional care-of address.
    #[must_use]
    pub fn rcoa(&self) -> Option<Ipv6Addr> {
        self.rcoa
    }

    /// The current MAP's address.
    #[must_use]
    pub fn map_addr(&self) -> Option<Ipv6Addr> {
        self.map_addr
    }

    /// `true` once the MAP holds a fresh RCoA→LCoA binding.
    #[must_use]
    pub fn map_registered(&self) -> bool {
        self.map_registered
    }

    /// `true` once the home agent holds a fresh home→RCoA binding.
    #[must_use]
    pub fn ha_registered(&self) -> bool {
        self.ha_registered
    }

    /// Builds the local (MAP) binding update: RCoA ↔ LCoA.
    ///
    /// # Panics
    ///
    /// Panics unless [`MipClient::enter_map_domain`] and
    /// [`MipClient::set_lcoa`] have been called.
    #[must_use]
    pub fn make_map_bu(&mut self, now: SimTime) -> Packet {
        let map = self.map_addr.expect("no MAP adopted");
        let rcoa = self.rcoa.expect("no RCoA formed");
        let lcoa = self.lcoa.expect("no LCoA configured");
        self.bu_sent_at = Some((BindingKind::Map, now));
        Packet::control(
            lcoa,
            map,
            ControlMsg::BindingUpdate {
                kind: BindingKind::Map,
                home: rcoa,
                coa: lcoa,
                lifetime: self.lifetime,
            },
            now,
        )
    }

    /// Registers a correspondent node for route optimization: the host
    /// will send it binding updates whenever the RCoA changes, so the
    /// correspondent can address traffic directly to the region instead of
    /// detouring through the home agent (§2.2.1 step 2).
    pub fn add_correspondent(&mut self, cn: Ipv6Addr) {
        if !self.correspondents.contains(&cn) {
            self.correspondents.push(cn);
        }
    }

    /// The registered correspondents.
    #[must_use]
    pub fn correspondents(&self) -> &[Ipv6Addr] {
        &self.correspondents
    }

    /// Builds the route-optimization binding updates (home address ↔ RCoA)
    /// for every registered correspondent.
    ///
    /// Returns an empty vector when no RCoA is formed yet.
    #[must_use]
    pub fn make_correspondent_bus(&mut self, now: SimTime) -> Vec<Packet> {
        let Some(rcoa) = self.rcoa else {
            return Vec::new();
        };
        let home = self.home_addr;
        let lifetime = self.lifetime;
        self.correspondents
            .iter()
            .map(|&cn| {
                Packet::control(
                    rcoa,
                    cn,
                    ControlMsg::BindingUpdate {
                        kind: BindingKind::Correspondent,
                        home,
                        coa: rcoa,
                        lifetime,
                    },
                    now,
                )
            })
            .collect()
    }

    /// Builds the home-agent binding update: home address ↔ RCoA.
    ///
    /// # Panics
    ///
    /// Panics unless an RCoA has been formed.
    #[must_use]
    pub fn make_ha_bu(&mut self, now: SimTime) -> Packet {
        let rcoa = self.rcoa.expect("no RCoA formed");
        self.bu_sent_at = Some((BindingKind::HomeAgent, now));
        Packet::control(
            rcoa,
            self.ha_addr,
            ControlMsg::BindingUpdate {
                kind: BindingKind::HomeAgent,
                home: self.home_addr,
                coa: rcoa,
                lifetime: self.lifetime,
            },
            now,
        )
    }

    /// Consumes a control message if it is a binding acknowledgement for
    /// this host. Returns `true` when consumed.
    pub fn on_control(&mut self, now: SimTime, msg: &ControlMsg) -> bool {
        let ControlMsg::BindingAck { kind, home, status } = msg else {
            return false;
        };
        let ours = match kind {
            BindingKind::Map => Some(*home) == self.rcoa,
            BindingKind::HomeAgent => *home == self.home_addr,
            BindingKind::Correspondent => *home == self.home_addr,
        };
        if !ours {
            return false;
        }
        if status.is_accepted() {
            match kind {
                BindingKind::Map => self.map_registered = true,
                BindingKind::HomeAgent => self.ha_registered = true,
                BindingKind::Correspondent => {}
            }
            if let Some((sent_kind, at)) = self.bu_sent_at.take() {
                if sent_kind == *kind {
                    self.registration_delays.push((*kind, now - at));
                } else {
                    self.bu_sent_at = Some((sent_kind, at));
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fh_net::msg::AckStatus;

    fn client() -> MipClient {
        let mut c = MipClient::new(
            "2001:db8:100::9".parse().unwrap(),
            "2001:db8:100::1".parse().unwrap(),
            SimDuration::from_secs(60),
        );
        c.enter_map_domain(
            "2001:db8:10::1".parse().unwrap(),
            "2001:db8:10::9".parse().unwrap(),
        );
        c.set_lcoa("2001:db8:1::9".parse().unwrap());
        c
    }

    #[test]
    fn map_bu_round_trip_registers_and_measures_delay() {
        let mut c = client();
        let bu = c.make_map_bu(SimTime::from_millis(100));
        assert!(matches!(
            bu.as_control(),
            Some(ControlMsg::BindingUpdate {
                kind: BindingKind::Map,
                ..
            })
        ));
        let ack = ControlMsg::BindingAck {
            kind: BindingKind::Map,
            home: c.rcoa().unwrap(),
            status: AckStatus::Accepted,
        };
        assert!(c.on_control(SimTime::from_millis(108), &ack));
        assert!(c.map_registered());
        assert_eq!(
            c.registration_delays,
            vec![(BindingKind::Map, SimDuration::from_millis(8))]
        );
    }

    #[test]
    fn new_lcoa_invalidates_only_map_registration() {
        let mut c = client();
        let _ = c.make_map_bu(SimTime::ZERO);
        c.on_control(
            SimTime::from_millis(5),
            &ControlMsg::BindingAck {
                kind: BindingKind::Map,
                home: c.rcoa().unwrap(),
                status: AckStatus::Accepted,
            },
        );
        let _ = c.make_ha_bu(SimTime::from_millis(10));
        c.on_control(
            SimTime::from_millis(40),
            &ControlMsg::BindingAck {
                kind: BindingKind::HomeAgent,
                home: c.home_addr,
                status: AckStatus::Accepted,
            },
        );
        assert!(c.map_registered() && c.ha_registered());
        c.set_lcoa("2001:db8:2::9".parse().unwrap());
        assert!(!c.map_registered(), "LCoA change must re-register at MAP");
        assert!(c.ha_registered(), "HA binding survives local movement");
    }

    #[test]
    fn same_lcoa_is_a_no_op() {
        let mut c = client();
        let _ = c.make_map_bu(SimTime::ZERO);
        c.on_control(
            SimTime::from_millis(1),
            &ControlMsg::BindingAck {
                kind: BindingKind::Map,
                home: c.rcoa().unwrap(),
                status: AckStatus::Accepted,
            },
        );
        c.set_lcoa(c.lcoa().unwrap());
        assert!(c.map_registered());
    }

    #[test]
    fn foreign_acks_are_ignored() {
        let mut c = client();
        let foreign = ControlMsg::BindingAck {
            kind: BindingKind::Map,
            home: "2001:db8:10::77".parse().unwrap(),
            status: AckStatus::Accepted,
        };
        assert!(!c.on_control(SimTime::ZERO, &foreign));
        assert!(!c.map_registered());
        assert!(!c.on_control(SimTime::ZERO, &ControlMsg::RouterSolicitation));
    }

    #[test]
    fn rejected_ack_does_not_register() {
        let mut c = client();
        let _ = c.make_map_bu(SimTime::ZERO);
        let nack = ControlMsg::BindingAck {
            kind: BindingKind::Map,
            home: c.rcoa().unwrap(),
            status: AckStatus::Rejected,
        };
        assert!(c.on_control(SimTime::from_millis(1), &nack));
        assert!(!c.map_registered());
        assert!(c.registration_delays.is_empty());
    }

    #[test]
    fn entering_new_map_domain_resets_everything() {
        let mut c = client();
        let _ = c.make_map_bu(SimTime::ZERO);
        c.on_control(
            SimTime::from_millis(1),
            &ControlMsg::BindingAck {
                kind: BindingKind::Map,
                home: c.rcoa().unwrap(),
                status: AckStatus::Accepted,
            },
        );
        c.enter_map_domain(
            "2001:db8:20::1".parse().unwrap(),
            "2001:db8:20::9".parse().unwrap(),
        );
        assert!(!c.map_registered());
        assert!(!c.ha_registered());
        assert_eq!(c.map_addr(), Some("2001:db8:20::1".parse().unwrap()));
    }

    #[test]
    #[should_panic(expected = "no LCoA")]
    fn map_bu_without_lcoa_panics() {
        let mut c = MipClient::new(
            "2001:db8:100::9".parse().unwrap(),
            "2001:db8:100::1".parse().unwrap(),
            SimDuration::from_secs(60),
        );
        c.enter_map_domain(
            "2001:db8:10::1".parse().unwrap(),
            "2001:db8:10::9".parse().unwrap(),
        );
        let _ = c.make_map_bu(SimTime::ZERO);
    }
}
