//! The per-router handover buffer pool.
//!
//! Every access router owns one [`BufferPool`] with a fixed total capacity
//! (in packets — "the buffer size in a router is 50 packets" is how the
//! thesis counts, §3.1.1). Handover sessions, keyed by the mobile host's
//! previous care-of address, reserve space through the HI+BR / HAck+BA
//! negotiation: a **grant** is all-or-nothing (Table 3.2 is a yes/no
//! matrix) and reduces what later sessions can reserve.
//!
//! Admission is two-level: a packet enters only if the whole pool has room
//! **and** its session-level rule passes — the session's grant for
//! reserved traffic, or the administrator threshold `a` for best-effort
//! spill-over at the PAR ("buffer at PAR when PAR > a", Table 3.3).
//!
//! Real-time overflow uses drop-front within the session
//! ([`BufferPool::buffer_realtime_dropfront`]): the oldest real-time packet
//! is evicted so the freshest samples survive.
//!
//! # Storage layout
//!
//! Parked packets live in a struct-of-arrays [`PacketPool`] shared by every
//! session of the router; each session queue is a `VecDeque` of 8-byte
//! generation-checked [`PacketHandle`]s. Admission accounting and the
//! drop-front eviction scan read only the pool's dense hot rows
//! ([`fh_net::PacketSlot`]); a packet's addresses and payload are touched
//! exactly twice — on admit and on the flush/expire/wipe that takes it back
//! out — and reassembly is field-for-field exact, so the layout is
//! invisible to behavior.

use std::collections::{HashMap, VecDeque};
use std::net::Ipv6Addr;

use fh_net::{Packet, PacketHandle, PacketPool, ServiceClass};
use serde::{Deserialize, Serialize};

use crate::policy::AdmissionLimit;

/// Counters the pool maintains across its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferStats {
    /// Packets admitted into the pool.
    pub admitted: u64,
    /// Packets handed back out by `drain` / `release`.
    pub flushed: u64,
    /// Packets rejected at admission.
    pub rejected: u64,
    /// Real-time packets evicted by drop-front.
    pub evicted_realtime: u64,
    /// Packets discarded because their session expired.
    pub expired: u64,
    /// Packets discarded by a node fault (router crash wiped the pool).
    pub reclaimed: u64,
    /// Packets sacrificed by the overload shed ladder (byte pressure).
    pub shed: u64,
}

/// Index of an effective class into per-class arrays: `[RT, HP, BE]`.
fn class_index(class: ServiceClass) -> usize {
    match class.effective() {
        ServiceClass::RealTime => 0,
        ServiceClass::HighPriority => 1,
        _ => 2,
    }
}

#[derive(Debug, Default)]
struct SessionBuffer {
    granted: u32,
    /// Per-class shares when the precise-negotiation extension is active.
    class_grants: Option<[u32; 3]>,
    /// Packets currently queued, per class (`[RT, HP, BE]`).
    class_counts: [u32; 3],
    /// FIFO of handles into the router-wide packet arena.
    queue: VecDeque<PacketHandle>,
}

impl SessionBuffer {
    fn note_admit(&mut self, class: ServiceClass) {
        self.class_counts[class_index(class)] += 1;
    }
    fn note_remove(&mut self, class: ServiceClass) {
        let k = class_index(class);
        self.class_counts[k] = self.class_counts[k].saturating_sub(1);
    }
    /// `true` if the session-level rule admits one more packet of `class`.
    fn class_has_room(&self, class: ServiceClass) -> bool {
        match self.class_grants {
            Some(grants) => {
                let k = class_index(class);
                self.class_counts[k] < grants[k]
            }
            None => self.queue.len() < self.granted as usize,
        }
    }
}

/// A fixed-capacity handover buffer shared by all sessions at one router.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    used: usize,
    granted_total: usize,
    /// Byte budget across all parked packets; `usize::MAX` disables byte
    /// accounting at admission (the packet cap still applies).
    byte_budget: usize,
    /// Bytes currently parked across all sessions.
    bytes_used: usize,
    /// High-water mark of `bytes_used` over the pool's lifetime.
    peak_bytes: usize,
    sessions: HashMap<Ipv6Addr, SessionBuffer>,
    /// Struct-of-arrays storage for every parked packet, shared by all
    /// sessions; session queues hold handles into it.
    arena: PacketPool,
    /// Lifetime counters.
    pub stats: BufferStats,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` packets, with byte
    /// accounting off (no byte budget).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BufferPool {
            capacity,
            used: 0,
            granted_total: 0,
            byte_budget: usize::MAX,
            bytes_used: 0,
            peak_bytes: 0,
            sessions: HashMap::new(),
            arena: PacketPool::new(),
            stats: BufferStats::default(),
        }
    }

    /// Arms (or disarms, with `usize::MAX`) the pool's byte budget. Every
    /// admission path then also requires `bytes_used + pkt.size` to stay
    /// within the budget, so grants and spill-over are judged in bytes as
    /// well as packets. Zero is treated as "off" (the knob's default in
    /// configs), not as an always-full pool.
    pub fn set_byte_budget(&mut self, budget: usize) {
        self.byte_budget = if budget == 0 { usize::MAX } else { budget };
    }

    /// The armed byte budget (`usize::MAX` when byte accounting is off).
    #[must_use]
    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }

    /// Bytes currently parked across all sessions.
    #[must_use]
    pub fn bytes_used(&self) -> usize {
        self.bytes_used
    }

    /// The lifetime high-water mark of [`BufferPool::bytes_used`].
    #[must_use]
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// `true` if one more packet of `size` bytes fits the byte budget.
    fn has_byte_room(&self, size: u32) -> bool {
        self.byte_budget.saturating_sub(self.bytes_used) >= size as usize
    }

    fn note_bytes_in(&mut self, size: u32) {
        self.bytes_used += size as usize;
        self.peak_bytes = self.peak_bytes.max(self.bytes_used);
    }

    fn note_bytes_out(&mut self, size: u32) {
        self.bytes_used = self.bytes_used.saturating_sub(size as usize);
    }

    /// Total capacity in packets.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Packets currently queued across all sessions.
    #[must_use]
    pub fn used(&self) -> usize {
        self.used
    }

    /// Capacity not currently occupied by queued packets.
    #[must_use]
    pub fn free_space(&self) -> usize {
        self.capacity.saturating_sub(self.used)
    }

    /// Capacity not yet promised to any session.
    #[must_use]
    pub fn unreserved(&self) -> usize {
        self.capacity.saturating_sub(self.granted_total)
    }

    /// Attempts to reserve `requested` packets for a new session.
    ///
    /// Grants are all-or-nothing, mirroring the yes/no negotiation of
    /// Table 3.2: the full request if enough unreserved capacity remains,
    /// otherwise zero. Either way the session is created (a zero-grant
    /// session can still receive threshold-governed spill-over).
    ///
    /// Re-granting an existing session replaces its reservation.
    pub fn grant(&mut self, key: Ipv6Addr, requested: u32) -> u32 {
        if let Some(old) = self.sessions.get(&key) {
            self.granted_total = self.granted_total.saturating_sub(old.granted as usize);
        }
        let granted = if requested as usize <= self.unreserved() {
            requested
        } else {
            0
        };
        self.granted_total += granted as usize;
        let entry = self.sessions.entry(key).or_default();
        entry.granted = granted;
        entry.class_grants = None;
        granted
    }

    /// Reserves per-class shares for a session (the precise-negotiation
    /// extension). Classes are granted in priority order — high priority,
    /// real time, best effort — each receiving as much of its request as
    /// the unreserved capacity still allows.
    ///
    /// Returns the granted shares, `[RT, HP, BE]`.
    pub fn grant_per_class(&mut self, key: Ipv6Addr, requested: [u32; 3]) -> [u32; 3] {
        if let Some(old) = self.sessions.get(&key) {
            self.granted_total = self.granted_total.saturating_sub(old.granted as usize);
        }
        let mut granted = [0u32; 3];
        let mut unreserved = self.capacity.saturating_sub(self.granted_total) as u32;
        // Priority order: HP (1), RT (0), BE (2).
        for &k in &[1usize, 0, 2] {
            let g = requested[k].min(unreserved);
            granted[k] = g;
            unreserved -= g;
        }
        let total: u32 = granted.iter().sum();
        self.granted_total += total as usize;
        let entry = self.sessions.entry(key).or_default();
        entry.granted = total;
        entry.class_grants = Some(granted);
        granted
    }

    /// Opens a session with no reservation (for pure spill-over buffering).
    /// No-op if the session already exists.
    pub fn open_unreserved(&mut self, key: Ipv6Addr) {
        self.sessions.entry(key).or_default();
    }

    /// `true` if a session exists for `key`.
    #[must_use]
    pub fn has_session(&self, key: Ipv6Addr) -> bool {
        self.sessions.contains_key(&key)
    }

    /// The session's reservation (0 if none or no session).
    #[must_use]
    pub fn granted(&self, key: Ipv6Addr) -> u32 {
        self.sessions.get(&key).map_or(0, |s| s.granted)
    }

    /// Packets currently queued for `key`.
    #[must_use]
    pub fn session_len(&self, key: Ipv6Addr) -> usize {
        self.sessions.get(&key).map_or(0, |s| s.queue.len())
    }

    /// Tries to queue `pkt` for `key` under the given admission rule.
    ///
    /// # Errors
    ///
    /// Returns the packet back if there is no session, the pool is full,
    /// or the session rule rejects it.
    #[allow(clippy::result_large_err)] // the Err *is* the rejected packet
    pub fn try_buffer(
        &mut self,
        key: Ipv6Addr,
        pkt: Packet,
        limit: AdmissionLimit,
    ) -> Result<(), Packet> {
        let free = self.free_space();
        let byte_ok = self.has_byte_room(pkt.size);
        let Some(session) = self.sessions.get_mut(&key) else {
            self.stats.rejected += 1;
            return Err(pkt);
        };
        let ok = free > 0
            && byte_ok
            && match limit {
                AdmissionLimit::Grant => session.class_has_room(pkt.class),
                AdmissionLimit::Threshold(a) => free > a as usize,
                AdmissionLimit::PoolOnly => true,
            };
        if !ok {
            self.stats.rejected += 1;
            return Err(pkt);
        }
        session.note_admit(pkt.class);
        let size = pkt.size;
        let handle = self.arena.insert(pkt);
        session.queue.push_back(handle);
        self.used += 1;
        self.note_bytes_in(size);
        self.stats.admitted += 1;
        Ok(())
    }

    /// Admits a real-time packet, evicting the oldest buffered real-time
    /// packet of the same session if the session is out of space
    /// (Table 3.3 cases 1.a / 2.a).
    ///
    /// Returns the evicted packet, if any.
    ///
    /// # Errors
    ///
    /// Returns the incoming packet back if it cannot be admitted even by
    /// eviction (no session, or no real-time packet to evict while full).
    #[allow(clippy::result_large_err)] // the Err *is* the rejected packet
    pub fn buffer_realtime_dropfront(
        &mut self,
        key: Ipv6Addr,
        pkt: Packet,
    ) -> Result<Option<Packet>, Packet> {
        match self.try_buffer(key, pkt, AdmissionLimit::Grant) {
            Ok(()) => Ok(None),
            Err(pkt) => {
                let Some(session) = self.sessions.get_mut(&key) else {
                    return Err(pkt);
                };
                // Drop-front scan over the dense hot rows only; payloads
                // and addresses stay untouched in the cold columns.
                let oldest_rt = session.queue.iter().position(|&h| {
                    self.arena
                        .slot(h)
                        .is_some_and(|s| s.effective_class() == ServiceClass::RealTime)
                });
                match oldest_rt {
                    Some(idx) => {
                        // The swap must still fit the byte budget once the
                        // victim's bytes are given back.
                        let victim_size = self.arena.slot(session.queue[idx]).map_or(0, |s| s.size);
                        let room = self
                            .byte_budget
                            .saturating_sub(self.bytes_used.saturating_sub(victim_size as usize));
                        if room < pkt.size as usize {
                            return Err(pkt);
                        }
                        let evicted_h = session.queue.remove(idx).expect("index in range");
                        let evicted = self.arena.remove(evicted_h).expect("live handle");
                        session.note_remove(evicted.class);
                        session.note_admit(pkt.class);
                        let size = pkt.size;
                        let handle = self.arena.insert(pkt);
                        session.queue.push_back(handle);
                        self.note_bytes_out(evicted.size);
                        self.note_bytes_in(size);
                        // Rejection was counted inside try_buffer; the packet
                        // did get admitted after all, so reclassify it.
                        self.stats.rejected = self.stats.rejected.saturating_sub(1);
                        self.stats.admitted += 1;
                        self.stats.evicted_realtime += 1;
                        Ok(Some(evicted))
                    }
                    None => Err(pkt),
                }
            }
        }
    }

    /// Removes and returns the oldest queued packet of the session (one
    /// step of a paced flush). Counts as flushed.
    pub fn pop_front(&mut self, key: Ipv6Addr) -> Option<Packet> {
        let session = self.sessions.get_mut(&key)?;
        let handle = session.queue.pop_front()?;
        let pkt = self.arena.remove(handle).expect("live handle");
        session.note_remove(pkt.class);
        self.used = self.used.saturating_sub(1);
        self.note_bytes_out(pkt.size);
        self.stats.flushed += 1;
        Some(pkt)
    }

    /// Empties the session's queue (the BF flush), keeping the session and
    /// its reservation alive.
    pub fn drain(&mut self, key: Ipv6Addr) -> Vec<Packet> {
        let Some(session) = self.sessions.get_mut(&key) else {
            return Vec::new();
        };
        let pkts: Vec<Packet> = session
            .queue
            .drain(..)
            .map(|h| self.arena.remove(h).expect("live handle"))
            .collect();
        session.class_counts = [0; 3];
        self.used = self.used.saturating_sub(pkts.len());
        let bytes: usize = pkts.iter().map(|p| p.size as usize).sum();
        self.bytes_used = self.bytes_used.saturating_sub(bytes);
        self.stats.flushed += pkts.len() as u64;
        pkts
    }

    /// Flushes and closes the session, releasing its reservation.
    pub fn release(&mut self, key: Ipv6Addr) -> Vec<Packet> {
        let pkts = self.drain(key);
        if let Some(session) = self.sessions.remove(&key) {
            self.granted_total = self.granted_total.saturating_sub(session.granted as usize);
        }
        pkts
    }

    /// Closes the session discarding its contents (reservation lifetime
    /// expiry). Returns the discarded packets so the caller can attribute
    /// the losses to their flows.
    pub fn expire(&mut self, key: Ipv6Addr) -> Vec<Packet> {
        let Some(session) = self.sessions.remove(&key) else {
            return Vec::new();
        };
        let pkts: Vec<Packet> = session
            .queue
            .into_iter()
            .map(|h| self.arena.remove(h).expect("live handle"))
            .collect();
        self.used = self.used.saturating_sub(pkts.len());
        let bytes: usize = pkts.iter().map(|p| p.size as usize).sum();
        self.bytes_used = self.bytes_used.saturating_sub(bytes);
        self.granted_total = self.granted_total.saturating_sub(session.granted as usize);
        self.stats.expired += pkts.len() as u64;
        pkts
    }

    /// Number of open sessions (reserved or not) — the leak auditor's
    /// view of live buffer state.
    #[must_use]
    pub fn live_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Crash semantics: closes every session, releases every reservation
    /// and returns all queued packets so the caller can attribute them as
    /// reclaimed. Counts into `stats.reclaimed`.
    pub fn wipe_all(&mut self) -> Vec<Packet> {
        let mut pkts = Vec::with_capacity(self.used);
        let mut keys: Vec<Ipv6Addr> = self.sessions.keys().copied().collect();
        keys.sort();
        for k in keys {
            let session = self.sessions.remove(&k).expect("key just listed");
            pkts.extend(
                session
                    .queue
                    .into_iter()
                    .map(|h| self.arena.remove(h).expect("live handle")),
            );
        }
        self.used = 0;
        self.granted_total = 0;
        self.bytes_used = 0;
        self.stats.reclaimed += pkts.len() as u64;
        pkts
    }

    /// One rung of the shed ladder: removes the oldest parked packet whose
    /// effective class is `class`, searching every session. "Oldest" is by
    /// creation time with the session key as the deterministic tie-break,
    /// so sheds replay identically at any thread count. Counts into
    /// `stats.shed`; the caller records the drop and the trace event.
    ///
    /// Returns the shed packet and the session it was parked under.
    pub fn shed_class_front(&mut self, class: ServiceClass) -> Option<(Ipv6Addr, Packet)> {
        let want = class.effective();
        let mut best: Option<(fh_sim::SimTime, Ipv6Addr, usize)> = None;
        for (&k, session) in &self.sessions {
            // Front-to-back first match is the session's oldest of `class`
            // (queues are FIFO).
            let Some(idx) = session.queue.iter().position(|&h| {
                self.arena
                    .slot(h)
                    .is_some_and(|s| s.effective_class() == want)
            }) else {
                continue;
            };
            let created = self
                .arena
                .slot(session.queue[idx])
                .expect("live handle")
                .created;
            let better = match best {
                None => true,
                Some((t, bk, _)) => created < t || (created == t && k < bk),
            };
            if better {
                best = Some((created, k, idx));
            }
        }
        let (_, k, idx) = best?;
        let session = self.sessions.get_mut(&k).expect("key just found");
        let handle = session.queue.remove(idx).expect("index in range");
        let pkt = self.arena.remove(handle).expect("live handle");
        session.note_remove(pkt.class);
        self.used = self.used.saturating_sub(1);
        self.note_bytes_out(pkt.size);
        self.stats.shed += 1;
        Some((k, pkt))
    }

    /// The buffering session whose front-of-queue packet has waited the
    /// longest (ties broken by key) — the shed ladder's force-flush target.
    #[must_use]
    pub fn oldest_buffering_session(&self) -> Option<Ipv6Addr> {
        let mut best: Option<(fh_sim::SimTime, Ipv6Addr)> = None;
        for (&k, session) in &self.sessions {
            let Some(&front) = session.queue.front() else {
                continue;
            };
            let created = self.arena.slot(front).expect("live handle").created;
            let better = match best {
                None => true,
                Some((t, bk)) => created < t || (created == t && k < bk),
            };
            if better {
                best = Some((created, k));
            }
        }
        best.map(|(_, k)| k)
    }

    /// `true` if any session still parks a packet whose effective class is
    /// `class` — the runtime shed-order audit asks this before a
    /// later-rung shed to prove every earlier rung really was exhausted.
    #[must_use]
    pub fn has_class_parked(&self, class: ServiceClass) -> bool {
        let k = class_index(class);
        self.sessions.values().any(|s| s.class_counts[k] > 0)
    }

    /// Sessions still holding parked packets — post-quiesce this must be
    /// zero ("no wedged state survives quiesce").
    #[must_use]
    pub fn wedged_sessions(&self) -> usize {
        self.sessions
            .values()
            .filter(|s| !s.queue.is_empty())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fh_net::FlowId;
    use fh_sim::SimTime;

    fn key(n: u16) -> Ipv6Addr {
        Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, n)
    }

    fn pkt(class: ServiceClass, seq: u64) -> Packet {
        Packet::data(
            FlowId(1),
            seq,
            key(100),
            key(200),
            class,
            160,
            SimTime::ZERO,
        )
    }

    fn pkt_at(class: ServiceClass, seq: u64, ms: u64) -> Packet {
        Packet::data(
            FlowId(1),
            seq,
            key(100),
            key(200),
            class,
            160,
            SimTime::from_millis(ms),
        )
    }

    fn sized(class: ServiceClass, seq: u64, size: u32) -> Packet {
        Packet::data(
            FlowId(1),
            seq,
            key(100),
            key(200),
            class,
            size,
            SimTime::ZERO,
        )
    }

    #[test]
    fn grants_are_all_or_nothing() {
        let mut pool = BufferPool::new(20);
        assert_eq!(pool.grant(key(1), 10), 10);
        assert_eq!(pool.grant(key(2), 10), 10);
        assert_eq!(pool.grant(key(3), 1), 0, "capacity fully reserved");
        assert_eq!(pool.unreserved(), 0);
        assert!(pool.has_session(key(3)));
        assert_eq!(pool.granted(key(3)), 0);
    }

    #[test]
    fn release_frees_reservation() {
        let mut pool = BufferPool::new(10);
        assert_eq!(pool.grant(key(1), 10), 10);
        assert_eq!(pool.grant(key(2), 5), 0);
        pool.release(key(1));
        assert_eq!(pool.grant(key(2), 5), 5);
    }

    #[test]
    fn grant_admission_respects_session_cap() {
        let mut pool = BufferPool::new(10);
        pool.grant(key(1), 2);
        assert!(pool
            .try_buffer(
                key(1),
                pkt(ServiceClass::HighPriority, 0),
                AdmissionLimit::Grant
            )
            .is_ok());
        assert!(pool
            .try_buffer(
                key(1),
                pkt(ServiceClass::HighPriority, 1),
                AdmissionLimit::Grant
            )
            .is_ok());
        let rejected = pool.try_buffer(
            key(1),
            pkt(ServiceClass::HighPriority, 2),
            AdmissionLimit::Grant,
        );
        assert!(rejected.is_err());
        assert_eq!(rejected.unwrap_err().seq, 2);
        assert_eq!(pool.session_len(key(1)), 2);
        assert_eq!(pool.stats.admitted, 2);
        assert_eq!(pool.stats.rejected, 1);
    }

    #[test]
    fn threshold_admission_uses_pool_free_space() {
        let mut pool = BufferPool::new(5);
        pool.open_unreserved(key(1));
        // a = 2: admit while free > 2, i.e. first 3 packets (free 5,4,3).
        for seq in 0..3 {
            assert!(
                pool.try_buffer(
                    key(1),
                    pkt(ServiceClass::BestEffort, seq),
                    AdmissionLimit::Threshold(2)
                )
                .is_ok(),
                "seq {seq}"
            );
        }
        assert!(pool
            .try_buffer(
                key(1),
                pkt(ServiceClass::BestEffort, 3),
                AdmissionLimit::Threshold(2)
            )
            .is_err());
        assert_eq!(pool.used(), 3);
    }

    #[test]
    fn pool_capacity_is_a_hard_ceiling() {
        let mut pool = BufferPool::new(3);
        pool.grant(key(1), 3);
        pool.open_unreserved(key(2));
        for seq in 0..3 {
            assert!(pool
                .try_buffer(
                    key(1),
                    pkt(ServiceClass::HighPriority, seq),
                    AdmissionLimit::Grant
                )
                .is_ok());
        }
        // Pool is full: even PoolOnly admission fails for the other session.
        assert!(pool
            .try_buffer(
                key(2),
                pkt(ServiceClass::BestEffort, 0),
                AdmissionLimit::PoolOnly
            )
            .is_err());
        assert_eq!(pool.free_space(), 0);
    }

    #[test]
    fn realtime_dropfront_evicts_oldest_rt() {
        let mut pool = BufferPool::new(10);
        pool.grant(key(1), 3);
        for seq in 0..3 {
            assert!(pool
                .buffer_realtime_dropfront(key(1), pkt(ServiceClass::RealTime, seq))
                .unwrap()
                .is_none());
        }
        // Full: admitting seq 3 must evict seq 0.
        let evicted = pool
            .buffer_realtime_dropfront(key(1), pkt(ServiceClass::RealTime, 3))
            .unwrap()
            .expect("eviction");
        assert_eq!(evicted.seq, 0);
        assert_eq!(pool.session_len(key(1)), 3);
        assert_eq!(pool.stats.evicted_realtime, 1);
        let drained = pool.drain(key(1));
        assert_eq!(
            drained.iter().map(|p| p.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn realtime_dropfront_skips_other_classes() {
        let mut pool = BufferPool::new(10);
        pool.grant(key(1), 2);
        assert!(pool
            .try_buffer(
                key(1),
                pkt(ServiceClass::HighPriority, 0),
                AdmissionLimit::Grant
            )
            .is_ok());
        assert!(pool
            .try_buffer(
                key(1),
                pkt(ServiceClass::HighPriority, 1),
                AdmissionLimit::Grant
            )
            .is_ok());
        // No RT packet to evict: the incoming RT packet bounces.
        let err = pool.buffer_realtime_dropfront(key(1), pkt(ServiceClass::RealTime, 9));
        assert!(err.is_err());
        assert_eq!(pool.session_len(key(1)), 2);
    }

    #[test]
    fn drain_keeps_session_release_closes_it() {
        let mut pool = BufferPool::new(10);
        pool.grant(key(1), 5);
        for seq in 0..4 {
            pool.try_buffer(
                key(1),
                pkt(ServiceClass::HighPriority, seq),
                AdmissionLimit::Grant,
            )
            .unwrap();
        }
        let first = pool.drain(key(1));
        assert_eq!(first.len(), 4);
        assert!(pool.has_session(key(1)));
        assert_eq!(pool.used(), 0);
        pool.try_buffer(
            key(1),
            pkt(ServiceClass::HighPriority, 9),
            AdmissionLimit::Grant,
        )
        .unwrap();
        let rest = pool.release(key(1));
        assert_eq!(rest.len(), 1);
        assert!(!pool.has_session(key(1)));
        assert_eq!(pool.stats.flushed, 5);
        assert_eq!(pool.unreserved(), 10);
    }

    #[test]
    fn expire_discards_and_counts() {
        let mut pool = BufferPool::new(10);
        pool.grant(key(1), 5);
        for seq in 0..3 {
            pool.try_buffer(
                key(1),
                pkt(ServiceClass::BestEffort, seq),
                AdmissionLimit::Grant,
            )
            .unwrap();
        }
        assert_eq!(pool.expire(key(1)).len(), 3);
        assert_eq!(pool.stats.expired, 3);
        assert_eq!(pool.used(), 0);
        assert!(pool.expire(key(1)).is_empty());
    }

    #[test]
    fn unknown_session_rejects() {
        let mut pool = BufferPool::new(10);
        assert!(pool
            .try_buffer(
                key(9),
                pkt(ServiceClass::HighPriority, 0),
                AdmissionLimit::PoolOnly
            )
            .is_err());
        assert!(pool
            .buffer_realtime_dropfront(key(9), pkt(ServiceClass::RealTime, 0))
            .is_err());
        assert!(pool.drain(key(9)).is_empty());
        assert!(pool.release(key(9)).is_empty());
    }

    #[test]
    fn regrant_replaces_reservation() {
        let mut pool = BufferPool::new(10);
        assert_eq!(pool.grant(key(1), 8), 8);
        // Re-grant smaller: frees reservation for others.
        assert_eq!(pool.grant(key(1), 4), 4);
        assert_eq!(pool.grant(key(2), 6), 6);
    }

    /// Conservation: admitted == flushed + expired + still queued.
    #[test]
    fn packet_conservation_across_random_ops() {
        use fh_sim::Rng64;
        let mut rng = Rng64::seed_from(99);
        let mut pool = BufferPool::new(16);
        let keys: Vec<Ipv6Addr> = (0..4).map(key).collect();
        for &k in &keys {
            pool.grant(k, 4);
        }
        let classes = [
            ServiceClass::RealTime,
            ServiceClass::HighPriority,
            ServiceClass::BestEffort,
        ];
        for step in 0..10_000 {
            let k = keys[rng.gen_range_u64(4) as usize];
            match rng.gen_range_u64(10) {
                0..=5 => {
                    let class = classes[rng.gen_range_u64(3) as usize];
                    if class == ServiceClass::RealTime {
                        let _ = pool.buffer_realtime_dropfront(k, pkt(class, step));
                    } else {
                        let _ = pool.try_buffer(k, pkt(class, step), AdmissionLimit::Grant);
                    }
                }
                6..=7 => {
                    let _ = pool.drain(k);
                }
                8 => {
                    let _ = pool.release(k);
                    pool.grant(k, 2);
                }
                9 if step % 977 == 0 => {
                    // Rare crash: wipe everything, then re-grant all keys.
                    let _ = pool.wipe_all();
                    for &k in &keys {
                        pool.grant(k, 4);
                    }
                }
                _ => {
                    let _ = pool.expire(k);
                    pool.grant(k, 2);
                }
            }
            if step % 37 == 0 {
                // Exercise the shed ladder's pool primitive under churn.
                let _ = pool.shed_class_front(ServiceClass::BestEffort);
            }
            assert!(pool.used() <= pool.capacity(), "capacity violated");
        }
        let queued: u64 = keys.iter().map(|&k| pool.session_len(k) as u64).sum();
        assert_eq!(
            pool.stats.admitted,
            pool.stats.flushed
                + pool.stats.expired
                + pool.stats.evicted_realtime
                + pool.stats.reclaimed
                + pool.stats.shed
                + queued,
            "conservation violated: {:?}",
            pool.stats
        );
    }

    /// Same conservation equation, but with a tight byte budget forcing the
    /// pressure paths (byte rejections, sheds, swaps) on every few steps.
    #[test]
    fn conservation_holds_under_byte_pressure() {
        use fh_sim::Rng64;
        let mut rng = Rng64::seed_from(7);
        let mut pool = BufferPool::new(16);
        // Room for ~6 of the 160-byte test packets: far below the packet cap.
        pool.set_byte_budget(1_000);
        let keys: Vec<Ipv6Addr> = (0..4).map(key).collect();
        for &k in &keys {
            pool.grant(k, 4);
        }
        let classes = [
            ServiceClass::RealTime,
            ServiceClass::HighPriority,
            ServiceClass::BestEffort,
        ];
        for step in 0..10_000 {
            let k = keys[rng.gen_range_u64(4) as usize];
            match rng.gen_range_u64(12) {
                0..=6 => {
                    let class = classes[rng.gen_range_u64(3) as usize];
                    if class == ServiceClass::RealTime {
                        let _ = pool.buffer_realtime_dropfront(k, pkt(class, step));
                    } else {
                        let _ = pool.try_buffer(k, pkt(class, step), AdmissionLimit::Grant);
                    }
                }
                7 => {
                    let _ = pool.drain(k);
                }
                8 => {
                    let _ = pool.shed_class_front(ServiceClass::BestEffort);
                }
                9 => {
                    let _ = pool.shed_class_front(ServiceClass::RealTime);
                }
                10 => {
                    let _ = pool.expire(k);
                    pool.grant(k, 4);
                }
                _ => {
                    if step % 1_003 == 0 {
                        let _ = pool.wipe_all();
                        for &k in &keys {
                            pool.grant(k, 4);
                        }
                    }
                }
            }
            assert!(pool.bytes_used() <= 1_000, "byte budget violated");
        }
        let queued: u64 = keys.iter().map(|&k| pool.session_len(k) as u64).sum();
        assert_eq!(
            pool.stats.admitted,
            pool.stats.flushed
                + pool.stats.expired
                + pool.stats.evicted_realtime
                + pool.stats.reclaimed
                + pool.stats.shed
                + queued,
            "conservation violated: {:?}",
            pool.stats
        );
        // Everything still drains cleanly: zero residue in the arena.
        for &k in &keys {
            let _ = pool.release(k);
        }
        assert_eq!(pool.used(), 0);
        assert_eq!(pool.bytes_used(), 0);
    }

    #[test]
    fn byte_budget_gates_admission() {
        let mut pool = BufferPool::new(10);
        pool.set_byte_budget(400); // two 160-byte packets fit, three do not
        pool.grant(key(1), 10);
        assert!(pool
            .try_buffer(
                key(1),
                pkt(ServiceClass::BestEffort, 0),
                AdmissionLimit::Grant
            )
            .is_ok());
        assert!(pool
            .try_buffer(
                key(1),
                pkt(ServiceClass::BestEffort, 1),
                AdmissionLimit::Grant
            )
            .is_ok());
        assert_eq!(pool.bytes_used(), 320);
        assert!(pool
            .try_buffer(
                key(1),
                pkt(ServiceClass::BestEffort, 2),
                AdmissionLimit::Grant
            )
            .is_err());
        assert_eq!(pool.stats.rejected, 1);
        // Flushing gives the bytes back.
        let _ = pool.pop_front(key(1));
        assert_eq!(pool.bytes_used(), 160);
        assert!(pool
            .try_buffer(
                key(1),
                pkt(ServiceClass::BestEffort, 3),
                AdmissionLimit::Grant
            )
            .is_ok());
        assert_eq!(pool.peak_bytes(), 320);
    }

    #[test]
    fn zero_byte_budget_means_accounting_off() {
        let mut pool = BufferPool::new(4);
        pool.set_byte_budget(0);
        assert_eq!(pool.byte_budget(), usize::MAX);
        pool.open_unreserved(key(1));
        assert!(pool
            .try_buffer(
                key(1),
                sized(ServiceClass::BestEffort, 0, u32::MAX),
                AdmissionLimit::PoolOnly
            )
            .is_ok());
    }

    #[test]
    fn dropfront_swap_respects_byte_budget() {
        let mut pool = BufferPool::new(10);
        pool.set_byte_budget(320);
        pool.grant(key(1), 1);
        assert!(pool
            .buffer_realtime_dropfront(key(1), sized(ServiceClass::RealTime, 0, 160))
            .unwrap()
            .is_none());
        // A 400-byte replacement doesn't fit even after evicting the
        // 160-byte victim.
        assert!(pool
            .buffer_realtime_dropfront(key(1), sized(ServiceClass::RealTime, 1, 400))
            .is_err());
        assert_eq!(pool.session_len(key(1)), 1);
        assert_eq!(pool.bytes_used(), 160);
        // A 300-byte one does.
        let evicted = pool
            .buffer_realtime_dropfront(key(1), sized(ServiceClass::RealTime, 2, 300))
            .unwrap()
            .expect("eviction");
        assert_eq!(evicted.seq, 0);
        assert_eq!(pool.bytes_used(), 300);
    }

    #[test]
    fn shed_takes_the_oldest_of_the_class_across_sessions() {
        let mut pool = BufferPool::new(10);
        pool.grant(key(1), 4);
        pool.grant(key(2), 4);
        pool.try_buffer(
            key(1),
            pkt_at(ServiceClass::HighPriority, 0, 0),
            AdmissionLimit::Grant,
        )
        .unwrap();
        pool.try_buffer(
            key(1),
            pkt_at(ServiceClass::BestEffort, 1, 2),
            AdmissionLimit::Grant,
        )
        .unwrap();
        pool.try_buffer(
            key(2),
            pkt_at(ServiceClass::BestEffort, 2, 1),
            AdmissionLimit::Grant,
        )
        .unwrap();
        // Oldest BE lives under key(2) even though key(1) sorts first.
        let (k, shed) = pool.shed_class_front(ServiceClass::BestEffort).unwrap();
        assert_eq!((k, shed.seq), (key(2), 2));
        let (k, shed) = pool.shed_class_front(ServiceClass::BestEffort).unwrap();
        assert_eq!((k, shed.seq), (key(1), 1));
        // Only the HP packet remains; the BE rung is exhausted.
        assert!(pool.shed_class_front(ServiceClass::BestEffort).is_none());
        assert!(pool.shed_class_front(ServiceClass::RealTime).is_none());
        assert_eq!(pool.stats.shed, 2);
        assert_eq!(pool.used(), 1);
        assert_eq!(pool.bytes_used(), 160);
    }

    #[test]
    fn shed_ties_break_on_the_lower_session_key() {
        let mut pool = BufferPool::new(10);
        pool.grant(key(5), 2);
        pool.grant(key(3), 2);
        pool.try_buffer(
            key(5),
            pkt_at(ServiceClass::BestEffort, 0, 7),
            AdmissionLimit::Grant,
        )
        .unwrap();
        pool.try_buffer(
            key(3),
            pkt_at(ServiceClass::BestEffort, 1, 7),
            AdmissionLimit::Grant,
        )
        .unwrap();
        let (k, _) = pool.shed_class_front(ServiceClass::BestEffort).unwrap();
        assert_eq!(k, key(3));
    }

    #[test]
    fn oldest_buffering_session_follows_front_packets() {
        let mut pool = BufferPool::new(10);
        assert!(pool.oldest_buffering_session().is_none());
        pool.grant(key(1), 4);
        pool.grant(key(2), 4);
        pool.open_unreserved(key(3)); // empty queue: never a candidate
        pool.try_buffer(
            key(1),
            pkt_at(ServiceClass::BestEffort, 0, 5),
            AdmissionLimit::Grant,
        )
        .unwrap();
        pool.try_buffer(
            key(2),
            pkt_at(ServiceClass::BestEffort, 1, 3),
            AdmissionLimit::Grant,
        )
        .unwrap();
        assert_eq!(pool.oldest_buffering_session(), Some(key(2)));
        let _ = pool.drain(key(2));
        assert_eq!(pool.oldest_buffering_session(), Some(key(1)));
    }

    #[test]
    fn grant_larger_than_capacity_is_zero_and_safe() {
        let mut pool = BufferPool::new(5);
        assert_eq!(pool.grant(key(1), 50), 0);
        assert_eq!(pool.unreserved(), 5);
        // Re-granting up then down never corrupts the reserved total.
        assert_eq!(pool.grant(key(1), 5), 5);
        assert_eq!(pool.grant(key(1), 50), 0);
        assert_eq!(pool.unreserved(), 5);
        assert_eq!(pool.grant_per_class(key(1), [50, 50, 50])[1], 5);
        assert_eq!(pool.unreserved(), 0);
    }

    #[test]
    fn release_of_unknown_key_is_a_no_op() {
        let mut pool = BufferPool::new(5);
        assert!(pool.release(key(9)).is_empty());
        assert!(pool.expire(key(9)).is_empty());
        assert_eq!(pool.unreserved(), 5);
        pool.grant(key(1), 3);
        pool.release(key(1));
        // Double release must not double-free the reservation.
        pool.release(key(1));
        assert_eq!(pool.unreserved(), 5);
    }

    #[test]
    fn wipe_all_reclaims_every_session() {
        let mut pool = BufferPool::new(10);
        pool.grant(key(1), 3);
        pool.grant(key(2), 3);
        for seq in 0..2 {
            pool.try_buffer(
                key(1),
                pkt(ServiceClass::HighPriority, seq),
                AdmissionLimit::Grant,
            )
            .unwrap();
            pool.try_buffer(
                key(2),
                pkt(ServiceClass::BestEffort, seq),
                AdmissionLimit::Grant,
            )
            .unwrap();
        }
        let wiped = pool.wipe_all();
        assert_eq!(wiped.len(), 4);
        assert_eq!(pool.stats.reclaimed, 4);
        assert_eq!(pool.used(), 0);
        assert_eq!(pool.live_sessions(), 0);
        assert_eq!(pool.unreserved(), pool.capacity());
        assert!(!pool.has_session(key(1)));
    }
}

#[cfg(test)]
mod per_class_tests {
    use super::*;
    use fh_net::FlowId;
    use fh_sim::SimTime;

    fn key(n: u16) -> Ipv6Addr {
        Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, n)
    }

    fn pkt(class: ServiceClass, seq: u64) -> Packet {
        Packet::data(
            FlowId(1),
            seq,
            key(100),
            key(200),
            class,
            160,
            SimTime::ZERO,
        )
    }

    #[test]
    fn per_class_grants_are_partial_in_priority_order() {
        let mut pool = BufferPool::new(10);
        // Request [RT=6, HP=6, BE=6] against capacity 10: HP first (6),
        // then RT (4), BE starves.
        let granted = pool.grant_per_class(key(1), [6, 6, 6]);
        assert_eq!(granted, [4, 6, 0]);
        assert_eq!(pool.granted(key(1)), 10);
        assert_eq!(pool.unreserved(), 0);
    }

    #[test]
    fn class_shares_are_enforced_at_admission() {
        let mut pool = BufferPool::new(10);
        let granted = pool.grant_per_class(key(1), [2, 3, 1]);
        assert_eq!(granted, [2, 3, 1]);
        // RT may take exactly 2 slots even though the session grant is 6.
        assert!(pool
            .try_buffer(
                key(1),
                pkt(ServiceClass::RealTime, 0),
                AdmissionLimit::Grant
            )
            .is_ok());
        assert!(pool
            .try_buffer(
                key(1),
                pkt(ServiceClass::RealTime, 1),
                AdmissionLimit::Grant
            )
            .is_ok());
        assert!(pool
            .try_buffer(
                key(1),
                pkt(ServiceClass::RealTime, 2),
                AdmissionLimit::Grant
            )
            .is_err());
        // HP's share is untouched by the RT flood.
        for seq in 10..13 {
            assert!(
                pool.try_buffer(
                    key(1),
                    pkt(ServiceClass::HighPriority, seq),
                    AdmissionLimit::Grant
                )
                .is_ok(),
                "HP seq {seq} must fit"
            );
        }
        assert!(pool
            .try_buffer(
                key(1),
                pkt(ServiceClass::HighPriority, 13),
                AdmissionLimit::Grant
            )
            .is_err());
        // BE gets its single slot; unspecified folds into BE and is now out.
        assert!(pool
            .try_buffer(
                key(1),
                pkt(ServiceClass::BestEffort, 20),
                AdmissionLimit::Grant
            )
            .is_ok());
        assert!(pool
            .try_buffer(
                key(1),
                pkt(ServiceClass::Unspecified, 21),
                AdmissionLimit::Grant
            )
            .is_err());
    }

    #[test]
    fn class_shares_recover_after_flush() {
        let mut pool = BufferPool::new(10);
        pool.grant_per_class(key(1), [1, 1, 1]);
        assert!(pool
            .try_buffer(
                key(1),
                pkt(ServiceClass::RealTime, 0),
                AdmissionLimit::Grant
            )
            .is_ok());
        assert!(pool
            .try_buffer(
                key(1),
                pkt(ServiceClass::RealTime, 1),
                AdmissionLimit::Grant
            )
            .is_err());
        let _ = pool.pop_front(key(1));
        assert!(pool
            .try_buffer(
                key(1),
                pkt(ServiceClass::RealTime, 2),
                AdmissionLimit::Grant
            )
            .is_ok());
        let _ = pool.drain(key(1));
        assert!(pool
            .try_buffer(
                key(1),
                pkt(ServiceClass::RealTime, 3),
                AdmissionLimit::Grant
            )
            .is_ok());
    }

    #[test]
    fn dropfront_respects_the_rt_share() {
        let mut pool = BufferPool::new(10);
        pool.grant_per_class(key(1), [2, 2, 0]);
        assert!(pool
            .buffer_realtime_dropfront(key(1), pkt(ServiceClass::RealTime, 0))
            .unwrap()
            .is_none());
        assert!(pool
            .buffer_realtime_dropfront(key(1), pkt(ServiceClass::RealTime, 1))
            .unwrap()
            .is_none());
        // Share full: the next RT evicts the oldest RT, never an HP packet.
        assert!(pool
            .try_buffer(
                key(1),
                pkt(ServiceClass::HighPriority, 5),
                AdmissionLimit::Grant
            )
            .is_ok());
        let evicted = pool
            .buffer_realtime_dropfront(key(1), pkt(ServiceClass::RealTime, 2))
            .unwrap()
            .expect("eviction");
        assert_eq!(evicted.seq, 0);
        assert_eq!(pool.session_len(key(1)), 3);
    }

    #[test]
    fn plain_regrant_clears_class_shares() {
        let mut pool = BufferPool::new(10);
        pool.grant_per_class(key(1), [1, 1, 1]);
        pool.grant(key(1), 5);
        // Back to a class-blind session cap of 5.
        for seq in 0..5 {
            assert!(pool
                .try_buffer(
                    key(1),
                    pkt(ServiceClass::RealTime, seq),
                    AdmissionLimit::Grant
                )
                .is_ok());
        }
        assert!(pool
            .try_buffer(
                key(1),
                pkt(ServiceClass::RealTime, 5),
                AdmissionLimit::Grant
            )
            .is_err());
    }
}
