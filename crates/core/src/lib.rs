//! # fh-core — the enhanced buffer management scheme for fast handover
//!
//! This crate implements the paper's contribution (Wei-Min Yao & Yaw-Chung
//! Chen, *An Enhanced Buffer Management Scheme for Fast Handover Protocol*):
//! the FMIPv6 fast-handover protocol with class-aware, dual-router handover
//! buffering, plus every baseline the thesis compares against.
//!
//! * [`Scheme`] / [`ProtocolConfig`] — scheme selection (proposed DUAL ±
//!   classification, NAR-only original FMIPv6, PAR-only smooth-handover
//!   draft, no-buffer FH) and the thesis' tunables (buffer request size,
//!   BI start-time/lifetime, the best-effort threshold `a`, optional
//!   handover authentication, optional precise per-class negotiation).
//! * [`policy`] — the pluggable buffer-policy layer: the [`policy::BufferPolicy`]
//!   trait, one implementation per scheme family, and Tables 3.2 / 3.3 as
//!   pure, exhaustively tested functions.
//! * [`BufferPool`] — the per-router handover buffer: all-or-nothing
//!   grants, two-level admission, real-time drop-front, lifetimes.
//! * [`ArAgent`] — the access router (PAR + NAR roles), an orchestrator
//!   over three layers: `policy` (per-packet decisions) ← `datapath` (the
//!   one `classify → admit → park | forward | tunnel` pipeline) ←
//!   `signaling` (the PAR/NAR/MH state machines).
//! * [`MhAgent`] — the mobile host: trigger handling, RtSolPr+BI → FBU →
//!   FNA+BF choreography, MAP binding updates.
//!
//! ## Message flow (Fig 3.2)
//!
//! ```text
//! MH            PAR              NAR
//! | --RtSolPr+BI-> |                |
//! |                | ---HI+BR-----> |
//! |                | <--HAck+BA---- |
//! | <--PrRtAdv+BA- |                |
//! | --FBU--------> |                |
//! |   (black-out)  | ==redirect===> |   per Table 3.3
//! | ---------------+--- FNA+BF ---> |
//! | <==============+== flush ====== |
//! |                | <----BF------- |
//! | <== flush ==== |                |
//! | --BU to MAP--------------------->
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ar;
mod buffer;
mod datapath;
mod metrics;
pub mod policy;
mod scheme;
mod signaling;
mod soft_state;

pub use ar::ArAgent;
pub use buffer::{BufferPool, BufferStats};
pub use metrics::{ArMetrics, ArSoftState};
pub use policy::AdmissionLimit;
pub use scheme::{
    ParseRetransmitError, ParseSchemeError, ProtocolConfig, RetransmitConfig, Scheme,
};
pub use signaling::mh::{HandoffPhase, MhAgent};
