//! The packet datapath: the single pipeline every packet crosses.
//!
//! This is the middle layer of the access-router stack (policy ←
//! **datapath** ← signaling). Whatever the role — PAR redirection, NAR
//! tunnel ingress, intra-subnet L2 delivery, buffer flushes — a packet
//! moves through one `classify → admit → park | forward | tunnel`
//! pipeline owned by [`Datapath`], so telemetry, drop accounting and
//! conservation hooks live at a single choke point instead of being
//! sprinkled across the signaling handlers.
//!
//! The datapath owns the transmission state (pinned peer links, host
//! routes, the buffer pool) but none of the protocol state machines: the
//! signaling layer snapshots its session state into plain-data views
//! ([`RedirectView`], [`TunnelView`]) and the datapath executes the
//! [`crate::policy::BufferPolicy`] verdict for the packet. Anything the
//! signaling layer must learn back (e.g. "I told the peer my buffer is
//! full") is returned as a [`TunnelVerdict`], keeping the dependency
//! arrow one-way.

use std::collections::HashMap;
use std::net::Ipv6Addr;

use fh_net::{
    send_from, transmit_on, ApId, ControlMsg, DropReason, LinkId, NetCtx, NodeId, Packet, Payload,
    Prefix,
};
use fh_wireless::{send_downlink, send_downlink_batch, RadioWorld};

use crate::buffer::BufferPool;
use crate::policy::{
    Admit, AdmitCtx, AvailabilityCase, ClassVerdicts, Overflow, PolicyEngine, Role,
};
use crate::scheme::{ProtocolConfig, Scheme};

/// Accounts a packet arriving at a crashed node so conservation still
/// balances: data (including the inner flow of a tunneled packet — the
/// outer header copies it) is recorded as [`DropReason::Reclaimed`];
/// signaling rides the unaudited control flow and is silently lost.
pub(crate) fn reclaim_at_dead_node<S: RadioWorld>(ctx: &mut NetCtx<'_, S>, pkt: &Packet) {
    match &pkt.payload {
        Payload::Control(_) => {}
        Payload::Data | Payload::Tcp(_) | Payload::Encap(_) => {
            fh_net::record_drop(ctx, pkt.flow, DropReason::Reclaimed);
        }
    }
}

/// Where a paced flush sends its packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FlushTarget {
    /// Through the inter-router tunnel toward this NAR address.
    Tunnel(Ipv6Addr),
    /// Over the air to this host.
    Radio(NodeId),
}

/// A PAR-role session snapshot for one redirected packet: everything the
/// datapath needs, nothing it could mutate.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RedirectView {
    /// The departing host (radio fallback for intra-router handoffs).
    pub mh: NodeId,
    /// The peer NAR's address; `None` for an intra-router handoff.
    pub peer: Option<Ipv6Addr>,
    /// The negotiated availability case (Table 3.2).
    pub case: AvailabilityCase,
    /// `true` once the NAR reported BufferFull for this session.
    pub nar_full: bool,
    /// `true` after the flush: the tunnel stays up for stragglers only.
    pub released: bool,
}

/// A NAR-role session snapshot for one tunneled packet.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TunnelView {
    /// The arriving host's link-layer identity.
    pub mh: NodeId,
    /// The PAR the tunnel came from (spill-back destination).
    pub peer: Ipv6Addr,
    /// Slots granted to this session in the HAck+BA negotiation.
    pub granted: u32,
    /// `true` once BufferFull has already been sent for this session.
    pub already_spilling: bool,
}

/// What the signaling layer must learn from a tunnel-ingress admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TunnelVerdict {
    /// Nothing to record.
    Done,
    /// The datapath sent BufferFull and bounced the overflowing packet:
    /// the session must be marked as spilling.
    PeerNotified,
}

/// Everything (besides the packet class) that determines a policy
/// verdict: the scheme, the role, and the session snapshot. During a
/// handover burst every packet of a session presents the same key, so
/// one [`PolicyEngine::classify_batch`] dispatch serves the whole run —
/// see [`Datapath::classify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct VerdictKey {
    scheme: Scheme,
    role: Role,
    case: AvailabilityCase,
    nar_full: bool,
    par_granted: bool,
    threshold_a: u32,
}

impl VerdictKey {
    fn new(scheme: Scheme, role: Role, ctx: &AdmitCtx) -> Self {
        VerdictKey {
            scheme,
            role,
            case: ctx.case,
            nar_full: ctx.nar_full,
            par_granted: ctx.par_granted,
            threshold_a: ctx.threshold_a,
        }
    }
}

/// The access router's packet pipeline and transmission state.
///
/// Owned by [`crate::ArAgent`]; the signaling handlers call into it for
/// every send, delivery, redirection and flush.
#[derive(Debug)]
pub(crate) struct Datapath {
    /// The node this datapath transmits from.
    pub(crate) node: NodeId,
    /// The router's own address.
    pub(crate) addr: Ipv6Addr,
    /// The on-link prefix.
    pub(crate) prefix: Prefix,
    /// Access points belonging to this router.
    pub(crate) aps: Vec<ApId>,
    /// The handover buffer pool.
    pub(crate) pool: BufferPool,
    /// Pinned point-to-point tunnel links per peer router.
    pub(crate) peer_links: HashMap<Ipv6Addr, LinkId>,
    /// Installed host routes (FMIPv6 serves the PCoA off-prefix).
    pub(crate) neighbors: HashMap<Ipv6Addr, NodeId>,
    /// One-entry memo of the last classified session snapshot.
    verdicts: Option<(VerdictKey, ClassVerdicts)>,
}

impl Datapath {
    pub(crate) fn new(
        node: NodeId,
        addr: Ipv6Addr,
        prefix: Prefix,
        aps: Vec<ApId>,
        pool_capacity: usize,
    ) -> Self {
        assert!(prefix.contains(addr), "router address must be on-link");
        Datapath {
            node,
            addr,
            prefix,
            aps,
            pool: BufferPool::new(pool_capacity),
            peer_links: HashMap::new(),
            neighbors: HashMap::new(),
            verdicts: None,
        }
    }

    /// The per-class verdict table for one session snapshot, memoized.
    ///
    /// Packets cross the datapath in runs that share a snapshot — a
    /// redirect burst during the black-out, a tunnel drain, a flush — so
    /// a one-entry cache turns N `PolicyEngine` dispatches into one
    /// [`PolicyEngine::classify_batch`] call per run. Behaviorally
    /// invisible: the policies are pure, and `classify_batch` is pinned
    /// class-by-class against the per-packet dispatch.
    fn classify(&mut self, scheme: Scheme, role: Role, ctx: &AdmitCtx) -> ClassVerdicts {
        let key = VerdictKey::new(scheme, role, ctx);
        if let Some((cached_key, cached)) = self.verdicts {
            if cached_key == key {
                return cached;
            }
        }
        let verdicts = PolicyEngine::for_scheme(scheme).classify_batch(role, ctx);
        self.verdicts = Some((key, verdicts));
        verdicts
    }

    /// `true` if `ap` belongs to this router.
    pub(crate) fn owns_ap(&self, ap: ApId) -> bool {
        self.aps.contains(&ap)
    }

    /// Sends a packet toward another router, preferring a pinned peer link.
    pub(crate) fn send_wired<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, pkt: Packet) {
        if let Some(&link) = self.peer_links.get(&pkt.dst) {
            let node = self.node;
            let _ = transmit_on(ctx, link, node, pkt);
            return;
        }
        let node = self.node;
        let _ = send_from(ctx, node, pkt);
    }

    /// Builds, accounts and sends a control message to another router.
    pub(crate) fn send_control_wired<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        dst: Ipv6Addr,
        msg: ControlMsg,
    ) {
        fh_net::record_control(ctx, &msg);
        let pkt = Packet::control(self.addr, dst, msg, ctx.now());
        self.send_wired(ctx, pkt);
    }

    /// Attempts over-the-air delivery to `mh`.
    pub(crate) fn radio_deliver<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        mh: NodeId,
        pkt: Packet,
    ) {
        // Pick the AP the host is actually attached to, if it is one of
        // ours; otherwise use our first AP (the attempt will be counted as
        // a radio drop).
        let attached = ctx.shared.radio().attachment(mh);
        let ap = match attached {
            Some(ap) if self.owns_ap(ap) => ap,
            _ => self.aps[0],
        };
        send_downlink(ctx, ap, mh, pkt);
    }

    /// Plain delivery: a host route wins, then on-link prefix delivery,
    /// then wired forwarding. The PAR-redirection check happens above
    /// this, in the signaling layer — by the time a packet gets here it
    /// is ordinary traffic.
    pub(crate) fn deliver<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, pkt: Packet) {
        if let Some(&mh) = self.neighbors.get(&pkt.dst) {
            self.radio_deliver(ctx, mh, pkt);
            return;
        }
        if self.prefix.contains(pkt.dst) {
            // On-link address with no neighbor entry: undeliverable.
            fh_net::record_drop(ctx, pkt.flow, DropReason::Unroutable);
            return;
        }
        let node = self.node;
        if let Some(local) = send_from(ctx, node, pkt) {
            // Routing bounced it back to us without matching our prefix:
            // nothing sensible to do.
            fh_net::record_drop(ctx, local.flow, DropReason::Unroutable);
        }
    }

    /// PAR-side pipeline stage: classify, admit per the active policy,
    /// then park locally, tunnel to the peer, or drop.
    pub(crate) fn redirect<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        cfg: &ProtocolConfig,
        pcoa: Ipv6Addr,
        view: RedirectView,
        pkt: Packet,
    ) {
        let class = pkt.effective_class();
        let (verdict, verdicts) = if view.released {
            // After the flush the tunnel stays up for stragglers.
            (
                Admit::Tunnel {
                    park_at_peer: false,
                },
                None,
            )
        } else {
            let verdicts = self.classify(
                cfg.scheme,
                Role::Par,
                &AdmitCtx {
                    case: view.case,
                    class,
                    nar_full: view.nar_full,
                    par_granted: self.pool.granted(pcoa) > 0,
                    threshold_a: cfg.threshold_a,
                },
            );
            (verdicts.admit(class), Some(verdicts))
        };
        match verdict {
            Admit::Tunnel { .. } => match view.peer {
                Some(nar) => {
                    let outer = pkt.encapsulate(self.addr, nar);
                    self.send_wired(ctx, outer);
                }
                None => {
                    // Intra-router handoff: nowhere to tunnel; attempt radio
                    // delivery (lost while the host is detached).
                    self.radio_deliver(ctx, view.mh, pkt);
                }
            },
            Admit::Forward => self.radio_deliver(ctx, view.mh, pkt),
            Admit::Multicast => {
                // SafetyNet bicast: the original copy rides the old link
                // exactly as if no handover were happening; an insurance
                // copy is tunneled to the NAR's buffer. The copy enters
                // the ledger as `duplicated` — never as a fresh send — so
                // `sent + duplicated == delivered + dropped` still holds
                // once the host suppresses the losing copy.
                match view.peer {
                    Some(nar) => {
                        ctx.shared.stats_mut().record_duplicate(pkt.flow);
                        let outer = pkt.clone().encapsulate(self.addr, nar);
                        self.radio_deliver(ctx, view.mh, pkt);
                        self.send_wired(ctx, outer);
                    }
                    // Intra-router handoff: no peer to insure with.
                    None => self.radio_deliver(ctx, view.mh, pkt),
                }
            }
            Admit::Park(limit) => {
                let ar = self.node;
                let flow = pkt.flow;
                match self.pool.try_buffer(pcoa, pkt, limit) {
                    Ok(()) => {
                        fh_net::record_trace(ctx, || fh_net::TraceEvent::BufferAdmit {
                            ar,
                            class,
                            flow,
                        });
                    }
                    Err(rejected) => match (
                        verdicts.expect("Park implies classified").overflow(class),
                        view.peer,
                    ) {
                        // Rejected high-priority: tunnel unbuffered rather
                        // than drop — the drop-rate promise matters most.
                        (Overflow::SpillPeer, Some(nar)) => {
                            let outer = rejected.encapsulate(self.addr, nar);
                            self.send_wired(ctx, outer);
                        }
                        _ => {
                            fh_net::record_drop(ctx, rejected.flow, DropReason::BufferOverflow);
                        }
                    },
                }
            }
            Admit::Drop => {
                fh_net::record_drop(ctx, pkt.flow, DropReason::Policy);
            }
        }
    }

    /// NAR-side pipeline stage for a tunneled packet during the black-out:
    /// admit per the active policy, handling overflow per its class —
    /// real-time drop-front, BufferFull spill-back, or tail drop.
    pub(crate) fn ingress_tunneled<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        cfg: &ProtocolConfig,
        pcoa: Ipv6Addr,
        view: TunnelView,
        pkt: Packet,
    ) -> TunnelVerdict {
        let class = pkt.effective_class();
        let verdicts = self.classify(
            cfg.scheme,
            Role::Nar,
            &AdmitCtx {
                case: AvailabilityCase::from_grants(view.granted > 0, false),
                class,
                nar_full: false,
                par_granted: false,
                threshold_a: cfg.threshold_a,
            },
        );
        let limit = match verdicts.admit(class) {
            Admit::Park(limit) => limit,
            // Everything else degenerates to an immediate delivery attempt
            // (lost during the black-out): NAR policies never tunnel onward
            // or policy-drop.
            Admit::Forward | Admit::Tunnel { .. } | Admit::Multicast | Admit::Drop => {
                self.radio_deliver(ctx, view.mh, pkt);
                return TunnelVerdict::Done;
            }
        };
        let ar = self.node;
        let flow = pkt.flow;
        match verdicts.overflow(class) {
            Overflow::DropFrontRealtime => {
                match self.pool.buffer_realtime_dropfront(pcoa, pkt) {
                    Ok(None) => {
                        fh_net::record_trace(ctx, || fh_net::TraceEvent::BufferAdmit {
                            ar,
                            class,
                            flow,
                        });
                    }
                    Ok(Some(evicted)) => {
                        let evicted_flow = evicted.flow;
                        let evicted_class = evicted.effective_class();
                        fh_net::record_drop(ctx, evicted.flow, DropReason::BufferOverflow);
                        fh_net::record_trace(ctx, || fh_net::TraceEvent::BufferEvict {
                            ar,
                            class: evicted_class,
                            flow: evicted_flow,
                        });
                        fh_net::record_trace(ctx, || fh_net::TraceEvent::BufferAdmit {
                            ar,
                            class,
                            flow,
                        });
                    }
                    Err(rejected) => {
                        fh_net::record_drop(ctx, rejected.flow, DropReason::BufferOverflow);
                    }
                }
                TunnelVerdict::Done
            }
            Overflow::NotifyPeer => match self.pool.try_buffer(pcoa, pkt, limit) {
                Ok(()) => {
                    fh_net::record_trace(ctx, || fh_net::TraceEvent::BufferAdmit {
                        ar,
                        class,
                        flow,
                    });
                    TunnelVerdict::Done
                }
                Err(rejected) => {
                    if !view.already_spilling {
                        // Case 1.b: tell the PAR to buffer the rest, and send
                        // the packet that did not fit back through the reverse
                        // tunnel so the PAR can buffer it too (the
                        // notification travels the same link and arrives
                        // first).
                        let addr = self.addr;
                        self.send_control_wired(ctx, view.peer, ControlMsg::BufferFull { pcoa });
                        let back = rejected.encapsulate(addr, view.peer);
                        self.send_wired(ctx, back);
                        TunnelVerdict::PeerNotified
                    } else {
                        // Already spilling: last-ditch delivery attempt
                        // (bounces are not allowed to loop).
                        self.radio_deliver(ctx, view.mh, rejected);
                        TunnelVerdict::Done
                    }
                }
            },
            Overflow::SpillPeer | Overflow::TailDrop => {
                match self.pool.try_buffer(pcoa, pkt, limit) {
                    Ok(()) => {
                        fh_net::record_trace(ctx, || fh_net::TraceEvent::BufferAdmit {
                            ar,
                            class,
                            flow,
                        });
                    }
                    Err(rejected) => {
                        fh_net::record_drop(ctx, rejected.flow, DropReason::BufferOverflow);
                    }
                }
                TunnelVerdict::Done
            }
        }
    }

    /// Transmits one flushed packet toward its target.
    pub(crate) fn flush_one<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        target: FlushTarget,
        pkt: Packet,
    ) {
        match target {
            FlushTarget::Tunnel(nar) => {
                let outer = pkt.encapsulate(self.addr, nar);
                self.send_wired(ctx, outer);
            }
            FlushTarget::Radio(mh) => self.radio_deliver(ctx, mh, pkt),
        }
    }

    /// Transmits a whole flushed batch toward its target.
    ///
    /// Same packets, same order, same per-packet events as a
    /// [`Datapath::flush_one`] loop — but the route is resolved once per
    /// batch instead of once per packet: the tunnel arm hoists the
    /// peer-link lookup (every outer header is addressed to the same
    /// NAR), and the radio arm hoists the attachment/AP resolution into
    /// [`send_downlink_batch`].
    pub(crate) fn flush_batch<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        target: FlushTarget,
        pkts: Vec<Packet>,
    ) {
        match target {
            FlushTarget::Tunnel(nar) => {
                let link = self.peer_links.get(&nar).copied();
                let node = self.node;
                for pkt in pkts {
                    let outer = pkt.encapsulate(self.addr, nar);
                    match link {
                        Some(link) => {
                            let _ = transmit_on(ctx, link, node, outer);
                        }
                        None => {
                            let _ = send_from(ctx, node, outer);
                        }
                    }
                }
            }
            FlushTarget::Radio(mh) => {
                let attached = ctx.shared.radio().attachment(mh);
                let ap = match attached {
                    Some(ap) if self.owns_ap(ap) => ap,
                    _ => self.aps[0],
                };
                send_downlink_batch(ctx, ap, mh, pkts);
            }
        }
    }
}
