//! The access-router agent: PAR and NAR roles of the enhanced fast
//! handover protocol.
//!
//! One [`ArAgent`] runs on every access router and plays **both** roles,
//! per handover session:
//!
//! * **PAR role** (the router the host is leaving) — answers RtSolPr+BI,
//!   reserves local buffer space, negotiates with the NAR through HI+BR /
//!   HAck+BA, advertises the outcome in PrRtAdv, and on FBU redirects every
//!   packet for the departing host according to the Table 3.3 operation
//!   matrix ([`crate::policy`]). On BufferForward it flushes its buffer
//!   through the inter-router tunnel.
//! * **NAR role** (the router the host is joining) — grants or denies
//!   buffer space, installs a host route for the previous care-of address,
//!   buffers or immediately delivers tunneled packets, reports BufferFull
//!   so the PAR can take over high-priority traffic, and on FNA+BF flushes
//!   its buffer over the air and relays BF to the PAR.
//!
//! A handover within the router's own cell set (the pure link-layer
//! handoff of Fig 3.5) short-circuits the negotiation: the router grants
//! from its own pool and answers PrRtAdv directly.

use std::collections::HashMap;
use std::net::Ipv6Addr;

use fh_sim::{EventKey, SimDuration, SimTime};

use fh_net::{
    msg::{AckStatus, AuthToken, BufferAck, BufferInit, BufferRequest},
    send_from, transmit_on, ApId, ControlMsg, DropReason, LinkId, NetCtx, NetMsg, NodeFaultSpec,
    NodeId, Packet, Payload, Prefix, ServiceClass, TimerKind,
};
use fh_wireless::{send_downlink, RadioWorld};

use crate::buffer::{AdmissionLimit, BufferPool};
use crate::policy::{
    nar_action, nar_overflow, par_action, AvailabilityCase, NarAction, NarOverflow, ParAction,
};
use crate::scheme::ProtocolConfig;

/// Counters an access router keeps about its protocol activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArMetrics {
    /// Handover sessions served in the PAR role.
    pub par_sessions: u64,
    /// Handover sessions served in the NAR role.
    pub nar_sessions: u64,
    /// Pure link-layer (intra-router) handovers served.
    pub intra_sessions: u64,
    /// BufferFull notifications sent (NAR role).
    pub buffer_full_sent: u64,
    /// Buffer flushes performed (both roles).
    pub flushes: u64,
    /// Sessions whose reservation lifetime expired.
    pub expired_sessions: u64,
    /// FNAs rejected by the authentication check.
    pub auth_rejections: u64,
    /// Guard-buffering sessions served (standalone BI, §3.3 link-quality
    /// buffering / smooth-handover draft).
    pub guard_sessions: u64,
    /// HI retransmissions performed (PAR role, hardened mode only).
    pub retransmissions: u64,
    /// HI exchanges that exhausted their retry budget and degraded the
    /// session to PAR-only buffering.
    pub hi_exhausted: u64,
    /// Guard-buffering episodes reclaimed by lifetime expiry (the host
    /// never sent the releasing BF).
    pub guard_expired: u64,
    /// Times this router crashed (volatile state lost).
    pub crashes: u64,
    /// Soft-state host routes reclaimed by the expiry sweep.
    pub routes_expired: u64,
    /// Handover sessions reclaimed because the peer router went silent
    /// past the dead-peer timeout.
    pub dead_peer_reclaims: u64,
    /// Finalized handover sessions per Table 3.2 availability case
    /// (`[both, nar-only, par-only, none]`).
    pub case_counts: [u64; 4],
}

impl ArMetrics {
    /// Adds these counters into the shared stats registry under `ar.*`
    /// names (aggregating when called for several routers).
    pub fn export(&self, stats: &mut fh_net::NetStats) {
        stats.bump("ar.par_sessions", self.par_sessions);
        stats.bump("ar.nar_sessions", self.nar_sessions);
        stats.bump("ar.intra_sessions", self.intra_sessions);
        stats.bump("ar.buffer_full_sent", self.buffer_full_sent);
        stats.bump("ar.flushes", self.flushes);
        stats.bump("ar.expired_sessions", self.expired_sessions);
        stats.bump("ar.auth_rejections", self.auth_rejections);
        stats.bump("ar.guard_sessions", self.guard_sessions);
        stats.bump("ar.retransmissions", 0);
        stats.bump("ar.hi_exhausted", 0);
        stats.bump("ar.guard_expired", self.guard_expired);
        stats.bump("ar.crashes", self.crashes);
        stats.bump("ar.routes_expired", self.routes_expired);
        stats.bump("ar.dead_peer_reclaims", self.dead_peer_reclaims);
    }
}

/// Snapshot of an access router's live soft state, taken by the end-of-run
/// resource-leak auditor. After a quiesce period longer than every
/// reservation lifetime, all session- and buffer-related counts must be
/// zero; the only state allowed to remain is host routes for hosts still
/// attached (and, when soft-state routes are enabled, their refresh
/// timers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArSoftState {
    /// Live PAR-role handover sessions (includes guard episodes).
    pub par_sessions: usize,
    /// Live NAR-role handover sessions.
    pub nar_sessions: usize,
    /// Live buffer-pool sessions (reservations or open unreserved slots).
    pub pool_sessions: usize,
    /// Packets still queued in the buffer pool.
    pub buffered_packets: usize,
    /// Buffer slots still reserved (capacity minus unreserved).
    pub reserved_slots: usize,
    /// Keyed timers still registered (lifetime, flush, retransmission,
    /// and host-route expiry tokens).
    pub pending_timers: usize,
    /// Paced flushes still in progress.
    pub paced_flushes: usize,
    /// HI retransmission exchanges still in flight.
    pub pending_hi_rtx: usize,
    /// Soft-state host routes with a live expiry token.
    pub route_timers: usize,
}

impl ArSoftState {
    /// `true` when nothing but (possibly) refreshed host routes remains:
    /// every session, reservation, queued packet and flush is gone, and
    /// the only registered timers are host-route expiry tokens.
    #[must_use]
    pub fn quiesced(&self) -> bool {
        self.par_sessions == 0
            && self.nar_sessions == 0
            && self.pool_sessions == 0
            && self.buffered_packets == 0
            && self.reserved_slots == 0
            && self.paced_flushes == 0
            && self.pending_hi_rtx == 0
            && self.pending_timers == self.route_timers
    }
}

/// Accounts a packet arriving at a crashed node so conservation still
/// balances: data (including the inner flow of a tunneled packet — the
/// outer header copies it) is recorded as [`DropReason::Reclaimed`];
/// signaling rides the unaudited control flow and is silently lost.
fn reclaim_at_dead_node<S: RadioWorld>(ctx: &mut NetCtx<'_, S>, pkt: &Packet) {
    match &pkt.payload {
        Payload::Control(_) => {}
        Payload::Data | Payload::Tcp(_) | Payload::Encap(_) => {
            fh_net::record_drop(ctx, pkt.flow, DropReason::Reclaimed);
        }
    }
}

/// Index of an [`AvailabilityCase`] into [`ArMetrics::case_counts`].
fn case_index(case: AvailabilityCase) -> usize {
    match case {
        AvailabilityCase::BothAvailable => 0,
        AvailabilityCase::NarOnly => 1,
        AvailabilityCase::ParOnly => 2,
        AvailabilityCase::NoneAvailable => 3,
    }
}

/// Where a paced flush sends its packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushTarget {
    /// Through the inter-router tunnel toward this NAR address.
    Tunnel(Ipv6Addr),
    /// Over the air to this host.
    Radio(NodeId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ParState {
    /// HI sent, waiting for the NAR's HAck.
    AwaitHAck,
    /// PrRtAdv sent; waiting for the FBU.
    Ready,
    /// FBU received: redirection active.
    Redirecting,
    /// Buffer flushed; tunnel stays up for stragglers.
    Released,
}

#[derive(Debug)]
struct ParSession {
    mh: NodeId,
    ncoa: Option<Ipv6Addr>,
    /// `None` for a pure link-layer (intra-router) handover.
    nar_addr: Option<Ipv6Addr>,
    /// The AP the host asked about (kept so the PrRtAdv can be rebuilt
    /// idempotently on duplicate RtSolPr or after HI-retry exhaustion).
    target_ap: ApId,
    /// The NAR's grant from the HAck (zero before it arrives or after a
    /// degraded finalization).
    nar_granted: u32,
    /// `true` if the host piggybacked a BI on its RtSolPr.
    wants_buffer: bool,
    state: ParState,
    case: AvailabilityCase,
    nar_full: bool,
    lifetime_token: u64,
    auth: Option<AuthToken>,
}

/// In-flight HI retransmission state (PAR role, hardened mode).
#[derive(Debug)]
struct HiRtx {
    key: EventKey,
    token: u64,
    /// Transmissions made so far (the initial send counts).
    sent: u32,
    nar_addr: Ipv6Addr,
    /// The exact HI to replay.
    hi: ControlMsg,
}

#[derive(Debug)]
struct NarSession {
    mh_l2: NodeId,
    par_addr: Ipv6Addr,
    granted: u32,
    /// `true` until the host attaches and the buffer is flushed.
    buffering: bool,
    full_notified: bool,
    lifetime_token: u64,
    auth: Option<AuthToken>,
}

/// The access-router protocol agent (PAR + NAR roles).
#[derive(Debug)]
pub struct ArAgent {
    /// The node this agent runs on.
    pub node: NodeId,
    /// The router's own address.
    pub addr: Ipv6Addr,
    /// The on-link prefix mobile hosts form care-of addresses from.
    pub prefix: Prefix,
    /// Access points belonging to this router.
    pub aps: Vec<ApId>,
    /// The MAP advertised in router advertisements.
    pub map_addr: Ipv6Addr,
    /// Protocol parameters.
    pub config: ProtocolConfig,
    /// The handover buffer pool.
    pub pool: BufferPool,
    /// Activity counters.
    pub metrics: ArMetrics,
    /// Scheduled crash / restart fault, if any (noop by default).
    pub node_fault: NodeFaultSpec,
    /// `false` while crashed: every event except the restart timer is
    /// swallowed, and arriving data packets are reclaimed.
    alive: bool,
    ap_directory: HashMap<ApId, Ipv6Addr>,
    peer_links: HashMap<Ipv6Addr, LinkId>,
    neighbors: HashMap<Ipv6Addr, NodeId>,
    /// Live expiry token and timer key per soft-state host route (empty
    /// while `host_route_lifetime` is `MAX`: routes are then hard state).
    route_tokens: HashMap<Ipv6Addr, (u64, EventKey)>,
    /// Last time each peer router was heard from (dead-peer discovery).
    peer_last_heard: HashMap<Ipv6Addr, SimTime>,
    par_sessions: HashMap<Ipv6Addr, ParSession>,
    nar_sessions: HashMap<Ipv6Addr, NarSession>,
    hi_rtx: HashMap<Ipv6Addr, HiRtx>,
    flushing: HashMap<Ipv6Addr, (FlushTarget, u64)>,
    timer_sessions: HashMap<u64, Ipv6Addr>,
    next_token: u64,
    auth_seed: u64,
}

impl ArAgent {
    /// Creates an access-router agent.
    #[must_use]
    pub fn new(
        node: NodeId,
        addr: Ipv6Addr,
        prefix: Prefix,
        aps: Vec<ApId>,
        map_addr: Ipv6Addr,
        config: ProtocolConfig,
        pool_capacity: usize,
    ) -> Self {
        assert!(prefix.contains(addr), "router address must be on-link");
        ArAgent {
            node,
            addr,
            prefix,
            aps,
            map_addr,
            config,
            pool: BufferPool::new(pool_capacity),
            metrics: ArMetrics::default(),
            node_fault: NodeFaultSpec::default(),
            alive: true,
            ap_directory: HashMap::new(),
            peer_links: HashMap::new(),
            neighbors: HashMap::new(),
            route_tokens: HashMap::new(),
            peer_last_heard: HashMap::new(),
            par_sessions: HashMap::new(),
            nar_sessions: HashMap::new(),
            hi_rtx: HashMap::new(),
            flushing: HashMap::new(),
            timer_sessions: HashMap::new(),
            next_token: 1,
            auth_seed: 0x5eed,
        }
    }

    /// Teaches this router which address serves a (foreign) access point,
    /// so RtSolPr targets can be resolved to the right NAR.
    pub fn learn_ap(&mut self, ap: ApId, router_addr: Ipv6Addr) {
        self.ap_directory.insert(ap, router_addr);
    }

    /// Pins traffic toward `peer` to a specific link — the FMIPv6
    /// bidirectional tunnel is a point-to-point interface between the two
    /// access routers, not subject to shortest-path routing.
    pub fn learn_peer_link(&mut self, peer: Ipv6Addr, link: LinkId) {
        self.peer_links.insert(peer, link);
    }

    /// Sends a packet toward another router, preferring a pinned peer link.
    fn send_wired<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, pkt: Packet) {
        if let Some(&link) = self.peer_links.get(&pkt.dst) {
            let node = self.node;
            let _ = transmit_on(ctx, link, node, pkt);
            return;
        }
        let node = self.node;
        let _ = send_from(ctx, node, pkt);
    }

    /// Builds, accounts and sends a control message to another router.
    fn send_control_wired<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        dst: Ipv6Addr,
        msg: ControlMsg,
    ) {
        fh_net::record_control(ctx, &msg);
        let pkt = Packet::control(self.addr, dst, msg, ctx.now());
        self.send_wired(ctx, pkt);
    }

    /// The registered on-link neighbor for `addr`, if any.
    #[must_use]
    pub fn neighbor(&self, addr: Ipv6Addr) -> Option<NodeId> {
        self.neighbors.get(&addr).copied()
    }

    /// `false` while the router is crashed.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Snapshot of the router's live soft state for the leak auditor.
    #[must_use]
    pub fn soft_state(&self) -> ArSoftState {
        ArSoftState {
            par_sessions: self.par_sessions.len(),
            nar_sessions: self.nar_sessions.len(),
            pool_sessions: self.pool.live_sessions(),
            buffered_packets: self.pool.used(),
            reserved_slots: self.pool.capacity() - self.pool.unreserved(),
            pending_timers: self.timer_sessions.len(),
            paced_flushes: self.flushing.len(),
            pending_hi_rtx: self.hi_rtx.len(),
            route_timers: self.route_tokens.len(),
        }
    }

    /// All installed host routes, sorted by address (HashMap iteration
    /// order is nondeterministic). The leak auditor cross-checks each
    /// entry against the radio attachment table.
    #[must_use]
    pub fn neighbor_entries(&self) -> Vec<(Ipv6Addr, NodeId)> {
        let mut v: Vec<(Ipv6Addr, NodeId)> = self.neighbors.iter().map(|(&a, &n)| (a, n)).collect();
        v.sort();
        v
    }

    /// Mirrors this router's activity counters into the shared stats
    /// registry under `ar.*` names, aggregating across routers. Scenarios
    /// call this once at end of run.
    pub fn export_metrics(&self, stats: &mut fh_net::NetStats) {
        self.metrics.export(stats);
    }

    /// `true` if `ap` belongs to this router.
    #[must_use]
    pub fn owns_ap(&self, ap: ApId) -> bool {
        self.aps.contains(&ap)
    }

    fn fresh_token(&mut self, key: Ipv6Addr) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        self.timer_sessions.insert(token, key);
        token
    }

    /// Arms a session-lifetime expiry timer when `lifetime` is finite and
    /// nonzero and returns its token. Returns 0 (a token no timer ever
    /// fires with) otherwise, so infinite-lifetime sessions leave no
    /// residue in the timer table.
    fn arm_session_lifetime<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        key: Ipv6Addr,
        lifetime: SimDuration,
    ) -> u64 {
        if lifetime.is_zero() || lifetime == SimDuration::MAX {
            return 0;
        }
        let token = self.fresh_token(key);
        ctx.send_self(
            lifetime,
            NetMsg::Timer {
                kind: TimerKind::BufferLifetime,
                token,
            },
        );
        token
    }

    // ------------------------------------------------------------------
    // Event entry point
    // ------------------------------------------------------------------

    /// Handles one simulator event for this router.
    pub fn handle<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, msg: NetMsg) {
        if !self.alive {
            self.handle_while_dead(ctx, msg);
            return;
        }
        match msg {
            NetMsg::Start => {
                let jitter = SimDuration::from_micros(ctx.rng.gen_range_u64(1000));
                ctx.send_self(
                    jitter,
                    NetMsg::Timer {
                        kind: TimerKind::RouterAdvertisement,
                        token: 0,
                    },
                );
                if let Some(at) = self.node_fault.crash_at {
                    let me = ctx.self_id();
                    ctx.send_at(
                        me,
                        at,
                        NetMsg::Timer {
                            kind: TimerKind::NodeCrash,
                            token: 0,
                        },
                    );
                }
                self.arm_dead_peer_sweep(ctx);
            }
            NetMsg::Timer { kind, token } => self.on_timer(ctx, kind, token),
            NetMsg::LinkPacket { pkt, .. } => {
                let node = self.node;
                if let Some(local) = send_from(ctx, node, pkt) {
                    self.handle_local(ctx, local);
                }
            }
            NetMsg::RadioPacket { from, pkt, .. } => self.handle_uplink(ctx, from, pkt),
            NetMsg::L2(_) => {}
        }
    }

    /// Event handling while crashed: only the restart timer does anything;
    /// arriving data (wired or radio) is reclaimed so flow conservation
    /// still balances, and everything else — signaling, stale timers, the
    /// router-advertisement chain — is silently lost, exactly like a host
    /// whose default router went dark.
    fn handle_while_dead<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, msg: NetMsg) {
        match msg {
            NetMsg::Timer {
                kind: TimerKind::NodeRestart,
                ..
            } => self.restart(ctx),
            NetMsg::LinkPacket { pkt, .. } | NetMsg::RadioPacket { pkt, .. } => {
                reclaim_at_dead_node(ctx, &pkt);
            }
            NetMsg::Start | NetMsg::Timer { .. } | NetMsg::L2(_) => {}
        }
    }

    /// Scheduled crash: volatile state is lost. Queued packets are
    /// accounted as [`DropReason::Reclaimed`]; every session, route,
    /// reservation and pending-timer token is forgotten (outstanding
    /// keyed timers then no-op when they fire).
    fn crash<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>) {
        if !self.alive {
            return;
        }
        self.alive = false;
        self.metrics.crashes += 1;
        let node = self.node;
        fh_net::record_trace(ctx, || fh_net::TraceEvent::FaultFired {
            node,
            what: "crash",
        });
        let wiped = self.pool.wipe_all();
        let pkts = wiped.len();
        for pkt in wiped {
            fh_net::record_drop(ctx, pkt.flow, DropReason::Reclaimed);
        }
        if pkts > 0 {
            fh_net::record_trace(ctx, || fh_net::TraceEvent::StateReclaimed { node, pkts });
        }
        self.par_sessions.clear();
        self.nar_sessions.clear();
        self.neighbors.clear();
        self.route_tokens.clear();
        self.peer_last_heard.clear();
        self.hi_rtx.clear();
        self.flushing.clear();
        self.timer_sessions.clear();
        if let Some(down) = self.node_fault.restart_after {
            ctx.send_self(
                down,
                NetMsg::Timer {
                    kind: TimerKind::NodeRestart,
                    token: 0,
                },
            );
        }
    }

    /// Restart after a crash: the router comes back with empty tables and
    /// re-enters the network through its own beacons, like a freshly
    /// booted node. Attached hosts re-register via the RA path.
    fn restart<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>) {
        if self.alive {
            return;
        }
        self.alive = true;
        let node = self.node;
        fh_net::record_trace(ctx, || fh_net::TraceEvent::FaultFired {
            node,
            what: "restart",
        });
        let jitter = SimDuration::from_micros(ctx.rng.gen_range_u64(1000));
        ctx.send_self(
            jitter,
            NetMsg::Timer {
                kind: TimerKind::RouterAdvertisement,
                token: 0,
            },
        );
        self.arm_dead_peer_sweep(ctx);
    }

    /// Arms the periodic dead-peer sweep (only when the timeout is finite).
    fn arm_dead_peer_sweep<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>) {
        let timeout = self.config.dead_peer_timeout;
        if timeout.is_zero() || timeout == SimDuration::MAX {
            return;
        }
        ctx.send_self(
            timeout,
            NetMsg::Timer {
                kind: TimerKind::DeadPeerSweep,
                token: 0,
            },
        );
    }

    /// Reclaims every inter-router handover session whose peer has been
    /// silent longer than the dead-peer timeout, then re-arms the sweep.
    fn dead_peer_sweep<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>) {
        let timeout = self.config.dead_peer_timeout;
        if timeout.is_zero() || timeout == SimDuration::MAX {
            return;
        }
        let now = ctx.now();
        let silent = |heard: &HashMap<Ipv6Addr, SimTime>, peer: Ipv6Addr| {
            heard.get(&peer).copied().unwrap_or(SimTime::ZERO) + timeout <= now
        };
        let mut stale: Vec<Ipv6Addr> = self
            .par_sessions
            .iter()
            .filter(|(_, s)| {
                s.nar_addr
                    .is_some_and(|nar| silent(&self.peer_last_heard, nar))
            })
            .map(|(&k, _)| k)
            .collect();
        stale.sort();
        for pcoa in stale {
            self.par_sessions.remove(&pcoa);
            let expired = self.pool.expire(pcoa);
            let pkts = expired.len();
            for pkt in expired {
                fh_net::record_drop(ctx, pkt.flow, DropReason::Reclaimed);
            }
            let node = self.node;
            fh_net::record_trace(ctx, || fh_net::TraceEvent::StateReclaimed { node, pkts });
            self.metrics.dead_peer_reclaims += 1;
        }
        let mut stale: Vec<Ipv6Addr> = self
            .nar_sessions
            .iter()
            .filter(|(_, s)| silent(&self.peer_last_heard, s.par_addr))
            .map(|(&k, _)| k)
            .collect();
        stale.sort();
        for pcoa in stale {
            self.nar_sessions.remove(&pcoa);
            let expired = self.pool.expire(pcoa);
            let pkts = expired.len();
            for pkt in expired {
                fh_net::record_drop(ctx, pkt.flow, DropReason::Reclaimed);
            }
            let node = self.node;
            fh_net::record_trace(ctx, || fh_net::TraceEvent::StateReclaimed { node, pkts });
            self.metrics.dead_peer_reclaims += 1;
        }
        ctx.send_self(
            timeout,
            NetMsg::Timer {
                kind: TimerKind::DeadPeerSweep,
                token: 0,
            },
        );
    }

    /// Installs (or refreshes) a host route. While `host_route_lifetime`
    /// is finite the route is soft state: each install arms a fresh expiry
    /// token that supersedes the previous one, so only a route that stops
    /// being refreshed is reclaimed. With the default `MAX` lifetime this
    /// is a plain map insert — no token, no timer, no extra events.
    fn install_route<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        addr: Ipv6Addr,
        mh: NodeId,
    ) {
        self.neighbors.insert(addr, mh);
        let lifetime = self.config.host_route_lifetime;
        if lifetime.is_zero() || lifetime == SimDuration::MAX {
            return;
        }
        let token = self.fresh_token(addr);
        let key = ctx.send_self_keyed(
            lifetime,
            NetMsg::Timer {
                kind: TimerKind::HostRouteExpiry,
                token,
            },
        );
        // A refresh supersedes the previous expiry outright: cancel it and
        // retire its token so superseded timers never pile up pending.
        if let Some((old_token, old_key)) = self.route_tokens.insert(addr, (token, key)) {
            let _ = ctx.cancel(old_key);
            self.timer_sessions.remove(&old_token);
        }
    }

    /// Drops a host route and its expiry timer, if armed.
    fn drop_route<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, addr: Ipv6Addr) {
        self.neighbors.remove(&addr);
        if let Some((token, key)) = self.route_tokens.remove(&addr) {
            let _ = ctx.cancel(key);
            self.timer_sessions.remove(&token);
        }
    }

    fn on_timer<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, kind: TimerKind, token: u64) {
        match kind {
            TimerKind::RouterAdvertisement => {
                self.broadcast_ra(ctx);
                ctx.send_self(
                    self.config.ra_interval,
                    NetMsg::Timer {
                        kind: TimerKind::RouterAdvertisement,
                        token: 0,
                    },
                );
            }
            TimerKind::BufferStart => {
                // One-shot: reclaim the token so long-running routers do
                // not accumulate stale entries.
                if let Some(pcoa) = self.timer_sessions.remove(&token) {
                    if let Some(sess) = self.par_sessions.get_mut(&pcoa) {
                        if sess.state == ParState::Ready {
                            // Auto-start buffering: the host vanished without
                            // managing to send its FBU (BI start-time field).
                            sess.state = ParState::Redirecting;
                        }
                    }
                }
            }
            TimerKind::BufferLifetime => {
                if let Some(pcoa) = self.timer_sessions.remove(&token) {
                    self.expire_session(ctx, pcoa, token);
                }
            }
            TimerKind::FlushStep => self.flush_step(ctx, token),
            TimerKind::RtxHi => {
                if let Some(pcoa) = self.timer_sessions.remove(&token) {
                    self.on_rtx_hi(ctx, pcoa);
                }
            }
            TimerKind::NodeCrash => self.crash(ctx),
            TimerKind::NodeRestart => {} // only meaningful while dead
            TimerKind::HostRouteExpiry => {
                if let Some(addr) = self.timer_sessions.remove(&token) {
                    // Only the latest token is live; a refresh supersedes
                    // all earlier expiry timers for the same route.
                    if self.route_tokens.get(&addr).map(|&(t, _)| t) == Some(token) {
                        self.route_tokens.remove(&addr);
                        self.neighbors.remove(&addr);
                        self.metrics.routes_expired += 1;
                        let node = self.node;
                        fh_net::record_trace(ctx, || fh_net::TraceEvent::StateExpired {
                            node,
                            what: "host-route",
                        });
                    }
                }
            }
            TimerKind::DeadPeerSweep => self.dead_peer_sweep(ctx),
            _ => {}
        }
    }

    /// HI retransmission timer fired: the NAR's HAck never came.
    fn on_rtx_hi<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, pcoa: Ipv6Addr) {
        let Some(mut rtx) = self.hi_rtx.remove(&pcoa) else {
            return;
        };
        if !self.config.rtx.enabled {
            return;
        }
        let still_waiting = self
            .par_sessions
            .get(&pcoa)
            .is_some_and(|s| s.state == ParState::AwaitHAck);
        if !still_waiting {
            return;
        }
        let bo = self.config.rtx.backoff;
        if bo.exhausted(rtx.sent) {
            // The NAR is unreachable: finalize as a PAR-only session so
            // the host can still anticipate using our buffer alone.
            let par_granted = self.pool.granted(pcoa);
            if let Some(sess) = self.par_sessions.get_mut(&pcoa) {
                sess.state = ParState::Ready;
                sess.nar_granted = 0;
                sess.case = AvailabilityCase::from_grants(false, par_granted > 0);
                self.metrics.case_counts[case_index(sess.case)] += 1;
            }
            self.metrics.hi_exhausted += 1;
            ctx.shared.stats_mut().bump("ar.hi_exhausted", 1);
            self.send_prrtadv_for(ctx, pcoa);
            return;
        }
        let hi = rtx.hi.clone();
        self.send_control_wired(ctx, rtx.nar_addr, hi);
        self.metrics.retransmissions += 1;
        ctx.shared.stats_mut().bump("ar.retransmissions", 1);
        let node = self.node;
        fh_net::record_trace(ctx, || fh_net::TraceEvent::ControlRetransmit {
            kind: "HI",
            by: node,
        });
        let token = self.fresh_token(pcoa);
        rtx.token = token;
        rtx.key = ctx.send_self_keyed(
            bo.delay(rtx.sent),
            NetMsg::Timer {
                kind: TimerKind::RtxHi,
                token,
            },
        );
        rtx.sent += 1;
        self.hi_rtx.insert(pcoa, rtx);
    }

    fn expire_session<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        pcoa: Ipv6Addr,
        token: u64,
    ) {
        let par_match = self
            .par_sessions
            .get(&pcoa)
            .is_some_and(|s| s.lifetime_token == token);
        if par_match {
            let sess = self.par_sessions.remove(&pcoa).expect("matched above");
            // A guard episode whose releasing BF never came: its packets
            // were parked on the host's own request, so their release is a
            // soft-state expiry (`Expired`), distinct from the reservation
            // timeout of a real handover session.
            let guard =
                sess.target_ap == ApId(u32::MAX) && sess.nar_addr.is_none() && sess.wants_buffer;
            let reason = if guard {
                DropReason::Expired
            } else {
                DropReason::LifetimeExpired
            };
            for pkt in self.pool.expire(pcoa) {
                fh_net::record_drop(ctx, pkt.flow, reason);
            }
            let node = self.node;
            fh_net::record_trace(ctx, || fh_net::TraceEvent::StateExpired {
                node,
                what: if guard { "guard" } else { "reservation" },
            });
            if guard {
                self.metrics.guard_expired += 1;
            }
            self.metrics.expired_sessions += 1;
        }
        let nar_match = self
            .nar_sessions
            .get(&pcoa)
            .is_some_and(|s| s.lifetime_token == token);
        if nar_match {
            self.nar_sessions.remove(&pcoa);
            for pkt in self.pool.expire(pcoa) {
                fh_net::record_drop(ctx, pkt.flow, DropReason::LifetimeExpired);
            }
            let node = self.node;
            fh_net::record_trace(ctx, || fh_net::TraceEvent::StateExpired {
                node,
                what: "reservation",
            });
            self.metrics.expired_sessions += 1;
        }
    }

    fn broadcast_ra<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>) {
        let ra = ControlMsg::RouterAdvertisement {
            prefix: self.prefix,
            router: self.addr,
            map: Some(self.map_addr),
            buffering: self.config.scheme.buffers(),
        };
        for &ap in &self.aps.clone() {
            let mhs = ctx.shared.radio().attached_mhs(ap);
            for mh in mhs {
                fh_net::record_control(ctx, &ra);
                let pkt =
                    Packet::control(self.addr, self.prefix.host(0xffff), ra.clone(), ctx.now());
                send_downlink(ctx, ap, mh, pkt);
            }
        }
    }

    // ------------------------------------------------------------------
    // Uplink (radio) handling
    // ------------------------------------------------------------------

    fn handle_uplink<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, from: NodeId, pkt: Packet) {
        if pkt.dst == self.addr {
            if let Payload::Control(msg) = &pkt.payload {
                let msg = (**msg).clone();
                self.handle_mh_control(ctx, from, pkt.src, msg);
                return;
            }
        }
        // Anything else from a host is forwarded into the network (or to an
        // on-link neighbor).
        self.deliver_or_forward(ctx, pkt);
    }

    fn handle_mh_control<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        from: NodeId,
        src: Ipv6Addr,
        msg: ControlMsg,
    ) {
        let node = self.node;
        fh_net::record_trace(ctx, || fh_net::TraceEvent::ControlReceived {
            kind: msg.kind_name(),
            at: node,
        });
        match msg {
            ControlMsg::RtSolPr { target_ap, bi } => {
                self.on_rtsolpr(ctx, from, src, target_ap, bi);
            }
            ControlMsg::FastBindingUpdate { pcoa, ncoa } => {
                self.on_fbu(ctx, pcoa, ncoa);
            }
            ControlMsg::FastNeighborAdvertisement {
                ncoa,
                pcoa,
                bf,
                auth,
            } => {
                self.on_fna(ctx, from, ncoa, pcoa, bf, auth);
            }
            ControlMsg::BufferForward { pcoa } => {
                // Standalone BF from the host: pure-L2 flush (Fig 3.5) or
                // the end of a guard-buffering episode.
                self.flush_par(ctx, pcoa);
            }
            ControlMsg::BufferInit(bi) => {
                // Standalone BI (smooth-handover draft, Fig 2.4): the host
                // asks its current router to buffer — e.g. because it
                // detected poor link quality (§3.3). Buffering starts at
                // once and releases on a standalone BF.
                self.on_guard_buffer_init(ctx, from, src, bi);
            }
            ControlMsg::RouterSolicitation => {
                let ra = ControlMsg::RouterAdvertisement {
                    prefix: self.prefix,
                    router: self.addr,
                    map: Some(self.map_addr),
                    buffering: self.config.scheme.buffers(),
                };
                if let Some(ap) = ctx.shared.radio().attachment(from) {
                    if self.owns_ap(ap) {
                        fh_net::record_control(ctx, &ra);
                        let pkt = Packet::control(self.addr, src, ra, ctx.now());
                        send_downlink(ctx, ap, from, pkt);
                    }
                }
            }
            _ => {}
        }
    }

    /// Handover initiation, PAR side (Fig 3.3).
    fn on_rtsolpr<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        mh: NodeId,
        pcoa: Ipv6Addr,
        target_ap: ApId,
        bi: Option<BufferInit>,
    ) {
        // Cancel request: zero start time and lifetime (§3.2.2.1).
        if bi.as_ref().is_some_and(BufferInit::is_cancel) {
            if self.par_sessions.remove(&pcoa).is_some() {
                self.pool.release(pcoa);
            }
            return;
        }
        if self.config.rtx.enabled {
            // Idempotency under retransmission: a duplicate RtSolPr must
            // not re-reserve or restart the negotiation.
            match self.par_sessions.get(&pcoa).map(|s| s.state) {
                Some(ParState::AwaitHAck) => return, // HI retry loop owns it
                Some(ParState::Ready) => {
                    // The PrRtAdv was lost on the air: answer again.
                    self.send_prrtadv_for(ctx, pcoa);
                    return;
                }
                _ => {}
            }
        }
        let lifetime = bi
            .as_ref()
            .map_or(self.config.reservation_lifetime, |b| b.lifetime);
        let wants_buffer = bi.is_some();
        // Split the request between the two routers: the proposed scheme
        // uses *both* buffer spaces (§3.1.2 "maximize buffer utilization"),
        // so each router is asked for half; the baselines put everything on
        // their single router.
        let requested = bi.as_ref().map_or(0, |b| b.size);
        let scheme = self.config.scheme;
        let (par_request, nar_request) = match (scheme.uses_par_buffer(), scheme.uses_nar_buffer())
        {
            (true, true) => (requested.div_ceil(2), requested / 2),
            (true, false) => (requested, 0),
            (false, true) => (0, requested),
            (false, false) => (0, 0),
        };
        // Reserve locally first so the availability case is known in full
        // once the HAck returns.
        let par_granted = if wants_buffer && par_request > 0 {
            self.pool.grant(pcoa, par_request)
        } else {
            self.pool.open_unreserved(pcoa);
            0
        };
        let auth = self.config.auth_required.then(|| {
            self.auth_seed = self.auth_seed.wrapping_mul(0x9E37_79B9).wrapping_add(1);
            AuthToken(self.auth_seed)
        });
        let lifetime_token = self.arm_session_lifetime(ctx, pcoa, lifetime);

        if self.owns_ap(target_ap) {
            // Pure link-layer handoff (Fig 3.5): there is no NAR to share
            // with, so the whole request lands in our own pool.
            let par_granted = if wants_buffer && self.config.scheme.buffers() {
                self.pool.grant(pcoa, requested)
            } else {
                par_granted
            };
            self.metrics.intra_sessions += 1;
            self.par_sessions.insert(
                pcoa,
                ParSession {
                    mh,
                    ncoa: Some(pcoa),
                    nar_addr: None,
                    target_ap,
                    nar_granted: 0,
                    wants_buffer,
                    state: ParState::Ready,
                    case: AvailabilityCase::from_grants(false, par_granted > 0),
                    nar_full: false,
                    lifetime_token,
                    auth,
                },
            );
            self.schedule_buffer_start(ctx, pcoa, bi.as_ref());
            let reply = ControlMsg::PrRtAdv {
                target_ap,
                nar_prefix: self.prefix,
                nar_addr: self.addr,
                ba: wants_buffer.then_some(BufferAck {
                    nar_granted: 0,
                    par_granted,
                }),
                auth,
            };
            self.send_to_mh(ctx, mh, pcoa, reply);
            return;
        }

        let Some(&nar_addr) = self.ap_directory.get(&target_ap) else {
            // Unknown target AP: nothing we can do but ignore (the host
            // will hand off without anticipation).
            return;
        };
        self.metrics.par_sessions += 1;
        self.par_sessions.insert(
            pcoa,
            ParSession {
                mh,
                ncoa: None,
                nar_addr: Some(nar_addr),
                target_ap,
                nar_granted: 0,
                wants_buffer,
                state: ParState::AwaitHAck,
                case: AvailabilityCase::from_grants(false, par_granted > 0),
                nar_full: false,
                lifetime_token,
                auth,
            },
        );
        self.schedule_buffer_start(ctx, pcoa, bi.as_ref());
        let br = (wants_buffer && nar_request > 0).then_some(BufferRequest {
            size: nar_request,
            lifetime,
        });
        let per_class = self.config.precise_negotiation.then(|| {
            // Even split between real-time, high-priority and best effort.
            [nar_request / 3, nar_request.div_ceil(3), nar_request / 3]
        });
        let hi = ControlMsg::HandoverInitiate {
            pcoa,
            mh_l2: mh,
            ncoa: None,
            br,
            per_class,
            auth,
        };
        if self.config.rtx.enabled {
            let token = self.fresh_token(pcoa);
            let key = ctx.send_self_keyed(
                self.config.rtx.backoff.delay(0),
                NetMsg::Timer {
                    kind: TimerKind::RtxHi,
                    token,
                },
            );
            self.hi_rtx.insert(
                pcoa,
                HiRtx {
                    key,
                    token,
                    sent: 1,
                    nar_addr,
                    hi: hi.clone(),
                },
            );
        }
        self.send_control_wired(ctx, nar_addr, hi);
    }

    /// Standalone BI: open (or cancel) a guard-buffering session keyed by
    /// the host's current address. The session looks like an intra-router
    /// handover already in the redirecting state, so the Table 3.3 policy
    /// applies with the PAR-only availability case.
    fn on_guard_buffer_init<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        mh: NodeId,
        addr: Ipv6Addr,
        bi: BufferInit,
    ) {
        if bi.is_cancel() {
            if self.par_sessions.remove(&addr).is_some() {
                for pkt in self.pool.release(addr) {
                    // Cancelled with packets queued: deliver what we have.
                    self.radio_deliver(ctx, mh, pkt);
                }
            }
            return;
        }
        let granted = self.pool.grant(addr, bi.size);
        self.metrics.guard_sessions += 1;
        // A guard episode must never pin its reservation forever: a BI
        // with no (or an infinite) lifetime falls back to the router's own
        // reservation lifetime, so an episode whose releasing BF is lost
        // is still reclaimed by the expiry sweep.
        let lifetime = if bi.lifetime.is_zero() || bi.lifetime == SimDuration::MAX {
            self.config.reservation_lifetime
        } else {
            bi.lifetime
        };
        let lifetime_token = self.arm_session_lifetime(ctx, addr, lifetime);
        let case = AvailabilityCase::from_grants(false, granted > 0);
        self.metrics.case_counts[case_index(case)] += 1;
        self.par_sessions.insert(
            addr,
            ParSession {
                mh,
                ncoa: Some(addr),
                nar_addr: None,
                target_ap: ApId(u32::MAX),
                nar_granted: 0,
                wants_buffer: true,
                state: ParState::Redirecting,
                case,
                nar_full: false,
                lifetime_token,
                auth: None,
            },
        );
        let ba = ControlMsg::BufferAck(BufferAck {
            nar_granted: 0,
            par_granted: granted,
        });
        self.send_to_mh(ctx, mh, addr, ba);
    }

    fn schedule_buffer_start<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        pcoa: Ipv6Addr,
        bi: Option<&BufferInit>,
    ) {
        if let Some(bi) = bi {
            if !bi.start_time.is_zero() {
                let token = self.fresh_token(pcoa);
                ctx.send_self(
                    bi.start_time,
                    NetMsg::Timer {
                        kind: TimerKind::BufferStart,
                        token,
                    },
                );
            }
        }
    }

    /// FBU: start redirecting (packet redirection phase, §3.2.2.2).
    fn on_fbu<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, pcoa: Ipv6Addr, ncoa: Ipv6Addr) {
        let (mh, nar_addr, status) = match self.par_sessions.get_mut(&pcoa) {
            Some(sess) => {
                sess.ncoa = Some(ncoa);
                if matches!(sess.state, ParState::AwaitHAck | ParState::Ready) {
                    sess.state = ParState::Redirecting;
                }
                (sess.mh, sess.nar_addr, AckStatus::Accepted)
            }
            None => {
                // FBU without prior RtSolPr (no anticipation): redirect
                // unbuffered to the router owning the NCoA's subnet — we
                // know nothing better. A session with no grants anywhere.
                let mh = self.neighbors.get(&pcoa).copied();
                let Some(mh) = mh else {
                    return;
                };
                self.pool.open_unreserved(pcoa);
                let lifetime_token =
                    self.arm_session_lifetime(ctx, pcoa, self.config.reservation_lifetime);
                self.par_sessions.insert(
                    pcoa,
                    ParSession {
                        mh,
                        ncoa: Some(ncoa),
                        nar_addr: None,
                        target_ap: ApId(u32::MAX),
                        nar_granted: 0,
                        wants_buffer: false,
                        state: ParState::Redirecting,
                        case: AvailabilityCase::NoneAvailable,
                        nar_full: false,
                        lifetime_token,
                        auth: None,
                    },
                );
                (mh, None, AckStatus::Accepted)
            }
        };
        // FBAck to the host on the old link (usually already gone) …
        let fback = ControlMsg::FastBindingAck { pcoa, status };
        self.send_to_mh(ctx, mh, pcoa, fback.clone());
        // … and to the NAR.
        if let Some(nar) = nar_addr {
            self.send_control_wired(ctx, nar, fback);
        }
    }

    /// FNA (+BF): the host arrived on our link (buffer release, §3.2.2.3).
    fn on_fna<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        from: NodeId,
        ncoa: Ipv6Addr,
        pcoa: Ipv6Addr,
        bf: bool,
        auth: Option<AuthToken>,
    ) {
        if let Some(sess) = self.nar_sessions.get(&pcoa) {
            if self.config.auth_required && sess.auth != auth {
                self.metrics.auth_rejections += 1;
                return;
            }
        } else if self.config.auth_required && pcoa != ncoa {
            // An inter-router arrival we never agreed to.
            self.metrics.auth_rejections += 1;
            return;
        }
        // Install neighbor entries: the new address, and the previous one
        // (the host keeps receiving tunneled PCoA traffic until the MAP
        // binding update completes).
        self.install_route(ctx, ncoa, from);
        self.install_route(ctx, pcoa, from);
        if let Some(sess) = self.nar_sessions.get_mut(&pcoa) {
            sess.buffering = false;
            let par_addr = sess.par_addr;
            if bf {
                self.flush_nar(ctx, pcoa, from);
                let bf_msg = ControlMsg::BufferForward { pcoa };
                self.send_control_wired(ctx, par_addr, bf_msg);
            }
        }
    }

    // ------------------------------------------------------------------
    // Wired-side handling
    // ------------------------------------------------------------------

    /// Processes a packet that terminates at this router (after routing).
    pub fn handle_local<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, pkt: Packet) {
        if pkt.dst == self.addr {
            match pkt.payload.clone() {
                Payload::Encap(inner) => {
                    // Tunnel terminates here: NAR-side processing.
                    self.on_tunneled(ctx, *inner);
                }
                Payload::Control(msg) => self.on_wired_control(ctx, pkt.src, *msg),
                _ => {}
            }
            return;
        }
        self.deliver_or_forward(ctx, pkt);
    }

    fn on_wired_control<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        src: Ipv6Addr,
        msg: ControlMsg,
    ) {
        // Any signaling from a peer router proves it is alive.
        self.peer_last_heard.insert(src, ctx.now());
        let node = self.node;
        fh_net::record_trace(ctx, || fh_net::TraceEvent::ControlReceived {
            kind: msg.kind_name(),
            at: node,
        });
        match msg {
            ControlMsg::HandoverInitiate {
                pcoa,
                mh_l2,
                br,
                auth,
                per_class,
                ..
            } => {
                self.on_hi(ctx, src, pcoa, mh_l2, br, per_class, auth);
            }
            ControlMsg::HandoverAck { pcoa, status, ba } => {
                self.on_hack(ctx, pcoa, status, ba);
            }
            ControlMsg::BufferFull { pcoa } => {
                if let Some(sess) = self.par_sessions.get_mut(&pcoa) {
                    sess.nar_full = true;
                }
            }
            ControlMsg::BufferForward { pcoa } => {
                self.flush_par(ctx, pcoa);
            }
            ControlMsg::FastBindingUpdate { pcoa, ncoa } => {
                // Forwarded FBU (host attached to the NAR before sending it).
                self.on_fbu(ctx, pcoa, ncoa);
            }
            ControlMsg::FastBindingAck { .. } => {}
            _ => {}
        }
    }

    /// HI, NAR side: grant space, install the host route, acknowledge.
    #[allow(clippy::too_many_arguments)] // mirrors the HI wire format
    fn on_hi<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        par_addr: Ipv6Addr,
        pcoa: Ipv6Addr,
        mh_l2: NodeId,
        br: Option<BufferRequest>,
        per_class: Option<[u32; 3]>,
        auth: Option<AuthToken>,
    ) {
        if self.config.rtx.enabled {
            if let Some(sess) = self.nar_sessions.get(&pcoa) {
                // Duplicate HI (our HAck was lost): keep the existing
                // session — re-inserting would restart buffering after the
                // host already attached — and just acknowledge again.
                let hack = ControlMsg::HandoverAck {
                    pcoa,
                    status: AckStatus::Accepted,
                    ba: br.is_some().then_some(BufferAck {
                        nar_granted: sess.granted,
                        par_granted: 0,
                    }),
                };
                self.send_control_wired(ctx, par_addr, hack);
                return;
            }
        }
        let requested = br.as_ref().map_or(0, |b| b.size);
        let granted = if requested > 0 && self.config.scheme.uses_nar_buffer() {
            match (self.config.precise_negotiation, per_class) {
                (true, Some(pc)) => {
                    // Precise extension (future work §5): per-class shares,
                    // granted partially in priority order and enforced at
                    // admission time.
                    self.pool.grant_per_class(pcoa, pc).iter().sum()
                }
                (true, None) => {
                    // Precise mode against a legacy peer: grant what fits.
                    let fit = requested.min(self.pool.unreserved() as u32);
                    if fit > 0 {
                        self.pool.grant(pcoa, fit)
                    } else {
                        self.pool.open_unreserved(pcoa);
                        0
                    }
                }
                (false, _) => self.pool.grant(pcoa, requested),
            }
        } else {
            self.pool.open_unreserved(pcoa);
            0
        };
        self.metrics.nar_sessions += 1;
        let lifetime = br
            .as_ref()
            .map_or(self.config.reservation_lifetime, |b| b.lifetime);
        let lifetime_token = self.arm_session_lifetime(ctx, pcoa, lifetime);
        // Host route: deliveries for the PCoA now go over our radio.
        self.install_route(ctx, pcoa, mh_l2);
        self.nar_sessions.insert(
            pcoa,
            NarSession {
                mh_l2,
                par_addr,
                granted,
                buffering: true,
                full_notified: false,
                lifetime_token,
                auth,
            },
        );
        let hack = ControlMsg::HandoverAck {
            pcoa,
            status: AckStatus::Accepted,
            ba: br.is_some().then_some(BufferAck {
                nar_granted: granted,
                par_granted: 0,
            }),
        };
        self.send_control_wired(ctx, par_addr, hack);
    }

    /// HAck, PAR side: finish the negotiation and tell the host.
    fn on_hack<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        pcoa: Ipv6Addr,
        status: AckStatus,
        ba: Option<BufferAck>,
    ) {
        let Some(sess) = self.par_sessions.get_mut(&pcoa) else {
            return;
        };
        if self.config.rtx.enabled {
            if sess.state != ParState::AwaitHAck {
                // Duplicate HAck (or one racing a degraded finalization):
                // the PrRtAdv already went out.
                return;
            }
            if let Some(rtx) = self.hi_rtx.remove(&pcoa) {
                let _ = ctx.cancel(rtx.key);
                self.timer_sessions.remove(&rtx.token);
            }
        }
        let nar_granted = ba.map_or(0, |b| b.nar_granted);
        let par_granted = self.pool.granted(pcoa);
        sess.case =
            AvailabilityCase::from_grants(status.is_accepted() && nar_granted > 0, par_granted > 0);
        sess.nar_granted = nar_granted;
        self.metrics.case_counts[case_index(sess.case)] += 1;
        if sess.state == ParState::AwaitHAck {
            sess.state = ParState::Ready;
        }
        self.send_prrtadv_for(ctx, pcoa);
    }

    /// (Re)builds and sends the PrRtAdv for a finalized PAR session — used
    /// by the HAck path, duplicate-RtSolPr answers and HI-exhaustion
    /// degradation, all of which must advertise the same result.
    fn send_prrtadv_for<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, pcoa: Ipv6Addr) {
        let Some(sess) = self.par_sessions.get(&pcoa) else {
            return;
        };
        let mh = sess.mh;
        let auth = sess.auth;
        let wants_buffer = sess.wants_buffer;
        let nar_granted = sess.nar_granted;
        let nar_addr = sess.nar_addr.unwrap_or(self.addr);
        let target_ap = if sess.target_ap == ApId(u32::MAX) {
            self.ap_directory
                .iter()
                .find(|&(_, &a)| a == nar_addr)
                .map(|(&ap, _)| ap)
                .unwrap_or(ApId(u32::MAX))
        } else {
            sess.target_ap
        };
        let par_granted = self.pool.granted(pcoa);
        let adv = ControlMsg::PrRtAdv {
            target_ap,
            nar_prefix: self.peer_prefix(nar_addr),
            nar_addr,
            ba: wants_buffer.then_some(BufferAck {
                nar_granted,
                par_granted,
            }),
            auth,
        };
        self.send_to_mh(ctx, mh, pcoa, adv);
    }

    /// The advertised prefix of a peer router. Real FMIPv6 carries this in
    /// the HAck/PrRtAdv exchange; we derive it from the peer's address.
    fn peer_prefix(&self, router_addr: Ipv6Addr) -> Prefix {
        Prefix::new(router_addr, self.prefix.len())
    }

    /// A packet tunneled to us for a handover host (NAR role).
    fn on_tunneled<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, inner: Packet) {
        let pcoa = inner.dst;
        let class = inner.effective_class();
        let scheme = self.config.scheme;
        let Some(sess) = self.nar_sessions.get(&pcoa) else {
            // No session (stragglers after release, or no-anticipation):
            // plain delivery attempt.
            self.deliver_or_forward(ctx, inner);
            return;
        };
        let mh = sess.mh_l2;
        let par_addr = sess.par_addr;
        let granted = sess.granted;
        if !sess.buffering {
            self.deliver_or_forward(ctx, inner);
            return;
        }
        let case = AvailabilityCase::from_grants(granted > 0, false);
        match nar_action(scheme, case, class) {
            NarAction::Deliver => {
                self.radio_deliver(ctx, mh, inner);
            }
            NarAction::Buffer => {
                let overflow = nar_overflow(scheme, class);
                let ar = self.node;
                let flow = inner.flow;
                match overflow {
                    NarOverflow::DropOldestRealtime => {
                        match self.pool.buffer_realtime_dropfront(pcoa, inner) {
                            Ok(None) => {
                                fh_net::record_trace(ctx, || fh_net::TraceEvent::BufferAdmit {
                                    ar,
                                    class,
                                    flow,
                                });
                            }
                            Ok(Some(evicted)) => {
                                let evicted_flow = evicted.flow;
                                let evicted_class = evicted.effective_class();
                                fh_net::record_drop(ctx, evicted.flow, DropReason::BufferOverflow);
                                fh_net::record_trace(ctx, || fh_net::TraceEvent::BufferEvict {
                                    ar,
                                    class: evicted_class,
                                    flow: evicted_flow,
                                });
                                fh_net::record_trace(ctx, || fh_net::TraceEvent::BufferAdmit {
                                    ar,
                                    class,
                                    flow,
                                });
                            }
                            Err(rejected) => {
                                fh_net::record_drop(ctx, rejected.flow, DropReason::BufferOverflow);
                            }
                        }
                    }
                    NarOverflow::NotifyPar => {
                        match self.pool.try_buffer(pcoa, inner, AdmissionLimit::Grant) {
                            Ok(()) => {
                                fh_net::record_trace(ctx, || fh_net::TraceEvent::BufferAdmit {
                                    ar,
                                    class,
                                    flow,
                                });
                            }
                            Err(rejected) => {
                                let already = self
                                    .nar_sessions
                                    .get(&pcoa)
                                    .is_some_and(|s| s.full_notified);
                                if !already {
                                    // Case 1.b: tell the PAR to buffer the rest,
                                    // and send the packet that did not fit back
                                    // through the reverse tunnel so the PAR can
                                    // buffer it too (the notification travels
                                    // the same link and arrives first).
                                    if let Some(s) = self.nar_sessions.get_mut(&pcoa) {
                                        s.full_notified = true;
                                    }
                                    self.metrics.buffer_full_sent += 1;
                                    let addr = self.addr;
                                    self.send_control_wired(
                                        ctx,
                                        par_addr,
                                        ControlMsg::BufferFull { pcoa },
                                    );
                                    let back = rejected.encapsulate(addr, par_addr);
                                    self.send_wired(ctx, back);
                                } else {
                                    // Already spilling: last-ditch delivery
                                    // attempt (bounces are not allowed to loop).
                                    self.radio_deliver(ctx, mh, rejected);
                                }
                            }
                        }
                    }
                    NarOverflow::TailDrop => {
                        match self.pool.try_buffer(pcoa, inner, AdmissionLimit::Grant) {
                            Ok(()) => {
                                fh_net::record_trace(ctx, || fh_net::TraceEvent::BufferAdmit {
                                    ar,
                                    class,
                                    flow,
                                });
                            }
                            Err(rejected) => {
                                fh_net::record_drop(ctx, rejected.flow, DropReason::BufferOverflow);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Redirection of a packet addressed to a departing host (PAR role).
    fn redirect<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, pcoa: Ipv6Addr, pkt: Packet) {
        let Some(sess) = self.par_sessions.get(&pcoa) else {
            return;
        };
        let class = pkt.effective_class();
        let scheme = self.config.scheme;
        let action = if sess.state == ParState::Released {
            // After the flush the tunnel stays up for stragglers.
            match sess.nar_addr {
                Some(_) => ParAction::TunnelUnbuffered,
                None => ParAction::TunnelUnbuffered, // intra: deliver below
            }
        } else {
            par_action(scheme, sess.case, class, sess.nar_full)
        };
        let mh = sess.mh;
        let nar_addr = sess.nar_addr;
        match action {
            ParAction::TunnelBuffer | ParAction::TunnelUnbuffered => match nar_addr {
                Some(nar) => {
                    let outer = pkt.encapsulate(self.addr, nar);
                    self.send_wired(ctx, outer);
                }
                None => {
                    // Intra-router handoff: nowhere to tunnel; attempt radio
                    // delivery (lost while the host is detached).
                    self.radio_deliver(ctx, mh, pkt);
                }
            },
            ParAction::BufferLocal => {
                let limit = match (scheme.classifies(), class) {
                    (true, ServiceClass::BestEffort | ServiceClass::Unspecified) => {
                        AdmissionLimit::Threshold(self.config.threshold_a)
                    }
                    (true, _) => AdmissionLimit::Grant,
                    // Class-blind schemes use the session grant when present,
                    // otherwise whatever the pool will take.
                    (false, _) => {
                        if self.pool.granted(pcoa) > 0 {
                            AdmissionLimit::Grant
                        } else {
                            AdmissionLimit::PoolOnly
                        }
                    }
                };
                let ar = self.node;
                let flow = pkt.flow;
                match self.pool.try_buffer(pcoa, pkt, limit) {
                    Ok(()) => {
                        fh_net::record_trace(ctx, || fh_net::TraceEvent::BufferAdmit {
                            ar,
                            class,
                            flow,
                        });
                    }
                    Err(rejected) => match (class, nar_addr) {
                        // Rejected high-priority: tunnel unbuffered rather
                        // than drop — the drop-rate promise matters most.
                        (ServiceClass::HighPriority, Some(nar)) => {
                            let outer = rejected.encapsulate(self.addr, nar);
                            self.send_wired(ctx, outer);
                        }
                        _ => {
                            fh_net::record_drop(ctx, rejected.flow, DropReason::BufferOverflow);
                        }
                    },
                }
            }
            ParAction::Drop => {
                fh_net::record_drop(ctx, pkt.flow, DropReason::Policy);
            }
        }
    }

    /// Flushes the PAR buffer (BF received): tunnel everything to the NAR,
    /// or straight over the air for an intra-router handoff.
    fn flush_par<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, pcoa: Ipv6Addr) {
        let Some(sess) = self.par_sessions.get_mut(&pcoa) else {
            return;
        };
        let nar_addr = sess.nar_addr;
        let mh = sess.mh;
        sess.state = ParState::Released;
        if nar_addr.is_some() {
            // The host now lives behind the NAR; drop the stale neighbor
            // entry (kept for intra-router handoffs, where it stays valid).
            self.drop_route(ctx, pcoa);
        }
        self.metrics.flushes += 1;
        let ar = self.node;
        let pkts = self.pool.session_len(pcoa);
        let path = if nar_addr.is_some() { "par" } else { "local" };
        fh_net::record_trace(ctx, || fh_net::TraceEvent::BufferFlush { ar, path, pkts });
        let target = match nar_addr {
            Some(nar) => FlushTarget::Tunnel(nar),
            None => FlushTarget::Radio(mh),
        };
        self.start_flush(ctx, pcoa, target);
    }

    /// Flushes the NAR buffer over the air (FNA+BF received).
    fn flush_nar<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, pcoa: Ipv6Addr, mh: NodeId) {
        self.metrics.flushes += 1;
        let ar = self.node;
        let pkts = self.pool.session_len(pcoa);
        fh_net::record_trace(ctx, || fh_net::TraceEvent::BufferFlush {
            ar,
            path: "nar",
            pkts,
        });
        self.start_flush(ctx, pcoa, FlushTarget::Radio(mh));
    }

    /// Dispatches a flush: everything at once with zero spacing, or one
    /// packet per [`ProtocolConfig::flush_spacing`] tick to model the
    /// router's per-packet forwarding cost (§4.2.3).
    fn start_flush<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        pcoa: Ipv6Addr,
        target: FlushTarget,
    ) {
        if self.config.flush_spacing.is_zero() {
            for pkt in self.pool.drain(pcoa) {
                self.flush_one(ctx, target, pkt);
            }
            return;
        }
        let token = self.fresh_token(pcoa);
        self.flushing.insert(pcoa, (target, token));
        ctx.send_self(
            SimDuration::ZERO,
            NetMsg::Timer {
                kind: TimerKind::FlushStep,
                token,
            },
        );
    }

    /// One step of a paced flush.
    fn flush_step<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, token: u64) {
        let Some(&pcoa) = self.timer_sessions.get(&token) else {
            return;
        };
        let Some(&(target, active)) = self.flushing.get(&pcoa) else {
            self.timer_sessions.remove(&token);
            return;
        };
        if active != token {
            self.timer_sessions.remove(&token);
            return; // superseded by a newer flush
        }
        let Some(first) = self.pool.pop_front(pcoa) else {
            self.flushing.remove(&pcoa);
            self.timer_sessions.remove(&token);
            return;
        };
        self.flush_one(ctx, target, first);
        ctx.send_self(
            self.config.flush_spacing,
            NetMsg::Timer {
                kind: TimerKind::FlushStep,
                token,
            },
        );
    }

    fn flush_one<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        target: FlushTarget,
        pkt: Packet,
    ) {
        match target {
            FlushTarget::Tunnel(nar) => {
                let outer = pkt.encapsulate(self.addr, nar);
                self.send_wired(ctx, outer);
            }
            FlushTarget::Radio(mh) => self.radio_deliver(ctx, mh, pkt),
        }
    }

    /// Delivers on-link (radio) or forwards into the wired network.
    ///
    /// Order matters: an active PAR-role redirection wins (the host left),
    /// then FMIPv6 host routes (the NAR serves the PCoA even though the
    /// address is topologically foreign), then plain prefix delivery, then
    /// wired forwarding.
    fn deliver_or_forward<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, pkt: Packet) {
        let redirecting = self
            .par_sessions
            .get(&pkt.dst)
            .is_some_and(|s| matches!(s.state, ParState::Redirecting | ParState::Released));
        if redirecting {
            self.redirect(ctx, pkt.dst, pkt);
            return;
        }
        if let Some(&mh) = self.neighbors.get(&pkt.dst) {
            self.radio_deliver(ctx, mh, pkt);
            return;
        }
        if self.prefix.contains(pkt.dst) {
            // On-link address with no neighbor entry: undeliverable.
            fh_net::record_drop(ctx, pkt.flow, DropReason::Unroutable);
            return;
        }
        let node = self.node;
        if let Some(local) = send_from(ctx, node, pkt) {
            // Routing bounced it back to us without matching our prefix:
            // nothing sensible to do.
            fh_net::record_drop(ctx, local.flow, DropReason::Unroutable);
        }
    }

    fn radio_deliver<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, mh: NodeId, pkt: Packet) {
        // Pick the AP the host is actually attached to, if it is one of
        // ours; otherwise use our first AP (the attempt will be counted as
        // a radio drop).
        let attached = ctx.shared.radio().attachment(mh);
        let ap = match attached {
            Some(ap) if self.owns_ap(ap) => ap,
            _ => self.aps[0],
        };
        send_downlink(ctx, ap, mh, pkt);
    }

    fn send_to_mh<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        mh: NodeId,
        dst: Ipv6Addr,
        msg: ControlMsg,
    ) {
        fh_net::record_control(ctx, &msg);
        let pkt = Packet::control(self.addr, dst, msg, ctx.now());
        self.radio_deliver(ctx, mh, pkt);
    }
}
