//! The access-router agent: orchestrator of the layered PAR/NAR stack.
//!
//! One [`ArAgent`] runs on every access router and plays **both** roles,
//! per handover session:
//!
//! * **PAR role** (the router the host is leaving) — answers RtSolPr+BI,
//!   reserves local buffer space, negotiates with the NAR through HI+BR /
//!   HAck+BA, advertises the outcome in PrRtAdv, and on FBU redirects every
//!   packet for the departing host according to the Table 3.3 operation
//!   matrix ([`crate::policy`]). On BufferForward it flushes its buffer
//!   through the inter-router tunnel.
//! * **NAR role** (the router the host is joining) — grants or denies
//!   buffer space, installs a host route for the previous care-of address,
//!   buffers or immediately delivers tunneled packets, reports BufferFull
//!   so the PAR can take over high-priority traffic, and on FNA+BF flushes
//!   its buffer over the air and relays BF to the PAR.
//!
//! A handover within the router's own cell set (the pure link-layer
//! handoff of Fig 3.5) short-circuits the negotiation: the router grants
//! from its own pool and answers PrRtAdv directly.
//!
//! The agent itself is only the event loop and wiring. The work lives in
//! three layers:
//!
//! * [`crate::policy`] — pure per-packet decision tables (Table 3.3);
//! * [`crate::datapath`] — the one `classify → admit → park | forward |
//!   tunnel` pipeline every packet crosses, owning the buffer pool, host
//!   routes and pinned tunnel links;
//! * [`crate::signaling`] — the PAR/NAR/MH state machines (session
//!   creation, negotiation, flush release), plus the soft-state
//!   reclamation in [`crate::soft_state`].

use std::collections::HashMap;
use std::net::Ipv6Addr;

use fh_sim::{EventKey, SimDuration, SimTime};

use fh_net::{
    send_from, ApId, ControlMsg, DropReason, NetCtx, NetMsg, NodeFaultSpec, NodeId, Packet,
    Payload, Prefix, ServiceClass, TimerKind,
};
use fh_wireless::{send_downlink, RadioWorld};

use crate::buffer::BufferPool;
use crate::datapath::{reclaim_at_dead_node, Datapath, FlushTarget, RedirectView};
use crate::metrics::ArMetrics;
use crate::policy::{BufferPolicy, PolicyEngine, ShedRung};
use crate::scheme::ProtocolConfig;
use crate::signaling::nar::{NarEvent, NarSession};
use crate::signaling::par::{HiRtx, ParSession, ParState};

/// The access-router protocol agent (PAR + NAR roles).
#[derive(Debug)]
pub struct ArAgent {
    /// The router's own address.
    pub addr: Ipv6Addr,
    /// The on-link prefix mobile hosts form care-of addresses from.
    pub prefix: Prefix,
    /// The MAP advertised in router advertisements.
    pub map_addr: Ipv6Addr,
    /// Protocol parameters.
    pub config: ProtocolConfig,
    /// Activity counters.
    pub metrics: ArMetrics,
    /// Scheduled crash / restart fault, if any (noop by default).
    pub node_fault: NodeFaultSpec,
    /// The packet pipeline: pool, host routes, peer links, transmission.
    pub(crate) dp: Datapath,
    /// `false` while crashed: every event except the restart timer is
    /// swallowed, and arriving data packets are reclaimed.
    pub(crate) alive: bool,
    pub(crate) ap_directory: HashMap<ApId, Ipv6Addr>,
    /// Live expiry token and timer key per soft-state host route (empty
    /// while `host_route_lifetime` is `MAX`: routes are then hard state).
    pub(crate) route_tokens: HashMap<Ipv6Addr, (u64, EventKey)>,
    /// Last time each peer router was heard from (dead-peer discovery).
    pub(crate) peer_last_heard: HashMap<Ipv6Addr, SimTime>,
    pub(crate) par_sessions: HashMap<Ipv6Addr, ParSession>,
    pub(crate) nar_sessions: HashMap<Ipv6Addr, NarSession>,
    pub(crate) hi_rtx: HashMap<Ipv6Addr, HiRtx>,
    pub(crate) flushing: HashMap<Ipv6Addr, (FlushTarget, u64)>,
    pub(crate) timer_sessions: HashMap<u64, Ipv6Addr>,
    pub(crate) next_token: u64,
    pub(crate) auth_seed: u64,
}

impl ArAgent {
    /// Creates an access-router agent.
    #[must_use]
    pub fn new(
        node: NodeId,
        addr: Ipv6Addr,
        prefix: Prefix,
        aps: Vec<ApId>,
        map_addr: Ipv6Addr,
        config: ProtocolConfig,
        pool_capacity: usize,
    ) -> Self {
        let mut dp = Datapath::new(node, addr, prefix, aps, pool_capacity);
        dp.pool.set_byte_budget(config.pressure.byte_budget);
        ArAgent {
            addr,
            prefix,
            map_addr,
            config,
            metrics: ArMetrics::default(),
            node_fault: NodeFaultSpec::default(),
            dp,
            alive: true,
            ap_directory: HashMap::new(),
            route_tokens: HashMap::new(),
            peer_last_heard: HashMap::new(),
            par_sessions: HashMap::new(),
            nar_sessions: HashMap::new(),
            hi_rtx: HashMap::new(),
            flushing: HashMap::new(),
            timer_sessions: HashMap::new(),
            next_token: 1,
            auth_seed: 0x5eed,
        }
    }

    /// The node this agent runs on.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.dp.node
    }

    /// Records the node this agent runs on (topology builders: the real
    /// `NodeId` is only known once the actor is registered).
    pub fn set_node(&mut self, node: NodeId) {
        self.dp.node = node;
    }

    /// The handover buffer pool (owned by the datapath).
    #[must_use]
    pub fn pool(&self) -> &BufferPool {
        &self.dp.pool
    }

    /// Access points belonging to this router.
    #[must_use]
    pub fn aps(&self) -> &[ApId] {
        &self.dp.aps
    }

    /// Replaces this router's set of access points (topology builders).
    pub fn set_aps(&mut self, aps: Vec<ApId>) {
        self.dp.aps = aps;
    }

    /// Teaches this router which address serves a (foreign) access point,
    /// so RtSolPr targets can be resolved to the right NAR.
    pub fn learn_ap(&mut self, ap: ApId, router_addr: Ipv6Addr) {
        self.ap_directory.insert(ap, router_addr);
    }

    /// Pins traffic toward `peer` to a specific link — the FMIPv6
    /// bidirectional tunnel is a point-to-point interface between the two
    /// access routers, not subject to shortest-path routing.
    pub fn learn_peer_link(&mut self, peer: Ipv6Addr, link: fh_net::LinkId) {
        self.dp.peer_links.insert(peer, link);
    }

    /// The registered on-link neighbor for `addr`, if any.
    #[must_use]
    pub fn neighbor(&self, addr: Ipv6Addr) -> Option<NodeId> {
        self.dp.neighbors.get(&addr).copied()
    }

    /// `false` while the router is crashed.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// All installed host routes, sorted by address (HashMap iteration
    /// order is nondeterministic). The leak auditor cross-checks each
    /// entry against the radio attachment table.
    #[must_use]
    pub fn neighbor_entries(&self) -> Vec<(Ipv6Addr, NodeId)> {
        let mut v: Vec<(Ipv6Addr, NodeId)> =
            self.dp.neighbors.iter().map(|(&a, &n)| (a, n)).collect();
        v.sort();
        v
    }

    /// Mirrors this router's activity counters into the shared stats
    /// registry under `ar.*` names, aggregating across routers. Scenarios
    /// call this once at end of run.
    pub fn export_metrics(&self, stats: &mut fh_net::NetStats) {
        self.metrics.export(stats);
    }

    /// `true` if `ap` belongs to this router.
    #[must_use]
    pub fn owns_ap(&self, ap: ApId) -> bool {
        self.dp.owns_ap(ap)
    }

    // ------------------------------------------------------------------
    // Event entry point
    // ------------------------------------------------------------------

    /// Handles one simulator event for this router.
    pub fn handle<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, msg: NetMsg) {
        if !self.alive {
            self.handle_while_dead(ctx, msg);
            return;
        }
        match msg {
            NetMsg::Start => {
                let jitter = SimDuration::from_micros(ctx.rng.gen_range_u64(1000));
                ctx.send_self(
                    jitter,
                    NetMsg::Timer {
                        kind: TimerKind::RouterAdvertisement,
                        token: 0,
                    },
                );
                if let Some(at) = self.node_fault.crash_at {
                    let me = ctx.self_id();
                    ctx.send_at(
                        me,
                        at,
                        NetMsg::Timer {
                            kind: TimerKind::NodeCrash,
                            token: 0,
                        },
                    );
                }
                self.arm_dead_peer_sweep(ctx);
            }
            NetMsg::Timer { kind, token } => self.on_timer(ctx, kind, token),
            NetMsg::LinkPacket { pkt, .. } => {
                let node = self.dp.node;
                if let Some(local) = send_from(ctx, node, pkt) {
                    self.handle_local(ctx, local);
                }
            }
            NetMsg::RadioPacket { from, pkt, .. } => self.handle_uplink(ctx, from, pkt),
            NetMsg::L2(_) => {}
        }
    }

    /// Event handling while crashed: only the restart timer does anything;
    /// arriving data (wired or radio) is reclaimed so flow conservation
    /// still balances, and everything else — signaling, stale timers, the
    /// router-advertisement chain — is silently lost, exactly like a host
    /// whose default router went dark.
    fn handle_while_dead<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, msg: NetMsg) {
        match msg {
            NetMsg::Timer {
                kind: TimerKind::NodeRestart,
                ..
            } => self.restart(ctx),
            NetMsg::LinkPacket { pkt, .. } | NetMsg::RadioPacket { pkt, .. } => {
                reclaim_at_dead_node(ctx, &pkt);
            }
            NetMsg::Start | NetMsg::Timer { .. } | NetMsg::L2(_) => {}
        }
    }

    fn on_timer<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, kind: TimerKind, token: u64) {
        match kind {
            TimerKind::RouterAdvertisement => {
                self.broadcast_ra(ctx);
                ctx.send_self(
                    self.config.ra_interval,
                    NetMsg::Timer {
                        kind: TimerKind::RouterAdvertisement,
                        token: 0,
                    },
                );
            }
            TimerKind::BufferStart => {
                // One-shot: reclaim the token so long-running routers do
                // not accumulate stale entries.
                if let Some(pcoa) = self.timer_sessions.remove(&token) {
                    self.on_buffer_start(pcoa);
                }
            }
            TimerKind::BufferLifetime => {
                if let Some(pcoa) = self.timer_sessions.remove(&token) {
                    self.expire_session(ctx, pcoa, token);
                }
            }
            TimerKind::FlushStep => self.flush_step(ctx, token),
            TimerKind::RtxHi => {
                if let Some(pcoa) = self.timer_sessions.remove(&token) {
                    self.on_rtx_hi(ctx, pcoa);
                }
            }
            TimerKind::NodeCrash => self.crash(ctx),
            TimerKind::NodeRestart => {} // only meaningful while dead
            TimerKind::HostRouteExpiry => self.on_route_expiry(ctx, token),
            TimerKind::DeadPeerSweep => self.dead_peer_sweep(ctx),
            TimerKind::HandoverWatchdog => self.on_watchdog(ctx, token),
            _ => {}
        }
    }

    fn broadcast_ra<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>) {
        let ra = ControlMsg::RouterAdvertisement {
            prefix: self.prefix,
            router: self.addr,
            map: Some(self.map_addr),
            buffering: self.config.scheme.buffers(),
        };
        for &ap in &self.dp.aps.clone() {
            let mhs = ctx.shared.radio().attached_mhs(ap);
            for mh in mhs {
                fh_net::record_control(ctx, &ra);
                let pkt =
                    Packet::control(self.addr, self.prefix.host(0xffff), ra.clone(), ctx.now());
                send_downlink(ctx, ap, mh, pkt);
            }
        }
    }

    // ------------------------------------------------------------------
    // Uplink (radio) handling
    // ------------------------------------------------------------------

    fn handle_uplink<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, from: NodeId, pkt: Packet) {
        if pkt.dst == self.addr {
            if let Payload::Control(msg) = &pkt.payload {
                let msg = (**msg).clone();
                self.handle_mh_control(ctx, from, pkt.src, msg);
                return;
            }
        }
        // Anything else from a host is forwarded into the network (or to an
        // on-link neighbor).
        self.deliver_or_forward(ctx, pkt);
    }

    fn handle_mh_control<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        from: NodeId,
        src: Ipv6Addr,
        msg: ControlMsg,
    ) {
        let node = self.dp.node;
        fh_net::record_trace(ctx, || fh_net::TraceEvent::ControlReceived {
            kind: msg.kind_name(),
            at: node,
        });
        match msg {
            ControlMsg::RtSolPr { target_ap, bi } => {
                self.on_rtsolpr(ctx, from, src, target_ap, bi);
            }
            ControlMsg::FastBindingUpdate { pcoa, ncoa } => {
                self.on_fbu(ctx, pcoa, ncoa);
            }
            ControlMsg::FastNeighborAdvertisement {
                ncoa,
                pcoa,
                bf,
                auth,
            } => {
                self.on_fna(ctx, from, ncoa, pcoa, bf, auth);
            }
            ControlMsg::BufferForward { pcoa } => {
                // Standalone BF from the host: pure-L2 flush (Fig 3.5) or
                // the end of a guard-buffering episode.
                self.flush_par(ctx, pcoa);
            }
            ControlMsg::BufferInit(bi) => {
                // Standalone BI (smooth-handover draft, Fig 2.4): the host
                // asks its current router to buffer — e.g. because it
                // detected poor link quality (§3.3). Buffering starts at
                // once and releases on a standalone BF.
                self.on_guard_buffer_init(ctx, from, src, bi);
            }
            ControlMsg::RouterSolicitation => {
                let ra = ControlMsg::RouterAdvertisement {
                    prefix: self.prefix,
                    router: self.addr,
                    map: Some(self.map_addr),
                    buffering: self.config.scheme.buffers(),
                };
                if let Some(ap) = ctx.shared.radio().attachment(from) {
                    if self.owns_ap(ap) {
                        fh_net::record_control(ctx, &ra);
                        let pkt = Packet::control(self.addr, src, ra, ctx.now());
                        send_downlink(ctx, ap, from, pkt);
                    }
                }
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Wired-side handling
    // ------------------------------------------------------------------

    /// Processes a packet that terminates at this router (after routing).
    pub fn handle_local<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, pkt: Packet) {
        if pkt.dst == self.addr {
            match pkt.payload.clone() {
                Payload::Encap(inner) => {
                    // Tunnel terminates here: NAR-side processing.
                    self.on_tunneled(ctx, *inner);
                }
                Payload::Control(msg) => self.on_wired_control(ctx, pkt.src, *msg),
                _ => {}
            }
            return;
        }
        self.deliver_or_forward(ctx, pkt);
    }

    fn on_wired_control<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        src: Ipv6Addr,
        msg: ControlMsg,
    ) {
        // Any signaling from a peer router proves it is alive.
        self.peer_last_heard.insert(src, ctx.now());
        let node = self.dp.node;
        fh_net::record_trace(ctx, || fh_net::TraceEvent::ControlReceived {
            kind: msg.kind_name(),
            at: node,
        });
        match msg {
            ControlMsg::HandoverInitiate {
                pcoa,
                mh_l2,
                br,
                auth,
                per_class,
                ..
            } => {
                self.on_hi(ctx, src, pcoa, mh_l2, br, per_class, auth);
            }
            ControlMsg::HandoverAck { pcoa, status, ba } => {
                self.on_hack(ctx, pcoa, status, ba);
            }
            ControlMsg::BufferFull { pcoa } => {
                if let Some(sess) = self.par_sessions.get_mut(&pcoa) {
                    sess.nar_full = true;
                }
            }
            ControlMsg::BufferForward { pcoa } => {
                self.flush_par(ctx, pcoa);
            }
            ControlMsg::FastBindingUpdate { pcoa, ncoa } => {
                // Forwarded FBU (host attached to the NAR before sending it).
                self.on_fbu(ctx, pcoa, ncoa);
            }
            ControlMsg::FastBindingAck { .. } => {}
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Datapath orchestration
    // ------------------------------------------------------------------

    /// Delivers on-link (radio) or forwards into the wired network.
    ///
    /// Order matters: an active PAR-role redirection wins (the host left)
    /// and enters the datapath's redirect stage with a snapshot of the
    /// session; everything else is the datapath's plain delivery — FMIPv6
    /// host routes (the NAR serves the PCoA even though the address is
    /// topologically foreign), then prefix delivery, then forwarding.
    pub(crate) fn deliver_or_forward<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        pkt: Packet,
    ) {
        if let Some(sess) = self.par_sessions.get(&pkt.dst) {
            if matches!(sess.state, ParState::Redirecting | ParState::Released) {
                let view = RedirectView {
                    mh: sess.mh,
                    peer: sess.nar_addr,
                    case: sess.case,
                    nar_full: sess.nar_full,
                    released: sess.state == ParState::Released,
                };
                let pcoa = pkt.dst;
                self.dp.redirect(ctx, &self.config, pcoa, view, pkt);
                // The redirect may have parked bytes: run the shed ladder
                // if the pool crossed the high watermark.
                self.relieve_pressure(ctx);
                return;
            }
        }
        self.dp.deliver(ctx, pkt);
    }

    /// Dispatches a flush: everything at once with zero spacing, or one
    /// packet per [`ProtocolConfig::flush_spacing`] tick to model the
    /// router's per-packet forwarding cost (§4.2.3).
    pub(crate) fn start_flush<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        pcoa: Ipv6Addr,
        target: FlushTarget,
    ) {
        if self.config.flush_spacing.is_zero() {
            let pkts = self.dp.pool.drain(pcoa);
            self.dp.flush_batch(ctx, target, pkts);
            return;
        }
        let token = self.fresh_token(pcoa);
        self.flushing.insert(pcoa, (target, token));
        ctx.send_self(
            SimDuration::ZERO,
            NetMsg::Timer {
                kind: TimerKind::FlushStep,
                token,
            },
        );
    }

    /// One step of a paced flush.
    fn flush_step<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, token: u64) {
        let Some(&pcoa) = self.timer_sessions.get(&token) else {
            return;
        };
        let Some(&(target, active)) = self.flushing.get(&pcoa) else {
            self.timer_sessions.remove(&token);
            return;
        };
        if active != token {
            self.timer_sessions.remove(&token);
            return; // superseded by a newer flush
        }
        let Some(first) = self.dp.pool.pop_front(pcoa) else {
            self.flushing.remove(&pcoa);
            self.timer_sessions.remove(&token);
            return;
        };
        self.dp.flush_one(ctx, target, first);
        ctx.send_self(
            self.config.flush_spacing,
            NetMsg::Timer {
                kind: TimerKind::FlushStep,
                token,
            },
        );
    }

    // ------------------------------------------------------------------
    // Overload survival: the deterministic shed ladder
    // ------------------------------------------------------------------

    /// Walks the active policy's shed ladder while the pool sits above its
    /// high watermark, shedding down to the low watermark. Rungs engage
    /// strictly in declared order — a rung is only entered once every
    /// earlier one is exhausted — and [`ArMetrics::shed_order_violations`]
    /// audits that invariant at runtime. Every shed is a recorded
    /// [`fh_net::TraceEvent::PressureShed`] plus a
    /// [`DropReason::PressureShed`] so conservation still balances. No-op
    /// while the `[pressure]` knobs are off.
    pub(crate) fn relieve_pressure<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>) {
        let pressure = self.config.pressure;
        if !pressure.engaged() || self.dp.pool.bytes_used() <= pressure.high_bytes() {
            return;
        }
        let low = pressure.low_bytes();
        let ladder = PolicyEngine::for_scheme(self.config.scheme).shed_ladder();
        let node = self.dp.node;
        for (idx, rung) in ladder.into_iter().enumerate() {
            loop {
                if self.dp.pool.bytes_used() <= low {
                    return;
                }
                let class = match rung {
                    ShedRung::BestEffort => ServiceClass::BestEffort,
                    ShedRung::DropFrontRealtime => ServiceClass::RealTime,
                    ShedRung::ForceFlushOldest => {
                        // Last resort: force the oldest wedged session down
                        // the flush ladder. A session already mid-flush is
                        // draining paced — give it the chance to finish
                        // before escalating further.
                        let Some(victim) = self.dp.pool.oldest_buffering_session() else {
                            return;
                        };
                        if self.flushing.contains_key(&victim) {
                            return;
                        }
                        self.audit_shed_order(&ladder, idx);
                        self.force_flush(ctx, victim);
                        continue;
                    }
                };
                let Some((_, pkt)) = self.dp.pool.shed_class_front(class) else {
                    break; // rung exhausted: escalate to the next one
                };
                self.audit_shed_order(&ladder, idx);
                self.metrics.pressure_sheds += 1;
                fh_net::record_drop(ctx, pkt.flow, DropReason::PressureShed);
                let (rung_label, shed_class, flow) = (rung.label(), pkt.class, pkt.flow);
                fh_net::record_trace(ctx, || fh_net::TraceEvent::PressureShed {
                    ar: node,
                    rung: rung_label,
                    class: shed_class,
                    flow,
                });
            }
        }
    }

    /// Runtime audit of the ladder invariant: shedding at rung `idx` while
    /// an earlier class rung still has packets parked is out of order.
    fn audit_shed_order(&mut self, ladder: &[ShedRung], idx: usize) {
        for earlier in &ladder[..idx] {
            let class = match earlier {
                ShedRung::BestEffort => ServiceClass::BestEffort,
                ShedRung::DropFrontRealtime => ServiceClass::RealTime,
                ShedRung::ForceFlushOldest => continue,
            };
            if self.dp.pool.has_class_parked(class) {
                self.metrics.shed_order_violations += 1;
            }
        }
    }

    /// Force-resolves a wedged session down the existing flush ladder: a
    /// PAR-role session flushes predictively (tunnel) or reactively
    /// (radio), a NAR-role session releases over the air as if the host
    /// had just attached, and a key with no live session is expired
    /// outright so its packets are re-accounted either way.
    fn force_flush<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, pcoa: Ipv6Addr) {
        if self.par_sessions.contains_key(&pcoa) {
            self.flush_par(ctx, pcoa);
            return;
        }
        if let Some(sess) = self.nar_sessions.get_mut(&pcoa) {
            sess.on(NarEvent::HostAttached);
            let mh = sess.mh_l2;
            self.flush_nar(ctx, pcoa, mh);
            return;
        }
        for pkt in self.dp.pool.expire(pcoa) {
            fh_net::record_drop(ctx, pkt.flow, DropReason::Expired);
        }
    }

    pub(crate) fn send_to_mh<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        mh: NodeId,
        dst: Ipv6Addr,
        msg: ControlMsg,
    ) {
        fh_net::record_control(ctx, &msg);
        let pkt = Packet::control(self.addr, dst, msg, ctx.now());
        self.dp.radio_deliver(ctx, mh, pkt);
    }
}
