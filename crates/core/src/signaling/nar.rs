//! NAR-role signaling: the new access router's state machine.
//!
//! Covers HI admission (grants, host-route install, HAck), tunnel
//! ingress during the black-out (delegated to the datapath pipeline,
//! which reports back BufferFull spill-back), and the FNA+BF arrival
//! that releases the buffer over the air.

use std::net::Ipv6Addr;

use fh_net::{
    msg::{AckStatus, AuthToken, BufferAck, BufferRequest},
    ControlMsg, NetCtx, NodeId, Packet,
};
use fh_wireless::RadioWorld;

use crate::ar::ArAgent;
use crate::datapath::{FlushTarget, TunnelVerdict, TunnelView};

/// A typed transition event for the NAR session lifecycle. The machine
/// is two booleans rather than an enum — `buffering` (until the host
/// attaches) and `full_notified` (once BufferFull has been sent) — but
/// every mutation still routes through [`NarSession::on`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NarEvent {
    /// The host attached (FNA): stop parking, deliver directly.
    HostAttached,
    /// The datapath sent BufferFull: the session is spilling to the PAR.
    SpillStarted,
}

/// NAR-role per-handover session state.
#[derive(Debug)]
pub(crate) struct NarSession {
    pub(crate) mh_l2: NodeId,
    pub(crate) par_addr: Ipv6Addr,
    pub(crate) granted: u32,
    /// `true` until the host attaches and the buffer is flushed.
    pub(crate) buffering: bool,
    pub(crate) full_notified: bool,
    pub(crate) lifetime_token: u64,
    /// Token of the handover watchdog armed at creation (0 = not armed).
    /// A session still buffering when it fires is released over the air.
    pub(crate) watchdog_token: u64,
    pub(crate) auth: Option<AuthToken>,
}

impl NarSession {
    /// Applies a lifecycle event. Events are monotonic (neither flag is
    /// ever cleared), so duplicates are naturally idempotent.
    pub(crate) fn on(&mut self, event: NarEvent) {
        match event {
            NarEvent::HostAttached => self.buffering = false,
            NarEvent::SpillStarted => self.full_notified = true,
        }
    }
}

impl ArAgent {
    /// HI, NAR side: grant space, install the host route, acknowledge.
    #[allow(clippy::too_many_arguments)] // mirrors the HI wire format
    pub(crate) fn on_hi<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        par_addr: Ipv6Addr,
        pcoa: Ipv6Addr,
        mh_l2: NodeId,
        br: Option<BufferRequest>,
        per_class: Option<[u32; 3]>,
        auth: Option<AuthToken>,
    ) {
        if self.config.rtx.enabled {
            if let Some(sess) = self.nar_sessions.get(&pcoa) {
                // Duplicate HI (our HAck was lost): keep the existing
                // session — re-inserting would restart buffering after the
                // host already attached — and just acknowledge again.
                let hack = ControlMsg::HandoverAck {
                    pcoa,
                    status: AckStatus::Accepted,
                    ba: br.is_some().then_some(BufferAck {
                        nar_granted: sess.granted,
                        par_granted: 0,
                    }),
                };
                self.dp.send_control_wired(ctx, par_addr, hack);
                return;
            }
        }
        let requested = br.as_ref().map_or(0, |b| b.size);
        let granted = if requested > 0 && self.config.scheme.uses_nar_buffer() {
            match (self.config.precise_negotiation, per_class) {
                (true, Some(pc)) => {
                    // Precise extension (future work §5): per-class shares,
                    // granted partially in priority order and enforced at
                    // admission time.
                    self.dp.pool.grant_per_class(pcoa, pc).iter().sum()
                }
                (true, None) => {
                    // Precise mode against a legacy peer: grant what fits.
                    let fit = requested.min(self.dp.pool.unreserved() as u32);
                    if fit > 0 {
                        self.dp.pool.grant(pcoa, fit)
                    } else {
                        self.dp.pool.open_unreserved(pcoa);
                        0
                    }
                }
                (false, _) => self.dp.pool.grant(pcoa, requested),
            }
        } else {
            self.dp.pool.open_unreserved(pcoa);
            0
        };
        self.metrics.nar_sessions += 1;
        let lifetime = br
            .as_ref()
            .map_or(self.config.reservation_lifetime, |b| b.lifetime);
        let lifetime_token = self.arm_session_lifetime(ctx, pcoa, lifetime);
        let watchdog_token = self.arm_watchdog(ctx, pcoa);
        // Host route: deliveries for the PCoA now go over our radio.
        self.install_route(ctx, pcoa, mh_l2);
        self.nar_sessions.insert(
            pcoa,
            NarSession {
                mh_l2,
                par_addr,
                granted,
                buffering: true,
                full_notified: false,
                lifetime_token,
                watchdog_token,
                auth,
            },
        );
        let hack = ControlMsg::HandoverAck {
            pcoa,
            status: AckStatus::Accepted,
            ba: br.is_some().then_some(BufferAck {
                nar_granted: granted,
                par_granted: 0,
            }),
        };
        self.dp.send_control_wired(ctx, par_addr, hack);
    }

    /// FNA (+BF): the host arrived on our link (buffer release, §3.2.2.3).
    pub(crate) fn on_fna<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        from: NodeId,
        ncoa: Ipv6Addr,
        pcoa: Ipv6Addr,
        bf: bool,
        auth: Option<AuthToken>,
    ) {
        if let Some(sess) = self.nar_sessions.get(&pcoa) {
            if self.config.auth_required && sess.auth != auth {
                self.metrics.auth_rejections += 1;
                return;
            }
        } else if self.config.auth_required && pcoa != ncoa {
            // An inter-router arrival we never agreed to.
            self.metrics.auth_rejections += 1;
            return;
        }
        // Install neighbor entries: the new address, and the previous one
        // (the host keeps receiving tunneled PCoA traffic until the MAP
        // binding update completes).
        self.install_route(ctx, ncoa, from);
        self.install_route(ctx, pcoa, from);
        if let Some(sess) = self.nar_sessions.get_mut(&pcoa) {
            sess.on(NarEvent::HostAttached);
            let par_addr = sess.par_addr;
            if bf {
                self.flush_nar(ctx, pcoa, from);
                let bf_msg = ControlMsg::BufferForward { pcoa };
                self.dp.send_control_wired(ctx, par_addr, bf_msg);
            }
        }
    }

    /// A packet tunneled to us for a handover host (NAR role): snapshot
    /// the session into a [`TunnelView`] and run the datapath pipeline.
    pub(crate) fn on_tunneled<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, inner: Packet) {
        let pcoa = inner.dst;
        let Some(sess) = self.nar_sessions.get(&pcoa) else {
            // No session (stragglers after release, or no-anticipation):
            // plain delivery attempt.
            self.deliver_or_forward(ctx, inner);
            return;
        };
        let view = TunnelView {
            mh: sess.mh_l2,
            peer: sess.par_addr,
            granted: sess.granted,
            already_spilling: sess.full_notified,
        };
        if !sess.buffering {
            self.deliver_or_forward(ctx, inner);
            return;
        }
        match self
            .dp
            .ingress_tunneled(ctx, &self.config, pcoa, view, inner)
        {
            TunnelVerdict::Done => {}
            TunnelVerdict::PeerNotified => {
                if let Some(sess) = self.nar_sessions.get_mut(&pcoa) {
                    sess.on(NarEvent::SpillStarted);
                }
                self.metrics.buffer_full_sent += 1;
            }
        }
        // Tunnel ingress may have parked bytes: run the shed ladder if the
        // pool crossed the high watermark.
        self.relieve_pressure(ctx);
    }

    /// Flushes the NAR buffer over the air (FNA+BF received).
    pub(crate) fn flush_nar<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        pcoa: Ipv6Addr,
        mh: NodeId,
    ) {
        self.metrics.flushes += 1;
        let ar = self.dp.node;
        let pkts = self.dp.pool.session_len(pcoa);
        fh_net::record_trace(ctx, || fh_net::TraceEvent::BufferFlush {
            ar,
            path: "nar",
            pkts,
        });
        self.start_flush(ctx, pcoa, FlushTarget::Radio(mh));
    }
}
