//! PAR-role signaling: the previous access router's state machine.
//!
//! Covers handover initiation (RtSolPr+BI → HI+BR → HAck+BA → PrRtAdv),
//! guard buffering (standalone BI), the FBU that starts redirection, the
//! BF that releases the buffer, and the retransmission hardening of the
//! HI exchange. Per-packet work is delegated to the datapath; this module
//! only decides *when* the session changes state.

use std::net::Ipv6Addr;

use fh_sim::{EventKey, SimDuration};

use fh_net::{
    msg::{AckStatus, AuthToken, BufferAck, BufferInit, BufferRequest},
    ApId, ControlMsg, NetCtx, NetMsg, NodeId, Prefix, TimerKind,
};
use fh_wireless::RadioWorld;

use crate::ar::ArAgent;
use crate::datapath::FlushTarget;
use crate::metrics::case_index;
use crate::policy::{AvailabilityCase, BufferPolicy, PolicyEngine};

/// The PAR-role session lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ParState {
    /// HI sent, waiting for the NAR's HAck.
    AwaitHAck,
    /// PrRtAdv sent; waiting for the FBU.
    Ready,
    /// FBU received: redirection active.
    Redirecting,
    /// Buffer flushed; tunnel stays up for stragglers.
    Released,
}

/// A typed transition event for the PAR state machine. Every state
/// change a signaling handler makes goes through [`ParState::on`], so the
/// machine's full transition table lives (and is tested) in one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ParEvent {
    /// The NAR's HAck finalized the negotiation.
    HAckArrived,
    /// The HI retry budget ran out; the session degrades to PAR-only.
    NegotiationAbandoned,
    /// The BI start-time elapsed without an FBU: buffering auto-starts.
    BufferStartElapsed,
    /// The host's FBU arrived: begin redirecting.
    FbuArrived,
    /// The releasing BF arrived: the buffer flushes.
    FlushReleased,
}

impl ParState {
    /// The transition table. Events that do not apply to the current
    /// state leave it unchanged (duplicate or late signaling is benign).
    pub(crate) fn on(self, event: ParEvent) -> ParState {
        use ParEvent::*;
        use ParState::*;
        match (self, event) {
            (AwaitHAck, HAckArrived | NegotiationAbandoned) => Ready,
            (Ready, BufferStartElapsed) => Redirecting,
            (AwaitHAck | Ready, FbuArrived) => Redirecting,
            (_, FlushReleased) => Released,
            (state, _) => state,
        }
    }
}

/// PAR-role per-handover session state.
#[derive(Debug)]
pub(crate) struct ParSession {
    pub(crate) mh: NodeId,
    pub(crate) ncoa: Option<Ipv6Addr>,
    /// `None` for a pure link-layer (intra-router) handover.
    pub(crate) nar_addr: Option<Ipv6Addr>,
    /// The AP the host asked about (kept so the PrRtAdv can be rebuilt
    /// idempotently on duplicate RtSolPr or after HI-retry exhaustion).
    pub(crate) target_ap: ApId,
    /// The NAR's grant from the HAck (zero before it arrives or after a
    /// degraded finalization).
    pub(crate) nar_granted: u32,
    /// `true` if the host piggybacked a BI on its RtSolPr.
    pub(crate) wants_buffer: bool,
    pub(crate) state: ParState,
    pub(crate) case: AvailabilityCase,
    pub(crate) nar_full: bool,
    pub(crate) lifetime_token: u64,
    /// Token of the handover watchdog armed at creation (0 = not armed).
    /// A session still unresolved when it fires is force-flushed.
    pub(crate) watchdog_token: u64,
    pub(crate) auth: Option<AuthToken>,
}

/// In-flight HI retransmission state (PAR role, hardened mode).
#[derive(Debug)]
pub(crate) struct HiRtx {
    pub(crate) key: EventKey,
    pub(crate) token: u64,
    /// Transmissions made so far (the initial send counts).
    pub(crate) sent: u32,
    pub(crate) nar_addr: Ipv6Addr,
    /// The exact HI to replay.
    pub(crate) hi: ControlMsg,
}

impl ArAgent {
    /// Handover initiation, PAR side (Fig 3.3).
    pub(crate) fn on_rtsolpr<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        mh: NodeId,
        pcoa: Ipv6Addr,
        target_ap: ApId,
        bi: Option<BufferInit>,
    ) {
        // Cancel request: zero start time and lifetime (§3.2.2.1).
        if bi.as_ref().is_some_and(BufferInit::is_cancel) {
            if self.par_sessions.remove(&pcoa).is_some() {
                self.dp.pool.release(pcoa);
            }
            return;
        }
        if self.config.rtx.enabled {
            // Idempotency under retransmission: a duplicate RtSolPr must
            // not re-reserve or restart the negotiation.
            match self.par_sessions.get(&pcoa).map(|s| s.state) {
                Some(ParState::AwaitHAck) => return, // HI retry loop owns it
                Some(ParState::Ready) => {
                    // The PrRtAdv was lost on the air: answer again.
                    self.send_prrtadv_for(ctx, pcoa);
                    return;
                }
                _ => {}
            }
        }
        let lifetime = bi
            .as_ref()
            .map_or(self.config.reservation_lifetime, |b| b.lifetime);
        let wants_buffer = bi.is_some();
        // Split the request between the two routers: the proposed scheme
        // uses *both* buffer spaces (§3.1.2 "maximize buffer utilization"),
        // so each router is asked for half; the baselines put everything on
        // their single router. The split is the active policy's call.
        let requested = bi.as_ref().map_or(0, |b| b.size);
        let split = PolicyEngine::for_scheme(self.config.scheme).on_grant(requested);
        let (par_request, nar_request) = (split.par, split.nar);
        // Reserve locally first so the availability case is known in full
        // once the HAck returns.
        let par_granted = if wants_buffer && par_request > 0 {
            self.dp.pool.grant(pcoa, par_request)
        } else {
            self.dp.pool.open_unreserved(pcoa);
            0
        };
        let auth = self.config.auth_required.then(|| {
            self.auth_seed = self.auth_seed.wrapping_mul(0x9E37_79B9).wrapping_add(1);
            AuthToken(self.auth_seed)
        });
        let lifetime_token = self.arm_session_lifetime(ctx, pcoa, lifetime);
        let watchdog_token = self.arm_watchdog(ctx, pcoa);

        if self.owns_ap(target_ap) {
            // Pure link-layer handoff (Fig 3.5): there is no NAR to share
            // with, so the whole request lands in our own pool.
            let par_granted = if wants_buffer && self.config.scheme.buffers() {
                self.dp.pool.grant(pcoa, requested)
            } else {
                par_granted
            };
            self.metrics.intra_sessions += 1;
            self.par_sessions.insert(
                pcoa,
                ParSession {
                    mh,
                    ncoa: Some(pcoa),
                    nar_addr: None,
                    target_ap,
                    nar_granted: 0,
                    wants_buffer,
                    state: ParState::Ready,
                    case: AvailabilityCase::from_grants(false, par_granted > 0),
                    nar_full: false,
                    lifetime_token,
                    watchdog_token,
                    auth,
                },
            );
            self.schedule_buffer_start(ctx, pcoa, bi.as_ref());
            let reply = ControlMsg::PrRtAdv {
                target_ap,
                nar_prefix: self.prefix,
                nar_addr: self.addr,
                ba: wants_buffer.then_some(BufferAck {
                    nar_granted: 0,
                    par_granted,
                }),
                auth,
            };
            self.send_to_mh(ctx, mh, pcoa, reply);
            return;
        }

        let Some(&nar_addr) = self.ap_directory.get(&target_ap) else {
            // Unknown target AP: nothing we can do but ignore (the host
            // will hand off without anticipation).
            return;
        };
        self.metrics.par_sessions += 1;
        self.par_sessions.insert(
            pcoa,
            ParSession {
                mh,
                ncoa: None,
                nar_addr: Some(nar_addr),
                target_ap,
                nar_granted: 0,
                wants_buffer,
                state: ParState::AwaitHAck,
                case: AvailabilityCase::from_grants(false, par_granted > 0),
                nar_full: false,
                lifetime_token,
                watchdog_token,
                auth,
            },
        );
        self.schedule_buffer_start(ctx, pcoa, bi.as_ref());
        let br = (wants_buffer && nar_request > 0).then_some(BufferRequest {
            size: nar_request,
            lifetime,
        });
        let per_class = self.config.precise_negotiation.then(|| {
            // Even split between real-time, high-priority and best effort.
            [nar_request / 3, nar_request.div_ceil(3), nar_request / 3]
        });
        let hi = ControlMsg::HandoverInitiate {
            pcoa,
            mh_l2: mh,
            ncoa: None,
            br,
            per_class,
            auth,
        };
        if self.config.rtx.enabled {
            let token = self.fresh_token(pcoa);
            let key = ctx.send_self_keyed(
                self.config.rtx.backoff.delay(0),
                NetMsg::Timer {
                    kind: TimerKind::RtxHi,
                    token,
                },
            );
            self.hi_rtx.insert(
                pcoa,
                HiRtx {
                    key,
                    token,
                    sent: 1,
                    nar_addr,
                    hi: hi.clone(),
                },
            );
        }
        self.dp.send_control_wired(ctx, nar_addr, hi);
    }

    /// Standalone BI: open (or cancel) a guard-buffering session keyed by
    /// the host's current address. The session looks like an intra-router
    /// handover already in the redirecting state, so the Table 3.3 policy
    /// applies with the PAR-only availability case.
    pub(crate) fn on_guard_buffer_init<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        mh: NodeId,
        addr: Ipv6Addr,
        bi: BufferInit,
    ) {
        if bi.is_cancel() {
            if self.par_sessions.remove(&addr).is_some() {
                for pkt in self.dp.pool.release(addr) {
                    // Cancelled with packets queued: deliver what we have.
                    self.dp.radio_deliver(ctx, mh, pkt);
                }
            }
            return;
        }
        let granted = self.dp.pool.grant(addr, bi.size);
        self.metrics.guard_sessions += 1;
        // A guard episode must never pin its reservation forever: a BI
        // with no (or an infinite) lifetime falls back to the router's own
        // reservation lifetime, so an episode whose releasing BF is lost
        // is still reclaimed by the expiry sweep.
        let lifetime = if bi.lifetime.is_zero() || bi.lifetime == SimDuration::MAX {
            self.config.reservation_lifetime
        } else {
            bi.lifetime
        };
        let lifetime_token = self.arm_session_lifetime(ctx, addr, lifetime);
        let watchdog_token = self.arm_watchdog(ctx, addr);
        let case = AvailabilityCase::from_grants(false, granted > 0);
        self.metrics.case_counts[case_index(case)] += 1;
        self.par_sessions.insert(
            addr,
            ParSession {
                mh,
                ncoa: Some(addr),
                nar_addr: None,
                target_ap: ApId(u32::MAX),
                nar_granted: 0,
                wants_buffer: true,
                state: ParState::Redirecting,
                case,
                nar_full: false,
                lifetime_token,
                watchdog_token,
                auth: None,
            },
        );
        let ba = ControlMsg::BufferAck(BufferAck {
            nar_granted: 0,
            par_granted: granted,
        });
        self.send_to_mh(ctx, mh, addr, ba);
    }

    pub(crate) fn schedule_buffer_start<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        pcoa: Ipv6Addr,
        bi: Option<&BufferInit>,
    ) {
        if let Some(bi) = bi {
            if !bi.start_time.is_zero() {
                let token = self.fresh_token(pcoa);
                ctx.send_self(
                    bi.start_time,
                    NetMsg::Timer {
                        kind: TimerKind::BufferStart,
                        token,
                    },
                );
            }
        }
    }

    /// The BI start-time elapsed: the host vanished without managing to
    /// send its FBU, so buffering auto-starts.
    pub(crate) fn on_buffer_start(&mut self, pcoa: Ipv6Addr) {
        if let Some(sess) = self.par_sessions.get_mut(&pcoa) {
            sess.state = sess.state.on(ParEvent::BufferStartElapsed);
        }
    }

    /// HI retransmission timer fired: the NAR's HAck never came.
    pub(crate) fn on_rtx_hi<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, pcoa: Ipv6Addr) {
        let Some(mut rtx) = self.hi_rtx.remove(&pcoa) else {
            return;
        };
        if !self.config.rtx.enabled {
            return;
        }
        let still_waiting = self
            .par_sessions
            .get(&pcoa)
            .is_some_and(|s| s.state == ParState::AwaitHAck);
        if !still_waiting {
            return;
        }
        let bo = self.config.rtx.backoff;
        if bo.exhausted(rtx.sent) {
            // The NAR is unreachable: finalize as a PAR-only session so
            // the host can still anticipate using our buffer alone.
            let par_granted = self.dp.pool.granted(pcoa);
            if let Some(sess) = self.par_sessions.get_mut(&pcoa) {
                sess.state = sess.state.on(ParEvent::NegotiationAbandoned);
                sess.nar_granted = 0;
                sess.case = AvailabilityCase::from_grants(false, par_granted > 0);
                self.metrics.case_counts[case_index(sess.case)] += 1;
            }
            self.metrics.hi_exhausted += 1;
            ctx.shared.stats_mut().bump("ar.hi_exhausted", 1);
            self.send_prrtadv_for(ctx, pcoa);
            return;
        }
        let hi = rtx.hi.clone();
        self.dp.send_control_wired(ctx, rtx.nar_addr, hi);
        self.metrics.retransmissions += 1;
        ctx.shared.stats_mut().bump("ar.retransmissions", 1);
        let node = self.dp.node;
        fh_net::record_trace(ctx, || fh_net::TraceEvent::ControlRetransmit {
            kind: "HI",
            by: node,
        });
        let token = self.fresh_token(pcoa);
        rtx.token = token;
        rtx.key = ctx.send_self_keyed(
            bo.delay(rtx.sent),
            NetMsg::Timer {
                kind: TimerKind::RtxHi,
                token,
            },
        );
        rtx.sent += 1;
        self.hi_rtx.insert(pcoa, rtx);
    }

    /// FBU: start redirecting (packet redirection phase, §3.2.2.2).
    pub(crate) fn on_fbu<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        pcoa: Ipv6Addr,
        ncoa: Ipv6Addr,
    ) {
        let (mh, nar_addr, status) = match self.par_sessions.get_mut(&pcoa) {
            Some(sess) => {
                sess.ncoa = Some(ncoa);
                sess.state = sess.state.on(ParEvent::FbuArrived);
                (sess.mh, sess.nar_addr, AckStatus::Accepted)
            }
            None => {
                // FBU without prior RtSolPr (no anticipation): redirect
                // unbuffered to the router owning the NCoA's subnet — we
                // know nothing better. A session with no grants anywhere.
                let mh = self.dp.neighbors.get(&pcoa).copied();
                let Some(mh) = mh else {
                    return;
                };
                self.dp.pool.open_unreserved(pcoa);
                let lifetime_token =
                    self.arm_session_lifetime(ctx, pcoa, self.config.reservation_lifetime);
                let watchdog_token = self.arm_watchdog(ctx, pcoa);
                self.par_sessions.insert(
                    pcoa,
                    ParSession {
                        mh,
                        ncoa: Some(ncoa),
                        nar_addr: None,
                        target_ap: ApId(u32::MAX),
                        nar_granted: 0,
                        wants_buffer: false,
                        state: ParState::Redirecting,
                        case: AvailabilityCase::NoneAvailable,
                        nar_full: false,
                        lifetime_token,
                        watchdog_token,
                        auth: None,
                    },
                );
                (mh, None, AckStatus::Accepted)
            }
        };
        // FBAck to the host on the old link (usually already gone) …
        let fback = ControlMsg::FastBindingAck { pcoa, status };
        self.send_to_mh(ctx, mh, pcoa, fback.clone());
        // … and to the NAR.
        if let Some(nar) = nar_addr {
            self.dp.send_control_wired(ctx, nar, fback);
        }
    }

    /// HAck, PAR side: finish the negotiation and tell the host.
    pub(crate) fn on_hack<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        pcoa: Ipv6Addr,
        status: AckStatus,
        ba: Option<BufferAck>,
    ) {
        let Some(sess) = self.par_sessions.get_mut(&pcoa) else {
            return;
        };
        if self.config.rtx.enabled {
            if sess.state != ParState::AwaitHAck {
                // Duplicate HAck (or one racing a degraded finalization):
                // the PrRtAdv already went out.
                return;
            }
            if let Some(rtx) = self.hi_rtx.remove(&pcoa) {
                let _ = ctx.cancel(rtx.key);
                self.timer_sessions.remove(&rtx.token);
            }
        }
        let nar_granted = ba.map_or(0, |b| b.nar_granted);
        let par_granted = self.dp.pool.granted(pcoa);
        sess.case =
            AvailabilityCase::from_grants(status.is_accepted() && nar_granted > 0, par_granted > 0);
        sess.nar_granted = nar_granted;
        self.metrics.case_counts[case_index(sess.case)] += 1;
        sess.state = sess.state.on(ParEvent::HAckArrived);
        self.send_prrtadv_for(ctx, pcoa);
    }

    /// (Re)builds and sends the PrRtAdv for a finalized PAR session — used
    /// by the HAck path, duplicate-RtSolPr answers and HI-exhaustion
    /// degradation, all of which must advertise the same result.
    pub(crate) fn send_prrtadv_for<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        pcoa: Ipv6Addr,
    ) {
        let Some(sess) = self.par_sessions.get(&pcoa) else {
            return;
        };
        let mh = sess.mh;
        let auth = sess.auth;
        let wants_buffer = sess.wants_buffer;
        let nar_granted = sess.nar_granted;
        let nar_addr = sess.nar_addr.unwrap_or(self.addr);
        let target_ap = if sess.target_ap == ApId(u32::MAX) {
            self.ap_directory
                .iter()
                .find(|&(_, &a)| a == nar_addr)
                .map(|(&ap, _)| ap)
                .unwrap_or(ApId(u32::MAX))
        } else {
            sess.target_ap
        };
        let par_granted = self.dp.pool.granted(pcoa);
        let adv = ControlMsg::PrRtAdv {
            target_ap,
            nar_prefix: self.peer_prefix(nar_addr),
            nar_addr,
            ba: wants_buffer.then_some(BufferAck {
                nar_granted,
                par_granted,
            }),
            auth,
        };
        self.send_to_mh(ctx, mh, pcoa, adv);
    }

    /// The advertised prefix of a peer router. Real FMIPv6 carries this in
    /// the HAck/PrRtAdv exchange; we derive it from the peer's address.
    pub(crate) fn peer_prefix(&self, router_addr: Ipv6Addr) -> Prefix {
        Prefix::new(router_addr, self.prefix.len())
    }

    /// Flushes the PAR buffer (BF received): tunnel everything to the NAR,
    /// or straight over the air for an intra-router handoff.
    pub(crate) fn flush_par<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, pcoa: Ipv6Addr) {
        let Some(sess) = self.par_sessions.get_mut(&pcoa) else {
            return;
        };
        let nar_addr = sess.nar_addr;
        let mh = sess.mh;
        sess.state = sess.state.on(ParEvent::FlushReleased);
        if nar_addr.is_some() {
            // The host now lives behind the NAR; drop the stale neighbor
            // entry (kept for intra-router handoffs, where it stays valid).
            self.drop_route(ctx, pcoa);
        }
        self.metrics.flushes += 1;
        let ar = self.dp.node;
        let pkts = self.dp.pool.session_len(pcoa);
        let path = if nar_addr.is_some() { "par" } else { "local" };
        fh_net::record_trace(ctx, || fh_net::TraceEvent::BufferFlush { ar, path, pkts });
        let target = match nar_addr {
            Some(nar) => FlushTarget::Tunnel(nar),
            None => FlushTarget::Radio(mh),
        };
        self.start_flush(ctx, pcoa, target);
    }
}

#[cfg(test)]
mod tests {
    use super::{ParEvent::*, ParState::*};

    #[test]
    fn transition_table_matches_fig_3_3_lifecycle() {
        // The happy path: negotiate, advertise, redirect, release.
        assert_eq!(AwaitHAck.on(HAckArrived), Ready);
        assert_eq!(Ready.on(FbuArrived), Redirecting);
        assert_eq!(Redirecting.on(FlushReleased), Released);
        // FBU may overtake the HAck on a fast host.
        assert_eq!(AwaitHAck.on(FbuArrived), Redirecting);
        // Retry exhaustion degrades, it does not kill the session.
        assert_eq!(AwaitHAck.on(NegotiationAbandoned), Ready);
        // BI auto-start only fires from Ready.
        assert_eq!(Ready.on(BufferStartElapsed), Redirecting);
        assert_eq!(AwaitHAck.on(BufferStartElapsed), AwaitHAck);
    }

    #[test]
    fn late_and_duplicate_events_are_benign() {
        // A released session never resurrects.
        for ev in [
            HAckArrived,
            NegotiationAbandoned,
            BufferStartElapsed,
            FbuArrived,
        ] {
            assert_eq!(Released.on(ev), Released);
        }
        // Duplicate HAck after the advert went out changes nothing.
        assert_eq!(Ready.on(HAckArrived), Ready);
        assert_eq!(Redirecting.on(HAckArrived), Redirecting);
        // A straggling FBU while already redirecting is idempotent.
        assert_eq!(Redirecting.on(FbuArrived), Redirecting);
        // Flush always wins, from anywhere.
        for state in [AwaitHAck, Ready, Redirecting, Released] {
            assert_eq!(state.on(FlushReleased), Released);
        }
    }
}
