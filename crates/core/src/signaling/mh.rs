//! The mobile host's fast-handover protocol engine.
//!
//! [`MhAgent`] glues together the link layer ([`fh_wireless::MhRadio`]),
//! the mobility client ([`fh_mip::MipClient`]) and the fast-handover
//! message exchange of Figs 3.2–3.5:
//!
//! 1. **L2 source trigger** → RtSolPr+BI to the current router.
//! 2. **PrRtAdv** → form the NCoA, send FBU, start the L2 handoff.
//! 3. **LinkUp on the new AP** → FNA+BF (flush the NAR buffer; the NAR
//!    relays BF to the PAR), adopt the NCoA, and send the HMIPv6 local
//!    binding update to the MAP.
//!
//! A PrRtAdv naming the host's *current* router (same prefix) means the
//! move is a pure link-layer handoff (Fig 3.5): the host sends FBU, hands
//! off, and releases the buffer with a standalone BF.
//!
//! The agent is a component: the owning actor forwards events to
//! [`MhAgent::handle`] and receives application-bound packets back.

use std::collections::HashSet;
use std::net::Ipv6Addr;

use fh_sim::{EventKey, SimDuration, SimTime};

use fh_mip::MipClient;
use fh_net::{
    msg::{AuthToken, BufferInit},
    ApId, ControlMsg, DropReason, FlowId, HandoverOutcome, L2Event, NetCtx, NetMsg, NodeFaultSpec,
    NodeId, Packet, Payload, Prefix, TimerKind,
};
use fh_wireless::{send_uplink, MhRadio, RadioWorld};

use crate::scheme::ProtocolConfig;

/// `TimerKind::App` discriminator for the FBAck fallback timer.
const FBU_FALLBACK: u32 = 1;

/// Timeline entries recorded by the host (one list across all handoffs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandoffPhase {
    /// L2 source trigger received.
    Trigger,
    /// RtSolPr(+BI) sent.
    SolicitSent,
    /// PrRtAdv received (negotiation result known).
    AdvReceived,
    /// FBU sent; leaving the old link.
    FbuSent,
    /// Radio detached (black-out begins).
    LinkDown,
    /// Radio attached on the new AP (black-out ends).
    LinkUp,
    /// FNA(+BF) or standalone BF sent.
    FnaSent,
    /// MAP binding update acknowledged; handover fully complete.
    BindingComplete,
    /// A signaling exchange exhausted its retransmission budget; the host
    /// fell back one rung on the degradation ladder (predictive →
    /// reactive → failed).
    Degraded,
}

impl HandoffPhase {
    /// Stable short label, used as the span-mark name on handover
    /// timelines (`fh_telemetry` spans).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            HandoffPhase::Trigger => "trigger",
            HandoffPhase::SolicitSent => "solicit-sent",
            HandoffPhase::AdvReceived => "adv-received",
            HandoffPhase::FbuSent => "fbu-sent",
            HandoffPhase::LinkDown => "link-down",
            HandoffPhase::LinkUp => "link-up",
            HandoffPhase::FnaSent => "fna-sent",
            HandoffPhase::BindingComplete => "binding-complete",
            HandoffPhase::Degraded => "degraded",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MhState {
    /// Attached, no handover in progress.
    Idle,
    /// RtSolPr sent, waiting for PrRtAdv.
    Soliciting,
    /// FBU sent; still on the old link waiting for FBAck (Fig 3.2 shows
    /// the FBAck arriving on the old link before the radio switches).
    AwaitFback,
    /// Radio switching.
    InBlackout,
}

/// Where the host currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Attachment {
    ap: ApId,
    router: Ipv6Addr,
    prefix: Prefix,
}

#[derive(Debug, Clone, Copy)]
struct PendingHandoff {
    target_ap: ApId,
    nar_addr: Ipv6Addr,
    nar_prefix: Prefix,
    ncoa: Ipv6Addr,
    auth: Option<AuthToken>,
    intra: bool,
}

/// In-flight RtSolPr(+BI) retransmission state.
#[derive(Debug, Clone, Copy)]
struct SolicitRtx {
    key: EventKey,
    /// Transmissions made so far (the initial send counts).
    sent: u32,
    target_ap: ApId,
}

/// In-flight FNA+BU retransmission state (post-attach registration).
#[derive(Debug, Clone, Copy)]
struct FnaRtx {
    key: EventKey,
    /// Transmissions made so far (the initial send counts).
    sent: u32,
    ncoa: Ipv6Addr,
    pcoa: Ipv6Addr,
    nar_addr: Ipv6Addr,
    auth: Option<AuthToken>,
}

/// The mobile host protocol agent.
#[derive(Debug)]
pub struct MhAgent {
    /// The host's node id.
    pub node: NodeId,
    /// Link-layer radio process.
    pub radio: MhRadio,
    /// Mobile IPv6 / HMIPv6 client.
    pub mip: MipClient,
    /// Protocol parameters.
    pub config: ProtocolConfig,
    /// Interface identifier used to form care-of addresses.
    pub iid: u64,
    /// Scheduled power-loss fault, if any (noop by default).
    pub node_fault: NodeFaultSpec,
    /// `true` after the power-loss fires: the radio is detached and every
    /// further event is swallowed (in-flight downlink data is reclaimed).
    powered_off: bool,
    state: MhState,
    current: Option<Attachment>,
    pending: Option<PendingHandoff>,
    booted: bool,
    fbu_seq: u64,
    guard_active: bool,
    rtx_solicit: Option<SolicitRtx>,
    rtx_fna: Option<FnaRtx>,
    /// A handover attempt is in flight and has not yet resolved to a
    /// [`HandoverOutcome`]. Scenarios call [`MhAgent::finalize_outcome`]
    /// at end of run to classify stragglers as `Failed`.
    attempt_open: bool,
    /// With retransmissions on, `Predictive` is only recorded once the
    /// MAP binding completes (not merely on attach).
    awaiting_binding: bool,
    /// Signaling retransmissions performed (all hardened exchanges).
    pub retransmissions: u64,
    /// Exchanges that exhausted their retry budget and degraded.
    pub degradations: u64,
    /// Completed handovers.
    pub handoffs: u64,
    /// Event timeline `(time, phase)`.
    pub log: Vec<(SimTime, HandoffPhase)>,
    /// The telemetry span of the current (or most recent) handover
    /// attempt; [`fh_telemetry::SpanId::NONE`] while spans are disabled.
    span: fh_telemetry::SpanId,
    /// Set at FNA time so the next delivered data packet stamps the
    /// `first-delivery` mark on the span (FNA→first-delivery latency).
    await_first_delivery: bool,
    /// `(flow, seq)` pairs already delivered to the application —
    /// SafetyNet's selective delivery: the winning copy of a bicast is
    /// passed up, the loser is suppressed as a `Policy` drop. Populated
    /// only when the scheme bicasts; always empty otherwise.
    delivered_seqs: HashSet<(FlowId, u64)>,
}

impl MhAgent {
    /// Creates a host agent.
    #[must_use]
    pub fn new(
        node: NodeId,
        radio: MhRadio,
        mip: MipClient,
        config: ProtocolConfig,
        iid: u64,
    ) -> Self {
        MhAgent {
            node,
            radio,
            mip,
            config,
            iid,
            node_fault: NodeFaultSpec::default(),
            powered_off: false,
            state: MhState::Idle,
            current: None,
            pending: None,
            booted: false,
            fbu_seq: 0,
            guard_active: false,
            rtx_solicit: None,
            rtx_fna: None,
            attempt_open: false,
            awaiting_binding: false,
            retransmissions: 0,
            degradations: 0,
            handoffs: 0,
            log: Vec::new(),
            span: fh_telemetry::SpanId::NONE,
            await_first_delivery: false,
            delivered_seqs: HashSet::new(),
        }
    }

    /// Records a protocol phase: appended to the host's own timeline and
    /// mirrored as a mark on the current handover span (no-op while
    /// spans are disabled).
    fn phase<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, phase: HandoffPhase) {
        let now = ctx.now();
        self.log.push((now, phase));
        ctx.shared
            .stats_mut()
            .spans
            .annotate(self.span, now, phase.label());
    }

    /// `true` while a handover attempt has neither completed nor been
    /// classified — a wedged host at end of run.
    #[must_use]
    pub fn unresolved(&self) -> bool {
        self.attempt_open
    }

    /// Closes a still-open attempt, returning `true` if one was open.
    /// The caller records the corresponding `Failed` outcome (split from
    /// [`MhAgent::finalize_outcome`] for callers that hold the stats hub
    /// behind the same borrow as the agent).
    pub fn close_unresolved(&mut self) -> bool {
        let open = self.attempt_open;
        self.attempt_open = false;
        self.awaiting_binding = false;
        open
    }

    /// End-of-run classification: an attempt still open when the
    /// simulation stops is a failed handover. Returns `true` if a
    /// `Failed` outcome was recorded.
    pub fn finalize_outcome(&mut self, stats: &mut fh_net::NetStats) -> bool {
        if self.close_unresolved() {
            stats.record_outcome(HandoverOutcome::Failed);
            return true;
        }
        false
    }

    /// Pre-configures the initial attachment so the host need not wait a
    /// full RA interval at simulation start. `router`/`prefix` must match
    /// the AP the mobility model starts under.
    pub fn configure_initial(&mut self, ap: ApId, router: Ipv6Addr, prefix: Prefix) {
        self.current = Some(Attachment { ap, router, prefix });
        self.mip.set_lcoa(prefix.host(self.iid));
    }

    /// The host's current on-link care-of address.
    #[must_use]
    pub fn lcoa(&self) -> Option<Ipv6Addr> {
        self.mip.lcoa()
    }

    /// The current default router's address.
    #[must_use]
    pub fn router(&self) -> Option<Ipv6Addr> {
        self.current.map(|a| a.router)
    }

    /// Sends an application packet upstream (returns `false` during the
    /// black-out, when the radio cannot transmit).
    pub fn send_data<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, pkt: Packet) -> bool {
        send_uplink(ctx, self.node, pkt)
    }

    /// Asks the current access router to start guard-buffering: a
    /// standalone Buffer Initialization (Fig 2.4), used when the host
    /// anticipates a disruption the fast-handover protocol cannot see —
    /// poor link quality, a suspend, an application-level pause (§3.3).
    ///
    /// Returns `false` if the host is not attached or not configured.
    pub fn request_guard_buffering<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        size: u32,
        lifetime: SimDuration,
    ) -> bool {
        let (Some(att), Some(lcoa)) = (self.current, self.mip.lcoa()) else {
            return false;
        };
        let bi = ControlMsg::BufferInit(BufferInit {
            size,
            start_time: SimDuration::ZERO,
            lifetime,
        });
        self.send_control_up(ctx, lcoa, att.router, bi);
        true
    }

    /// Releases a guard-buffering episode: the router flushes everything
    /// it parked (standalone BF).
    pub fn release_guard_buffering<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>) -> bool {
        let (Some(att), Some(lcoa)) = (self.current, self.mip.lcoa()) else {
            return false;
        };
        self.guard_active = false;
        let bf = ControlMsg::BufferForward { pcoa: lcoa };
        self.send_control_up(ctx, lcoa, att.router, bf);
        true
    }

    /// The full §3.3 episode in one call: ask the router to guard-buffer,
    /// then suspend the radio for `duration`. When the radio comes back,
    /// the buffer is released automatically and every parked packet is
    /// delivered — a planned outage with zero loss.
    pub fn pause_with_guard<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        duration: SimDuration,
        buffer_size: u32,
    ) -> bool {
        if !self.request_guard_buffering(ctx, buffer_size, duration + SimDuration::from_secs(5)) {
            return false;
        }
        self.guard_active = true;
        self.radio.suspend(ctx, duration);
        true
    }

    /// Handles one simulator event. Application-bound packets (UDP/TCP
    /// payloads that survived decapsulation) are returned to the caller.
    pub fn handle<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        msg: NetMsg,
    ) -> Option<Packet> {
        if self.powered_off {
            // A dead host: downlink data already in flight over the air is
            // reclaimed so conservation balances; everything else is lost.
            if let NetMsg::RadioPacket { pkt, .. } = msg {
                match &pkt.payload {
                    Payload::Control(_) => {}
                    Payload::Data | Payload::Tcp(_) | Payload::Encap(_) => {
                        fh_net::record_drop(ctx, pkt.flow, DropReason::Reclaimed);
                    }
                }
            }
            return None;
        }
        match msg {
            NetMsg::Start => {
                self.radio.start(ctx);
                if let Some(at) = self.node_fault.power_off_at {
                    let me = ctx.self_id();
                    ctx.send_at(
                        me,
                        at,
                        NetMsg::Timer {
                            kind: TimerKind::PowerOff,
                            token: 0,
                        },
                    );
                }
                None
            }
            NetMsg::Timer { kind, token } => {
                match kind {
                    TimerKind::App(FBU_FALLBACK) => {
                        if token == self.fbu_seq {
                            self.detach_now(ctx);
                        }
                    }
                    TimerKind::RtxSolicit => self.on_rtx_solicit(ctx),
                    TimerKind::RtxFna => self.on_rtx_fna(ctx),
                    TimerKind::PowerOff => self.power_off(ctx),
                    _ => {
                        let _ = self.radio.on_timer(ctx, kind, token);
                    }
                }
                None
            }
            NetMsg::L2(ev) => {
                self.on_l2(ctx, ev);
                None
            }
            NetMsg::RadioPacket { pkt, .. } => self.on_radio_packet(ctx, pkt),
            NetMsg::LinkPacket { .. } => None,
        }
    }

    fn on_l2<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, ev: L2Event) {
        match ev {
            L2Event::SourceTrigger { current, next } => {
                self.log.push((ctx.now(), HandoffPhase::Trigger));
                if self.state != MhState::Idle {
                    return;
                }
                let Some(att) = self.current else { return };
                if att.ap != current {
                    return;
                }
                // One span per handover attempt. A degraded attempt that
                // re-triggers before resolving stays on its original span.
                let now = ctx.now();
                let track = self.node.index() as u64;
                let spans = &mut ctx.shared.stats_mut().spans;
                if !spans.is_open(self.span) {
                    self.span = spans.begin("handover", track, now);
                }
                spans.annotate(self.span, now, HandoffPhase::Trigger.label());
                let bi = self.config.scheme.buffers().then_some(BufferInit {
                    size: self.config.buffer_request,
                    start_time: self.config.buffer_start_time,
                    lifetime: self.config.reservation_lifetime,
                });
                let pcoa = self.mip.lcoa().expect("attached host has an LCoA");
                let msg = ControlMsg::RtSolPr {
                    target_ap: next,
                    bi,
                };
                self.send_control_up(ctx, pcoa, att.router, msg);
                self.state = MhState::Soliciting;
                self.attempt_open = true;
                if self.config.rtx.enabled {
                    let key = ctx.send_self_keyed(
                        self.config.rtx.backoff.delay(0),
                        NetMsg::Timer {
                            kind: TimerKind::RtxSolicit,
                            token: 0,
                        },
                    );
                    self.rtx_solicit = Some(SolicitRtx {
                        key,
                        sent: 1,
                        target_ap: next,
                    });
                }
                self.phase(ctx, HandoffPhase::SolicitSent);
            }
            L2Event::LinkDown { .. } => {
                self.phase(ctx, HandoffPhase::LinkDown);
            }
            L2Event::LinkUp { ap } => {
                self.phase(ctx, HandoffPhase::LinkUp);
                self.on_link_up(ctx, ap);
            }
        }
    }

    fn on_link_up<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, ap: ApId) {
        // Whatever we were waiting for on the old link is moot now.
        self.cancel_rtx(ctx);
        if let Some(p) = self.pending {
            if p.target_ap == ap {
                // Anticipated handover completed.
                self.pending = None;
                self.state = MhState::Idle;
                self.handoffs += 1;
                let pcoa = self.mip.lcoa().expect("had an address before moving");
                self.current = Some(Attachment {
                    ap,
                    router: p.nar_addr,
                    prefix: p.nar_prefix,
                });
                if p.intra {
                    // Pure L2 handoff: release the buffer with a plain BF.
                    if self.config.scheme.buffers() {
                        let msg = ControlMsg::BufferForward { pcoa };
                        self.send_control_up(ctx, pcoa, p.nar_addr, msg);
                    }
                    self.phase(ctx, HandoffPhase::FnaSent);
                    self.await_first_delivery = true;
                    self.resolve_attempt(ctx, HandoverOutcome::Predictive);
                    return;
                }
                let fna = ControlMsg::FastNeighborAdvertisement {
                    ncoa: p.ncoa,
                    pcoa,
                    bf: self.config.scheme.buffers(),
                    auth: p.auth,
                };
                self.send_control_up(ctx, p.ncoa, p.nar_addr, fna);
                self.phase(ctx, HandoffPhase::FnaSent);
                self.await_first_delivery = true;
                // Adopt the new address and update the MAP binding.
                self.mip.set_lcoa(p.ncoa);
                let bu = self.mip.make_map_bu(ctx.now());
                fh_net::record_control(ctx, bu.as_control().expect("binding update is control"));
                let node = self.node;
                let _ = send_uplink(ctx, node, bu);
                if self.config.rtx.enabled {
                    // The handover only counts as predictive once the MAP
                    // binding completes; keep retrying FNA+BU until then.
                    self.awaiting_binding = true;
                    let key = ctx.send_self_keyed(
                        self.config.rtx.backoff.delay(0),
                        NetMsg::Timer {
                            kind: TimerKind::RtxFna,
                            token: 0,
                        },
                    );
                    self.rtx_fna = Some(FnaRtx {
                        key,
                        sent: 1,
                        ncoa: p.ncoa,
                        pcoa,
                        nar_addr: p.nar_addr,
                        auth: p.auth,
                    });
                } else {
                    self.resolve_attempt(ctx, HandoverOutcome::Predictive);
                }
                return;
            }
        }
        if !self.booted {
            // First attach: register with the router and the MAP.
            self.booted = true;
            if let Some(att) = self.current {
                let lcoa = self.mip.lcoa().expect("configure_initial sets the LCoA");
                let fna = ControlMsg::FastNeighborAdvertisement {
                    ncoa: lcoa,
                    pcoa: lcoa,
                    bf: false,
                    auth: None,
                };
                self.send_control_up(ctx, lcoa, att.router, fna);
                let bu = self.mip.make_map_bu(ctx.now());
                fh_net::record_control(ctx, bu.as_control().expect("binding update is control"));
                let node = self.node;
                let _ = send_uplink(ctx, node, bu);
                // Hosts with a real home (home address distinct from the
                // RCoA) also register the RCoA with their home agent.
                if self.mip.rcoa() != Some(self.mip.home_addr) {
                    let ha_bu = self.mip.make_ha_bu(ctx.now());
                    fh_net::record_control(ctx, ha_bu.as_control().expect("control"));
                    let _ = send_uplink(ctx, node, ha_bu);
                }
                self.send_correspondent_bus(ctx);
            }
            return;
        }
        if self.guard_active {
            // Resuming from a guarded radio pause: flush the parked packets.
            let _ = self.release_guard_buffering(ctx);
            return;
        }
        // Unanticipated attach (handoff without anticipation): wait for the
        // next router advertisement to learn where we are; handled in
        // `on_router_advertisement`.
        self.state = MhState::Idle;
        self.pending = None;
    }

    fn on_radio_packet<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        pkt: Packet,
    ) -> Option<Packet> {
        // Unwrap MAP (and any nested) tunnels addressed to us.
        let pkt = match pkt.payload {
            Payload::Encap(_) => pkt.decapsulate().expect("checked encap"),
            _ => pkt,
        };
        let pkt = match pkt.payload {
            Payload::Encap(_) => pkt.decapsulate().expect("checked encap"),
            _ => pkt,
        };
        match &pkt.payload {
            Payload::Control(msg) => {
                let msg = (**msg).clone();
                self.on_control(ctx, pkt.src, msg);
                None
            }
            _ => {
                // SafetyNet selective delivery: under a bicasting scheme
                // the same datagram can arrive twice — once on the old
                // link, once flushed from the NAR's insurance buffer. The
                // first copy wins; the loser is recorded as a policy drop
                // so `sent + duplicated == delivered + dropped` balances.
                // Only plain datagrams are deduplicated here: TCP reuses
                // the byte sequence on retransmission and handles its own
                // duplicates.
                if self.config.scheme.bicasts()
                    && matches!(pkt.payload, Payload::Data)
                    && !self.delivered_seqs.insert((pkt.flow, pkt.seq))
                {
                    fh_net::record_drop(ctx, pkt.flow, DropReason::Policy);
                    return None;
                }
                if self.await_first_delivery {
                    // First data packet after the FNA: the tail latency of
                    // the handover (FNA→first-delivery) is now measurable.
                    self.await_first_delivery = false;
                    let now = ctx.now();
                    ctx.shared
                        .stats_mut()
                        .spans
                        .annotate(self.span, now, "first-delivery");
                }
                Some(pkt)
            }
        }
    }

    fn on_control<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        _src: Ipv6Addr,
        msg: ControlMsg,
    ) {
        let node = self.node;
        fh_net::record_trace(ctx, || fh_net::TraceEvent::ControlReceived {
            kind: msg.kind_name(),
            at: node,
        });
        if self.mip.on_control(ctx.now(), &msg) {
            if self.mip.map_registered() {
                self.phase(ctx, HandoffPhase::BindingComplete);
                if self.awaiting_binding {
                    if let Some(r) = self.rtx_fna.take() {
                        let _ = ctx.cancel(r.key);
                    }
                    self.resolve_attempt(ctx, HandoverOutcome::Predictive);
                }
            }
            return;
        }
        match msg {
            ControlMsg::PrRtAdv {
                target_ap,
                nar_prefix,
                nar_addr,
                auth,
                ..
            } => self.on_prrtadv(ctx, target_ap, nar_prefix, nar_addr, auth),
            ControlMsg::RouterAdvertisement {
                prefix,
                router,
                map,
                ..
            } => {
                self.on_router_advertisement(ctx, prefix, router, map);
            }
            ControlMsg::FastBindingAck { .. } => {
                self.detach_now(ctx);
            }
            _ => {}
        }
    }

    fn on_prrtadv<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        target_ap: ApId,
        nar_prefix: Prefix,
        nar_addr: Ipv6Addr,
        auth: Option<AuthToken>,
    ) {
        if self.state != MhState::Soliciting {
            return;
        }
        let Some(att) = self.current else { return };
        if let Some(r) = self.rtx_solicit.take() {
            let _ = ctx.cancel(r.key);
        }
        self.phase(ctx, HandoffPhase::AdvReceived);
        let intra = nar_addr == att.router;
        let pcoa = self.mip.lcoa().expect("attached host has an LCoA");
        let ncoa = if intra {
            pcoa
        } else {
            nar_prefix.host(self.iid)
        };
        self.pending = Some(PendingHandoff {
            target_ap,
            nar_addr,
            nar_prefix,
            ncoa,
            auth,
            intra,
        });
        // FBU before disconnecting (§2.3.2 packet forwarding). The radio
        // stays on the old link until the FBAck confirms the PAR has begun
        // redirecting — after that nothing more is in flight over the old
        // air interface. A fallback timer bounds the wait in case the
        // FBAck is lost.
        let fbu = ControlMsg::FastBindingUpdate { pcoa, ncoa };
        self.send_control_up(ctx, pcoa, att.router, fbu);
        self.phase(ctx, HandoffPhase::FbuSent);
        self.state = MhState::AwaitFback;
        self.fbu_seq += 1;
        ctx.send_self(
            SimDuration::from_millis(50),
            NetMsg::Timer {
                kind: TimerKind::App(FBU_FALLBACK),
                token: self.fbu_seq,
            },
        );
    }

    /// Closes the current handover attempt and records its outcome.
    fn resolve_attempt<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        outcome: HandoverOutcome,
    ) {
        self.attempt_open = false;
        self.awaiting_binding = false;
        let now = ctx.now();
        let stats = ctx.shared.stats_mut();
        stats.record_outcome(outcome);
        // The span id is kept so the trailing first-delivery mark still
        // lands on this attempt (marks after end are allowed).
        stats.spans.end(self.span, now, outcome.label());
    }

    /// Cancels any armed retransmission timers (O(1) keyed cancel — the
    /// queued events vanish without perturbing event counts or ordering).
    fn cancel_rtx<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>) {
        if let Some(r) = self.rtx_solicit.take() {
            let _ = ctx.cancel(r.key);
        }
        if let Some(r) = self.rtx_fna.take() {
            let _ = ctx.cancel(r.key);
        }
    }

    /// RtSolPr retransmission timer fired: the PrRtAdv never came.
    fn on_rtx_solicit<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>) {
        let Some(mut rtx) = self.rtx_solicit.take() else {
            return;
        };
        if self.state != MhState::Soliciting || !self.config.rtx.enabled {
            return;
        }
        let bo = self.config.rtx.backoff;
        if bo.exhausted(rtx.sent) {
            // Give up on anticipation. The radio will still hand off on
            // its own; recovery then rides the reactive RA path.
            self.state = MhState::Idle;
            self.degradations += 1;
            self.phase(ctx, HandoffPhase::Degraded);
            ctx.shared.stats_mut().bump("mh.degradations", 1);
            return;
        }
        let Some(att) = self.current else { return };
        let bi = self.config.scheme.buffers().then_some(BufferInit {
            size: self.config.buffer_request,
            start_time: self.config.buffer_start_time,
            lifetime: self.config.reservation_lifetime,
        });
        let pcoa = self.mip.lcoa().expect("attached host has an LCoA");
        let msg = ControlMsg::RtSolPr {
            target_ap: rtx.target_ap,
            bi,
        };
        self.send_control_up(ctx, pcoa, att.router, msg);
        self.retransmissions += 1;
        ctx.shared.stats_mut().bump("mh.retransmissions", 1);
        let node = self.node;
        fh_net::record_trace(ctx, || fh_net::TraceEvent::ControlRetransmit {
            kind: "RtSolPr",
            by: node,
        });
        rtx.key = ctx.send_self_keyed(
            bo.delay(rtx.sent),
            NetMsg::Timer {
                kind: TimerKind::RtxSolicit,
                token: u64::from(rtx.sent),
            },
        );
        rtx.sent += 1;
        self.rtx_solicit = Some(rtx);
    }

    /// FNA+BU retransmission timer fired: the MAP binding never completed.
    fn on_rtx_fna<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>) {
        let Some(mut rtx) = self.rtx_fna.take() else {
            return;
        };
        if !self.awaiting_binding || !self.config.rtx.enabled {
            return;
        }
        let bo = self.config.rtx.backoff;
        if bo.exhausted(rtx.sent) {
            // In-band registration failed for good. Forget the attachment
            // so the next router advertisement re-registers from scratch
            // (reactive fallback); if even the beacon never arrives the
            // attempt ends the run open and is classified `Failed`.
            self.awaiting_binding = false;
            self.current = None;
            self.degradations += 1;
            self.phase(ctx, HandoffPhase::Degraded);
            ctx.shared.stats_mut().bump("mh.degradations", 1);
            return;
        }
        let fna = ControlMsg::FastNeighborAdvertisement {
            ncoa: rtx.ncoa,
            pcoa: rtx.pcoa,
            bf: self.config.scheme.buffers(),
            auth: rtx.auth,
        };
        self.send_control_up(ctx, rtx.ncoa, rtx.nar_addr, fna);
        let bu = self.mip.make_map_bu(ctx.now());
        fh_net::record_control(ctx, bu.as_control().expect("binding update is control"));
        let node = self.node;
        let _ = send_uplink(ctx, node, bu);
        self.retransmissions += 1;
        ctx.shared.stats_mut().bump("mh.retransmissions", 1);
        fh_net::record_trace(ctx, || fh_net::TraceEvent::ControlRetransmit {
            kind: "FNA",
            by: node,
        });
        rtx.key = ctx.send_self_keyed(
            bo.delay(rtx.sent),
            NetMsg::Timer {
                kind: TimerKind::RtxFna,
                token: u64::from(rtx.sent),
            },
        );
        rtx.sent += 1;
        self.rtx_fna = Some(rtx);
    }

    /// `true` once the scheduled power-loss fault has fired.
    #[must_use]
    pub fn is_powered_off(&self) -> bool {
        self.powered_off
    }

    /// Scheduled power loss: the host vanishes mid-whatever-it-was-doing.
    /// The radio detaches at the environment level (downlink attempts then
    /// count as radio drops), retransmission timers are cancelled, and any
    /// open handover attempt is left to be classified `Failed` at end of
    /// run. State the network holds for us — an orphaned NAR buffer, host
    /// routes — is reclaimed by the routers' own soft-state lifetimes.
    fn power_off<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>) {
        if self.powered_off {
            return;
        }
        self.powered_off = true;
        self.cancel_rtx(ctx);
        let node = self.node;
        fh_net::record_trace(ctx, || fh_net::TraceEvent::FaultFired {
            node,
            what: "power-off",
        });
        let _ = ctx.shared.radio_mut().detach(self.node);
    }

    /// The FBAck arrived (or its wait timed out): actually switch links.
    fn detach_now<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>) {
        if self.state != MhState::AwaitFback {
            return;
        }
        let Some(p) = self.pending else { return };
        self.state = MhState::InBlackout;
        self.radio.begin_handoff(ctx, p.target_ap);
    }

    fn on_router_advertisement<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        prefix: Prefix,
        router: Ipv6Addr,
        map: Option<Ipv6Addr>,
    ) {
        let Some(ap) = self.radio.current_ap() else {
            return;
        };
        match self.current {
            Some(att) if att.prefix == prefix => {
                // Periodic RA from the current network: refresh router info.
                self.current = Some(Attachment { ap, router, prefix });
                // With soft-state host routes the beacon doubles as the
                // refresh trigger: re-announce ourselves so the router
                // re-arms our route's lifetime (and re-learns it after a
                // crash wiped its tables). Hard-state routes (the `MAX`
                // default) need no refresh and send nothing extra.
                let lifetime = self.config.host_route_lifetime;
                if !lifetime.is_zero() && lifetime != SimDuration::MAX {
                    if let Some(lcoa) = self.mip.lcoa() {
                        let fna = ControlMsg::FastNeighborAdvertisement {
                            ncoa: lcoa,
                            pcoa: lcoa,
                            bf: false,
                            auth: None,
                        };
                        self.send_control_up(ctx, lcoa, router, fna);
                    }
                }
                self.adopt_map_if_new(ctx, map);
            }
            _ => {
                // While deliberately dual-attached (make-before-break) the
                // other cell's beacons still reach us on the second
                // interface; they are not evidence of an unanticipated
                // move, and reacting to them would flap the address
                // between the two networks once per advertisement. Only
                // the serving network defines the address until the aux
                // link retires.
                if ctx.shared.radio().aux_attachment(self.node).is_some() {
                    return;
                }
                // New network discovered after an unanticipated move:
                // configure, register, redirect, and update the MAP.
                let old = self.mip.lcoa();
                let ncoa = prefix.host(self.iid);
                self.current = Some(Attachment { ap, router, prefix });
                let fna = ControlMsg::FastNeighborAdvertisement {
                    ncoa,
                    pcoa: old.unwrap_or(ncoa),
                    // Hardened mode asks the NAR to flush anything it
                    // buffered for us under a session whose HAck/PrRtAdv
                    // leg was lost; without a session the flag is inert.
                    bf: self.config.rtx.enabled && self.config.scheme.buffers(),
                    auth: None,
                };
                self.send_control_up(ctx, ncoa, router, fna);
                if let Some(pcoa) = old {
                    // FBU to the previous router, relayed through the wired
                    // network (no-anticipation path of §2.3.2).
                    if let Some(prev_router) = self.previous_router(pcoa) {
                        let fbu = ControlMsg::FastBindingUpdate { pcoa, ncoa };
                        self.send_control_up(ctx, ncoa, prev_router, fbu);
                        if self.config.rtx.enabled && self.config.scheme.buffers() {
                            // Hardened degradation: pull whatever the old
                            // router buffered during the blind spot with a
                            // standalone BF instead of letting it expire.
                            let bf = ControlMsg::BufferForward { pcoa };
                            self.send_control_up(ctx, ncoa, prev_router, bf);
                        }
                    }
                }
                self.mip.set_lcoa(ncoa);
                let bu = self.mip.make_map_bu(ctx.now());
                fh_net::record_control(ctx, bu.as_control().expect("binding update is control"));
                let node = self.node;
                let _ = send_uplink(ctx, node, bu);
                self.handoffs += 1;
                self.state = MhState::Idle;
                self.pending = None;
                self.resolve_attempt(ctx, HandoverOutcome::Reactive);
                self.adopt_map_if_new(ctx, map);
            }
        }
    }

    /// Macro mobility (§2.2.1): a router advertisement naming a *different*
    /// MAP means the host crossed a MAP-domain boundary. It forms a new
    /// RCoA on the advertised MAP's subnet, registers locally, and updates
    /// its home agent (the only time the HA hears about local movement).
    fn adopt_map_if_new<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, map: Option<Ipv6Addr>) {
        let Some(map_addr) = map else { return };
        if self.mip.map_addr() == Some(map_addr) {
            return;
        }
        // The RCoA is formed from the MAP's /48, as LCoAs are from ARs'.
        let rcoa = Prefix::new(map_addr, 48).host(self.iid);
        self.mip.enter_map_domain(map_addr, rcoa);
        let node = self.node;
        let bu = self.mip.make_map_bu(ctx.now());
        fh_net::record_control(ctx, bu.as_control().expect("control"));
        let _ = send_uplink(ctx, node, bu);
        let ha_bu = self.mip.make_ha_bu(ctx.now());
        fh_net::record_control(ctx, ha_bu.as_control().expect("control"));
        let _ = send_uplink(ctx, node, ha_bu);
        self.send_correspondent_bus(ctx);
    }

    /// Route optimization (§2.2.1 step 2): tell every registered
    /// correspondent the current RCoA so it can bypass the home agent.
    fn send_correspondent_bus<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>) {
        let node = self.node;
        for bu in self.mip.make_correspondent_bus(ctx.now()) {
            fh_net::record_control(ctx, bu.as_control().expect("control"));
            let _ = send_uplink(ctx, node, bu);
        }
    }

    /// The router that owns `pcoa` — derived from the address, as a real
    /// host would from its destroyed attachment state.
    fn previous_router(&self, pcoa: Ipv6Addr) -> Option<Ipv6Addr> {
        let att = self.current?;
        let prev_prefix = Prefix::new(pcoa, att.prefix.len());
        Some(prev_prefix.host(1))
    }

    fn send_control_up<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        src: Ipv6Addr,
        dst: Ipv6Addr,
        msg: ControlMsg,
    ) {
        fh_net::record_control(ctx, &msg);
        let pkt = Packet::control(src, dst, msg, ctx.now());
        let node = self.node;
        let _ = send_uplink(ctx, node, pkt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fh_sim::SimDuration;

    // MhAgent construction helpers are exercised end-to-end in the
    // scenarios crate; here we test the pure pieces.

    #[test]
    fn previous_router_derives_from_prefix() {
        let radio = MhRadio::new(
            fh_net::Topology::new().add_node("mh"),
            fh_wireless::Mobility::Stationary(fh_wireless::Position::new(0.0, 0.0)),
            fh_wireless::RadioConfig::default(),
        );
        let mip = MipClient::new(
            "2001:db8:100::9".parse().unwrap(),
            "2001:db8:100::1".parse().unwrap(),
            SimDuration::from_secs(60),
        );
        let mut agent = MhAgent::new(
            fh_net::Topology::new().add_node("mh2"),
            radio,
            mip,
            ProtocolConfig::default(),
            9,
        );
        agent.configure_initial(
            ApId(0),
            "2001:db8:2::1".parse().unwrap(),
            fh_net::doc_subnet(2),
        );
        let prev = agent.previous_router("2001:db8:1::9".parse().unwrap());
        assert_eq!(prev, Some("2001:db8:1::1".parse().unwrap()));
    }

    #[test]
    fn configure_initial_sets_lcoa() {
        let radio = MhRadio::new(
            fh_net::Topology::new().add_node("mh"),
            fh_wireless::Mobility::Stationary(fh_wireless::Position::new(0.0, 0.0)),
            fh_wireless::RadioConfig::default(),
        );
        let mip = MipClient::new(
            "2001:db8:100::9".parse().unwrap(),
            "2001:db8:100::1".parse().unwrap(),
            SimDuration::from_secs(60),
        );
        let mut agent = MhAgent::new(
            fh_net::Topology::new().add_node("x"),
            radio,
            mip,
            ProtocolConfig::default(),
            0x42,
        );
        agent.configure_initial(
            ApId(1),
            "2001:db8:5::1".parse().unwrap(),
            fh_net::doc_subnet(5),
        );
        assert_eq!(agent.lcoa(), Some("2001:db8:5::42".parse().unwrap()));
        assert_eq!(agent.router(), Some("2001:db8:5::1".parse().unwrap()));
    }
}
