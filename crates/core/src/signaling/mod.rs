//! The signaling layer: FMIPv6 + BI/BA/BF state machines.
//!
//! Top layer of the access-router stack (policy ← datapath ←
//! **signaling**). Each protocol role is its own module with a typed
//! state machine:
//!
//! * [`par`] — the previous access router: RtSolPr+BI intake, the HI+BR /
//!   HAck+BA negotiation (with optional retransmission hardening),
//!   PrRtAdv, FBU-triggered redirection and the BF-triggered flush.
//! * [`nar`] — the new access router: HI admission and grants, tunnel
//!   ingress during the black-out, BufferFull spill-back, FNA+BF arrival
//!   and the over-the-air flush.
//! * [`mh`] — the mobile host: trigger handling, the RtSolPr+BI → FBU →
//!   FNA+BF choreography and MAP binding updates.
//!
//! The role modules own session state and drive transitions through
//! typed events ([`par::ParEvent`], [`nar::NarEvent`]); every packet they
//! touch is handed to the [`crate::datapath`] pipeline, and every
//! per-packet decision comes from the [`crate::policy`] layer. Signaling
//! never parks, drops or transmits a packet itself.

pub(crate) mod mh;
pub(crate) mod nar;
pub(crate) mod par;
