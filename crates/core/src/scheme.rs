//! Buffering schemes and protocol configuration.
//!
//! [`Scheme`] selects which handover buffer management the network runs —
//! the proposed dual-router scheme or one of the baselines the thesis
//! compares against in Fig 4.2:
//!
//! | Scheme | Fig 4.2 line | Meaning |
//! |---|---|---|
//! | [`Scheme::NoBuffer`] | FH   | fast handover without any buffering |
//! | [`Scheme::NarOnly`]  | NAR  | the original FMIPv6: buffer at the new access router only |
//! | [`Scheme::ParOnly`]  | PAR  | the smooth-handover draft: buffer at the previous router only |
//! | [`Scheme::Dual`]     | DUAL | the proposed scheme; `classify` switches Table 3.3 on/off |
//! | [`Scheme::SafetyNet`] | SAFETY | multicast to old + new router, selective delivery at the winner |
//!
//! `SAFETY` is not a thesis baseline: it reproduces the SafetyNet flavour
//! of vertical-handover buffering (Petander et al.), added alongside the
//! heterogeneous-radio layer. The PAR bicasts every redirected packet —
//! one copy attempted on the old link, one tunneled to the NAR's buffer —
//! and the mobile host suppresses whichever copy arrives second.

use fh_sim::{Backoff, SimDuration};
use serde::{Deserialize, Serialize};

/// Which buffer management scheme the network runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Fast handover with no buffering at all (the `FH` baseline).
    NoBuffer,
    /// Original fast handover: all packets buffered at the NAR.
    NarOnly,
    /// Smooth-handover draft: all packets buffered at the PAR.
    ParOnly,
    /// The proposed enhanced scheme: both routers' buffers cooperate.
    Dual {
        /// `true` enables the class-aware operation matrix (Table 3.3);
        /// `false` treats every packet the same (Figs 4.4 / 4.8).
        classify: bool,
    },
    /// SafetyNet-style bicast: the PAR duplicates every redirected packet
    /// (deliver on the old link *and* park a copy at the NAR) and the
    /// mobile host drops whichever copy loses the race. Zero-loss across
    /// a make-before-break vertical handover, at the price of duplicate
    /// airtime; the conservation ledger accounts the second copy as
    /// `duplicated`, not `sent`.
    SafetyNet,
}

impl Scheme {
    /// The thesis' proposal with classification enabled.
    pub const PROPOSED: Scheme = Scheme::Dual { classify: true };

    /// Every scheme, in the Fig 4.2 legend order (`NAR`, `PAR`, `DUAL`,
    /// `FH`) with the class-aware proposal after its class-blind
    /// variant and the SafetyNet bicast appended after the thesis
    /// baselines. The single source of truth: figure series, CSV headers,
    /// CLI listings and exhaustive tests all derive from this array
    /// instead of repeating the list.
    pub const ALL: [Scheme; 6] = [
        Scheme::NarOnly,
        Scheme::ParOnly,
        Scheme::Dual { classify: false },
        Scheme::Dual { classify: true },
        Scheme::NoBuffer,
        Scheme::SafetyNet,
    ];

    /// `true` if the mobile host should request buffering at the NAR.
    /// SafetyNet parks its duplicate copies there, so it counts.
    #[must_use]
    pub fn uses_nar_buffer(self) -> bool {
        matches!(
            self,
            Scheme::NarOnly | Scheme::Dual { .. } | Scheme::SafetyNet
        )
    }

    /// `true` if the mobile host deduplicates deliveries by `(flow, seq)`
    /// — only SafetyNet, whose bicast intentionally races two copies.
    #[must_use]
    pub fn bicasts(self) -> bool {
        matches!(self, Scheme::SafetyNet)
    }

    /// `true` if the mobile host should request buffering at the PAR.
    #[must_use]
    pub fn uses_par_buffer(self) -> bool {
        matches!(self, Scheme::ParOnly | Scheme::Dual { .. })
    }

    /// `true` if the Table 3.3 class-aware matrix is active.
    #[must_use]
    pub fn classifies(self) -> bool {
        matches!(self, Scheme::Dual { classify: true })
    }

    /// `true` if any buffering happens at all.
    #[must_use]
    pub fn buffers(self) -> bool {
        !matches!(self, Scheme::NoBuffer)
    }

    /// Short label used in experiment tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scheme::NoBuffer => "FH",
            Scheme::NarOnly => "NAR",
            Scheme::ParOnly => "PAR",
            Scheme::Dual { classify: false } => "DUAL",
            Scheme::Dual { classify: true } => "DUAL+class",
            Scheme::SafetyNet => "SAFETY",
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when a string names no [`Scheme`] label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSchemeError(String);

impl std::fmt::Display for ParseSchemeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown scheme \"{}\" (expected one of: ", self.0)?;
        for (i, s) in Scheme::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(s.label())?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for ParseSchemeError {}

impl std::str::FromStr for Scheme {
    type Err = ParseSchemeError;

    /// Parses a figure-legend label (`FH`, `NAR`, `PAR`, `DUAL`,
    /// `DUAL+class`, `SAFETY`), case-insensitively — the exact round
    /// trip of [`Scheme::label`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Scheme::ALL
            .into_iter()
            .find(|scheme| scheme.label().eq_ignore_ascii_case(s))
            .ok_or_else(|| ParseSchemeError(s.to_owned()))
    }
}

/// Tunable protocol parameters shared by mobile hosts and access routers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Active buffering scheme.
    pub scheme: Scheme,
    /// Buffer space (packets) a mobile host requests per handover.
    pub buffer_request: u32,
    /// Reservation lifetime the host asks for.
    pub reservation_lifetime: SimDuration,
    /// BI start-time: the PAR auto-starts buffering this long after the
    /// request even if no FBU arrives (protection against fast movers).
    /// Zero disables auto-start.
    pub buffer_start_time: SimDuration,
    /// The administrator constant `a` (Table 3.3 case 1.c / 3.c): best
    /// effort is buffered at the PAR only while free space exceeds this.
    pub threshold_a: u32,
    /// Require the handover authentication token (thesis future work).
    pub auth_required: bool,
    /// Enable the precise per-class negotiation extension (thesis future
    /// work): HI carries per-class packet counts instead of one total.
    pub precise_negotiation: bool,
    /// Router-advertisement beacon interval (1 s in the thesis).
    pub ra_interval: SimDuration,
    /// Spacing between packets of a buffer flush. Zero hands the whole
    /// buffer to the interface at once (it still serializes on the
    /// channel); a positive value models the per-packet processing delay
    /// the thesis observes when a router "cannot dump all the buffered
    /// packets at the same time" (§4.2.3).
    pub flush_spacing: SimDuration,
    /// Signaling retransmission + graceful degradation (off by default —
    /// the thesis drafts have no retransmissions, and the faithful figures
    /// depend on that).
    pub rtx: RetransmitConfig,
    /// Soft-state lifetime of a host route installed at an access router.
    /// Routes are refreshed by the host's FNA (re-sent on each router
    /// advertisement while finite); a route whose refresh never arrives is
    /// reclaimed by the expiry sweep. `SimDuration::MAX` (the default)
    /// makes routes hard state, exactly as the faithful figures assume.
    pub host_route_lifetime: SimDuration,
    /// Dead-peer timeout for inter-router handover sessions: a PAR
    /// session whose NAR has been silent this long is reclaimed (its
    /// buffered packets released as `DropReason::Reclaimed`).
    /// `SimDuration::MAX` (the default) disables the sweep.
    pub dead_peer_timeout: SimDuration,
    /// Overload-control knobs: byte budget, shed watermarks and the
    /// handover watchdog. Everything off by default so the faithful
    /// figures and golden artifacts are untouched.
    pub pressure: PressureConfig,
}

/// Overload-control parameters for the access routers' buffer pools.
///
/// The packet-count capacity of the pool is how the thesis counts (§3.1.1);
/// this layer adds the dimension real routers die on — memory. With a
/// finite [`PressureConfig::byte_budget`], admission is additionally judged
/// in bytes, and crossing the high watermark engages the shed ladder, which
/// sacrifices parked packets (`DropReason::PressureShed`) in the policy's
/// declared rung order until usage falls back to the low watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PressureConfig {
    /// Byte budget for each router's buffer pool. 0 (the default)
    /// disables byte accounting entirely.
    pub byte_budget: usize,
    /// Shed-ladder trigger, as a percentage of the byte budget.
    pub high_watermark_pct: u8,
    /// Shed-ladder release point: shedding stops once parked bytes fall
    /// to this percentage of the budget.
    pub low_watermark_pct: u8,
    /// Deadline for each buffering handover session: a session that
    /// neither flushes nor expires in time is force-resolved by the
    /// watchdog. `SimDuration::MAX` (the default) disables it.
    pub watchdog_deadline: SimDuration,
}

impl PressureConfig {
    /// `true` if byte accounting (and with it the shed ladder) is armed.
    #[must_use]
    pub fn engaged(&self) -> bool {
        self.byte_budget > 0
    }

    /// Parked bytes at which the shed ladder engages.
    #[must_use]
    pub fn high_bytes(&self) -> usize {
        self.byte_budget / 100 * u8::min(self.high_watermark_pct, 100) as usize
            + self.byte_budget % 100 * u8::min(self.high_watermark_pct, 100) as usize / 100
    }

    /// Parked bytes down to which the shed ladder drains.
    #[must_use]
    pub fn low_bytes(&self) -> usize {
        self.byte_budget / 100 * u8::min(self.low_watermark_pct, 100) as usize
            + self.byte_budget % 100 * u8::min(self.low_watermark_pct, 100) as usize / 100
    }
}

impl Default for PressureConfig {
    fn default() -> Self {
        PressureConfig {
            byte_budget: 0,
            high_watermark_pct: 90,
            low_watermark_pct: 70,
            watchdog_deadline: SimDuration::MAX,
        }
    }
}

/// Retransmission policy for the handover signaling exchanges.
///
/// When enabled, the MH retries RtSolPr+BI and FNA/BU, and the PAR retries
/// HI+BR, each on an exponential-backoff schedule with a retry cap. A
/// predictive exchange that exhausts its retries degrades to the reactive
/// path (attach first, FNA+BF after) instead of wedging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetransmitConfig {
    /// Master switch. `false` reproduces the draft exactly: one shot per
    /// message, recovery only via the router-advertisement beacon.
    pub enabled: bool,
    /// The shared backoff schedule for all hardened exchanges.
    pub backoff: Backoff,
}

impl RetransmitConfig {
    /// Retransmissions enabled with the default schedule
    /// (200 ms initial, doubling, 2 s cap, 3 retries).
    #[must_use]
    pub fn hardened() -> Self {
        RetransmitConfig {
            enabled: true,
            ..RetransmitConfig::default()
        }
    }
}

/// Error returned when a string names no [`RetransmitConfig`] preset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRetransmitError(String);

impl std::fmt::Display for ParseRetransmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown retransmit policy \"{}\" (expected \"off\" or \"hardened\")",
            self.0
        )
    }
}

impl std::error::Error for ParseRetransmitError {}

impl std::str::FromStr for RetransmitConfig {
    type Err = ParseRetransmitError;

    /// Parses the two named presets scenario plans use: `off` (the
    /// draft-faithful single-shot signaling) and `hardened`
    /// ([`RetransmitConfig::hardened`]), case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.eq_ignore_ascii_case("off") {
            Ok(RetransmitConfig::default())
        } else if s.eq_ignore_ascii_case("hardened") {
            Ok(RetransmitConfig::hardened())
        } else {
            Err(ParseRetransmitError(s.to_owned()))
        }
    }
}

impl Default for RetransmitConfig {
    fn default() -> Self {
        RetransmitConfig {
            enabled: false,
            // Initial timeout must exceed the worst-case RtSolPr→PrRtAdv
            // round trip (wireless + PAR↔NAR RTT, ~110 ms at a 50 ms AR
            // link) so timers only fire on actual loss.
            backoff: Backoff::new(
                SimDuration::from_millis(200),
                2,
                SimDuration::from_secs(2),
                3,
            ),
        }
    }
}

impl ProtocolConfig {
    /// The thesis' simulation defaults (§4.1) with the proposed scheme.
    #[must_use]
    pub fn proposed() -> Self {
        ProtocolConfig {
            scheme: Scheme::PROPOSED,
            ..ProtocolConfig::default()
        }
    }

    /// Same defaults with a different scheme.
    #[must_use]
    pub fn with_scheme(scheme: Scheme) -> Self {
        ProtocolConfig {
            scheme,
            ..ProtocolConfig::default()
        }
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            scheme: Scheme::PROPOSED,
            buffer_request: 20,
            reservation_lifetime: SimDuration::from_secs(5),
            buffer_start_time: SimDuration::from_millis(1500),
            threshold_a: 10,
            auth_required: false,
            precise_negotiation: false,
            ra_interval: SimDuration::from_secs(1),
            flush_spacing: SimDuration::ZERO,
            rtx: RetransmitConfig::default(),
            host_route_lifetime: SimDuration::MAX,
            dead_peer_timeout: SimDuration::MAX,
            pressure: PressureConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_capabilities() {
        assert!(!Scheme::NoBuffer.buffers());
        assert!(!Scheme::NoBuffer.uses_nar_buffer());
        assert!(!Scheme::NoBuffer.uses_par_buffer());

        assert!(Scheme::NarOnly.uses_nar_buffer());
        assert!(!Scheme::NarOnly.uses_par_buffer());

        assert!(!Scheme::ParOnly.uses_nar_buffer());
        assert!(Scheme::ParOnly.uses_par_buffer());

        assert!(Scheme::PROPOSED.uses_nar_buffer());
        assert!(Scheme::PROPOSED.uses_par_buffer());

        // SafetyNet parks only at the NAR (the PAR bicasts, never parks),
        // and is the only scheme whose host deduplicates.
        assert!(Scheme::SafetyNet.uses_nar_buffer());
        assert!(!Scheme::SafetyNet.uses_par_buffer());
        assert!(Scheme::SafetyNet.buffers());
        assert!(Scheme::SafetyNet.bicasts());
        for scheme in Scheme::ALL {
            assert_eq!(scheme.bicasts(), scheme == Scheme::SafetyNet);
        }
    }

    #[test]
    fn classification_only_in_dual_classify() {
        assert!(Scheme::PROPOSED.classifies());
        assert!(!Scheme::Dual { classify: false }.classifies());
        assert!(!Scheme::NarOnly.classifies());
        assert!(!Scheme::ParOnly.classifies());
        assert!(!Scheme::NoBuffer.classifies());
        assert!(!Scheme::SafetyNet.classifies());
    }

    #[test]
    fn labels_are_figure_legends() {
        assert_eq!(Scheme::NoBuffer.label(), "FH");
        assert_eq!(Scheme::NarOnly.label(), "NAR");
        assert_eq!(Scheme::ParOnly.label(), "PAR");
        assert_eq!(Scheme::Dual { classify: false }.to_string(), "DUAL");
        assert_eq!(Scheme::PROPOSED.to_string(), "DUAL+class");
        assert_eq!(Scheme::SafetyNet.label(), "SAFETY");
    }

    #[test]
    fn all_is_exhaustive_and_labels_round_trip() {
        // Every variant appears exactly once …
        assert_eq!(Scheme::ALL.len(), 6);
        for (i, a) in Scheme::ALL.iter().enumerate() {
            for b in &Scheme::ALL[i + 1..] {
                assert_ne!(a, b, "duplicate entry in Scheme::ALL");
            }
        }
        // … and label → parse is the identity, case-insensitively.
        for scheme in Scheme::ALL {
            assert_eq!(scheme.label().parse::<Scheme>(), Ok(scheme));
            assert_eq!(scheme.label().to_lowercase().parse::<Scheme>(), Ok(scheme));
        }
        let err = "bogus".parse::<Scheme>().unwrap_err();
        assert!(err.to_string().contains("DUAL+class"), "{err}");
    }

    #[test]
    fn retransmission_is_opt_in() {
        // The draft-faithful default has no retransmissions; hardening is
        // explicit so baseline figures stay byte-identical.
        assert!(!ProtocolConfig::default().rtx.enabled);
        let hard = RetransmitConfig::hardened();
        assert!(hard.enabled);
        assert!(hard.backoff.max_retries > 0);
        assert!(hard.backoff.initial >= SimDuration::from_millis(150));
    }

    #[test]
    fn retransmit_presets_parse_by_name() {
        assert_eq!(
            "off".parse::<RetransmitConfig>(),
            Ok(RetransmitConfig::default())
        );
        assert_eq!(
            "HARDENED".parse::<RetransmitConfig>(),
            Ok(RetransmitConfig::hardened())
        );
        let err = "sometimes".parse::<RetransmitConfig>().unwrap_err();
        assert!(err.to_string().contains("hardened"), "{err}");
    }

    #[test]
    fn soft_state_is_hard_by_default() {
        // The faithful figures assume routes and sessions never time out;
        // finite lifetimes are an explicit robustness opt-in.
        let c = ProtocolConfig::default();
        assert_eq!(c.host_route_lifetime, SimDuration::MAX);
        assert_eq!(c.dead_peer_timeout, SimDuration::MAX);
        // Overload control is an opt-in too.
        assert!(!c.pressure.engaged());
        assert_eq!(c.pressure.byte_budget, 0);
        assert_eq!(c.pressure.watchdog_deadline, SimDuration::MAX);
    }

    #[test]
    fn watermarks_scale_with_the_byte_budget() {
        let p = PressureConfig {
            byte_budget: 10_000,
            high_watermark_pct: 90,
            low_watermark_pct: 70,
            ..PressureConfig::default()
        };
        assert_eq!(p.high_bytes(), 9_000);
        assert_eq!(p.low_bytes(), 7_000);
        assert!(p.engaged());
        // Percentages are clamped and odd budgets stay exact-ish without
        // overflowing.
        let odd = PressureConfig {
            byte_budget: 333,
            high_watermark_pct: 200,
            low_watermark_pct: 100,
            ..PressureConfig::default()
        };
        assert_eq!(odd.high_bytes(), odd.low_bytes());
        assert_eq!(odd.high_bytes(), 333);
        let huge = PressureConfig {
            byte_budget: usize::MAX,
            high_watermark_pct: 90,
            low_watermark_pct: 70,
            ..PressureConfig::default()
        };
        assert!(huge.high_bytes() > huge.low_bytes());
    }

    #[test]
    fn default_config_matches_thesis_parameters() {
        let c = ProtocolConfig::default();
        assert_eq!(c.ra_interval, SimDuration::from_secs(1));
        assert!(c.buffer_request > 0);
        assert!(!c.auth_required);
        let p = ProtocolConfig::with_scheme(Scheme::NarOnly);
        assert_eq!(p.scheme, Scheme::NarOnly);
        assert_eq!(ProtocolConfig::proposed().scheme, Scheme::PROPOSED);
    }
}
