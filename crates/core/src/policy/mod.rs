//! The buffer-policy layer: *what* to do with a packet, never *how*.
//!
//! This is the bottom layer of the refactored access-router stack
//! (policy ← datapath ← signaling). A policy is a pure decision table
//! behind the [`BufferPolicy`] trait: given a packet's class and the
//! negotiated buffer availability, it answers
//!
//! * [`BufferPolicy::admit`] — park, forward, tunnel or drop;
//! * [`BufferPolicy::overflow`] — what to do when the pool rejects a
//!   packet the policy wanted parked;
//! * [`BufferPolicy::on_grant`] — how a host's buffer request is split
//!   between the previous and the new access router;
//! * [`BufferPolicy::on_flush`] — in which order a parked session drains.
//!
//! Four schemes implement the trait today — [`NarFifo`] (original
//! FMIPv6), [`KrishnamurthiSmooth`] (smooth-handover draft),
//! [`EnhancedDualClass`] (the thesis' Table 3.3 matrix, with and without
//! classification) and [`SafetyNetBicast`] (vertical-handover bicast with
//! host-side duplicate suppression) — plus the no-op [`NoBufferPolicy`]
//! baseline. The
//! datapath selects one via [`PolicyEngine::for_scheme`], an enum whose
//! match dispatch compiles away (no vtable on the per-packet hot path).
//!
//! Adding a scheme is one file: implement [`BufferPolicy`], add a
//! [`PolicyEngine`] variant, and map it from a [`Scheme`]. Nothing here
//! may import signaling, datapath or simulator types — the layering test
//! (`tests/layering.rs`) keeps this module free of actor concerns, so a
//! policy stays a table you can read against the thesis.
//!
//! The legacy pure functions ([`par_action`], [`nar_action`],
//! [`nar_overflow`] in [`matrix`]) remain the normative transcription of
//! Table 3.3; the golden-matrix test pins the trait implementations
//! against them, exhaustively.

#![deny(missing_docs)]

pub mod matrix;

mod enhanced;
mod krishnamurthi;
mod nar_fifo;
mod no_buffer;
mod safetynet;

pub use enhanced::EnhancedDualClass;
pub use krishnamurthi::KrishnamurthiSmooth;
pub use matrix::{
    nar_action, nar_overflow, par_action, AvailabilityCase, NarAction, NarOverflow, ParAction,
};
pub use nar_fifo::NarFifo;
pub use no_buffer::NoBufferPolicy;
pub use safetynet::SafetyNetBicast;

use fh_net::ServiceClass;

use crate::scheme::Scheme;

/// Session-level admission rule for `BufferPool::try_buffer` — the
/// vocabulary a policy uses to bound how much a session may park.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionLimit {
    /// Admit while the session holds fewer packets than its grant.
    Grant,
    /// Admit while the pool's free space exceeds the threshold `a`
    /// (best-effort spill-over).
    Threshold(u32),
    /// Admit while the pool has any free space (class-blind schemes).
    PoolOnly,
}

/// Which end of the handover the decision is made at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The previous access router, redirecting departing traffic.
    Par,
    /// The new access router, receiving tunneled traffic.
    Nar,
}

/// Everything a policy may consult when admitting one packet.
///
/// Deliberately plain data: the datapath snapshots these from live
/// session state so policies never touch signaling or pool internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmitCtx {
    /// Which routers granted buffer space (Table 3.2).
    pub case: AvailabilityCase,
    /// The packet's effective service class (Table 3.1).
    pub class: ServiceClass,
    /// `true` once the peer NAR reported BufferFull for this session.
    pub nar_full: bool,
    /// `true` if this router holds a non-zero grant for the session.
    pub par_granted: bool,
    /// The administrator constant `a` (best-effort spill threshold).
    pub threshold_a: u32,
}

/// A policy's verdict for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Park the packet in the local pool under the given admission limit.
    Park(AdmissionLimit),
    /// Forward toward the host immediately (radio delivery attempt —
    /// lost while the host is detached).
    Forward,
    /// Tunnel to the peer router. `park_at_peer` records what the peer
    /// is *expected* to do (Table 3.3's tunnel-and-buffer vs plain
    /// tunnel); the peer still runs its own [`BufferPolicy::admit`].
    Tunnel {
        /// `true` if the peer is expected to buffer the packet.
        park_at_peer: bool,
    },
    /// Bicast (SafetyNet): attempt delivery toward the host on the local
    /// link *and* tunnel a duplicate to the peer router, which is
    /// expected to park it. The duplicate must be accounted as
    /// `duplicated` in the conservation ledger — never as fresh `sent` —
    /// and the host suppresses whichever copy arrives second.
    Multicast,
    /// Drop by policy (Table 3.3 case 4, best effort).
    Drop,
}

/// What to do when the pool rejects a packet the policy wanted parked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overflow {
    /// Evict the oldest buffered real-time packet and admit the new one
    /// (fresh media samples outrank stale ones — case 1.a / 2.a).
    DropFrontRealtime,
    /// Tell the peer router to take over (BufferFull) and bounce the
    /// overflowing packet back through the tunnel — case 1.b.
    NotifyPeer,
    /// Tunnel the overflowing packet to the peer unbuffered instead of
    /// dropping it (the PAR-side reaction for high-priority traffic).
    SpillPeer,
    /// Plain tail drop.
    TailDrop,
}

/// How a host's buffer request is split across the two routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestSplit {
    /// Slots requested from the previous access router's pool.
    pub par: u32,
    /// Slots requested from the new access router (rides HI+BR).
    pub nar: u32,
}

/// One rung of the overload shed ladder — what the router sacrifices
/// next once parked bytes cross the high watermark.
///
/// The ladder is *policy-declared* ([`BufferPolicy::shed_ladder`]) so
/// overload degrades in a chosen order, not an accidental one, and the
/// `shed_order_respected` expectation can audit it after the fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedRung {
    /// Shed the oldest parked best-effort packet anywhere in the pool.
    BestEffort,
    /// Drop-front the oldest parked real-time packet (fresh media samples
    /// outrank stale ones, the same logic as `Overflow::DropFrontRealtime`).
    DropFrontRealtime,
    /// Force an early reactive flush of the oldest buffering session —
    /// its packets are delivered down the reactive path rather than shed.
    ForceFlushOldest,
}

impl ShedRung {
    /// Every rung, in the canonical ladder order.
    pub const ALL: [ShedRung; 3] = [
        ShedRung::BestEffort,
        ShedRung::DropFrontRealtime,
        ShedRung::ForceFlushOldest,
    ];

    /// The label traces and metrics use for this rung.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ShedRung::BestEffort => "best-effort",
            ShedRung::DropFrontRealtime => "drop-front",
            ShedRung::ForceFlushOldest => "force-flush",
        }
    }
}

/// In which order a parked session drains when its flush is released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushOrder {
    /// First-in first-out — arrival order, what every current scheme
    /// uses. The hook exists so a future policy (e.g. SafetyNet-style
    /// selective delivery) can reorder or filter without touching the
    /// datapath.
    Fifo,
}

/// One buffering scheme's complete decision surface.
///
/// Implementations must be pure: same inputs, same verdicts. The
/// datapath is the only caller on the hot path and executes the returned
/// actions; policies never send, park or drop anything themselves.
pub trait BufferPolicy {
    /// Decide what happens to one packet at `role`.
    fn admit(&self, role: Role, ctx: &AdmitCtx) -> Admit;

    /// The reaction when the pool rejects a packet this policy parked.
    fn overflow(&self, role: Role, class: ServiceClass) -> Overflow;

    /// Split a host's buffer request between the two routers.
    fn on_grant(&self, requested: u32) -> RequestSplit;

    /// The drain order for a released session's parked packets.
    fn on_flush(&self) -> FlushOrder {
        FlushOrder::Fifo
    }

    /// The declared shed ladder: under sustained byte pressure the
    /// datapath tries these rungs strictly in order, moving to the next
    /// only when the current one has nothing left to give.
    fn shed_ladder(&self) -> [ShedRung; 3] {
        ShedRung::ALL
    }
}

/// The PAR-side overflow reaction shared by every scheme: a rejected
/// high-priority packet is spilled to the peer unbuffered (the drop-rate
/// promise matters most), anything else tail-drops.
pub(crate) fn par_spill(class: ServiceClass) -> Overflow {
    match class.effective() {
        ServiceClass::HighPriority => Overflow::SpillPeer,
        _ => Overflow::TailDrop,
    }
}

/// A policy's verdicts for every service class under one `(role,
/// session)` snapshot — the unit of work for batch classification.
///
/// Everything in an [`AdmitCtx`] except the packet class is session
/// state, constant across one flush: the availability case, the peer's
/// BufferFull flag, the local grant, and the spill threshold. So instead
/// of dispatching the [`PolicyEngine`] once per packet, a flush asks the
/// engine once per *batch* ([`PolicyEngine::classify_batch`]) and then
/// routes each packet through this table with a branch-free index on its
/// effective class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassVerdicts {
    admit: [Admit; 3],
    overflow: [Overflow; 3],
}

impl ClassVerdicts {
    /// The three effective classes, in index order (`Unspecified`
    /// collapses onto `BestEffort` before lookup).
    const CLASSES: [ServiceClass; 3] = [
        ServiceClass::RealTime,
        ServiceClass::HighPriority,
        ServiceClass::BestEffort,
    ];

    #[inline]
    fn index(class: ServiceClass) -> usize {
        match class.effective() {
            ServiceClass::RealTime => 0,
            ServiceClass::HighPriority => 1,
            _ => 2,
        }
    }

    /// The admission verdict for a packet of `class`.
    #[must_use]
    #[inline]
    pub fn admit(&self, class: ServiceClass) -> Admit {
        self.admit[Self::index(class)]
    }

    /// The overflow reaction for a packet of `class`.
    #[must_use]
    #[inline]
    pub fn overflow(&self, class: ServiceClass) -> Overflow {
        self.overflow[Self::index(class)]
    }
}

/// Evaluates one concrete policy for every class. Generic so each
/// [`PolicyEngine`] arm monomorphizes with the policy's `admit` /
/// `overflow` inlined — one outer dispatch, straight-line table fill.
fn classify_with<P: BufferPolicy>(policy: &P, role: Role, ctx: &AdmitCtx) -> ClassVerdicts {
    let mut admit = [Admit::Drop; 3];
    let mut overflow = [Overflow::TailDrop; 3];
    for (i, class) in ClassVerdicts::CLASSES.into_iter().enumerate() {
        admit[i] = policy.admit(role, &AdmitCtx { class, ..*ctx });
        overflow[i] = policy.overflow(role, class);
    }
    ClassVerdicts { admit, overflow }
}

/// Zero-cost dispatcher over the built-in policies.
///
/// An enum rather than `dyn BufferPolicy` so the per-packet hot path is
/// a jump table the optimizer can inline through (the `datapath` bench
/// pins the enum-vs-`dyn` gap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyEngine {
    /// Fast handover without buffering (`FH`).
    NoBuffer(NoBufferPolicy),
    /// Original FMIPv6 NAR-only buffering (`NAR`).
    NarFifo(NarFifo),
    /// Smooth-handover PAR-only buffering (`PAR`).
    Krishnamurthi(KrishnamurthiSmooth),
    /// The thesis' dual-router scheme (`DUAL` / `DUAL+class`).
    Enhanced(EnhancedDualClass),
    /// SafetyNet bicast for vertical handovers (`SAFETY`).
    SafetyNet(SafetyNetBicast),
}

impl PolicyEngine {
    /// The policy implementing a [`Scheme`].
    #[must_use]
    pub fn for_scheme(scheme: Scheme) -> Self {
        match scheme {
            Scheme::NoBuffer => PolicyEngine::NoBuffer(NoBufferPolicy),
            Scheme::NarOnly => PolicyEngine::NarFifo(NarFifo),
            Scheme::ParOnly => PolicyEngine::Krishnamurthi(KrishnamurthiSmooth),
            Scheme::Dual { classify } => PolicyEngine::Enhanced(EnhancedDualClass { classify }),
            Scheme::SafetyNet => PolicyEngine::SafetyNet(SafetyNetBicast),
        }
    }

    /// Precomputes the verdicts for every class in one dispatch.
    ///
    /// `ctx.class` is ignored — the returned [`ClassVerdicts`] covers all
    /// classes; the other `AdmitCtx` fields must hold for the whole
    /// batch. Equivalent, class by class, to calling
    /// [`BufferPolicy::admit`] / [`BufferPolicy::overflow`] per packet
    /// (pinned by the `classify_batch_matches_per_packet_dispatch` test).
    #[must_use]
    #[inline]
    pub fn classify_batch(&self, role: Role, ctx: &AdmitCtx) -> ClassVerdicts {
        match self {
            PolicyEngine::NoBuffer(p) => classify_with(p, role, ctx),
            PolicyEngine::NarFifo(p) => classify_with(p, role, ctx),
            PolicyEngine::Krishnamurthi(p) => classify_with(p, role, ctx),
            PolicyEngine::Enhanced(p) => classify_with(p, role, ctx),
            PolicyEngine::SafetyNet(p) => classify_with(p, role, ctx),
        }
    }
}

impl BufferPolicy for PolicyEngine {
    #[inline]
    fn admit(&self, role: Role, ctx: &AdmitCtx) -> Admit {
        match self {
            PolicyEngine::NoBuffer(p) => p.admit(role, ctx),
            PolicyEngine::NarFifo(p) => p.admit(role, ctx),
            PolicyEngine::Krishnamurthi(p) => p.admit(role, ctx),
            PolicyEngine::Enhanced(p) => p.admit(role, ctx),
            PolicyEngine::SafetyNet(p) => p.admit(role, ctx),
        }
    }

    #[inline]
    fn overflow(&self, role: Role, class: ServiceClass) -> Overflow {
        match self {
            PolicyEngine::NoBuffer(p) => p.overflow(role, class),
            PolicyEngine::NarFifo(p) => p.overflow(role, class),
            PolicyEngine::Krishnamurthi(p) => p.overflow(role, class),
            PolicyEngine::Enhanced(p) => p.overflow(role, class),
            PolicyEngine::SafetyNet(p) => p.overflow(role, class),
        }
    }

    #[inline]
    fn on_grant(&self, requested: u32) -> RequestSplit {
        match self {
            PolicyEngine::NoBuffer(p) => p.on_grant(requested),
            PolicyEngine::NarFifo(p) => p.on_grant(requested),
            PolicyEngine::Krishnamurthi(p) => p.on_grant(requested),
            PolicyEngine::Enhanced(p) => p.on_grant(requested),
            PolicyEngine::SafetyNet(p) => p.on_grant(requested),
        }
    }

    #[inline]
    fn on_flush(&self) -> FlushOrder {
        match self {
            PolicyEngine::NoBuffer(p) => p.on_flush(),
            PolicyEngine::NarFifo(p) => p.on_flush(),
            PolicyEngine::Krishnamurthi(p) => p.on_flush(),
            PolicyEngine::Enhanced(p) => p.on_flush(),
            PolicyEngine::SafetyNet(p) => p.on_flush(),
        }
    }

    #[inline]
    fn shed_ladder(&self) -> [ShedRung; 3] {
        match self {
            PolicyEngine::NoBuffer(p) => p.shed_ladder(),
            PolicyEngine::NarFifo(p) => p.shed_ladder(),
            PolicyEngine::Krishnamurthi(p) => p.shed_ladder(),
            PolicyEngine::Enhanced(p) => p.shed_ladder(),
            PolicyEngine::SafetyNet(p) => p.shed_ladder(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Batch classification must be a pure cache of the per-packet
    /// dispatch: for every scheme, role, availability case, session-flag
    /// combination and class (including `Unspecified`), the table lookup
    /// equals a fresh `admit` / `overflow` call.
    #[test]
    fn classify_batch_matches_per_packet_dispatch() {
        let engines = Scheme::ALL.map(PolicyEngine::for_scheme);
        let cases = [
            AvailabilityCase::BothAvailable,
            AvailabilityCase::NarOnly,
            AvailabilityCase::ParOnly,
            AvailabilityCase::NoneAvailable,
        ];
        // Every scheme declares a complete ladder: each rung exactly once.
        for engine in engines {
            let ladder = engine.shed_ladder();
            for rung in ShedRung::ALL {
                assert_eq!(
                    ladder.iter().filter(|&&r| r == rung).count(),
                    1,
                    "{engine:?} ladder {ladder:?} misdeclares {rung:?}"
                );
            }
        }
        for engine in engines {
            for role in [Role::Par, Role::Nar] {
                for case in cases {
                    for nar_full in [false, true] {
                        for par_granted in [false, true] {
                            for threshold_a in [0, 4] {
                                let base = AdmitCtx {
                                    case,
                                    class: ServiceClass::Unspecified,
                                    nar_full,
                                    par_granted,
                                    threshold_a,
                                };
                                let verdicts = engine.classify_batch(role, &base);
                                for class in ServiceClass::ALL {
                                    let ctx = AdmitCtx { class, ..base };
                                    assert_eq!(
                                        verdicts.admit(class),
                                        engine.admit(role, &ctx),
                                        "admit mismatch: {engine:?} {role:?} {ctx:?}"
                                    );
                                    assert_eq!(
                                        verdicts.overflow(class),
                                        engine.overflow(role, class),
                                        "overflow mismatch: {engine:?} {role:?} {class:?}"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}
