//! SafetyNet-style bicast buffering for vertical handovers.
//!
//! Petander et al.'s SafetyNet observes that across a make-before-break
//! vertical handover the old link often keeps working while the new one
//! comes up, so instead of *redirecting* traffic the previous router
//! *duplicates* it: one copy is delivered on the old link as if nothing
//! happened, one copy is tunneled to the new router's buffer as insurance.
//! Whichever copy reaches the host first wins; the loser is suppressed at
//! the host. Loss across the handover drops to zero even when signaling
//! is slow, at the price of duplicate airtime — which the conservation
//! ledger accounts explicitly as `duplicated`, never as fresh `sent`.

use fh_net::ServiceClass;

use super::{
    par_spill, AdmissionLimit, Admit, AdmitCtx, BufferPolicy, Overflow, RequestSplit, Role,
    ShedRung,
};

/// SafetyNet bicast (`SAFETY`): the PAR multicasts every redirected
/// packet to the old link *and* the NAR's buffer; the NAR parks the
/// insurance copies until the host attaches. Class-blind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SafetyNetBicast;

impl BufferPolicy for SafetyNetBicast {
    fn admit(&self, role: Role, ctx: &AdmitCtx) -> Admit {
        match role {
            // Bicast while the NAR can still park the insurance copy;
            // once the peer reports BufferFull (or never granted space)
            // the duplicate would only burn tunnel bandwidth to be
            // tail-dropped, so degrade to a plain unbuffered tunnel —
            // the same fallback every other scheme uses.
            Role::Par => {
                if ctx.case.nar() && !ctx.nar_full {
                    Admit::Multicast
                } else {
                    Admit::Tunnel {
                        park_at_peer: false,
                    }
                }
            }
            Role::Nar => {
                if ctx.case.nar() {
                    Admit::Park(AdmissionLimit::Grant)
                } else {
                    Admit::Forward
                }
            }
        }
    }

    fn overflow(&self, role: Role, class: ServiceClass) -> Overflow {
        match role {
            Role::Par => par_spill(class),
            // An overflowing packet here is the *insurance* copy — the
            // original is still racing down the old link, so notifying
            // the peer or spilling back would just duplicate again.
            Role::Nar => Overflow::TailDrop,
        }
    }

    fn on_grant(&self, requested: u32) -> RequestSplit {
        // All parking happens at the NAR; the PAR only bicasts.
        RequestSplit {
            par: 0,
            nar: requested,
        }
    }

    fn shed_ladder(&self) -> [ShedRung; 3] {
        // Insurance copies are the cheapest thing in the pool to lose:
        // shed best effort first, then stale real-time, and only then
        // force a flush.
        [
            ShedRung::BestEffort,
            ShedRung::DropFrontRealtime,
            ShedRung::ForceFlushOldest,
        ]
    }
}
