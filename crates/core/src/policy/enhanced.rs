//! The thesis' enhanced dual-router policy — Table 3.3 as a
//! [`BufferPolicy`].

use fh_net::ServiceClass;

use super::{
    par_spill, AdmissionLimit, Admit, AdmitCtx, AvailabilityCase, BufferPolicy, Overflow,
    RequestSplit, Role, ShedRung,
};

/// The proposed scheme: both routers' buffers cooperate, split half and
/// half, with the per-class operation matrix of Table 3.3 when
/// `classify` is on (`DUAL+class`) and class-blind fill-NAR-spill-PAR
/// behavior when it is off (`DUAL`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnhancedDualClass {
    /// `true` enables the class-aware matrix (Table 3.3).
    pub classify: bool,
}

impl EnhancedDualClass {
    /// The local-park limit for a class-blind dual session: the grant
    /// when one exists, otherwise whatever the pool will take.
    fn blind_park(ctx: &AdmitCtx) -> Admit {
        if ctx.par_granted {
            Admit::Park(AdmissionLimit::Grant)
        } else {
            Admit::Park(AdmissionLimit::PoolOnly)
        }
    }
}

impl BufferPolicy for EnhancedDualClass {
    fn admit(&self, role: Role, ctx: &AdmitCtx) -> Admit {
        match role {
            Role::Par if !self.classify => match ctx.case {
                AvailabilityCase::BothAvailable => {
                    if ctx.nar_full {
                        Self::blind_park(ctx)
                    } else {
                        Admit::Tunnel { park_at_peer: true }
                    }
                }
                AvailabilityCase::NarOnly => Admit::Tunnel {
                    park_at_peer: !ctx.nar_full,
                },
                AvailabilityCase::ParOnly => Self::blind_park(ctx),
                AvailabilityCase::NoneAvailable => Admit::Tunnel {
                    park_at_peer: false,
                },
            },
            Role::Par => match (ctx.case, ctx.class.effective()) {
                // Case 1: NAR yes, PAR yes.
                (AvailabilityCase::BothAvailable, ServiceClass::RealTime) => {
                    Admit::Tunnel { park_at_peer: true }
                }
                (AvailabilityCase::BothAvailable, ServiceClass::HighPriority) => {
                    if ctx.nar_full {
                        Admit::Park(AdmissionLimit::Grant)
                    } else {
                        Admit::Tunnel { park_at_peer: true }
                    }
                }
                (AvailabilityCase::BothAvailable, _) => {
                    Admit::Park(AdmissionLimit::Threshold(ctx.threshold_a))
                }
                // Case 2: NAR yes, PAR no.
                (
                    AvailabilityCase::NarOnly,
                    ServiceClass::RealTime | ServiceClass::HighPriority,
                ) => Admit::Tunnel { park_at_peer: true },
                (AvailabilityCase::NarOnly, _) => Admit::Tunnel {
                    park_at_peer: false,
                },
                // Case 3: NAR no, PAR yes.
                (AvailabilityCase::ParOnly, ServiceClass::RealTime) => Admit::Tunnel {
                    park_at_peer: false,
                },
                (AvailabilityCase::ParOnly, ServiceClass::HighPriority) => {
                    Admit::Park(AdmissionLimit::Grant)
                }
                (AvailabilityCase::ParOnly, _) => {
                    Admit::Park(AdmissionLimit::Threshold(ctx.threshold_a))
                }
                // Case 4: NAR no, PAR no.
                (
                    AvailabilityCase::NoneAvailable,
                    ServiceClass::RealTime | ServiceClass::HighPriority,
                ) => Admit::Tunnel {
                    park_at_peer: false,
                },
                (AvailabilityCase::NoneAvailable, _) => Admit::Drop,
            },
            Role::Nar => {
                if !ctx.case.nar() {
                    return Admit::Forward;
                }
                if !self.classify {
                    return Admit::Park(AdmissionLimit::Grant);
                }
                match ctx.class.effective() {
                    ServiceClass::RealTime | ServiceClass::HighPriority => {
                        Admit::Park(AdmissionLimit::Grant)
                    }
                    _ => Admit::Forward,
                }
            }
        }
    }

    fn overflow(&self, role: Role, class: ServiceClass) -> Overflow {
        match role {
            Role::Par => par_spill(class),
            Role::Nar if !self.classify => Overflow::NotifyPeer,
            Role::Nar => match class.effective() {
                ServiceClass::RealTime => Overflow::DropFrontRealtime,
                ServiceClass::HighPriority => Overflow::NotifyPeer,
                _ => Overflow::TailDrop,
            },
        }
    }

    fn on_grant(&self, requested: u32) -> RequestSplit {
        // §3.1.2 "maximize buffer utilization": half per router.
        RequestSplit {
            par: requested.div_ceil(2),
            nar: requested / 2,
        }
    }

    fn shed_ladder(&self) -> [ShedRung; 3] {
        // Mirrors the Table 3.3 priorities: best effort is sacrificial,
        // real time tolerates drop-front, flushes are the last resort.
        [
            ShedRung::BestEffort,
            ShedRung::DropFrontRealtime,
            ShedRung::ForceFlushOldest,
        ]
    }
}
