//! The smooth-handover draft baseline — buffer everything at the
//! previous access router.

use fh_net::ServiceClass;

use super::{
    par_spill, AdmissionLimit, Admit, AdmitCtx, BufferPolicy, Overflow, RequestSplit, Role,
    ShedRung,
};

/// PAR-only buffering (Krishnamurthi et al.'s smooth-handover draft):
/// the previous router parks departing traffic in its own pool and the
/// new router delivers whatever reaches it immediately. Class-blind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KrishnamurthiSmooth;

impl BufferPolicy for KrishnamurthiSmooth {
    fn admit(&self, role: Role, ctx: &AdmitCtx) -> Admit {
        match role {
            Role::Par => {
                if ctx.case.par() {
                    if ctx.par_granted {
                        Admit::Park(AdmissionLimit::Grant)
                    } else {
                        Admit::Park(AdmissionLimit::PoolOnly)
                    }
                } else {
                    Admit::Tunnel {
                        park_at_peer: false,
                    }
                }
            }
            Role::Nar => Admit::Forward,
        }
    }

    fn overflow(&self, role: Role, class: ServiceClass) -> Overflow {
        match role {
            Role::Par => par_spill(class),
            Role::Nar => Overflow::TailDrop,
        }
    }

    fn on_grant(&self, requested: u32) -> RequestSplit {
        RequestSplit {
            par: requested,
            nar: 0,
        }
    }

    fn shed_ladder(&self) -> [ShedRung; 3] {
        [
            ShedRung::BestEffort,
            ShedRung::DropFrontRealtime,
            ShedRung::ForceFlushOldest,
        ]
    }
}
