//! The no-buffering baseline — plain fast handover.

use fh_net::ServiceClass;

use super::{par_spill, Admit, AdmitCtx, BufferPolicy, Overflow, RequestSplit, Role, ShedRung};

/// Fast handover without any buffering (`FH`): every redirected packet
/// is tunneled straight through and delivery is attempted immediately —
/// whatever arrives during the black-out is lost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoBufferPolicy;

impl BufferPolicy for NoBufferPolicy {
    fn admit(&self, role: Role, _ctx: &AdmitCtx) -> Admit {
        match role {
            Role::Par => Admit::Tunnel {
                park_at_peer: false,
            },
            Role::Nar => Admit::Forward,
        }
    }

    fn overflow(&self, role: Role, class: ServiceClass) -> Overflow {
        match role {
            Role::Par => par_spill(class),
            Role::Nar => Overflow::TailDrop,
        }
    }

    fn on_grant(&self, _requested: u32) -> RequestSplit {
        RequestSplit { par: 0, nar: 0 }
    }

    fn shed_ladder(&self) -> [ShedRung; 3] {
        // Nothing is ever parked, so the ladder never runs; declared
        // anyway so the audit can treat every scheme uniformly.
        [
            ShedRung::BestEffort,
            ShedRung::DropFrontRealtime,
            ShedRung::ForceFlushOldest,
        ]
    }
}
