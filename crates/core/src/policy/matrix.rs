//! The buffering operation matrix — Tables 3.2 and 3.3 of the thesis.
//!
//! During packet redirection the PAR decides, per packet, whether to tunnel
//! it to the NAR (to be buffered there or delivered on arrival), buffer it
//! locally, or drop it. The decision depends on:
//!
//! * the **availability case** (Table 3.2) — which of the two routers
//!   granted buffer space in the HI+BR / HAck+BA negotiation;
//! * the packet's **effective class** (Table 3.1);
//! * whether the NAR has reported **BufferFull** (case 1.b spill-back);
//! * the active [`Scheme`] (the baselines are class-blind).
//!
//! The functions here are pure so the matrix can be tested exhaustively and
//! property-checked; the access-router agent merely executes the returned
//! actions.

use fh_net::ServiceClass;
use serde::{Deserialize, Serialize};

use crate::scheme::Scheme;

/// Which routers have buffer space for this handover (Table 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AvailabilityCase {
    /// Case 1 — both the NAR and the PAR granted space.
    BothAvailable,
    /// Case 2 — only the NAR granted space.
    NarOnly,
    /// Case 3 — only the PAR granted space.
    ParOnly,
    /// Case 4 — neither router has space.
    NoneAvailable,
}

impl AvailabilityCase {
    /// Derives the case from the negotiation outcome.
    #[must_use]
    pub fn from_grants(nar_granted: bool, par_granted: bool) -> Self {
        match (nar_granted, par_granted) {
            (true, true) => AvailabilityCase::BothAvailable,
            (true, false) => AvailabilityCase::NarOnly,
            (false, true) => AvailabilityCase::ParOnly,
            (false, false) => AvailabilityCase::NoneAvailable,
        }
    }

    /// `true` if the NAR granted space.
    #[must_use]
    pub fn nar(self) -> bool {
        matches!(
            self,
            AvailabilityCase::BothAvailable | AvailabilityCase::NarOnly
        )
    }

    /// `true` if the PAR granted space.
    #[must_use]
    pub fn par(self) -> bool {
        matches!(
            self,
            AvailabilityCase::BothAvailable | AvailabilityCase::ParOnly
        )
    }
}

/// What the PAR does with a packet arriving for a redirecting mobile host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParAction {
    /// Tunnel to the NAR; the NAR will buffer it.
    TunnelBuffer,
    /// Buffer in the PAR's own pool (best effort additionally subject to
    /// the free-space threshold `a`).
    BufferLocal,
    /// Tunnel to the NAR without buffering anywhere; the NAR attempts
    /// immediate radio delivery (lost while the host is detached).
    TunnelUnbuffered,
    /// Drop at the PAR (Table 3.3 case 4, best effort).
    Drop,
    /// SafetyNet bicast (not a Table 3.3 row): deliver on the old link
    /// *and* tunnel an insurance copy to the NAR's buffer; the duplicate
    /// is ledgered as `duplicated` and the host suppresses the loser.
    Bicast,
}

/// What the NAR does with a tunneled packet while the host is detached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NarAction {
    /// Queue in the NAR's pool.
    Buffer,
    /// Attempt radio delivery immediately (lost during the black-out).
    Deliver,
}

/// How the NAR reacts when its buffer cannot admit a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NarOverflow {
    /// Real time, Table 3.3 case 1.a / 2.a: drop the **oldest buffered
    /// real-time packet** and admit the new one (fresh samples are worth
    /// more than stale ones for media).
    DropOldestRealtime,
    /// High priority (and the class-blind proposed scheme), case 1.b:
    /// notify the PAR with a BufferFull message — it buffers the rest —
    /// and attempt delivery of the overflowing packet.
    NotifyPar,
    /// Plain tail drop (the NAR-only baseline has nobody to spill to).
    TailDrop,
}

/// The PAR-side row of Table 3.3.
///
/// `nar_full` is `true` once the NAR has reported BufferFull for this
/// session (case 1.b: "the PAR buffers the rest of the packets").
#[must_use]
pub fn par_action(
    scheme: Scheme,
    case: AvailabilityCase,
    class: ServiceClass,
    nar_full: bool,
) -> ParAction {
    match scheme {
        Scheme::NoBuffer => ParAction::TunnelUnbuffered,
        Scheme::NarOnly => {
            if case.nar() && !nar_full {
                ParAction::TunnelBuffer
            } else {
                ParAction::TunnelUnbuffered
            }
        }
        Scheme::ParOnly => {
            if case.par() {
                ParAction::BufferLocal
            } else {
                ParAction::TunnelUnbuffered
            }
        }
        Scheme::SafetyNet => {
            // Outside Table 3.3: class-blind bicast while the NAR can
            // park the insurance copy, plain tunnel once it cannot.
            if case.nar() && !nar_full {
                ParAction::Bicast
            } else {
                ParAction::TunnelUnbuffered
            }
        }
        Scheme::Dual { classify: false } => {
            // Class-blind dual buffering: fill the NAR, spill to the PAR.
            match case {
                AvailabilityCase::BothAvailable => {
                    if nar_full {
                        ParAction::BufferLocal
                    } else {
                        ParAction::TunnelBuffer
                    }
                }
                AvailabilityCase::NarOnly => {
                    if nar_full {
                        ParAction::TunnelUnbuffered
                    } else {
                        ParAction::TunnelBuffer
                    }
                }
                AvailabilityCase::ParOnly => ParAction::BufferLocal,
                AvailabilityCase::NoneAvailable => ParAction::TunnelUnbuffered,
            }
        }
        Scheme::Dual { classify: true } => {
            match (case, class.effective()) {
                // Case 1: NAR yes, PAR yes.
                (AvailabilityCase::BothAvailable, ServiceClass::RealTime) => {
                    ParAction::TunnelBuffer
                }
                (AvailabilityCase::BothAvailable, ServiceClass::HighPriority) => {
                    if nar_full {
                        ParAction::BufferLocal
                    } else {
                        ParAction::TunnelBuffer
                    }
                }
                (AvailabilityCase::BothAvailable, _) => ParAction::BufferLocal,
                // Case 2: NAR yes, PAR no.
                (AvailabilityCase::NarOnly, ServiceClass::RealTime) => ParAction::TunnelBuffer,
                (AvailabilityCase::NarOnly, ServiceClass::HighPriority) => ParAction::TunnelBuffer,
                (AvailabilityCase::NarOnly, _) => ParAction::TunnelUnbuffered,
                // Case 3: NAR no, PAR yes.
                (AvailabilityCase::ParOnly, ServiceClass::RealTime) => ParAction::TunnelUnbuffered,
                (AvailabilityCase::ParOnly, _) => ParAction::BufferLocal,
                // Case 4: NAR no, PAR no.
                (AvailabilityCase::NoneAvailable, ServiceClass::RealTime)
                | (AvailabilityCase::NoneAvailable, ServiceClass::HighPriority) => {
                    ParAction::TunnelUnbuffered
                }
                (AvailabilityCase::NoneAvailable, _) => ParAction::Drop,
            }
        }
    }
}

/// The NAR-side decision for a tunneled packet during the black-out.
#[must_use]
pub fn nar_action(scheme: Scheme, case: AvailabilityCase, class: ServiceClass) -> NarAction {
    if !case.nar() {
        return NarAction::Deliver;
    }
    match scheme {
        Scheme::NoBuffer | Scheme::ParOnly => NarAction::Deliver,
        Scheme::NarOnly | Scheme::SafetyNet | Scheme::Dual { classify: false } => NarAction::Buffer,
        Scheme::Dual { classify: true } => match class.effective() {
            ServiceClass::RealTime | ServiceClass::HighPriority => NarAction::Buffer,
            _ => NarAction::Deliver,
        },
    }
}

/// The NAR's overflow reaction for a packet it decided to buffer.
#[must_use]
pub fn nar_overflow(scheme: Scheme, class: ServiceClass) -> NarOverflow {
    match scheme {
        Scheme::Dual { classify: true } => match class.effective() {
            ServiceClass::RealTime => NarOverflow::DropOldestRealtime,
            ServiceClass::HighPriority => NarOverflow::NotifyPar,
            _ => NarOverflow::TailDrop,
        },
        Scheme::Dual { classify: false } => NarOverflow::NotifyPar,
        _ => NarOverflow::TailDrop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AvailabilityCase::*;
    use ServiceClass::*;

    const PROPOSED: Scheme = Scheme::Dual { classify: true };

    #[test]
    fn table_3_2_grants() {
        assert_eq!(AvailabilityCase::from_grants(true, true), BothAvailable);
        assert_eq!(AvailabilityCase::from_grants(true, false), NarOnly);
        assert_eq!(AvailabilityCase::from_grants(false, true), ParOnly);
        assert_eq!(AvailabilityCase::from_grants(false, false), NoneAvailable);
        assert!(BothAvailable.nar() && BothAvailable.par());
        assert!(NarOnly.nar() && !NarOnly.par());
        assert!(!ParOnly.nar() && ParOnly.par());
        assert!(!NoneAvailable.nar() && !NoneAvailable.par());
    }

    /// The full Table 3.3, row by row.
    #[test]
    fn table_3_3_case_1() {
        assert_eq!(
            par_action(PROPOSED, BothAvailable, RealTime, false),
            ParAction::TunnelBuffer
        );
        assert_eq!(
            par_action(PROPOSED, BothAvailable, HighPriority, false),
            ParAction::TunnelBuffer
        );
        // 1.b spill-back after BufferFull.
        assert_eq!(
            par_action(PROPOSED, BothAvailable, HighPriority, true),
            ParAction::BufferLocal
        );
        assert_eq!(
            par_action(PROPOSED, BothAvailable, BestEffort, false),
            ParAction::BufferLocal
        );
    }

    #[test]
    fn table_3_3_case_2() {
        assert_eq!(
            par_action(PROPOSED, NarOnly, RealTime, false),
            ParAction::TunnelBuffer
        );
        assert_eq!(
            par_action(PROPOSED, NarOnly, HighPriority, false),
            ParAction::TunnelBuffer
        );
        assert_eq!(
            par_action(PROPOSED, NarOnly, BestEffort, false),
            ParAction::TunnelUnbuffered
        );
    }

    #[test]
    fn table_3_3_case_3() {
        assert_eq!(
            par_action(PROPOSED, ParOnly, RealTime, false),
            ParAction::TunnelUnbuffered
        );
        assert_eq!(
            par_action(PROPOSED, ParOnly, HighPriority, false),
            ParAction::BufferLocal
        );
        assert_eq!(
            par_action(PROPOSED, ParOnly, BestEffort, false),
            ParAction::BufferLocal
        );
    }

    #[test]
    fn table_3_3_case_4() {
        assert_eq!(
            par_action(PROPOSED, NoneAvailable, RealTime, false),
            ParAction::TunnelUnbuffered
        );
        assert_eq!(
            par_action(PROPOSED, NoneAvailable, HighPriority, false),
            ParAction::TunnelUnbuffered
        );
        assert_eq!(
            par_action(PROPOSED, NoneAvailable, BestEffort, false),
            ParAction::Drop
        );
    }

    #[test]
    fn unspecified_class_follows_best_effort_row() {
        for case in [BothAvailable, NarOnly, ParOnly, NoneAvailable] {
            assert_eq!(
                par_action(PROPOSED, case, Unspecified, false),
                par_action(PROPOSED, case, BestEffort, false)
            );
            assert_eq!(
                nar_action(PROPOSED, case, Unspecified),
                nar_action(PROPOSED, case, BestEffort)
            );
        }
    }

    #[test]
    fn nar_never_buffers_best_effort_when_classifying() {
        for case in [BothAvailable, NarOnly, ParOnly, NoneAvailable] {
            assert_eq!(nar_action(PROPOSED, case, BestEffort), NarAction::Deliver);
        }
    }

    #[test]
    fn nar_buffers_rt_and_hp_when_granted() {
        for class in [RealTime, HighPriority] {
            assert_eq!(
                nar_action(PROPOSED, BothAvailable, class),
                NarAction::Buffer
            );
            assert_eq!(nar_action(PROPOSED, NarOnly, class), NarAction::Buffer);
            assert_eq!(nar_action(PROPOSED, ParOnly, class), NarAction::Deliver);
            assert_eq!(
                nar_action(PROPOSED, NoneAvailable, class),
                NarAction::Deliver
            );
        }
    }

    #[test]
    fn high_priority_is_never_policy_dropped() {
        // The scheme's core QoS promise: no ParAction::Drop for HP (or RT)
        // under any case/scheme combination.
        for scheme in [
            Scheme::NoBuffer,
            Scheme::NarOnly,
            Scheme::ParOnly,
            Scheme::Dual { classify: false },
            PROPOSED,
        ] {
            for case in [BothAvailable, NarOnly, ParOnly, NoneAvailable] {
                for full in [false, true] {
                    for class in [RealTime, HighPriority] {
                        assert_ne!(
                            par_action(scheme, case, class, full),
                            ParAction::Drop,
                            "{scheme:?} {case:?} {class:?} full={full}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn baselines_are_class_blind() {
        for scheme in [
            Scheme::NoBuffer,
            Scheme::NarOnly,
            Scheme::ParOnly,
            Scheme::Dual { classify: false },
        ] {
            for case in [BothAvailable, NarOnly, ParOnly, NoneAvailable] {
                for full in [false, true] {
                    let reference = par_action(scheme, case, RealTime, full);
                    for class in [HighPriority, BestEffort, Unspecified] {
                        assert_eq!(
                            par_action(scheme, case, class, full),
                            reference,
                            "{scheme:?} must not classify"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn nar_only_baseline_matches_original_fmipv6() {
        // All traffic to the NAR buffer while granted, tail-drop overflow.
        assert_eq!(
            par_action(Scheme::NarOnly, NarOnly, BestEffort, false),
            ParAction::TunnelBuffer
        );
        assert_eq!(
            par_action(Scheme::NarOnly, NoneAvailable, BestEffort, false),
            ParAction::TunnelUnbuffered
        );
        assert_eq!(
            nar_overflow(Scheme::NarOnly, RealTime),
            NarOverflow::TailDrop
        );
        assert_eq!(
            nar_action(Scheme::NarOnly, BothAvailable, BestEffort),
            NarAction::Buffer
        );
    }

    #[test]
    fn par_only_baseline_never_uses_the_nar() {
        for case in [BothAvailable, NarOnly, ParOnly, NoneAvailable] {
            for class in [RealTime, HighPriority, BestEffort] {
                assert_eq!(nar_action(Scheme::ParOnly, case, class), NarAction::Deliver);
            }
        }
        assert_eq!(
            par_action(Scheme::ParOnly, ParOnly, BestEffort, false),
            ParAction::BufferLocal
        );
    }

    #[test]
    fn overflow_reactions_follow_class() {
        assert_eq!(
            nar_overflow(PROPOSED, RealTime),
            NarOverflow::DropOldestRealtime
        );
        assert_eq!(nar_overflow(PROPOSED, HighPriority), NarOverflow::NotifyPar);
        assert_eq!(nar_overflow(PROPOSED, BestEffort), NarOverflow::TailDrop);
        assert_eq!(nar_overflow(PROPOSED, Unspecified), NarOverflow::TailDrop);
        assert_eq!(
            nar_overflow(Scheme::Dual { classify: false }, BestEffort),
            NarOverflow::NotifyPar
        );
    }

    #[test]
    fn no_buffer_scheme_always_tunnels_unbuffered() {
        for case in [BothAvailable, NarOnly, ParOnly, NoneAvailable] {
            for class in [RealTime, HighPriority, BestEffort, Unspecified] {
                assert_eq!(
                    par_action(Scheme::NoBuffer, case, class, false),
                    ParAction::TunnelUnbuffered
                );
                assert_eq!(
                    nar_action(Scheme::NoBuffer, case, class),
                    NarAction::Deliver
                );
            }
        }
    }
}
