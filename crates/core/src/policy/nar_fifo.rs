//! The original FMIPv6 baseline — buffer everything at the new access
//! router, first-in first-out.

use fh_net::ServiceClass;

use super::{
    par_spill, AdmissionLimit, Admit, AdmitCtx, BufferPolicy, Overflow, RequestSplit, Role,
    ShedRung,
};

/// NAR-only FIFO buffering (RFC 4068's anticipated handover): the PAR
/// tunnels every packet; the NAR parks them until the host attaches and
/// tail-drops on overflow. Class-blind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NarFifo;

impl BufferPolicy for NarFifo {
    fn admit(&self, role: Role, ctx: &AdmitCtx) -> Admit {
        match role {
            Role::Par => Admit::Tunnel {
                park_at_peer: ctx.case.nar() && !ctx.nar_full,
            },
            Role::Nar => {
                if ctx.case.nar() {
                    Admit::Park(AdmissionLimit::Grant)
                } else {
                    Admit::Forward
                }
            }
        }
    }

    fn overflow(&self, role: Role, class: ServiceClass) -> Overflow {
        match role {
            Role::Par => par_spill(class),
            // Nobody to spill to: the single buffer tail-drops.
            Role::Nar => Overflow::TailDrop,
        }
    }

    fn on_grant(&self, requested: u32) -> RequestSplit {
        RequestSplit {
            par: 0,
            nar: requested,
        }
    }

    fn shed_ladder(&self) -> [ShedRung; 3] {
        // Class-blind, but the canonical order still applies: whatever is
        // cheapest to lose goes first.
        [
            ShedRung::BestEffort,
            ShedRung::DropFrontRealtime,
            ShedRung::ForceFlushOldest,
        ]
    }
}
