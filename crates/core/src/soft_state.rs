//! Soft-state lifecycle for the access router: session lifetimes,
//! host-route expiry, crash/restart fault handling and the dead-peer
//! sweep. Everything here reclaims state; the signaling layer creates it
//! and the datapath transmits through it.

use std::collections::HashMap;
use std::net::Ipv6Addr;

use fh_sim::{SimDuration, SimTime};

use fh_net::{ApId, DropReason, NetCtx, NetMsg, NodeId, TimerKind};
use fh_wireless::RadioWorld;

use crate::ar::ArAgent;
use crate::metrics::ArSoftState;
use crate::signaling::nar::NarEvent;
use crate::signaling::par::ParState;

impl ArAgent {
    /// Snapshot of the router's live soft state for the leak auditor.
    #[must_use]
    pub fn soft_state(&self) -> ArSoftState {
        ArSoftState {
            par_sessions: self.par_sessions.len(),
            nar_sessions: self.nar_sessions.len(),
            pool_sessions: self.dp.pool.live_sessions(),
            buffered_packets: self.dp.pool.used(),
            reserved_slots: self
                .dp
                .pool
                .capacity()
                .saturating_sub(self.dp.pool.unreserved()),
            pending_timers: self.timer_sessions.len(),
            paced_flushes: self.flushing.len(),
            pending_hi_rtx: self.hi_rtx.len(),
            route_timers: self.route_tokens.len(),
        }
    }

    pub(crate) fn fresh_token(&mut self, key: Ipv6Addr) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        self.timer_sessions.insert(token, key);
        token
    }

    /// Arms a session-lifetime expiry timer when `lifetime` is finite and
    /// nonzero and returns its token. Returns 0 (a token no timer ever
    /// fires with) otherwise, so infinite-lifetime sessions leave no
    /// residue in the timer table.
    pub(crate) fn arm_session_lifetime<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        key: Ipv6Addr,
        lifetime: SimDuration,
    ) -> u64 {
        if lifetime.is_zero() || lifetime == SimDuration::MAX {
            return 0;
        }
        let token = self.fresh_token(key);
        ctx.send_self(
            lifetime,
            NetMsg::Timer {
                kind: TimerKind::BufferLifetime,
                token,
            },
        );
        token
    }

    /// Arms the handover watchdog for a freshly created session and
    /// returns its token — a hard deadline by which the session must have
    /// flushed or expired. Returns 0 (a token no timer ever fires with)
    /// while the deadline is zero or infinite, so the default
    /// configuration leaves no residue in the timer table.
    pub(crate) fn arm_watchdog<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        key: Ipv6Addr,
    ) -> u64 {
        let deadline = self.config.pressure.watchdog_deadline;
        if deadline.is_zero() || deadline == SimDuration::MAX {
            return 0;
        }
        let token = self.fresh_token(key);
        ctx.send_self(
            deadline,
            NetMsg::Timer {
                kind: TimerKind::HandoverWatchdog,
                token,
            },
        );
        token
    }

    /// The handover watchdog fired: a session that neither flushed nor
    /// expired by its deadline is force-resolved down the existing
    /// predictive → reactive → failed ladder. A wedged PAR session takes
    /// the normal flush path (tunnel when the NAR is known, radio
    /// otherwise); a wedged NAR session releases over the air as if the
    /// host had attached — losses on the way are accounted like any
    /// other, so conservation still balances and no wedged state survives
    /// quiesce. Sessions that already resolved no-op (token check).
    pub(crate) fn on_watchdog<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, token: u64) {
        let Some(pcoa) = self.timer_sessions.remove(&token) else {
            return;
        };
        let par_wedged = self
            .par_sessions
            .get(&pcoa)
            .is_some_and(|s| s.watchdog_token == token && s.state != ParState::Released);
        if par_wedged {
            let node = self.dp.node;
            let pkts = self.dp.pool.session_len(pcoa);
            self.metrics.watchdog_fired += 1;
            fh_net::record_trace(ctx, || fh_net::TraceEvent::WatchdogFired { node, pkts });
            self.flush_par(ctx, pcoa);
            return;
        }
        let nar_wedged = self
            .nar_sessions
            .get(&pcoa)
            .is_some_and(|s| s.watchdog_token == token && s.buffering);
        if nar_wedged {
            let sess = self.nar_sessions.get_mut(&pcoa).expect("matched above");
            sess.on(NarEvent::HostAttached);
            let mh = sess.mh_l2;
            let node = self.dp.node;
            let pkts = self.dp.pool.session_len(pcoa);
            self.metrics.watchdog_fired += 1;
            fh_net::record_trace(ctx, || fh_net::TraceEvent::WatchdogFired { node, pkts });
            self.flush_nar(ctx, pcoa, mh);
        }
    }

    /// Scheduled crash: volatile state is lost. Queued packets are
    /// accounted as [`DropReason::Reclaimed`]; every session, route,
    /// reservation and pending-timer token is forgotten (outstanding
    /// keyed timers then no-op when they fire).
    pub(crate) fn crash<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>) {
        if !self.alive {
            return;
        }
        self.alive = false;
        self.metrics.crashes += 1;
        let node = self.dp.node;
        fh_net::record_trace(ctx, || fh_net::TraceEvent::FaultFired {
            node,
            what: "crash",
        });
        let wiped = self.dp.pool.wipe_all();
        let pkts = wiped.len();
        for pkt in wiped {
            fh_net::record_drop(ctx, pkt.flow, DropReason::Reclaimed);
        }
        if pkts > 0 {
            fh_net::record_trace(ctx, || fh_net::TraceEvent::StateReclaimed { node, pkts });
        }
        self.par_sessions.clear();
        self.nar_sessions.clear();
        self.dp.neighbors.clear();
        self.route_tokens.clear();
        self.peer_last_heard.clear();
        self.hi_rtx.clear();
        self.flushing.clear();
        self.timer_sessions.clear();
        if let Some(down) = self.node_fault.restart_after {
            ctx.send_self(
                down,
                NetMsg::Timer {
                    kind: TimerKind::NodeRestart,
                    token: 0,
                },
            );
        }
    }

    /// Restart after a crash: the router comes back with empty tables and
    /// re-enters the network through its own beacons, like a freshly
    /// booted node. Attached hosts re-register via the RA path.
    pub(crate) fn restart<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>) {
        if self.alive {
            return;
        }
        self.alive = true;
        let node = self.dp.node;
        fh_net::record_trace(ctx, || fh_net::TraceEvent::FaultFired {
            node,
            what: "restart",
        });
        let jitter = SimDuration::from_micros(ctx.rng.gen_range_u64(1000));
        ctx.send_self(
            jitter,
            NetMsg::Timer {
                kind: TimerKind::RouterAdvertisement,
                token: 0,
            },
        );
        self.arm_dead_peer_sweep(ctx);
    }

    /// Arms the periodic dead-peer sweep (only when the timeout is finite).
    pub(crate) fn arm_dead_peer_sweep<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>) {
        let timeout = self.config.dead_peer_timeout;
        if timeout.is_zero() || timeout == SimDuration::MAX {
            return;
        }
        ctx.send_self(
            timeout,
            NetMsg::Timer {
                kind: TimerKind::DeadPeerSweep,
                token: 0,
            },
        );
    }

    /// Reclaims every inter-router handover session whose peer has been
    /// silent longer than the dead-peer timeout, then re-arms the sweep.
    pub(crate) fn dead_peer_sweep<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>) {
        let timeout = self.config.dead_peer_timeout;
        if timeout.is_zero() || timeout == SimDuration::MAX {
            return;
        }
        let now = ctx.now();
        let silent = |heard: &HashMap<Ipv6Addr, SimTime>, peer: Ipv6Addr| {
            heard.get(&peer).copied().unwrap_or(SimTime::ZERO) + timeout <= now
        };
        let mut stale: Vec<Ipv6Addr> = self
            .par_sessions
            .iter()
            .filter(|(_, s)| {
                s.nar_addr
                    .is_some_and(|nar| silent(&self.peer_last_heard, nar))
            })
            .map(|(&k, _)| k)
            .collect();
        stale.sort();
        for pcoa in stale {
            self.par_sessions.remove(&pcoa);
            let expired = self.dp.pool.expire(pcoa);
            let pkts = expired.len();
            for pkt in expired {
                fh_net::record_drop(ctx, pkt.flow, DropReason::Reclaimed);
            }
            let node = self.dp.node;
            fh_net::record_trace(ctx, || fh_net::TraceEvent::StateReclaimed { node, pkts });
            self.metrics.dead_peer_reclaims += 1;
        }
        let mut stale: Vec<Ipv6Addr> = self
            .nar_sessions
            .iter()
            .filter(|(_, s)| silent(&self.peer_last_heard, s.par_addr))
            .map(|(&k, _)| k)
            .collect();
        stale.sort();
        for pcoa in stale {
            self.nar_sessions.remove(&pcoa);
            let expired = self.dp.pool.expire(pcoa);
            let pkts = expired.len();
            for pkt in expired {
                fh_net::record_drop(ctx, pkt.flow, DropReason::Reclaimed);
            }
            let node = self.dp.node;
            fh_net::record_trace(ctx, || fh_net::TraceEvent::StateReclaimed { node, pkts });
            self.metrics.dead_peer_reclaims += 1;
        }
        ctx.send_self(
            timeout,
            NetMsg::Timer {
                kind: TimerKind::DeadPeerSweep,
                token: 0,
            },
        );
    }

    /// Installs (or refreshes) a host route. While `host_route_lifetime`
    /// is finite the route is soft state: each install arms a fresh expiry
    /// token that supersedes the previous one, so only a route that stops
    /// being refreshed is reclaimed. With the default `MAX` lifetime this
    /// is a plain map insert — no token, no timer, no extra events.
    pub(crate) fn install_route<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        addr: Ipv6Addr,
        mh: NodeId,
    ) {
        self.dp.neighbors.insert(addr, mh);
        let lifetime = self.config.host_route_lifetime;
        if lifetime.is_zero() || lifetime == SimDuration::MAX {
            return;
        }
        let token = self.fresh_token(addr);
        let key = ctx.send_self_keyed(
            lifetime,
            NetMsg::Timer {
                kind: TimerKind::HostRouteExpiry,
                token,
            },
        );
        // A refresh supersedes the previous expiry outright: cancel it and
        // retire its token so superseded timers never pile up pending.
        if let Some((old_token, old_key)) = self.route_tokens.insert(addr, (token, key)) {
            let _ = ctx.cancel(old_key);
            self.timer_sessions.remove(&old_token);
        }
    }

    /// Drops a host route and its expiry timer, if armed.
    pub(crate) fn drop_route<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, addr: Ipv6Addr) {
        self.dp.neighbors.remove(&addr);
        if let Some((token, key)) = self.route_tokens.remove(&addr) {
            let _ = ctx.cancel(key);
            self.timer_sessions.remove(&token);
        }
    }

    /// A host-route expiry token fired: reclaim the route if the token is
    /// still the live one (a refresh supersedes all earlier timers).
    pub(crate) fn on_route_expiry<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, token: u64) {
        if let Some(addr) = self.timer_sessions.remove(&token) {
            if self.route_tokens.get(&addr).map(|&(t, _)| t) == Some(token) {
                self.route_tokens.remove(&addr);
                self.dp.neighbors.remove(&addr);
                self.metrics.routes_expired += 1;
                let node = self.dp.node;
                fh_net::record_trace(ctx, || fh_net::TraceEvent::StateExpired {
                    node,
                    what: "host-route",
                });
            }
        }
    }

    /// A session-lifetime token fired: reclaim whichever role's session
    /// it still names (the token check rejects superseded timers).
    pub(crate) fn expire_session<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        pcoa: Ipv6Addr,
        token: u64,
    ) {
        let par_match = self
            .par_sessions
            .get(&pcoa)
            .is_some_and(|s| s.lifetime_token == token);
        if par_match {
            let sess = self.par_sessions.remove(&pcoa).expect("matched above");
            // A guard episode whose releasing BF never came: its packets
            // were parked on the host's own request, so their release is a
            // soft-state expiry (`Expired`), distinct from the reservation
            // timeout of a real handover session.
            let guard =
                sess.target_ap == ApId(u32::MAX) && sess.nar_addr.is_none() && sess.wants_buffer;
            let reason = if guard {
                DropReason::Expired
            } else {
                DropReason::LifetimeExpired
            };
            for pkt in self.dp.pool.expire(pcoa) {
                fh_net::record_drop(ctx, pkt.flow, reason);
            }
            let node = self.dp.node;
            fh_net::record_trace(ctx, || fh_net::TraceEvent::StateExpired {
                node,
                what: if guard { "guard" } else { "reservation" },
            });
            if guard {
                self.metrics.guard_expired += 1;
            }
            self.metrics.expired_sessions += 1;
        }
        let nar_match = self
            .nar_sessions
            .get(&pcoa)
            .is_some_and(|s| s.lifetime_token == token);
        if nar_match {
            self.nar_sessions.remove(&pcoa);
            for pkt in self.dp.pool.expire(pcoa) {
                fh_net::record_drop(ctx, pkt.flow, DropReason::LifetimeExpired);
            }
            let node = self.dp.node;
            fh_net::record_trace(ctx, || fh_net::TraceEvent::StateExpired {
                node,
                what: "reservation",
            });
            self.metrics.expired_sessions += 1;
        }
    }
}
