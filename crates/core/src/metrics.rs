//! Access-router activity counters and the soft-state audit snapshot.

use crate::policy::AvailabilityCase;

/// Counters an access router keeps about its protocol activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArMetrics {
    /// Handover sessions served in the PAR role.
    pub par_sessions: u64,
    /// Handover sessions served in the NAR role.
    pub nar_sessions: u64,
    /// Pure link-layer (intra-router) handovers served.
    pub intra_sessions: u64,
    /// BufferFull notifications sent (NAR role).
    pub buffer_full_sent: u64,
    /// Buffer flushes performed (both roles).
    pub flushes: u64,
    /// Sessions whose reservation lifetime expired.
    pub expired_sessions: u64,
    /// FNAs rejected by the authentication check.
    pub auth_rejections: u64,
    /// Guard-buffering sessions served (standalone BI, §3.3 link-quality
    /// buffering / smooth-handover draft).
    pub guard_sessions: u64,
    /// HI retransmissions performed (PAR role, hardened mode only).
    pub retransmissions: u64,
    /// HI exchanges that exhausted their retry budget and degraded the
    /// session to PAR-only buffering.
    pub hi_exhausted: u64,
    /// Guard-buffering episodes reclaimed by lifetime expiry (the host
    /// never sent the releasing BF).
    pub guard_expired: u64,
    /// Times this router crashed (volatile state lost).
    pub crashes: u64,
    /// Soft-state host routes reclaimed by the expiry sweep.
    pub routes_expired: u64,
    /// Handover sessions reclaimed because the peer router went silent
    /// past the dead-peer timeout.
    pub dead_peer_reclaims: u64,
    /// Packets sacrificed by the overload shed ladder (byte pressure).
    pub pressure_sheds: u64,
    /// Wedged sessions force-resolved by the handover watchdog.
    pub watchdog_fired: u64,
    /// Sheds that ran while an earlier ladder rung still had packets
    /// parked. The relief loop only escalates once a rung is exhausted,
    /// so this is a runtime self-check that must stay zero.
    pub shed_order_violations: u64,
    /// Finalized handover sessions per Table 3.2 availability case
    /// (`[both, nar-only, par-only, none]`).
    pub case_counts: [u64; 4],
}

impl ArMetrics {
    /// Adds these counters into the shared stats registry under `ar.*`
    /// names (aggregating when called for several routers).
    pub fn export(&self, stats: &mut fh_net::NetStats) {
        stats.bump("ar.par_sessions", self.par_sessions);
        stats.bump("ar.nar_sessions", self.nar_sessions);
        stats.bump("ar.intra_sessions", self.intra_sessions);
        stats.bump("ar.buffer_full_sent", self.buffer_full_sent);
        stats.bump("ar.flushes", self.flushes);
        stats.bump("ar.expired_sessions", self.expired_sessions);
        stats.bump("ar.auth_rejections", self.auth_rejections);
        stats.bump("ar.guard_sessions", self.guard_sessions);
        stats.bump("ar.retransmissions", 0);
        stats.bump("ar.hi_exhausted", 0);
        stats.bump("ar.guard_expired", self.guard_expired);
        stats.bump("ar.crashes", self.crashes);
        stats.bump("ar.routes_expired", self.routes_expired);
        stats.bump("ar.dead_peer_reclaims", self.dead_peer_reclaims);
        stats.bump("ar.pressure_sheds", self.pressure_sheds);
        stats.bump("ar.watchdog_fired", self.watchdog_fired);
        stats.bump("ar.shed_order_violations", self.shed_order_violations);
    }
}

/// Index of an [`AvailabilityCase`] into [`ArMetrics::case_counts`].
pub(crate) fn case_index(case: AvailabilityCase) -> usize {
    match case {
        AvailabilityCase::BothAvailable => 0,
        AvailabilityCase::NarOnly => 1,
        AvailabilityCase::ParOnly => 2,
        AvailabilityCase::NoneAvailable => 3,
    }
}

/// Snapshot of an access router's live soft state, taken by the end-of-run
/// resource-leak auditor. After a quiesce period longer than every
/// reservation lifetime, all session- and buffer-related counts must be
/// zero; the only state allowed to remain is host routes for hosts still
/// attached (and, when soft-state routes are enabled, their refresh
/// timers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArSoftState {
    /// Live PAR-role handover sessions (includes guard episodes).
    pub par_sessions: usize,
    /// Live NAR-role handover sessions.
    pub nar_sessions: usize,
    /// Live buffer-pool sessions (reservations or open unreserved slots).
    pub pool_sessions: usize,
    /// Packets still queued in the buffer pool.
    pub buffered_packets: usize,
    /// Buffer slots still reserved (capacity minus unreserved).
    pub reserved_slots: usize,
    /// Keyed timers still registered (lifetime, flush, retransmission,
    /// and host-route expiry tokens).
    pub pending_timers: usize,
    /// Paced flushes still in progress.
    pub paced_flushes: usize,
    /// HI retransmission exchanges still in flight.
    pub pending_hi_rtx: usize,
    /// Soft-state host routes with a live expiry token.
    pub route_timers: usize,
}

impl ArSoftState {
    /// `true` when nothing but (possibly) refreshed host routes remains:
    /// every session, reservation, queued packet and flush is gone, and
    /// the only registered timers are host-route expiry tokens.
    #[must_use]
    pub fn quiesced(&self) -> bool {
        self.par_sessions == 0
            && self.nar_sessions == 0
            && self.pool_sessions == 0
            && self.buffered_packets == 0
            && self.reserved_slots == 0
            && self.paced_flushes == 0
            && self.pending_hi_rtx == 0
            && self.pending_timers == self.route_timers
    }
}
