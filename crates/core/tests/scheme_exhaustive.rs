//! `Scheme::ALL`-driven exhaustiveness: every scheme variant is backed
//! by a policy implementation file on disk and a working engine. Adding
//! a variant without its one-file policy (the contract `policy/mod.rs`
//! documents) fails here by name instead of deep inside a scenario.

use std::path::Path;

use fh_core::policy::{BufferPolicy, PolicyEngine};
use fh_core::Scheme;

/// The source file that implements each scheme's [`fh_core::BufferPolicy`].
fn policy_source(scheme: Scheme) -> &'static str {
    match scheme {
        Scheme::NoBuffer => "no_buffer.rs",
        Scheme::NarOnly => "nar_fifo.rs",
        Scheme::ParOnly => "krishnamurthi.rs",
        Scheme::Dual { .. } => "enhanced.rs",
        Scheme::SafetyNet => "safetynet.rs",
    }
}

#[test]
fn every_scheme_has_a_policy_file_on_disk() {
    let policy_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/policy");
    for scheme in Scheme::ALL {
        let file = policy_dir.join(policy_source(scheme));
        assert!(
            file.is_file(),
            "{scheme:?} ({}) names a missing policy file {}",
            scheme.label(),
            file.display()
        );
    }
}

#[test]
fn every_scheme_resolves_to_a_distinct_engine_and_label() {
    let mut labels = Vec::new();
    for scheme in Scheme::ALL {
        // for_scheme must not panic, and the round trip through the
        // engine keeps the capability flags coherent.
        let engine = PolicyEngine::for_scheme(scheme);
        let ladder = engine.shed_ladder();
        assert_eq!(ladder.len(), 3, "{scheme:?}");
        let label = scheme.label();
        assert!(!labels.contains(&label), "duplicate scheme label {label:?}");
        labels.push(label);
    }
    assert_eq!(labels.len(), Scheme::ALL.len());
}
