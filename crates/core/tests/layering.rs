//! Layer-discipline lock: the policy layer must stay a pure decision
//! table over `netstack` vocabulary (`ServiceClass`, scheme flags). The
//! moment a policy file names the signaling or datapath layers, an actor
//! type, or the simulator, a policy stops being a table you can read
//! against the thesis — so this test greps the sources and fails the
//! build instead.
//!
//! Deliberately a source scan, not a compile-time check: `use`-less
//! fully-qualified paths (`crate::datapath::…`) would slip past any
//! import-based lint, and a dev-dependency cycle would defeat a
//! link-time one.

use std::fs;
use std::path::Path;

/// Substrings no file under `src/policy/` may contain.
const FORBIDDEN: &[&str] = &[
    // Upper layers of this crate.
    "signaling",
    "datapath",
    "crate::ar",
    "soft_state",
    // Actor / simulator vocabulary.
    "NetCtx",
    "RadioWorld",
    "fh_sim",
    "fh_wireless",
    "BufferPool",
];

#[test]
fn policy_layer_depends_only_on_netstack_types() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/policy");
    let mut checked = 0;
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .expect("src/policy must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    for path in entries {
        let source = fs::read_to_string(&path).expect("readable policy source");
        for needle in FORBIDDEN {
            for (i, line) in source.lines().enumerate() {
                // Prose may name the architecture; code may not.
                if line.trim_start().starts_with("//") {
                    continue;
                }
                assert!(
                    !line.contains(needle),
                    "{}:{}: policy layer must not reference `{needle}` \
                     (policies are pure tables; packet movement belongs to \
                     the datapath, session state to signaling):\n    {line}",
                    path.display(),
                    i + 1,
                );
            }
        }
        checked += 1;
    }
    assert!(checked >= 6, "expected the six policy files, saw {checked}");
}
