//! Property tests for the buffer manager and the Table 3.3 policy.

use std::net::Ipv6Addr;

use fh_core::policy::{
    nar_action, nar_overflow, par_action, AvailabilityCase, NarAction, NarOverflow, ParAction,
};
use fh_core::{AdmissionLimit, BufferPool, ProtocolConfig, Scheme};
use fh_net::{FlowId, Packet, ServiceClass};
use fh_sim::SimTime;
use proptest::prelude::*;

fn key(n: u16) -> Ipv6Addr {
    Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, n)
}

fn pkt(class: ServiceClass, seq: u64) -> Packet {
    Packet::data(
        FlowId(1),
        seq,
        key(100),
        key(200),
        class,
        160,
        SimTime::ZERO,
    )
}

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::NoBuffer),
        Just(Scheme::NarOnly),
        Just(Scheme::ParOnly),
        Just(Scheme::Dual { classify: false }),
        Just(Scheme::Dual { classify: true }),
    ]
}

fn arb_case() -> impl Strategy<Value = AvailabilityCase> {
    prop_oneof![
        Just(AvailabilityCase::BothAvailable),
        Just(AvailabilityCase::NarOnly),
        Just(AvailabilityCase::ParOnly),
        Just(AvailabilityCase::NoneAvailable),
    ]
}

fn arb_class() -> impl Strategy<Value = ServiceClass> {
    (0u8..4).prop_map(ServiceClass::from_field)
}

#[derive(Debug, Clone)]
enum Op {
    Buffer(u16, u8, u64),
    BufferRt(u16, u64),
    Drain(u16),
    Release(u16),
    Expire(u16),
    Regrant(u16, u32),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..5, 0u8..4, any::<u64>()).prop_map(|(k, c, s)| Op::Buffer(k, c, s)),
        (0u16..5, any::<u64>()).prop_map(|(k, s)| Op::BufferRt(k, s)),
        (0u16..5).prop_map(Op::Drain),
        (0u16..5).prop_map(Op::Release),
        (0u16..5).prop_map(Op::Expire),
        (0u16..5, 0u32..12).prop_map(|(k, g)| Op::Regrant(k, g)),
    ]
}

proptest! {
    /// Conservation: every admitted packet leaves the pool exactly once —
    /// flushed, expired, or evicted — and capacity is never exceeded.
    #[test]
    fn buffer_pool_conserves_packets(
        capacity in 1usize..32,
        ops in prop::collection::vec(arb_op(), 1..400)
    ) {
        let mut pool = BufferPool::new(capacity);
        for k in 0..5 {
            pool.grant(key(k), 4);
        }
        for op in ops {
            match op {
                Op::Buffer(k, c, s) => {
                    let class = ServiceClass::from_field(c);
                    let _ = pool.try_buffer(key(k), pkt(class, s), AdmissionLimit::Grant);
                }
                Op::BufferRt(k, s) => {
                    let _ = pool.buffer_realtime_dropfront(key(k), pkt(ServiceClass::RealTime, s));
                }
                Op::Drain(k) => { let _ = pool.drain(key(k)); }
                Op::Release(k) => { let _ = pool.release(key(k)); }
                Op::Expire(k) => { let _ = pool.expire(key(k)); }
                Op::Regrant(k, g) => {
                    if !pool.has_session(key(k)) || pool.session_len(key(k)) == 0 {
                        let _ = pool.grant(key(k), g);
                    }
                }
            }
            prop_assert!(pool.used() <= pool.capacity());
        }
        let queued: u64 = (0..5).map(|k| pool.session_len(key(k)) as u64).sum();
        let s = pool.stats;
        prop_assert_eq!(
            s.admitted,
            s.flushed + s.expired + s.evicted_realtime + queued,
            "conservation violated: {:?}", s
        );
    }

    /// Grants never over-commit the pool.
    #[test]
    fn grants_never_exceed_capacity(
        capacity in 0usize..64,
        requests in prop::collection::vec((0u16..8, 0u32..40), 1..50)
    ) {
        let mut pool = BufferPool::new(capacity);
        for (k, r) in requests {
            let _ = pool.grant(key(k), r);
            prop_assert!(pool.unreserved() <= capacity);
            // Sum of outstanding grants is capacity - unreserved ≥ 0.
        }
    }

    /// Drain returns packets in FIFO order of admission.
    #[test]
    fn drain_preserves_fifo(seqs in prop::collection::vec(any::<u64>(), 1..30)) {
        let mut pool = BufferPool::new(64);
        pool.grant(key(1), 64);
        let mut admitted = Vec::new();
        for &s in &seqs {
            if pool
                .try_buffer(key(1), pkt(ServiceClass::HighPriority, s), AdmissionLimit::Grant)
                .is_ok()
            {
                admitted.push(s);
            }
        }
        let drained: Vec<u64> = pool.drain(key(1)).iter().map(|p| p.seq).collect();
        prop_assert_eq!(drained, admitted);
    }

    /// Drop-front only ever evicts the oldest real-time packet, and the
    /// session never exceeds its grant.
    #[test]
    fn dropfront_evicts_oldest_rt_only(
        grant in 1u32..8,
        n in 1usize..40
    ) {
        let mut pool = BufferPool::new(64);
        pool.grant(key(1), grant);
        let mut oldest_alive = 0u64;
        for s in 0..n as u64 {
            match pool.buffer_realtime_dropfront(key(1), pkt(ServiceClass::RealTime, s)) {
                Ok(Some(evicted)) => {
                    prop_assert_eq!(evicted.seq, oldest_alive, "must evict the oldest");
                    oldest_alive += 1;
                }
                Ok(None) => {}
                Err(_) => unreachable!("an RT packet is always evictable here"),
            }
            prop_assert!(pool.session_len(key(1)) <= grant as usize);
        }
        let drained: Vec<u64> = pool.drain(key(1)).iter().map(|p| p.seq).collect();
        let expect: Vec<u64> = (n as u64 - u64::from(grant).min(n as u64)..n as u64).collect();
        prop_assert_eq!(drained, expect, "survivors are the newest packets");
    }

    /// Policy totality and the scheme's two hard promises, over the whole
    /// input space: RT/HP are never policy-dropped at the PAR, and the NAR
    /// never buffers without a grant.
    #[test]
    fn policy_promises_hold_everywhere(
        scheme in arb_scheme(),
        case in arb_case(),
        class in arb_class(),
        nar_full in any::<bool>()
    ) {
        let p = par_action(scheme, case, class, nar_full);
        if matches!(class.effective(), ServiceClass::RealTime | ServiceClass::HighPriority) {
            prop_assert_ne!(p, ParAction::Drop);
        }
        if p == ParAction::Drop {
            // Only the classifying scheme drops by policy, only in case 4.
            prop_assert_eq!(scheme, Scheme::Dual { classify: true });
            prop_assert_eq!(case, AvailabilityCase::NoneAvailable);
        }
        let n = nar_action(scheme, case, class);
        if !case.nar() {
            prop_assert_eq!(n, NarAction::Deliver, "no grant, no buffering");
        }
        if n == NarAction::Buffer {
            prop_assert!(scheme.buffers());
        }
        // Overflow handling total and consistent with the scheme.
        let o = nar_overflow(scheme, class);
        if o == NarOverflow::DropOldestRealtime {
            prop_assert_eq!(class.effective(), ServiceClass::RealTime);
            prop_assert_eq!(scheme, Scheme::Dual { classify: true });
        }
    }

    /// BufferLocal at the PAR implies the PAR actually promised space
    /// (or the packet is best effort spilling under the threshold rule).
    #[test]
    fn buffer_local_requires_par_grant_or_best_effort(
        scheme in arb_scheme(),
        case in arb_case(),
        class in arb_class(),
        nar_full in any::<bool>()
    ) {
        if par_action(scheme, case, class, nar_full) == ParAction::BufferLocal {
            prop_assert!(
                case.par(),
                "{scheme:?} buffered locally in {case:?} without a PAR grant"
            );
        }
    }

    /// Config invariants: the request split covers the whole request.
    #[test]
    fn dual_request_split_covers_everything(request in 0u32..1000) {
        let par = request.div_ceil(2);
        let nar = request / 2;
        prop_assert_eq!(par + nar, request);
        // And the defaults stay sane.
        let cfg = ProtocolConfig::default();
        prop_assert!(cfg.buffer_request > 0);
    }
}
