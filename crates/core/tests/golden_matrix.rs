//! Golden-matrix pin: the pluggable policy engine must reproduce the
//! legacy Table 3.3 transcription — `par_action` / `nar_action` /
//! `nar_overflow` in `policy::matrix` — exactly, over the *entire*
//! decision surface, and that surface must match the committed snapshot
//! in `tests/golden/table_3_3.txt`.
//!
//! Three locks, one invariant:
//!
//! 1. engine == legacy functions (exhaustive equivalence below);
//! 2. engine == committed snapshot (`snapshot_matches_table_3_3`);
//! 3. legacy functions == the thesis (the exhaustive unit tests in
//!    `policy::matrix` itself).
//!
//! Regenerate the snapshot with `BLESS=1 cargo test -p fh-core --test
//! golden_matrix` after an *intentional* policy change — and say so in
//! the diff.

use fh_core::policy::{
    nar_action, nar_overflow, par_action, Admit, AdmitCtx, AvailabilityCase, BufferPolicy,
    NarAction, NarOverflow, ParAction, PolicyEngine, Role,
};
use fh_core::{AdmissionLimit, Scheme};
use fh_net::ServiceClass;

const CASES: [AvailabilityCase; 4] = [
    AvailabilityCase::BothAvailable,
    AvailabilityCase::NarOnly,
    AvailabilityCase::ParOnly,
    AvailabilityCase::NoneAvailable,
];

const CLASSES: [ServiceClass; 4] = [
    ServiceClass::Unspecified,
    ServiceClass::RealTime,
    ServiceClass::HighPriority,
    ServiceClass::BestEffort,
];

/// The admission limit the monolith attached to a `BufferLocal` verdict,
/// verbatim from the pre-refactor `ArAgent::redirect`.
fn legacy_par_limit(
    scheme: Scheme,
    class: ServiceClass,
    par_granted: bool,
    a: u32,
) -> AdmissionLimit {
    match (scheme.classifies(), class) {
        (true, ServiceClass::BestEffort | ServiceClass::Unspecified) => {
            AdmissionLimit::Threshold(a)
        }
        (true, _) => AdmissionLimit::Grant,
        (false, _) => {
            if par_granted {
                AdmissionLimit::Grant
            } else {
                AdmissionLimit::PoolOnly
            }
        }
    }
}

/// Every `AdmitCtx` the datapath can hand a policy, for one scheme.
fn contexts() -> Vec<AdmitCtx> {
    let mut out = Vec::new();
    for case in CASES {
        for class in CLASSES {
            for nar_full in [false, true] {
                for par_granted in [false, true] {
                    for threshold_a in [0, 7, 10] {
                        out.push(AdmitCtx {
                            case,
                            class,
                            nar_full,
                            par_granted,
                            threshold_a,
                        });
                    }
                }
            }
        }
    }
    out
}

#[test]
fn par_admission_reproduces_legacy_matrix() {
    for scheme in Scheme::ALL {
        let engine = PolicyEngine::for_scheme(scheme);
        for ctx in contexts() {
            let got = engine.admit(Role::Par, &ctx);
            let want = par_action(scheme, ctx.case, ctx.class, ctx.nar_full);
            let tag = format!("{scheme:?} {ctx:?}");
            match (got, want) {
                (Admit::Tunnel { park_at_peer: true }, ParAction::TunnelBuffer)
                | (
                    Admit::Tunnel {
                        park_at_peer: false,
                    },
                    ParAction::TunnelUnbuffered,
                )
                | (Admit::Drop, ParAction::Drop)
                | (Admit::Multicast, ParAction::Bicast) => {}
                (Admit::Park(limit), ParAction::BufferLocal) => {
                    let want_limit =
                        legacy_par_limit(scheme, ctx.class, ctx.par_granted, ctx.threshold_a);
                    assert_eq!(limit, want_limit, "admission limit diverged: {tag}");
                }
                (got, want) => panic!("engine {got:?} != legacy {want:?}: {tag}"),
            }
        }
    }
}

#[test]
fn nar_admission_reproduces_legacy_matrix() {
    for scheme in Scheme::ALL {
        let engine = PolicyEngine::for_scheme(scheme);
        for ctx in contexts() {
            let got = engine.admit(Role::Nar, &ctx);
            let want = nar_action(scheme, ctx.case, ctx.class);
            let tag = format!("{scheme:?} {ctx:?}");
            match (got, want) {
                // The monolith always parked NAR-side under the session
                // grant (`try_buffer(.., AdmissionLimit::Grant)`).
                (Admit::Park(AdmissionLimit::Grant), NarAction::Buffer) => {}
                (Admit::Forward, NarAction::Deliver) => {}
                (got, want) => panic!("engine {got:?} != legacy {want:?}: {tag}"),
            }
        }
    }
}

#[test]
fn overflow_reactions_reproduce_legacy_matrix() {
    use fh_core::policy::Overflow;
    for scheme in Scheme::ALL {
        let engine = PolicyEngine::for_scheme(scheme);
        for class in CLASSES {
            let got = engine.overflow(Role::Nar, class);
            let want = nar_overflow(scheme, class);
            let tag = format!("{scheme:?} {class:?}");
            match (got, want) {
                (Overflow::DropFrontRealtime, NarOverflow::DropOldestRealtime)
                | (Overflow::NotifyPeer, NarOverflow::NotifyPar)
                | (Overflow::TailDrop, NarOverflow::TailDrop) => {}
                (got, want) => panic!("engine {got:?} != legacy {want:?}: {tag}"),
            }
            // PAR-side overflow, verbatim from the monolith: a rejected
            // high-priority packet spills to the peer unbuffered,
            // everything else tail-drops.
            let got = engine.overflow(Role::Par, class);
            let want = if class.effective() == ServiceClass::HighPriority {
                Overflow::SpillPeer
            } else {
                Overflow::TailDrop
            };
            assert_eq!(got, want, "PAR overflow diverged: {tag}");
        }
    }
}

#[test]
fn request_splits_reproduce_legacy_split() {
    for scheme in Scheme::ALL {
        let engine = PolicyEngine::for_scheme(scheme);
        for requested in 0..=41 {
            let split = engine.on_grant(requested);
            // Verbatim from the monolith's `on_rtsolpr`.
            let (par, nar) = match (scheme.uses_par_buffer(), scheme.uses_nar_buffer()) {
                (true, true) => (requested.div_ceil(2), requested / 2),
                (true, false) => (requested, 0),
                (false, true) => (0, requested),
                (false, false) => (0, 0),
            };
            assert_eq!(
                (split.par, split.nar),
                (par, nar),
                "{scheme:?} req={requested}"
            );
        }
    }
}

/// Renders the full decision surface as stable text. The admit section
/// fixes `threshold_a = 10` (the `ProtocolConfig` default) so `Park`
/// limits print concretely; threshold independence is covered by the
/// exhaustive tests above.
fn render_matrix() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    out.push_str("# Table 3.3 decision surface — engine verdicts, all schemes.\n");
    out.push_str("# scheme | case | class | nar_full | par_granted -> PAR verdict | NAR verdict\n");
    for scheme in Scheme::ALL {
        let engine = PolicyEngine::for_scheme(scheme);
        for case in CASES {
            for class in CLASSES {
                for nar_full in [false, true] {
                    for par_granted in [false, true] {
                        let ctx = AdmitCtx {
                            case,
                            class,
                            nar_full,
                            par_granted,
                            threshold_a: 10,
                        };
                        let par = engine.admit(Role::Par, &ctx);
                        let nar = engine.admit(Role::Nar, &ctx);
                        let _ = writeln!(
                            out,
                            "{} | {case:?} | {class:?} | nar_full={} | par_granted={} -> {par:?} | {nar:?}",
                            scheme.label(),
                            u8::from(nar_full),
                            u8::from(par_granted),
                        );
                    }
                }
            }
        }
    }
    out.push_str("# scheme | class -> PAR overflow | NAR overflow\n");
    for scheme in Scheme::ALL {
        let engine = PolicyEngine::for_scheme(scheme);
        for class in CLASSES {
            let _ = writeln!(
                out,
                "{} | {class:?} -> {:?} | {:?}",
                scheme.label(),
                engine.overflow(Role::Par, class),
                engine.overflow(Role::Nar, class),
            );
        }
    }
    out.push_str("# scheme | requested -> par+nar split\n");
    for scheme in Scheme::ALL {
        let engine = PolicyEngine::for_scheme(scheme);
        for requested in [0u32, 1, 7, 20] {
            let split = engine.on_grant(requested);
            let _ = writeln!(
                out,
                "{} | {requested} -> {}+{}",
                scheme.label(),
                split.par,
                split.nar,
            );
        }
    }
    out
}

#[test]
fn snapshot_matches_table_3_3() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/table_3_3.txt");
    let rendered = render_matrix();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &rendered).expect("write snapshot");
        return;
    }
    let committed = std::fs::read_to_string(path).expect(
        "missing tests/golden/table_3_3.txt — run with BLESS=1 once and commit the snapshot",
    );
    assert_eq!(
        rendered, committed,
        "policy surface diverged from the committed Table 3.3 snapshot; \
         if the change is intentional, re-bless with BLESS=1"
    );
}
