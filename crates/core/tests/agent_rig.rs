//! A minimal two-router rig driving `ArAgent`/`MhAgent` directly, for
//! protocol paths the full scenarios do not reach: cancellation, the BI
//! start-time auto-buffering, authentication, precise negotiation, and
//! degenerate grants.

use std::net::Ipv6Addr;

use fh_core::{ArAgent, MhAgent, ProtocolConfig, Scheme};
use fh_mip::MipClient;
use fh_net::{
    doc_subnet, msg::BufferInit, ApId, ControlMsg, FlowId, LinkSpec, NetCtx, NetMsg, NetStats,
    NetWorld, NodeId, Packet, ServiceClass, Topology,
};
use fh_sim::{Actor, SimDuration, SimTime, Simulator};
use fh_wireless::{MhRadio, Mobility, Position, RadioConfig, RadioEnv, RadioWorld, WirelessSpec};

struct World {
    topo: Topology,
    stats: NetStats,
    radio: RadioEnv,
}
impl NetWorld for World {
    fn topology(&self) -> &Topology {
        &self.topo
    }
    fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }
    fn stats(&self) -> &NetStats {
        &self.stats
    }
    fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }
}
impl RadioWorld for World {
    fn radio(&self) -> &RadioEnv {
        &self.radio
    }
    fn radio_mut(&mut self) -> &mut RadioEnv {
        &mut self.radio
    }
}

struct ArHost {
    agent: Option<ArAgent>,
}
impl Actor<NetMsg, World> for ArHost {
    fn handle(&mut self, ctx: &mut NetCtx<'_, World>, msg: NetMsg) {
        let mut agent = self.agent.take().expect("agent");
        agent.handle(ctx, msg);
        self.agent = Some(agent);
    }
}

struct MhHost {
    agent: Option<MhAgent>,
    delivered: Vec<Packet>,
}
impl Actor<NetMsg, World> for MhHost {
    fn handle(&mut self, ctx: &mut NetCtx<'_, World>, msg: NetMsg) {
        let mut agent = self.agent.take().expect("agent");
        if let Some(pkt) = agent.handle(ctx, msg) {
            self.delivered.push(pkt);
        }
        self.agent = Some(agent);
    }
}

struct Rig {
    sim: Simulator<NetMsg, World>,
    par: NodeId,
    nar: NodeId,
    mh: NodeId,
    par_addr: Ipv6Addr,
    nar_addr: Ipv6Addr,
    par_ap: ApId,
    nar_ap: ApId,
    pcoa: Ipv6Addr,
}

impl Rig {
    fn new(config: ProtocolConfig, capacity: usize, mobility: Mobility) -> Rig {
        let mut sim = Simulator::new(
            World {
                topo: Topology::new(),
                stats: NetStats::new(),
                radio: RadioEnv::new(WirelessSpec::default_80211b()),
            },
            1,
        );
        let par_prefix = doc_subnet(1);
        let nar_prefix = doc_subnet(2);
        let par_addr = par_prefix.host(1);
        let nar_addr = nar_prefix.host(1);
        let par = sim.add_actor(Box::new(ArHost { agent: None }));
        let nar = sim.add_actor(Box::new(ArHost { agent: None }));
        let mh = sim.add_actor(Box::new(MhHost {
            agent: None,
            delivered: vec![],
        }));
        let par_ap = sim.shared.radio.add_ap(par, Position::new(0.0, 0.0), 112.0);
        let nar_ap = sim
            .shared
            .radio
            .add_ap(nar, Position::new(212.0, 0.0), 112.0);
        {
            let mut agent = ArAgent::new(
                par,
                par_addr,
                par_prefix,
                vec![par_ap],
                par_addr,
                config,
                capacity,
            );
            agent.learn_ap(nar_ap, nar_addr);
            sim.actor_mut::<ArHost>(par).expect("par").agent = Some(agent);
        }
        {
            let mut agent = ArAgent::new(
                nar,
                nar_addr,
                nar_prefix,
                vec![nar_ap],
                nar_addr,
                config,
                capacity,
            );
            agent.learn_ap(par_ap, par_addr);
            sim.actor_mut::<ArHost>(nar).expect("nar").agent = Some(agent);
        }
        let iid = 0x42;
        let pcoa = par_prefix.host(iid);
        {
            let radio = MhRadio::new(mh, mobility, RadioConfig::default());
            let mip = MipClient::new(pcoa, par_addr, SimDuration::from_secs(60));
            let mut agent = MhAgent::new(mh, radio, mip, config, iid);
            agent.mip.enter_map_domain(par_addr, pcoa);
            agent.configure_initial(par_ap, par_addr, par_prefix);
            sim.actor_mut::<MhHost>(mh).expect("mh").agent = Some(agent);
        }
        {
            let topo = &mut sim.shared.topo;
            topo.register_node(par, "par");
            topo.register_node(nar, "nar");
            topo.register_node(mh, "mh");
            topo.add_link(
                par,
                nar,
                LinkSpec::new(10_000_000, SimDuration::from_millis(2), 50),
            );
            topo.add_prefix(par_prefix, par);
            topo.add_prefix(nar_prefix, nar);
            topo.compute_routes();
        }
        for id in [par, nar, mh] {
            sim.schedule(SimTime::ZERO, id, NetMsg::Start);
        }
        Rig {
            sim,
            par,
            nar,
            mh,
            par_addr,
            nar_addr,
            par_ap,
            nar_ap,
            pcoa,
        }
    }

    fn par_agent(&self) -> &ArAgent {
        self.sim
            .actor::<ArHost>(self.par)
            .expect("par")
            .agent
            .as_ref()
            .expect("agent")
    }

    fn nar_agent(&self) -> &ArAgent {
        self.sim
            .actor::<ArHost>(self.nar)
            .expect("nar")
            .agent
            .as_ref()
            .expect("agent")
    }

    fn mh_agent(&self) -> &MhAgent {
        self.sim
            .actor::<MhHost>(self.mh)
            .expect("mh")
            .agent
            .as_ref()
            .expect("agent")
    }

    /// Injects an uplink control message from the MH as if the radio
    /// delivered it (bypasses the MhAgent — for hand-crafted flows).
    fn uplink_from_mh(&mut self, to: NodeId, msg: ControlMsg) {
        let now = self.sim.now();
        let pkt = Packet::control(self.pcoa, self.par_addr, msg, now);
        self.sim.schedule(
            now,
            to,
            NetMsg::RadioPacket {
                ap: self.par_ap,
                from: self.mh,
                pkt,
            },
        );
    }

    fn walk() -> Mobility {
        Mobility::linear(Position::new(88.0, 0.0), Position::new(212.0, 0.0), 10.0)
    }
}

#[test]
fn full_handover_through_the_rig() {
    let mut rig = Rig::new(ProtocolConfig::proposed(), 20, Rig::walk());
    rig.sim.run_until(SimTime::from_secs(5));
    assert_eq!(rig.mh_agent().handoffs, 1);
    assert_eq!(rig.par_agent().metrics.par_sessions, 1);
    assert_eq!(rig.nar_agent().metrics.nar_sessions, 1);
    assert_eq!(rig.sim.shared.radio.attachment(rig.mh), Some(rig.nar_ap));
}

#[test]
fn cancel_request_releases_the_reservation() {
    let mut rig = Rig::new(
        ProtocolConfig::proposed(),
        20,
        Mobility::Stationary(Position::new(0.0, 0.0)),
    );
    rig.sim.run_until(SimTime::from_millis(100));
    // Hand-craft a solicit, then cancel it.
    rig.uplink_from_mh(
        rig.par,
        ControlMsg::RtSolPr {
            target_ap: rig.nar_ap,
            bi: Some(BufferInit {
                size: 10,
                start_time: SimDuration::from_millis(500),
                lifetime: SimDuration::from_secs(3),
            }),
        },
    );
    rig.sim.run_until(SimTime::from_millis(200));
    assert_eq!(rig.par_agent().pool().granted(rig.pcoa), 5, "half at PAR");
    rig.uplink_from_mh(
        rig.par,
        ControlMsg::RtSolPr {
            target_ap: rig.nar_ap,
            bi: Some(BufferInit::cancel()),
        },
    );
    rig.sim.run_until(SimTime::from_millis(300));
    assert_eq!(
        rig.par_agent().pool().granted(rig.pcoa),
        0,
        "cancel frees it"
    );
    assert!(!rig.par_agent().pool().has_session(rig.pcoa));
}

#[test]
fn start_time_auto_buffers_without_fbu() {
    // The MH asks for buffering with a 300 ms start time and then goes
    // silent (no FBU): the PAR must start redirecting on its own.
    let mut rig = Rig::new(
        ProtocolConfig::proposed(),
        20,
        Mobility::Stationary(Position::new(0.0, 0.0)),
    );
    rig.sim.run_until(SimTime::from_millis(100));
    rig.uplink_from_mh(
        rig.par,
        ControlMsg::RtSolPr {
            target_ap: rig.nar_ap,
            bi: Some(BufferInit {
                size: 10,
                start_time: SimDuration::from_millis(300),
                lifetime: SimDuration::from_secs(5),
            }),
        },
    );
    // Detach the host so deliveries can't succeed over the air.
    rig.sim.run_until(SimTime::from_millis(200));
    rig.sim.shared.radio.detach(rig.mh);
    // Inject traffic for the PCoA *after* the auto-start moment.
    rig.sim.run_until(SimTime::from_millis(600));
    let now = rig.sim.now();
    let data = Packet::data(
        FlowId(1),
        0,
        doc_subnet(0).host(1),
        rig.pcoa,
        ServiceClass::HighPriority,
        160,
        now,
    );
    let par = rig.par;
    rig.sim.schedule(
        now,
        par,
        NetMsg::LinkPacket {
            link: fh_net::LinkId(0),
            pkt: data,
        },
    );
    rig.sim.run_until(SimTime::from_millis(800));
    // The packet must be parked in a buffer, not lost.
    let buffered = rig.par_agent().pool().used() + rig.nar_agent().pool().used();
    assert_eq!(buffered, 1, "auto-start must be buffering by now");
    assert_eq!(rig.sim.shared.stats.total_drops(), 0);
}

#[test]
fn authentication_rejects_forged_fna() {
    let mut config = ProtocolConfig::proposed();
    config.auth_required = true;
    let mut rig = Rig::new(config, 20, Rig::walk());
    rig.sim.run_until(SimTime::from_secs(5));
    // The legitimate handover carries the token and succeeds.
    assert_eq!(rig.mh_agent().handoffs, 1);
    assert_eq!(rig.nar_agent().metrics.auth_rejections, 0);
    // Now forge an FNA for a host the NAR never negotiated for.
    let now = rig.sim.now();
    let forged = Packet::control(
        doc_subnet(2).host(0x666),
        rig.nar_addr,
        ControlMsg::FastNeighborAdvertisement {
            ncoa: doc_subnet(2).host(0x666),
            pcoa: doc_subnet(1).host(0x666),
            bf: true,
            auth: None,
        },
        now,
    );
    let nar = rig.nar;
    let nar_ap = rig.nar_ap;
    let mh = rig.mh;
    rig.sim.schedule(
        now,
        nar,
        NetMsg::RadioPacket {
            ap: nar_ap,
            from: mh,
            pkt: forged,
        },
    );
    rig.sim.run_until(now + SimDuration::from_millis(100));
    assert_eq!(rig.nar_agent().metrics.auth_rejections, 1);
    assert_eq!(rig.nar_agent().neighbor(doc_subnet(1).host(0x666)), None);
}

#[test]
fn wrong_token_is_rejected_too() {
    let mut config = ProtocolConfig::proposed();
    config.auth_required = true;
    let mut rig = Rig::new(config, 20, Rig::walk());
    // Let the negotiation complete but intercept before the real FNA:
    // run just past PrRtAdv (trigger at ~1.2 s + a few ms).
    rig.sim.run_until(SimTime::from_millis(1210));
    let now = rig.sim.now();
    let forged = Packet::control(
        doc_subnet(2).host(0x42),
        rig.nar_addr,
        ControlMsg::FastNeighborAdvertisement {
            ncoa: doc_subnet(2).host(0x42),
            pcoa: rig.pcoa,
            bf: true,
            auth: Some(fh_net::msg::AuthToken(0xBAD)),
        },
        now,
    );
    let nar = rig.nar;
    let nar_ap = rig.nar_ap;
    let mh = rig.mh;
    rig.sim.schedule(
        now,
        nar,
        NetMsg::RadioPacket {
            ap: nar_ap,
            from: mh,
            pkt: forged,
        },
    );
    rig.sim.run_until(now + SimDuration::from_millis(50));
    assert!(rig.nar_agent().metrics.auth_rejections >= 1);
}

#[test]
fn no_buffer_scheme_solicits_without_bi() {
    let mut rig = Rig::new(
        ProtocolConfig::with_scheme(Scheme::NoBuffer),
        20,
        Rig::walk(),
    );
    rig.sim.run_until(SimTime::from_secs(5));
    assert_eq!(rig.mh_agent().handoffs, 1, "handover still works");
    assert_eq!(rig.nar_agent().pool().stats.admitted, 0, "nothing buffered");
    assert_eq!(rig.par_agent().pool().stats.admitted, 0);
    assert_eq!(rig.sim.shared.stats.piggybacked, 0, "no buffer options");
}

/// Injects `n` high-priority data packets for the PCoA at the PAR,
/// spread through the black-out window of the standard walk
/// (detach ≈1.209 s, attach ≈1.409 s).
fn inject_blackout_traffic(rig: &mut Rig, n: u64) {
    let par = rig.par;
    let pcoa = rig.pcoa;
    for i in 0..n {
        let at = SimTime::from_millis(1_220 + i * 15);
        let pkt = Packet::data(
            FlowId(1),
            i,
            doc_subnet(0).host(1),
            pcoa,
            ServiceClass::HighPriority,
            160,
            at,
        );
        rig.sim.schedule(
            at,
            par,
            NetMsg::LinkPacket {
                link: fh_net::LinkId(0),
                pkt,
            },
        );
    }
}

#[test]
fn precise_negotiation_grants_partially() {
    let mut config = ProtocolConfig::proposed();
    config.precise_negotiation = true;
    config.buffer_request = 60; // NAR share 30 > capacity 20
    let mut rig = Rig::new(config, 20, Rig::walk());
    rig.sim.run_until(SimTime::from_millis(1_215));
    inject_blackout_traffic(&mut rig, 10);
    rig.sim.run_until(SimTime::from_secs(5));
    // Binary negotiation would grant 0; the precise extension grants what
    // fits, so the black-out traffic gets buffered.
    assert_eq!(rig.mh_agent().handoffs, 1);
    let nar = rig.nar_agent();
    assert!(
        nar.pool().stats.admitted > 0,
        "partial grant must have buffered something: {:?}",
        nar.pool().stats
    );
}

#[test]
fn oversized_binary_request_degenerates_to_no_grant() {
    let mut config = ProtocolConfig::proposed();
    config.buffer_request = 100; // 50 per router > capacity 20
    let mut rig = Rig::new(config, 20, Rig::walk());
    rig.sim.run_until(SimTime::from_millis(1_215));
    inject_blackout_traffic(&mut rig, 10);
    rig.sim.run_until(SimTime::from_secs(5));
    assert_eq!(rig.mh_agent().handoffs, 1, "handover completes regardless");
    // All-or-nothing negotiation granted nothing: every black-out packet
    // was forwarded unbuffered and died at the radio.
    assert_eq!(rig.nar_agent().pool().stats.admitted, 0);
    assert!(
        rig.sim
            .shared
            .stats
            .drops(fh_net::DropReason::RadioDetached)
            > 0
    );
}

#[test]
fn router_advertisements_beacon_every_second() {
    let mut rig = Rig::new(
        ProtocolConfig::proposed(),
        20,
        Mobility::Stationary(Position::new(0.0, 0.0)),
    );
    rig.sim.run_until(SimTime::from_secs(5));
    let ras = rig.sim.shared.stats.control_count("RA");
    // One attached host, ~5 seconds, 1 Hz beacons (jittered start).
    assert!((4..=6).contains(&ras), "expected ≈5 RAs, got {ras}");
}

#[test]
fn guard_buffering_parks_and_flushes_on_demand() {
    // §3.3: a host that senses poor link quality asks its router to buffer
    // with a standalone BI (no handover at all), then releases with BF.
    let mut rig = Rig::new(
        ProtocolConfig::proposed(),
        20,
        Mobility::Stationary(Position::new(0.0, 0.0)),
    );
    rig.sim.run_until(SimTime::from_millis(100));
    rig.uplink_from_mh(
        rig.par,
        ControlMsg::BufferInit(BufferInit {
            size: 10,
            start_time: SimDuration::ZERO,
            lifetime: SimDuration::from_secs(5),
        }),
    );
    rig.sim.run_until(SimTime::from_millis(150));
    assert_eq!(rig.par_agent().metrics.guard_sessions, 1);
    // Traffic for the host is now parked, not delivered.
    let now = rig.sim.now();
    let par = rig.par;
    let pcoa = rig.pcoa;
    for seq in 0..5 {
        let pkt = Packet::data(
            FlowId(2),
            seq,
            doc_subnet(0).host(1),
            pcoa,
            ServiceClass::HighPriority,
            160,
            now,
        );
        rig.sim.schedule(
            now,
            par,
            NetMsg::LinkPacket {
                link: fh_net::LinkId(0),
                pkt,
            },
        );
    }
    rig.sim.run_until(SimTime::from_millis(300));
    assert_eq!(rig.par_agent().pool().used(), 5, "packets parked");
    assert!(rig
        .sim
        .actor::<MhHost>(rig.mh)
        .expect("mh")
        .delivered
        .is_empty());
    // Release: everything arrives.
    rig.uplink_from_mh(rig.par, ControlMsg::BufferForward { pcoa });
    rig.sim.run_until(SimTime::from_millis(400));
    assert_eq!(rig.par_agent().pool().used(), 0);
    assert_eq!(
        rig.sim.actor::<MhHost>(rig.mh).expect("mh").delivered.len(),
        5,
        "flush delivers all parked packets"
    );
}

#[test]
fn guard_buffering_cancel_delivers_what_was_parked() {
    let mut rig = Rig::new(
        ProtocolConfig::proposed(),
        20,
        Mobility::Stationary(Position::new(0.0, 0.0)),
    );
    rig.sim.run_until(SimTime::from_millis(100));
    rig.uplink_from_mh(
        rig.par,
        ControlMsg::BufferInit(BufferInit {
            size: 10,
            start_time: SimDuration::ZERO,
            lifetime: SimDuration::from_secs(5),
        }),
    );
    rig.sim.run_until(SimTime::from_millis(150));
    let now = rig.sim.now();
    let par = rig.par;
    let pcoa = rig.pcoa;
    let pkt = Packet::data(
        FlowId(2),
        0,
        doc_subnet(0).host(1),
        pcoa,
        ServiceClass::BestEffort,
        160,
        now,
    );
    rig.sim.schedule(
        now,
        par,
        NetMsg::LinkPacket {
            link: fh_net::LinkId(0),
            pkt,
        },
    );
    rig.sim.run_until(SimTime::from_millis(200));
    assert_eq!(rig.par_agent().pool().used(), 1);
    // Cancel with the zero BI.
    rig.uplink_from_mh(rig.par, ControlMsg::BufferInit(BufferInit::cancel()));
    rig.sim.run_until(SimTime::from_millis(300));
    assert_eq!(rig.par_agent().pool().used(), 0);
    assert!(!rig.par_agent().pool().has_session(pcoa));
    assert_eq!(
        rig.sim.actor::<MhHost>(rig.mh).expect("mh").delivered.len(),
        1,
        "cancellation must not lose the parked packet"
    );
}

#[test]
fn availability_cases_are_counted() {
    let mut rig = Rig::new(ProtocolConfig::proposed(), 20, Rig::walk());
    rig.sim.run_until(SimTime::from_secs(5));
    // One handover with both grants: exactly one case-1 session.
    assert_eq!(rig.par_agent().metrics.case_counts, [1, 0, 0, 0]);
    // And a zero-capacity network lands in case 4.
    let mut starved = Rig::new(ProtocolConfig::proposed(), 0, Rig::walk());
    starved.sim.run_until(SimTime::from_secs(5));
    assert_eq!(starved.par_agent().metrics.case_counts, [0, 0, 0, 1]);
}

#[test]
fn zero_capacity_case4_follows_table_3_3() {
    // Table 3.2 case 4 — neither router can grant (modeled as zero
    // capacity). Table 3.3 then says: real-time and high-priority traffic
    // bypasses the full buffers and rides the tunnel unbuffered, best
    // effort is dropped at the PAR.
    let mut rig = Rig::new(ProtocolConfig::proposed(), 0, Rig::walk());
    rig.sim.run_until(SimTime::from_millis(1_215));
    let classes = [
        (FlowId(1), ServiceClass::RealTime),
        (FlowId(2), ServiceClass::HighPriority),
        (FlowId(3), ServiceClass::BestEffort),
    ];
    let par = rig.par;
    let pcoa = rig.pcoa;
    // All packets land inside the black-out (≈1.209–1.409 s), while the
    // PAR session is redirecting and the host's radio is detached.
    for i in 0..12u64 {
        for &(flow, class) in &classes {
            let at = SimTime::from_millis(1_220 + i * 15);
            let pkt = Packet::data(flow, i, doc_subnet(0).host(1), pcoa, class, 160, at);
            rig.sim.shared.stats.record_sent(flow);
            rig.sim.schedule(
                at,
                par,
                NetMsg::LinkPacket {
                    link: fh_net::LinkId(0),
                    pkt,
                },
            );
        }
    }
    rig.sim.run_until(SimTime::from_secs(5));
    assert_eq!(rig.mh_agent().handoffs, 1, "handover must still complete");
    assert_eq!(rig.par_agent().metrics.case_counts, [0, 0, 0, 1]);
    // Nothing was admitted to either buffer…
    assert_eq!(rig.par_agent().pool().stats.admitted, 0);
    assert_eq!(rig.nar_agent().pool().stats.admitted, 0);
    let stats = &rig.sim.shared.stats;
    // …best effort died at the PAR's policy decision, nowhere else…
    assert_eq!(stats.drops(fh_net::DropReason::Policy), 12);
    let be = stats.flow_audit(FlowId(3));
    assert_eq!((be.delivered, be.dropped), (0, 12), "{be:?}");
    // …while real-time and high-priority crossed the tunnel unbuffered
    // and died only at the detached radio, never at the buffer or policy.
    assert!(
        stats.drops(fh_net::DropReason::RadioDetached) >= 24,
        "RT/HP must reach the NAR's radio: {:?}",
        stats.drops_by_reason()
    );
    for flow in [FlowId(1), FlowId(2)] {
        let audit = stats.flow_audit(flow);
        assert_eq!(audit.delivered, 0, "{flow:?}: {audit:?}");
        assert!(audit.conserved(), "{flow:?}: {audit:?}");
    }
    stats.assert_conservation();
}

#[test]
fn paced_flush_spreads_deliveries() {
    // With flush pacing, buffered packets reach the host one per spacing
    // tick instead of back-to-back on the channel.
    let run = |spacing_ms: u64| -> Vec<SimTime> {
        let mut config = ProtocolConfig::proposed();
        config.flush_spacing = SimDuration::from_millis(spacing_ms);
        let mut rig = Rig::new(config, 20, Rig::walk());
        rig.sim.run_until(SimTime::from_millis(1_215));
        inject_blackout_traffic(&mut rig, 8);
        rig.sim.run_until(SimTime::from_secs(5));
        rig.sim
            .actor::<MhHost>(rig.mh)
            .expect("mh")
            .delivered
            .iter()
            .filter(|p| p.flow == FlowId(1))
            .map(|p| p.created)
            .collect()
    };
    // Same packets delivered either way.
    let fast = run(0);
    let paced = run(5);
    assert_eq!(fast.len(), paced.len(), "pacing must not lose packets");
    assert!(!fast.is_empty());
}

#[test]
fn paced_flush_increases_tail_delay() {
    // Observable: the instant both buffer pools finish draining.
    let drain_time = |spacing_ms: u64| -> SimTime {
        let mut config = ProtocolConfig::proposed();
        config.flush_spacing = SimDuration::from_millis(spacing_ms);
        let mut rig = Rig::new(config, 20, Rig::walk());
        rig.sim.run_until(SimTime::from_millis(1_215));
        inject_blackout_traffic(&mut rig, 8);
        let mut t = SimTime::from_millis(1_405);
        rig.sim.run_until(t);
        while (rig.nar_agent().pool().used() > 0 || rig.par_agent().pool().used() > 0)
            && t < SimTime::from_secs(4)
        {
            t += SimDuration::from_millis(1);
            rig.sim.run_until(t);
        }
        t
    };
    let fast = drain_time(0);
    let paced = drain_time(10);
    assert!(
        paced > fast + SimDuration::from_millis(30),
        "10 ms pacing must visibly slow the drain: {fast} vs {paced}"
    );
}

/// A host that starts a guarded radio pause when its App(99) timer fires.
struct GuardedHost {
    agent: Option<MhAgent>,
    delivered: Vec<Packet>,
    pause: SimDuration,
}
impl fh_sim::Actor<NetMsg, World> for GuardedHost {
    fn handle(&mut self, ctx: &mut NetCtx<'_, World>, msg: NetMsg) {
        let mut agent = self.agent.take().expect("agent");
        match msg {
            NetMsg::Timer {
                kind: fh_net::TimerKind::App(99),
                ..
            } => {
                assert!(agent.pause_with_guard(ctx, self.pause, 60));
            }
            other => {
                if let Some(pkt) = agent.handle(ctx, other) {
                    self.delivered.push(pkt);
                }
            }
        }
        self.agent = Some(agent);
    }
}

#[test]
fn guarded_radio_pause_is_lossless() {
    // Build a one-router world by hand: AR + guarded host + CBR injection.
    let mut rig = Rig::new(
        ProtocolConfig::proposed(),
        80,
        Mobility::Stationary(Position::new(0.0, 0.0)),
    );
    // Add a second, guarded host alongside the rig's idle one.
    let guarded = rig.sim.add_actor(Box::new(GuardedHost {
        agent: None,
        delivered: vec![],
        pause: SimDuration::from_millis(400),
    }));
    // Rebuild the agent around the new actor id.
    let mut new_agent = MhAgent::new(
        guarded,
        MhRadio::new(
            guarded,
            Mobility::Stationary(Position::new(0.0, 0.0)),
            RadioConfig::default(),
        ),
        MipClient::new(rig.pcoa, rig.par_addr, SimDuration::from_secs(600)),
        ProtocolConfig::proposed(),
        0x55,
    );
    new_agent.mip.enter_map_domain(rig.par_addr, rig.pcoa);
    new_agent.configure_initial(rig.par_ap, rig.par_addr, doc_subnet(1));
    rig.sim.shared.topo.register_node(guarded, "guarded");
    rig.sim
        .actor_mut::<GuardedHost>(guarded)
        .expect("guarded")
        .agent = Some(new_agent);
    let coa = doc_subnet(1).host(0x55);
    rig.sim.schedule(SimTime::ZERO, guarded, NetMsg::Start);
    // The pause starts at 1 s.
    rig.sim.schedule(
        SimTime::from_secs(1),
        guarded,
        NetMsg::Timer {
            kind: fh_net::TimerKind::App(99),
            token: 0,
        },
    );
    // 25 packets/s of traffic for the guarded host, 0.5 s – 2.5 s.
    let par = rig.par;
    for i in 0..50u64 {
        let at = SimTime::from_millis(500 + i * 40);
        let pkt = Packet::data(
            FlowId(9),
            i,
            doc_subnet(0).host(1),
            coa,
            ServiceClass::HighPriority,
            160,
            at,
        );
        rig.sim.schedule(
            at,
            par,
            NetMsg::LinkPacket {
                link: fh_net::LinkId(0),
                pkt,
            },
        );
    }
    rig.sim.run_until(SimTime::from_secs(5));
    let host = rig.sim.actor::<GuardedHost>(guarded).expect("guarded");
    let got: Vec<u64> = host
        .delivered
        .iter()
        .filter(|p| p.flow == FlowId(9))
        .map(|p| p.seq)
        .collect();
    assert_eq!(got.len(), 50, "the 400 ms pause must lose nothing: {got:?}");
    assert_eq!(rig.par_agent().metrics.guard_sessions, 1);
    assert_eq!(rig.par_agent().pool().used(), 0, "buffer fully drained");
}

#[test]
fn unreleased_guard_episode_expires_and_reclaims() {
    // A guard episode whose releasing BF never arrives (the host died
    // mid-nap) must not pin its reservation forever: the lifetime sweep
    // reclaims it, releasing the parked packets under `Expired`.
    let mut rig = Rig::new(
        ProtocolConfig::proposed(),
        80,
        Mobility::Stationary(Position::new(0.0, 0.0)),
    );
    rig.sim.run_until(SimTime::from_millis(100));
    // A standalone BI opens the guard episode with a 2 s lifetime…
    rig.uplink_from_mh(
        rig.par,
        ControlMsg::BufferInit(BufferInit {
            size: 20,
            start_time: SimDuration::ZERO,
            lifetime: SimDuration::from_secs(2),
        }),
    );
    // …then the host goes permanently silent.
    rig.sim.run_until(SimTime::from_millis(200));
    rig.sim.shared.radio.detach(rig.mh);
    let par = rig.par;
    let pcoa = rig.pcoa;
    for i in 0..8u64 {
        let at = SimTime::from_millis(300 + i * 50);
        let pkt = Packet::data(
            FlowId(7),
            i,
            doc_subnet(0).host(1),
            pcoa,
            ServiceClass::HighPriority,
            160,
            at,
        );
        rig.sim.shared.stats.record_sent(FlowId(7));
        rig.sim.schedule(
            at,
            par,
            NetMsg::LinkPacket {
                link: fh_net::LinkId(0),
                pkt,
            },
        );
    }
    rig.sim.run_until(SimTime::from_secs(1));
    assert_eq!(
        rig.par_agent().pool().used(),
        8,
        "traffic parked by the guard"
    );
    // Past the lifetime: the episode is swept, nothing stays pinned.
    rig.sim.run_until(SimTime::from_secs(4));
    let par_agent = rig.par_agent();
    assert_eq!(par_agent.metrics.guard_expired, 1);
    assert_eq!(par_agent.pool().used(), 0, "reservation reclaimed");
    assert!(!par_agent.pool().has_session(pcoa));
    let stats = &rig.sim.shared.stats;
    assert_eq!(stats.drops(fh_net::DropReason::Expired), 8);
    stats.assert_conservation();
}
