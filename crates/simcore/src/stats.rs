//! Statistics collection for simulation runs.
//!
//! Small, allocation-friendly accumulators used by every measurement in the
//! experiment harness:
//!
//! * [`Welford`] — streaming mean / variance / min / max.
//! * [`Histogram`] — fixed-width binned counts with quantile queries.
//! * [`TimeSeries`] — `(time, value)` samples with windowed-rate binning,
//!   used for throughput-over-time plots (Fig 4.14).
//!
//! # Examples
//!
//! ```
//! use fh_sim::stats::Welford;
//!
//! let mut w = Welford::new();
//! for x in [1.0, 2.0, 3.0, 4.0] {
//!     w.add(x);
//! }
//! assert_eq!(w.mean(), 2.5);
//! assert_eq!(w.count(), 4);
//! ```

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0.0 with fewer than 2 observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-width histogram over `[lo, hi)` with out-of-range overflow bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    width: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram of `n_bins` equal bins covering `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `n_bins == 0` or `hi <= lo`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, n_bins: usize) -> Self {
        assert!(n_bins > 0, "need at least one bin");
        assert!(hi > lo, "hi must exceed lo");
        Histogram {
            lo,
            width: (hi - lo) / n_bins as f64,
            bins: vec![0; n_bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Records one observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else {
            let idx = ((x - self.lo) / self.width) as usize;
            if idx >= self.bins.len() {
                self.overflow += 1;
            } else {
                self.bins[idx] += 1;
            }
        }
    }

    /// Total observations recorded (including out-of-range).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count that fell below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count that fell at or above the range end.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Iterator over `(bin_midpoint, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + (i as f64 + 0.5) * self.width, c))
    }

    /// Approximate 99.9th percentile (`None` when empty) — the tail
    /// metric storm/chaos sweeps report alongside p99.
    #[must_use]
    pub fn p999(&self) -> Option<f64> {
        self.quantile(0.999)
    }

    /// Merges another histogram into this one for cross-shard
    /// aggregation. Both histograms must share the same binning.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms were built with different `lo`,
    /// width, or bin count — merging mismatched binnings would silently
    /// misattribute counts.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.width == other.width && self.bins.len() == other.bins.len(),
            "cannot merge histograms with different binning"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
    }

    /// Approximate quantile `q` in `[0, 1]` (`None` when empty).
    ///
    /// Out-of-range mass is attributed to the range edges.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.lo);
        }
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.lo + (i as f64 + 1.0) * self.width);
            }
        }
        Some(self.lo + self.width * self.bins.len() as f64)
    }
}

/// A series of `(time, value)` samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    #[must_use]
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample. Samples are expected in nondecreasing time order.
    pub fn push(&mut self, t: SimTime, v: f64) {
        self.samples.push((t, v));
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the series has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Borrow of the raw samples.
    #[must_use]
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Sum of all sample values.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.samples.iter().map(|&(_, v)| v).sum()
    }

    /// Buckets sample *values* into fixed windows of `bin` width over
    /// `[start, end)` and returns per-window **rates** (sum / bin seconds).
    ///
    /// This is the throughput-over-time transform: push one sample per
    /// delivered byte count and read back bits-per-second per window at the
    /// call site.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is zero or `end <= start`.
    #[must_use]
    pub fn windowed_rate(
        &self,
        start: SimTime,
        end: SimTime,
        bin: SimDuration,
    ) -> Vec<(SimTime, f64)> {
        assert!(!bin.is_zero(), "bin width must be positive");
        assert!(end > start, "end must be after start");
        let n = (end - start).as_nanos().div_ceil(bin.as_nanos());
        let mut sums = vec![0.0; n as usize];
        for &(t, v) in &self.samples {
            if t < start || t >= end {
                continue;
            }
            let idx = ((t - start).as_nanos() / bin.as_nanos()) as usize;
            sums[idx] += v;
        }
        let secs = bin.as_secs_f64();
        sums.into_iter()
            .enumerate()
            .map(|(i, s)| (start + bin * i as u64, s / secs))
            .collect()
    }
}

impl FromIterator<(SimTime, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (SimTime, f64)>>(iter: I) -> Self {
        TimeSeries {
            samples: iter.into_iter().collect(),
        }
    }
}

impl Extend<(SimTime, f64)> for TimeSeries {
    fn extend<I: IntoIterator<Item = (SimTime, f64)>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_mean_and_variance() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.add(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn welford_empty_is_sane() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), None);
        assert_eq!(w.max(), None);
    }

    #[test]
    fn welford_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.add(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.6, 9.99, -1.0, 10.0, 25.0] {
            h.add(x);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        let counts: Vec<u64> = h.iter().map(|(_, c)| c).collect();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 2);
        assert_eq!(counts[9], 1);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.add(i as f64 + 0.5);
        }
        // Guarded lookups: a zero-sample histogram yields None, never panics.
        let Some(median) = h.quantile(0.5) else {
            panic!("populated histogram must have a median");
        };
        assert!((median - 50.0).abs() <= 1.0, "median {median}");
        let Some(p99) = h.quantile(0.99) else {
            panic!("populated histogram must have a p99");
        };
        assert!(p99 >= 98.0, "p99 {p99}");
    }

    #[test]
    fn empty_histogram_yields_no_quantiles() {
        // Regression: a zero-sample run (e.g. a sweep point where every
        // packet was dropped) must report "no data", not panic downstream.
        let h = Histogram::new(0.0, 1.0, 1);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), None, "q={q}");
        }
        // Out-of-range-only mass still counts as data.
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-5.0);
        assert_eq!(h.quantile(0.5), Some(0.0), "underflow mass pins to lo");
    }

    #[test]
    fn histogram_merge_matches_sequential() {
        let mut all = Histogram::new(0.0, 50.0, 25);
        let mut a = Histogram::new(0.0, 50.0, 25);
        let mut b = Histogram::new(0.0, 50.0, 25);
        for i in 0..200 {
            let x = (i as f64 * 0.37) % 60.0 - 2.0; // spills both edges
            all.add(x);
            if i % 2 == 0 {
                a.add(x);
            } else {
                b.add(x);
            }
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn histogram_merge_boundaries() {
        // Empty into empty: still empty.
        let mut e = Histogram::new(0.0, 1.0, 4);
        e.merge(&Histogram::new(0.0, 1.0, 4));
        assert_eq!(e.total(), 0);
        assert_eq!(e.quantile(0.5), None);

        // Single sample survives a merge with an empty peer.
        let mut single = Histogram::new(0.0, 10.0, 10);
        single.add(3.0);
        single.merge(&Histogram::new(0.0, 10.0, 10));
        assert_eq!(single.total(), 1);
        assert_eq!(single.quantile(0.5), Some(4.0));

        // All-equal samples: every quantile lands in the same bin.
        let mut eq = Histogram::new(0.0, 10.0, 10);
        let mut eq2 = Histogram::new(0.0, 10.0, 10);
        for _ in 0..50 {
            eq.add(5.5);
            eq2.add(5.5);
        }
        eq.merge(&eq2);
        assert_eq!(eq.total(), 100);
        assert_eq!(eq.quantile(0.01), eq.quantile(0.999));
        assert_eq!(eq.p999(), Some(6.0));
    }

    #[test]
    #[should_panic(expected = "different binning")]
    fn histogram_merge_rejects_mismatched_binning() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        a.merge(&Histogram::new(0.0, 10.0, 5));
    }

    #[test]
    fn p999_tracks_the_tail() {
        let mut h = Histogram::new(0.0, 1000.0, 1000);
        for i in 0..1000 {
            h.add(i as f64 + 0.5);
        }
        let Some(p999) = h.p999() else {
            panic!("populated histogram must have a p99.9");
        };
        assert!(p999 >= 999.0, "p99.9 {p999}");
        assert_eq!(Histogram::new(0.0, 1.0, 1).p999(), None);
    }

    #[test]
    fn time_series_windowed_rate() {
        let mut ts = TimeSeries::new();
        // 100 bytes at 0.1s, 0.2s, ... 0.9s
        for i in 1..10 {
            ts.push(SimTime::from_millis(i * 100), 100.0);
        }
        let rates = ts.windowed_rate(
            SimTime::ZERO,
            SimTime::from_secs(1),
            SimDuration::from_millis(500),
        );
        assert_eq!(rates.len(), 2);
        // First window catches samples at 0.1-0.4s (4 * 100 bytes / 0.5 s).
        assert!((rates[0].1 - 800.0).abs() < 1e-9);
        // Second window catches 0.5-0.9s (5 * 100 / 0.5).
        assert!((rates[1].1 - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn time_series_collect_and_sum() {
        let ts: TimeSeries = (0..5).map(|i| (SimTime::from_secs(i), i as f64)).collect();
        assert_eq!(ts.len(), 5);
        assert_eq!(ts.sum(), 10.0);
        assert!(!ts.is_empty());
    }
}
