//! # fh-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the foundation of the *Enhanced Buffer Management for Fast
//! Handover* reproduction: a small, single-threaded, fully deterministic
//! discrete-event simulator in the spirit of the ns-2 core that the original
//! thesis used. Everything above it (links, radios, Mobile IPv6, TCP, the
//! buffer-management scheme under study) is expressed as [`Actor`]s exchanging
//! time-stamped messages.
//!
//! ## Design
//!
//! * **Virtual time** — integer nanoseconds ([`SimTime`] / [`SimDuration`]);
//!   no floating-point clock drift, exact event ordering.
//! * **Determinism** — one global event queue with FIFO tie-breaking, and a
//!   self-contained xoshiro256++ RNG ([`Rng64`]) so identical seeds replay
//!   identical runs on every platform.
//! * **Actors + shared world** — protocol entities are actors; topology,
//!   radio environment and statistics live in a shared state value every
//!   actor can reach through its [`Ctx`].
//!
//! ## Example
//!
//! ```
//! use fh_sim::{Actor, Ctx, SimDuration, SimTime, Simulator};
//!
//! struct Counter;
//! impl Actor<(), u64> for Counter {
//!     fn handle(&mut self, ctx: &mut Ctx<'_, (), u64>, _msg: ()) {
//!         *ctx.shared += 1;
//!         if *ctx.shared < 3 {
//!             ctx.send_self(SimDuration::from_secs(1), ());
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(0u64, 7);
//! let id = sim.add_actor(Box::new(Counter));
//! sim.schedule(SimTime::ZERO, id, ());
//! sim.run();
//! assert_eq!(sim.shared, 3);
//! assert_eq!(sim.now(), SimTime::from_secs(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod backoff;
mod calendar;
mod queue;
mod rng;
pub mod shard;
pub mod stats;
mod time;

pub use actor::{Actor, ActorId, AsAny, Ctx, Simulator};
pub use backoff::Backoff;
pub use queue::{EventKey, EventQueue, QueueKind};
pub use rng::{derive_domain_seed, derive_seed, Rng64, DOMAIN_SALT};
pub use shard::{run_epochs, EpochReport, Outbox, ShardState};
pub use time::{SimDuration, SimTime};
