//! Calendar-queue backend for the pending-event set.
//!
//! A calendar queue (Brown 1988) hashes events into time-sliced buckets —
//! bucket `b` holds events whose *virtual bucket index* `vb = time / width`
//! satisfies `vb % nbuckets == b` — so push and pop are O(1) amortized when
//! the calendar is sized to the live population. This module implements the
//! backend behind [`EventQueue`](crate::EventQueue) when it is built with
//! [`QueueKind::Calendar`](crate::QueueKind); the public API, keyed lazy
//! cancellation, and generation stamps are shared with the binary-heap
//! backend, and the pop order is **bit-identical** to the heap: strictly
//! ascending `(time, seq)`, i.e. earliest time first, FIFO within a
//! timestamp.
//!
//! # How ordering stays exact
//!
//! Unlike textbook calendar queues that only approximate ordering within a
//! bucket, `pop` here returns the exact `(time, seq)` minimum:
//!
//! * Buckets are scanned in virtual-index order starting at the cursor (the
//!   virtual index of the last delivered event). Every live entry has
//!   `vb >= cursor`, so the first virtual bucket containing a live entry of
//!   its own "year" holds the global minimum time — entries in later buckets
//!   are at least one full bucket-width later.
//! * Within that bucket the scan selects the smallest `(time, seq)` pair, so
//!   simultaneous events are delivered in scheduling order.
//!
//! Entries more than one full calendar "year" (`nbuckets * width`) past the
//! cursor are staged in an `overflow` list and folded in when the bucketed
//! window drains; a rebuild re-sizes the calendar (bucket count from the
//! live population, bucket width from the event-time gaps near the head) so
//! far-future timers cannot force a sparse, slow scan. Cancelled entries are
//! purged lazily as the scan passes over them, exactly like the heap backend
//! purges stale markers as they surface.

use crate::queue::{Entry, Slot};

/// Smallest bucket count the calendar will shrink to.
const MIN_BUCKETS: usize = 16;
/// Largest bucket count a rebuild will grow to.
const MAX_BUCKETS: usize = 1 << 20;
/// Number of head events sampled when estimating the bucket width.
const WIDTH_SAMPLE: usize = 256;

/// Returns `true` if `entry` no longer owns its payload slot (the event was
/// cancelled, already delivered, or the slot was recycled by a later push).
fn is_stale<E>(entry: &Entry, slots: &[Slot<E>]) -> bool {
    let slot = &slots[entry.slot as usize];
    slot.seq != entry.seq || slot.event.is_none()
}

/// Inserts `entry` keeping the bucket sorted by *descending* `(time, seq)`,
/// so the bucket's minimum — the next candidate to deliver — is always at
/// the tail where it pops in O(1). Bursts of near-simultaneous events share
/// a bucket; without the order each pop would rescan the whole burst.
fn insert_sorted(bucket: &mut Vec<Entry>, entry: Entry) {
    let p = bucket.partition_point(|e| (e.time, e.seq) > (entry.time, entry.seq));
    bucket.insert(p, entry);
}

/// The bucketed event store. Payloads live in the [`EventQueue`]'s slot
/// arena; the calendar only shuffles 24-byte [`Entry`] records.
///
/// [`EventQueue`]: crate::EventQueue
#[derive(Debug, Clone)]
pub(crate) struct Calendar {
    /// Power-of-two array of year-sliced buckets.
    buckets: Vec<Vec<Entry>>,
    /// Entries scheduled beyond the current calendar year, folded in when
    /// the bucketed window drains.
    overflow: Vec<Entry>,
    /// Nanoseconds spanned by one bucket; always at least 1.
    width: u64,
    /// Virtual bucket index the next scan starts from. Every live entry has
    /// a virtual index `>= cursor_vb` (pop order is nondecreasing, and a
    /// rare past-time push moves the cursor back).
    cursor_vb: u64,
    /// Entries currently held in `buckets`, including stale ones.
    stored: usize,
    /// Smallest virtual bucket index of any entry in `overflow`
    /// (`u64::MAX` when none). The scan must never advance past this
    /// watermark without folding the overflow back in, or a staged entry
    /// could be delivered late.
    overflow_min_vb: u64,
    /// Cached location of the minimum live entry found by the last scan:
    /// `(physical bucket, index, seq)`. The seq stamp revalidates the slot
    /// before reuse; pushes of earlier events and cancels of the cached
    /// entry invalidate it.
    peeked: Option<(usize, usize, u64)>,
}

impl Calendar {
    pub(crate) fn new() -> Self {
        Calendar {
            buckets: vec![Vec::new(); MIN_BUCKETS],
            overflow: Vec::new(),
            // ~1 ms start; the first rebuild re-derives it from real gaps.
            width: 1 << 20,
            cursor_vb: 0,
            stored: 0,
            overflow_min_vb: u64::MAX,
            peeked: None,
        }
    }

    /// One past the last virtual index that maps into `buckets`.
    fn horizon(&self) -> u64 {
        self.cursor_vb.saturating_add(self.buckets.len() as u64)
    }

    fn vb_of(&self, entry: &Entry) -> u64 {
        entry.time.as_nanos() / self.width
    }

    pub(crate) fn push<E>(&mut self, entry: Entry, slots: &[Slot<E>]) {
        if self.stored + self.overflow.len() >= 2 * self.buckets.len()
            && self.buckets.len() < MAX_BUCKETS
        {
            self.rebuild(slots);
        }
        let vb = self.vb_of(&entry);
        if vb < self.cursor_vb {
            // Past-time push: move the scan start back so it is not missed.
            self.cursor_vb = vb;
        }
        if let Some((b, i, _)) = self.peeked {
            let cached = self.buckets[b][i];
            if (entry.time, entry.seq) < (cached.time, cached.seq) {
                self.peeked = None;
            }
        }
        if vb < self.horizon() {
            let n = self.buckets.len() as u64;
            insert_sorted(&mut self.buckets[(vb % n) as usize], entry);
            self.stored += 1;
        } else {
            self.overflow.push(entry);
            self.overflow_min_vb = self.overflow_min_vb.min(vb);
        }
    }

    /// Invalidates the peek cache if the cancelled push owned it. The entry
    /// itself stays behind as a stale marker, purged when a scan passes it.
    pub(crate) fn on_cancel(&mut self, seq: u64) {
        if let Some((_, _, cached_seq)) = self.peeked {
            if cached_seq == seq {
                self.peeked = None;
            }
        }
    }

    /// Returns the minimum live entry without removing it.
    pub(crate) fn peek<E>(&mut self, slots: &[Slot<E>]) -> Option<Entry> {
        if let Some((b, i, seq)) = self.peeked {
            if let Some(e) = self.buckets[b].get(i) {
                if e.seq == seq {
                    return Some(*e);
                }
            }
            self.peeked = None;
        }
        let (b, i) = self.scan(slots)?;
        let entry = self.buckets[b][i];
        self.peeked = Some((b, i, entry.seq));
        Some(entry)
    }

    /// Removes and returns the minimum live entry.
    pub(crate) fn pop_min<E>(&mut self, slots: &[Slot<E>]) -> Option<Entry> {
        let (b, i) = match self.peeked.take() {
            Some((b, i, seq)) if self.buckets[b].get(i).is_some_and(|e| e.seq == seq) => (b, i),
            _ => self.scan(slots)?,
        };
        let entry = self.buckets[b].swap_remove(i);
        self.stored -= 1;
        if (self.stored + self.overflow.len()) * 8 < self.buckets.len()
            && self.buckets.len() > MIN_BUCKETS
        {
            self.rebuild(slots);
        }
        Some(entry)
    }

    pub(crate) fn clear(&mut self) {
        self.buckets.clear();
        self.buckets.resize(MIN_BUCKETS, Vec::new());
        self.overflow.clear();
        self.width = 1 << 20;
        self.cursor_vb = 0;
        self.stored = 0;
        self.overflow_min_vb = u64::MAX;
        self.peeked = None;
    }

    /// Moves every overflow entry whose virtual index now falls inside the
    /// bucketed window into its bucket, recomputing the watermark. Cheaper
    /// than a rebuild (no sort, no re-sizing) and guaranteed to migrate at
    /// least one entry whenever the watermark lies inside the window.
    fn fold_overflow(&mut self) {
        let horizon = self.horizon();
        let n = self.buckets.len() as u64;
        self.overflow_min_vb = u64::MAX;
        let mut i = 0;
        while i < self.overflow.len() {
            let vb = self.vb_of(&self.overflow[i]);
            if vb < horizon {
                let entry = self.overflow.swap_remove(i);
                insert_sorted(&mut self.buckets[(vb % n) as usize], entry);
                self.stored += 1;
            } else {
                self.overflow_min_vb = self.overflow_min_vb.min(vb);
                i += 1;
            }
        }
    }

    /// Finds the `(bucket, index)` of the minimum live entry, purging stale
    /// entries the scan passes over. Advances `cursor_vb` to the found
    /// entry's virtual index.
    fn scan<E>(&mut self, slots: &[Slot<E>]) -> Option<(usize, usize)> {
        self.peeked = None;
        loop {
            let n = self.buckets.len() as u64;
            let mut hit_watermark = false;
            let mut checked = 0u64;
            while checked < n {
                let Some(vb) = self.cursor_vb.checked_add(checked) else {
                    break; // virtual index space exhausted; rebuild below
                };
                if vb >= self.overflow_min_vb {
                    hit_watermark = true;
                    break; // an overflow entry is due this year; fold it in
                }
                checked += 1;
                let bucket = &mut self.buckets[(vb % n) as usize];
                // Descending (time, seq) order puts the bucket's minimum at
                // the tail, and the tail's year is the smallest year in the
                // bucket. Pop stale tails of this year lazily; a live tail
                // of this year is the global minimum, and a tail of a later
                // year means nothing is due at `vb`.
                while let Some(e) = bucket.last() {
                    if e.time.as_nanos() / self.width != vb {
                        break;
                    }
                    if is_stale(e, slots) {
                        bucket.pop();
                        self.stored -= 1;
                        continue;
                    }
                    self.cursor_vb = vb;
                    return Some(((vb % n) as usize, bucket.len() - 1));
                }
            }
            if hit_watermark {
                // An overflow entry is due inside the window. Fold the
                // overflow in place of a full rebuild: the watermark entry
                // has `vb < horizon`, so at least one entry migrates into a
                // bucket at `vb >= cursor_vb` and the next pass finds it
                // (or a live entry before it).
                self.fold_overflow();
                continue;
            }
            if self.stored == 0 && !self.overflow.is_empty() {
                // The bucketed window drained and the next event lies
                // beyond it — the common "simulated time jumps to the next
                // timer" case. Jump the cursor straight to the overflow
                // watermark instead of rebuilding: no sort, no realloc,
                // O(|overflow|), and the watermark entry lands inside the
                // new window so the next pass terminates.
                self.cursor_vb = self.overflow_min_vb;
                self.fold_overflow();
                continue;
            }
            // Window exhausted: either truly empty, or stale entries from
            // other years still occupy buckets. A rebuild re-centers the
            // calendar on the live population; if nothing survives the
            // stale purge the queue is empty.
            if !self.rebuild(slots) {
                return None;
            }
        }
    }

    /// Re-sizes and re-fills the calendar from every held entry, dropping
    /// stale ones. Returns `false` if no live entries remain.
    ///
    /// The bucket count tracks the live population (one entry per bucket on
    /// average) and the bucket width is estimated from the time gaps among
    /// the earliest [`WIDTH_SAMPLE`] events — a deliberately *small* width:
    /// clustered-head workloads stay dense (fast scans) while far-future
    /// stragglers wait in `overflow` instead of stretching the buckets.
    fn rebuild<E>(&mut self, slots: &[Slot<E>]) -> bool {
        self.peeked = None;
        let mut all: Vec<Entry> = Vec::with_capacity(self.stored + self.overflow.len());
        for bucket in &mut self.buckets {
            all.append(bucket);
        }
        all.append(&mut self.overflow);
        all.retain(|e| !is_stale(e, slots));
        self.stored = 0;
        if all.is_empty() {
            return false;
        }

        let n = all.len();
        let nbuckets = n.next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        // One descending sort serves both the width estimate and the
        // refill: distributing a descending sequence leaves every bucket
        // in the descending order `insert_sorted` maintains.
        all.sort_unstable_by_key(|e| std::cmp::Reverse((e.time, e.seq)));
        let min_t = all[n - 1].time.as_nanos();
        let k = n.min(WIDTH_SAMPLE);
        let head_span = all[n - k].time.as_nanos() - min_t;
        // A tie-burst at the head gives a zero span; fall back to the
        // population-wide average gap so one burst cannot collapse the
        // width to a nanosecond and strand every later event in overflow.
        let est = if head_span > 0 {
            head_span / k as u64
        } else {
            (all[0].time.as_nanos() - min_t) / n as u64
        };
        self.width = est.max(1);

        if self.buckets.len() == nbuckets {
            for bucket in &mut self.buckets {
                bucket.clear();
            }
        } else {
            self.buckets = vec![Vec::new(); nbuckets];
        }
        self.cursor_vb = min_t / self.width;
        self.overflow_min_vb = u64::MAX;
        let horizon = self.horizon();
        for entry in all {
            let vb = self.vb_of(&entry);
            if vb < horizon {
                self.buckets[(vb % nbuckets as u64) as usize].push(entry);
                self.stored += 1;
            } else {
                self.overflow.push(entry);
                self.overflow_min_vb = self.overflow_min_vb.min(vb);
            }
        }
        true
    }
}
