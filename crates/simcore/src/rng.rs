//! Deterministic pseudo-random number generation.
//!
//! The kernel ships its own small generator — **xoshiro256++** seeded through
//! **splitmix64** — instead of using the `rand` crate inside simulations.
//! Simulation results in this repository are compared against published
//! figures, so runs must be bit-stable across platforms, Rust releases and
//! `rand` version bumps. (Dev-dependencies still use `rand`/`proptest` for
//! test-input generation, where stability does not matter.)
//!
//! # Examples
//!
//! ```
//! use fh_sim::Rng64;
//!
//! let mut a = Rng64::seed_from(42);
//! let mut b = Rng64::seed_from(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! let x = a.gen_range_f64(0.0, 1.0);
//! assert!((0.0..1.0).contains(&x));
//! ```

use serde::{Deserialize, Serialize};

/// A deterministic xoshiro256++ pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rng64 {
    state: [u64; 4],
}

#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed for the `index`-th point of a sweep from a base seed.
///
/// A single splitmix64 step over `base ^ f(index)`, so every point of a
/// parameter sweep gets a statistically independent seed that depends only
/// on `(base, index)` — never on which worker thread runs the point or in
/// what order. This is what keeps parallel sweeps bit-identical to
/// sequential ones.
///
/// # Salt namespaces
///
/// For a fixed `base`, `derive_seed` is **injective in `index`**: the
/// golden-ratio multiplier is odd (hence invertible mod 2⁶⁴) and
/// splitmix64 is a bijection, so two indices collide if and only if they
/// are equal. Derived streams therefore stay disjoint exactly as long as
/// every caller draws its indices from a reserved range. The ranges in
/// use:
///
/// | range                                | owner                            |
/// |--------------------------------------|----------------------------------|
/// | `0 .. 0x0100_0000`                   | sweep/grid point indices         |
/// | `0xFA00_0000 .. 0xFB00_0000`         | per-link fault-stream salts      |
/// | `DOMAIN_SALT | d` (`d < 2^32`)       | per-domain kernel streams        |
///
/// New salt families must claim a range outside all of the above.
///
/// # Examples
///
/// ```
/// use fh_sim::derive_seed;
///
/// assert_eq!(derive_seed(2003, 5), derive_seed(2003, 5));
/// assert_ne!(derive_seed(2003, 5), derive_seed(2003, 6));
/// assert_ne!(derive_seed(2003, 5), derive_seed(2004, 5));
/// ```
#[must_use]
pub fn derive_seed(base: u64, index: u64) -> u64 {
    // Golden-ratio spread of the index keeps neighbouring points far apart
    // in the splitmix64 input space.
    let mut x = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut x)
}

/// The salt dimension reserved for per-domain RNG lineages in the sharded
/// metro kernel: bit 40 set, domain index in the low 32 bits.
///
/// Point indices stay below 2²⁴ and the fault-link salts live in
/// `0xFAxx_xxxx`, both strictly below 2³², so a domain index (< 2³²)
/// OR-ed onto this constant can never equal either — and since
/// [`derive_seed`] is injective in its index for a fixed base, the
/// derived per-domain streams can never collide with per-point or
/// per-link streams. `tests::domain_salts_never_collide_with_other_namespaces`
/// pins this.
pub const DOMAIN_SALT: u64 = 1 << 40;

/// Derives the RNG seed for domain `domain` of a sharded run.
///
/// Pure in `(base, domain)` — independent of thread count, epoch
/// schedule, and every other domain — so sharded runs replay
/// bit-identically at any parallelism, exactly like sweep points.
///
/// # Examples
///
/// ```
/// use fh_sim::{derive_domain_seed, derive_seed};
///
/// assert_eq!(derive_domain_seed(2003, 1), derive_domain_seed(2003, 1));
/// assert_ne!(derive_domain_seed(2003, 0), derive_domain_seed(2003, 1));
/// // Domain 0 is not the same stream as sweep point 0.
/// assert_ne!(derive_domain_seed(2003, 0), derive_seed(2003, 0));
/// ```
#[must_use]
pub fn derive_domain_seed(base: u64, domain: u32) -> u64 {
    derive_seed(base, DOMAIN_SALT | u64::from(domain))
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Any seed is valid; the state is expanded with splitmix64 so even
    /// `seed = 0` yields a well-mixed stream.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut s = seed;
        Rng64 {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Returns the next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits give a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed integer in `[0, n)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the result is
    /// unbiased for every `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_range_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range_u64 requires n > 0");
        // Lemire rejection sampling.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly distributed float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range");
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Draws from an exponential distribution with the given mean.
    ///
    /// Useful for Poisson packet arrival processes.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        // Inverse-CDF; (1 - u) avoids ln(0).
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Derives an independent child generator (for per-actor streams).
    ///
    /// Each call advances this generator, so successive children differ.
    #[must_use]
    pub fn fork(&mut self) -> Rng64 {
        Rng64::seed_from(self.next_u64())
    }
}

impl Default for Rng64 {
    /// Equivalent to `Rng64::seed_from(0)`.
    fn default() -> Self {
        Rng64::seed_from(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::seed_from(0xDEAD_BEEF);
        let mut b = Rng64::seed_from(0xDEAD_BEEF);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::seed_from(1);
        let mut b = Rng64::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be practically disjoint");
    }

    #[test]
    fn known_answer_vector_is_stable() {
        // Regression pin: if this changes, every experiment table changes.
        let mut r = Rng64::seed_from(42);
        let v: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = Rng64::seed_from(42);
        let v2: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(v, v2);
        assert_ne!(v[0], v[1]);
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = Rng64::seed_from(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_u64_respects_bounds_and_hits_all() {
        let mut r = Rng64::seed_from(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let x = r.gen_range_u64(5);
            assert!(x < 5);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn gen_range_zero_panics() {
        Rng64::seed_from(0).gen_range_u64(0);
    }

    #[test]
    fn gen_bool_probability_is_roughly_right() {
        let mut r = Rng64::seed_from(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn gen_exp_mean_is_roughly_right() {
        let mut r = Rng64::seed_from(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen_exp(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "got {mean}");
    }

    #[test]
    fn forked_children_are_independent() {
        let mut parent = Rng64::seed_from(5);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn default_is_seed_zero() {
        assert_eq!(Rng64::default(), Rng64::seed_from(0));
    }

    #[test]
    fn derive_seed_is_pure_and_spread() {
        // Purity: same inputs, same seed — this is what parallel sweeps
        // rely on for thread-count-independent results.
        assert_eq!(derive_seed(2003, 17), derive_seed(2003, 17));
        // Neighbouring points and bases all land on distinct seeds.
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 1, 2003, u64::MAX] {
            for index in 0..64u64 {
                assert!(seen.insert(derive_seed(base, index)));
            }
        }
    }

    #[test]
    fn derive_seed_differs_from_base() {
        // Point 0 must not silently reuse the base seed itself.
        assert_ne!(derive_seed(2003, 0), 2003);
    }

    #[test]
    fn domain_salts_never_collide_with_other_namespaces() {
        // Regression pin for the salt-namespace map in the derive_seed
        // docs: per-domain streams must stay disjoint from sweep-point
        // streams and from the per-link fault salts under every base
        // seed. 4096 points × 4096 domains × the four live fault salts,
        // all distinct.
        let fault_salts = [0xFA01_0000u64, 0xFA02_0000, 0xFA03_0000, 0xFA04_0000];
        for base in [0u64, 2003, 7919, u64::MAX] {
            let mut seen = std::collections::HashSet::new();
            for index in 0..4096u64 {
                assert!(seen.insert(derive_seed(base, index)), "point {index}");
            }
            for &salt in &fault_salts {
                assert!(seen.insert(derive_seed(base, salt)), "fault salt {salt:#x}");
            }
            for domain in 0..4096u32 {
                assert!(
                    seen.insert(derive_domain_seed(base, domain)),
                    "domain {domain} collided under base {base}"
                );
            }
        }
    }

    #[test]
    fn domain_salt_index_is_structurally_disjoint() {
        // The namespace argument is structural, not statistical: the
        // index DOMAIN_SALT | d cannot equal a point index (< 2^24) or a
        // fault salt (< 2^32) because bit 40 is set — and derive_seed is
        // injective in the index for a fixed base.
        assert_eq!(DOMAIN_SALT, 1 << 40);
        for d in [0u32, 1, u32::MAX] {
            let idx = DOMAIN_SALT | u64::from(d);
            assert!(idx >= 1 << 40);
            assert!(idx > 0xFB00_0000, "must clear the fault-salt range");
        }
    }
}
