//! Virtual time for the discrete-event kernel.
//!
//! Simulated time is kept as an integer number of **nanoseconds** since the
//! start of the simulation. Integer time makes event ordering exact and the
//! whole simulation bit-reproducible; nanosecond resolution is fine enough
//! for sub-microsecond serialization delays on multi-gigabit links while
//! still allowing simulations of several simulated years in a `u64`.
//!
//! Two newtypes are provided, mirroring `std::time`:
//!
//! * [`SimTime`] — an *instant* on the simulation clock.
//! * [`SimDuration`] — a *span* between two instants.
//!
//! # Examples
//!
//! ```
//! use fh_sim::{SimDuration, SimTime};
//!
//! let start = SimTime::ZERO;
//! let t = start + SimDuration::from_millis(200);
//! assert_eq!(t.as_nanos(), 200_000_000);
//! assert_eq!(t - start, SimDuration::from_millis(200));
//! assert!(t > start);
//! ```

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since simulation start.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds since simulation start,
    /// saturating at [`SimTime::MAX`] on overflow.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us.saturating_mul(1_000))
    }

    /// Creates an instant from milliseconds since simulation start,
    /// saturating at [`SimTime::MAX`] on overflow.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000_000))
    }

    /// Creates an instant from whole seconds since simulation start,
    /// saturating at [`SimTime::MAX`] on overflow.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s.saturating_mul(1_000_000_000))
    }

    /// Creates an instant from fractional seconds since simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(SimDuration::from_secs_f64(secs).as_nanos())
    }

    /// Raw nanoseconds since simulation start.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This instant expressed in fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`, or [`SimDuration::ZERO`] if
    /// `earlier` is actually later.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span from microseconds, saturating at
    /// [`SimDuration::MAX`] on overflow.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us.saturating_mul(1_000))
    }

    /// Creates a span from milliseconds, saturating at
    /// [`SimDuration::MAX`] on overflow.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// Creates a span from whole seconds, saturating at
    /// [`SimDuration::MAX`] on overflow.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(1_000_000_000))
    }

    /// Creates a span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        let ns = secs * 1e9;
        assert!(ns <= u64::MAX as f64, "duration overflows u64 nanoseconds");
        SimDuration(ns.round() as u64)
    }

    /// Raw nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span expressed in fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span expressed in fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if this is the zero-length span.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(rhs.0).map(SimDuration)
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the span by a non-negative factor, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative, NaN, or the result overflows.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "factor must be finite and non-negative, got {factor}"
        );
        let ns = self.0 as f64 * factor;
        assert!(ns <= u64::MAX as f64, "duration overflows u64 nanoseconds");
        SimDuration(ns.round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl From<SimDuration> for SimTime {
    fn from(d: SimDuration) -> SimTime {
        SimTime(d.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2_000));
        assert_eq!(SimDuration::from_millis(2), SimDuration::from_micros(2_000));
        assert_eq!(SimDuration::from_micros(2), SimDuration::from_nanos(2_000));
    }

    #[test]
    fn instant_plus_span_arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
        assert_eq!(t - SimDuration::from_millis(15), SimTime::ZERO);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn fractional_second_round_trip() {
        let d = SimDuration::from_secs_f64(0.123_456_789);
        assert_eq!(d.as_nanos(), 123_456_789);
        assert!((d.as_secs_f64() - 0.123_456_789).abs() < 1e-12);
        let t = SimTime::from_secs_f64(2.5);
        assert_eq!(t, SimTime::from_millis(2_500));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(1.5), SimDuration::from_millis(15));
    }

    #[test]
    fn checked_ops_detect_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert!(SimDuration::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimTime::from_millis(1_500).to_string(), "1.500000s");
    }

    #[test]
    fn unit_constructors_saturate_at_max() {
        // One past the largest exactly-representable input saturates instead
        // of wrapping (release builds would otherwise wrap silently).
        assert_eq!(SimTime::from_micros(u64::MAX / 1_000 + 1), SimTime::MAX);
        assert_eq!(SimTime::from_millis(u64::MAX / 1_000_000 + 1), SimTime::MAX);
        assert_eq!(
            SimTime::from_secs(u64::MAX / 1_000_000_000 + 1),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_micros(u64::MAX / 1_000 + 1),
            SimDuration::MAX
        );
        assert_eq!(
            SimDuration::from_millis(u64::MAX / 1_000_000 + 1),
            SimDuration::MAX
        );
        assert_eq!(
            SimDuration::from_secs(u64::MAX / 1_000_000_000 + 1),
            SimDuration::MAX
        );
        assert_eq!(SimTime::from_micros(u64::MAX), SimTime::MAX);
        assert_eq!(SimDuration::from_secs(u64::MAX), SimDuration::MAX);
    }

    #[test]
    fn unit_constructors_exact_at_boundary() {
        // The largest input that still fits must not saturate.
        let us = u64::MAX / 1_000;
        assert_eq!(SimTime::from_micros(us).as_nanos(), us * 1_000);
        let ms = u64::MAX / 1_000_000;
        assert_eq!(SimDuration::from_millis(ms).as_nanos(), ms * 1_000_000);
        let secs = u64::MAX / 1_000_000_000;
        assert_eq!(
            SimDuration::from_secs(secs).as_nanos(),
            secs * 1_000_000_000
        );
    }

    #[test]
    fn ordering_is_chronological() {
        let mut ts = vec![
            SimTime::from_secs(3),
            SimTime::ZERO,
            SimTime::from_millis(1),
        ];
        ts.sort();
        assert_eq!(
            ts,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(1),
                SimTime::from_secs(3)
            ]
        );
    }
}
