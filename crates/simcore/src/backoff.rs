//! Exponential-backoff schedules for protocol retransmission timers.
//!
//! Signaling hardening (lost RtSolPr/HI/FNA recovery) needs one small piece
//! of arithmetic shared by every state machine: *how long to wait before the
//! n-th retransmission*. [`Backoff`] keeps that arithmetic pure and
//! deterministic — no RNG, no wall clock — so retry behaviour is identical
//! across runs and thread counts.
//!
//! The schedule is the classic doubling ladder: attempt `n` waits
//! `initial * factor^n`, clamped to `max_delay`, and a sender gives up after
//! `max_retries` retransmissions (so `1 + max_retries` transmissions total).
//!
//! # Examples
//!
//! ```
//! use fh_sim::{Backoff, SimDuration};
//!
//! let b = Backoff::new(SimDuration::from_millis(200), 2, SimDuration::from_secs(2), 3);
//! assert_eq!(b.delay(0), SimDuration::from_millis(200));
//! assert_eq!(b.delay(1), SimDuration::from_millis(400));
//! assert_eq!(b.delay(4), SimDuration::from_secs(2)); // capped
//! assert!(!b.exhausted(3));
//! assert!(b.exhausted(4));
//! ```

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// A deterministic, capped exponential-backoff schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Backoff {
    /// Delay before the first retransmission.
    pub initial: SimDuration,
    /// Multiplier applied per attempt (`2` doubles every retry).
    pub factor: u32,
    /// Upper bound on any single delay.
    pub max_delay: SimDuration,
    /// Retransmissions allowed before the sender gives up.
    pub max_retries: u32,
}

impl Backoff {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero (the schedule would not be monotone) or
    /// `initial` exceeds `max_delay`.
    #[must_use]
    pub fn new(
        initial: SimDuration,
        factor: u32,
        max_delay: SimDuration,
        max_retries: u32,
    ) -> Self {
        assert!(factor >= 1, "backoff factor must be at least 1");
        assert!(
            initial <= max_delay,
            "initial delay must not exceed the cap"
        );
        Backoff {
            initial,
            factor,
            max_delay,
            max_retries,
        }
    }

    /// The wait before retransmission `attempt` (zero-based).
    ///
    /// `initial * factor^attempt`, saturating, clamped to `max_delay`. The
    /// sequence is monotone non-decreasing and capped — the two properties
    /// retry loops rely on for bounded, ordered timer arming.
    #[must_use]
    pub fn delay(&self, attempt: u32) -> SimDuration {
        let scale = u64::from(self.factor).saturating_pow(attempt);
        let ns = self.initial.as_nanos().saturating_mul(scale);
        SimDuration::from_nanos(ns).min(self.max_delay)
    }

    /// `true` once `sent` transmissions have gone unanswered and no retry
    /// budget remains (`sent` counts the initial transmission too).
    #[must_use]
    pub fn exhausted(&self, sent: u32) -> bool {
        sent > self.max_retries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_until_the_cap() {
        let b = Backoff::new(
            SimDuration::from_millis(100),
            2,
            SimDuration::from_millis(500),
            5,
        );
        assert_eq!(b.delay(0), SimDuration::from_millis(100));
        assert_eq!(b.delay(1), SimDuration::from_millis(200));
        assert_eq!(b.delay(2), SimDuration::from_millis(400));
        assert_eq!(b.delay(3), SimDuration::from_millis(500));
        assert_eq!(b.delay(30), SimDuration::from_millis(500));
    }

    #[test]
    fn monotone_and_capped_for_all_attempts() {
        let b = Backoff::new(
            SimDuration::from_millis(37),
            3,
            SimDuration::from_secs(4),
            8,
        );
        let mut prev = SimDuration::ZERO;
        for attempt in 0..64 {
            let d = b.delay(attempt);
            assert!(d >= prev, "delay must never shrink");
            assert!(d <= b.max_delay, "delay must respect the cap");
            prev = d;
        }
        assert_eq!(prev, b.max_delay, "large attempts saturate at the cap");
    }

    #[test]
    fn huge_attempt_does_not_overflow() {
        let b = Backoff::new(
            SimDuration::from_secs(1),
            u32::MAX,
            SimDuration::from_secs(30),
            2,
        );
        assert_eq!(b.delay(u32::MAX), SimDuration::from_secs(30));
    }

    #[test]
    fn exhaustion_counts_the_initial_transmission() {
        let b = Backoff::new(
            SimDuration::from_millis(200),
            2,
            SimDuration::from_secs(2),
            3,
        );
        // initial + 3 retransmissions = 4 sends allowed.
        for sent in 0..=3 {
            assert!(!b.exhausted(sent), "budget remains after {sent} sends");
        }
        assert!(b.exhausted(4));
    }

    #[test]
    fn zero_retries_gives_up_immediately() {
        let b = Backoff::new(
            SimDuration::from_millis(200),
            2,
            SimDuration::from_secs(2),
            0,
        );
        assert!(b.exhausted(1), "one unanswered send exhausts the budget");
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn zero_factor_panics() {
        let _ = Backoff::new(SimDuration::from_millis(1), 0, SimDuration::from_secs(1), 1);
    }

    #[test]
    #[should_panic(expected = "cap")]
    fn initial_beyond_cap_panics() {
        let _ = Backoff::new(SimDuration::from_secs(2), 2, SimDuration::from_secs(1), 1);
    }
}
