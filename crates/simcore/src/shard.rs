//! Conservative-lookahead epoch execution for sharded simulations.
//!
//! A sharded simulation splits one world into independent *shards* (in the
//! metro kernel: one per MAP domain), each owning its own event queue, RNG
//! lineage and statistics. Shards interact only through time-stamped
//! messages whose transit latency is bounded below by a fixed **lookahead**
//! `L` — the minimum latency of every boundary link.
//!
//! That bound is what makes deterministic intra-run parallelism possible:
//! if simulated time is cut into epochs `[kL, (k+1)L)`, any message sent
//! during epoch `k` arrives at `send_time + latency ≥ kL + L = (k+1)L`,
//! i.e. strictly after the epoch in which it was sent. Every shard can
//! therefore burn through epoch `k` with **no** knowledge of its peers, the
//! runtime exchanges mailboxes at the epoch barrier, and the composite run
//! is byte-identical whether shards execute one at a time or on a scoped
//! thread pool — the same discipline that makes sweep points
//! thread-invariant, applied *inside* a single run.
//!
//! Determinism rests on three rules, all enforced here:
//!
//! 1. Within an epoch a shard sees only its own state plus the messages
//!    delivered at earlier barriers (shards are `&mut`-disjoint, so the
//!    compiler enforces the isolation).
//! 2. Every message arrival must respect the lookahead; [`run_epochs`]
//!    panics on any message that would arrive inside the epoch that sent
//!    it, so a too-small lookahead is a loud bug, never a silent reorder.
//! 3. Mailboxes drain at the barrier in (source shard, send order) order —
//!    a total order independent of which worker ran which shard.

use std::time::{Duration, Instant};

use crate::time::{SimDuration, SimTime};

/// One shard of a partitioned simulation: a self-contained event loop that
/// can advance to a time horizon and exchange timed messages with peers.
pub trait ShardState: Send {
    /// The cross-shard message type.
    type Msg: Send;

    /// Delivers a message from a peer shard, to take effect at `arrival`.
    /// Called only at epoch barriers; `arrival` is never earlier than any
    /// event the shard has already processed.
    fn accept(&mut self, arrival: SimTime, msg: Self::Msg);

    /// Processes every local event strictly before `horizon`, pushing any
    /// cross-shard sends into `outbox`. After returning, the shard's
    /// notion of "now" is `horizon`.
    fn advance(&mut self, horizon: SimTime, outbox: &mut Outbox<Self::Msg>);

    /// The timestamp of the earliest pending local event, or `None` when
    /// the shard is idle. Used for early termination once every shard is
    /// quiet and no messages are in flight.
    fn next_event_time(&mut self) -> Option<SimTime>;
}

/// A shard's outgoing mailbox for the current epoch.
///
/// Messages are drained at the epoch barrier in push order, source shard
/// by source shard — the delivery order is part of the deterministic
/// contract, so it never depends on worker scheduling.
#[derive(Debug)]
pub struct Outbox<M> {
    msgs: Vec<(u32, SimTime, M)>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox { msgs: Vec::new() }
    }
}

impl<M> Outbox<M> {
    /// Queues `msg` for shard `dst`, arriving at `arrival`.
    ///
    /// `arrival` must honour the executor's lookahead (`send_time +
    /// boundary latency`, with latency ≥ lookahead); [`run_epochs`]
    /// verifies this at the barrier.
    pub fn send(&mut self, dst: usize, arrival: SimTime, msg: M) {
        let dst = u32::try_from(dst).expect("shard index fits u32");
        self.msgs.push((dst, arrival, msg));
    }

    /// Number of queued messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// `true` when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }
}

/// What one [`run_epochs`] call did: barrier counts, message traffic and
/// the wall-clock decomposition the scaling benches report.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpochReport {
    /// Epochs executed (barriers crossed). 1 for single-shard runs, which
    /// bypass the epoch loop entirely.
    pub epochs: u64,
    /// Cross-shard messages exchanged at barriers.
    pub messages: u64,
    /// Largest single-epoch mailbox exchanged, in messages.
    pub peak_epoch_messages: u64,
    /// Total shard-advance work, summed over every shard and epoch — the
    /// wall-clock a single-queue execution of the same work would need.
    pub busy: Duration,
    /// The parallel critical path: per epoch, only the slowest shard
    /// gates the barrier, so this sums `max` over shards instead of the
    /// total. `busy / critical` is the speedup an ideal machine with one
    /// core per shard would observe, measured — not modelled — from the
    /// actual run.
    pub critical: Duration,
    /// Wall-clock spent draining mailboxes at barriers (sequential).
    pub exchange: Duration,
}

impl EpochReport {
    /// `busy / critical`: the measured speedup ceiling for this run on a
    /// machine with at least one core per shard. 1.0 for single-shard
    /// runs.
    #[must_use]
    pub fn critical_path_speedup(&self) -> f64 {
        let c = self.critical.as_secs_f64() + self.exchange.as_secs_f64();
        if c <= 0.0 {
            1.0
        } else {
            self.busy.as_secs_f64() / c
        }
    }
}

/// Runs `shards` to `horizon` in lock-stepped epochs of length
/// `lookahead`, fanning the per-epoch shard work across up to `threads`
/// scoped worker threads.
///
/// The output (every shard's final state) is **byte-identical at any
/// thread count**: shards are data-independent within an epoch, and the
/// barrier drains mailboxes in (source shard, send order) order. With one
/// shard the epoch machinery is bypassed and the shard advances straight
/// to `horizon` — the single-queue kernel, unchanged.
///
/// Early exit: once every shard reports no pending events and a barrier
/// exchanged no messages, the remaining epochs are skipped (nothing can
/// create work out of thin air).
///
/// # Panics
///
/// * If `lookahead` is zero while more than one shard is present — zero
///   lookahead admits no conservative parallel schedule.
/// * If any message would arrive before the epoch barrier it was handed
///   over at (a boundary link faster than the declared lookahead).
/// * If a message addresses a shard that does not exist.
/// * Worker panics propagate to the caller, like a sequential loop.
pub fn run_epochs<S: ShardState>(
    shards: &mut [S],
    lookahead: SimDuration,
    horizon: SimTime,
    threads: usize,
) -> EpochReport {
    let mut report = EpochReport::default();
    let n = shards.len();
    if n == 0 {
        return report;
    }
    if n == 1 {
        // Single shard: no boundaries, no barriers — the classic kernel.
        let start = Instant::now();
        let mut outbox = Outbox::default();
        shards[0].advance(horizon, &mut outbox);
        assert!(
            outbox.is_empty(),
            "single-shard run produced cross-shard messages"
        );
        report.epochs = 1;
        report.busy = start.elapsed();
        report.critical = report.busy;
        return report;
    }
    assert!(
        !lookahead.is_zero(),
        "conservative lookahead must be > 0 to run {n} shards in parallel"
    );

    let mut outboxes: Vec<Outbox<S::Msg>> = Vec::with_capacity(n);
    outboxes.resize_with(n, Outbox::default);
    let mut epoch_start = SimTime::ZERO;
    while epoch_start < horizon {
        let epoch_end = epoch_start
            .checked_add(lookahead)
            .unwrap_or(SimTime::MAX)
            .min(horizon);

        // Advance every shard through [epoch_start, epoch_end) — the only
        // parallel region. Shards are handed to workers in contiguous
        // chunks; the partition cannot influence results because shards
        // share nothing until the barrier below.
        let shard_times = advance_all(shards, &mut outboxes, epoch_end, threads);
        report.busy += shard_times.iter().sum::<Duration>();
        report.critical += shard_times.iter().max().copied().unwrap_or_default();

        // Barrier: drain mailboxes in shard order, verifying the
        // lookahead contract message by message.
        let xstart = Instant::now();
        let mut exchanged = 0u64;
        for (src, outbox) in outboxes.iter_mut().enumerate() {
            for (dst, arrival, msg) in outbox.msgs.drain(..) {
                assert!(
                    arrival >= epoch_end,
                    "lookahead violation: shard {src} sent a message arriving at \
                     {arrival:?}, before the epoch barrier at {epoch_end:?}"
                );
                let dst = dst as usize;
                assert!(dst < n, "message addressed to unknown shard {dst}");
                shards[dst].accept(arrival, msg);
                exchanged += 1;
            }
        }
        report.exchange += xstart.elapsed();
        report.messages += exchanged;
        report.peak_epoch_messages = report.peak_epoch_messages.max(exchanged);
        report.epochs += 1;
        epoch_start = epoch_end;

        if exchanged == 0 && shards.iter_mut().all(|s| s.next_event_time().is_none()) {
            break;
        }
    }
    report
}

/// Advances every shard to `horizon`, in parallel when `threads > 1`,
/// returning each shard's wall-clock advance time (indexed by shard).
fn advance_all<S: ShardState>(
    shards: &mut [S],
    outboxes: &mut [Outbox<S::Msg>],
    horizon: SimTime,
    threads: usize,
) -> Vec<Duration> {
    let n = shards.len();
    let workers = threads.clamp(1, n);
    if workers <= 1 {
        return shards
            .iter_mut()
            .zip(outboxes.iter_mut())
            .map(|(s, ob)| {
                let t = Instant::now();
                s.advance(horizon, ob);
                t.elapsed()
            })
            .collect();
    }
    let mut pairs: Vec<(&mut S, &mut Outbox<S::Msg>)> =
        shards.iter_mut().zip(outboxes.iter_mut()).collect();
    let chunk_len = n.div_ceil(workers);
    let mut times = vec![Duration::default(); n];
    std::thread::scope(|scope| {
        let handles: Vec<_> = pairs
            .chunks_mut(chunk_len)
            .zip(times.chunks_mut(chunk_len))
            .map(|(chunk, tchunk)| {
                scope.spawn(move || {
                    for ((s, ob), slot) in chunk.iter_mut().zip(tchunk.iter_mut()) {
                        let t = Instant::now();
                        s.advance(horizon, ob);
                        *slot = t.elapsed();
                    }
                })
            })
            .collect();
        for h in handles {
            if let Err(cause) = h.join() {
                std::panic::resume_unwind(cause);
            }
        }
    });
    times
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy shard: fires a self-event every `period`, and every `k`-th
    /// event sends a token to the next shard, which arrives `latency`
    /// later and is appended to a log.
    struct Ring {
        idx: usize,
        n: usize,
        period: SimDuration,
        latency: SimDuration,
        next_fire: Option<SimTime>,
        pending: Vec<(SimTime, u64)>,
        log: Vec<(SimTime, u64)>,
        fired: u64,
        stop: SimTime,
    }

    impl Ring {
        fn new(idx: usize, n: usize, stop: SimTime) -> Self {
            Ring {
                idx,
                n,
                period: SimDuration::from_millis(3 + idx as u64),
                latency: SimDuration::from_millis(10),
                next_fire: Some(SimTime::ZERO + SimDuration::from_millis(idx as u64)),
                pending: Vec::new(),
                log: Vec::new(),
                fired: 0,
                stop,
            }
        }
    }

    impl ShardState for Ring {
        type Msg = u64;

        fn accept(&mut self, arrival: SimTime, msg: u64) {
            self.pending.push((arrival, msg));
        }

        fn advance(&mut self, horizon: SimTime, outbox: &mut Outbox<u64>) {
            loop {
                // Merge the two local event sources by time; determinism
                // within the shard is the shard's own business.
                self.pending.sort_by_key(|&(t, m)| (t, m));
                let fire = self.next_fire.filter(|&t| t < horizon);
                let deliver = self.pending.first().copied().filter(|&(t, _)| t < horizon);
                match (fire, deliver) {
                    (Some(tf), Some((td, _))) if td <= tf => {
                        let (t, m) = self.pending.remove(0);
                        self.log.push((t, m));
                    }
                    (_, Some((td, _))) if fire.is_none() && td < horizon => {
                        let (t, m) = self.pending.remove(0);
                        self.log.push((t, m));
                    }
                    (Some(tf), _) => {
                        self.fired += 1;
                        if self.fired.is_multiple_of(2) && self.n > 1 {
                            let dst = (self.idx + 1) % self.n;
                            outbox.send(dst, tf + self.latency, self.fired);
                        }
                        self.next_fire = if tf + self.period < self.stop {
                            Some(tf + self.period)
                        } else {
                            None
                        };
                    }
                    _ => break,
                }
            }
        }

        fn next_event_time(&mut self) -> Option<SimTime> {
            let p = self.pending.iter().map(|&(t, _)| t).min();
            match (self.next_fire, p) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            }
        }
    }

    fn run_ring(n: usize, threads: usize) -> Vec<Vec<(SimTime, u64)>> {
        let stop = SimTime::from_millis(200);
        let mut shards: Vec<Ring> = (0..n).map(|i| Ring::new(i, n, stop)).collect();
        let report = run_epochs(
            &mut shards,
            SimDuration::from_millis(10),
            SimTime::from_secs(1),
            threads,
        );
        assert!(report.epochs > 0);
        if n > 1 {
            assert!(report.messages > 0, "ring must exchange tokens");
        }
        shards.into_iter().map(|s| s.log).collect()
    }

    #[test]
    fn sharded_run_is_thread_count_invariant() {
        let seq = run_ring(5, 1);
        for threads in [2, 3, 8] {
            assert_eq!(seq, run_ring(5, threads), "threads={threads}");
        }
    }

    #[test]
    fn single_shard_bypasses_the_epoch_loop() {
        let logs = run_ring(1, 4);
        assert_eq!(logs.len(), 1);
        assert!(logs[0].is_empty(), "one shard has no peers to message");
    }

    #[test]
    fn early_exit_skips_quiet_epochs() {
        let stop = SimTime::from_millis(50);
        let mut shards: Vec<Ring> = (0..3).map(|i| Ring::new(i, 3, stop)).collect();
        let report = run_epochs(
            &mut shards,
            SimDuration::from_millis(10),
            SimTime::from_secs(3600),
            1,
        );
        // Activity dies ~60 ms in (stop + latency); a full hour of 10 ms
        // epochs would be 360k barriers.
        assert!(report.epochs < 20, "ran {} epochs", report.epochs);
    }

    #[test]
    fn messages_never_arrive_inside_their_send_epoch() {
        // All ring messages carry latency == lookahead, the tight case:
        // run_epochs asserts arrival >= barrier for every one, so a green
        // run is the proof.
        let logs = run_ring(4, 2);
        let delivered: usize = logs.iter().map(Vec::len).sum();
        assert!(delivered > 0);
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn too_fast_boundary_is_a_loud_bug() {
        struct Cheat(bool);
        impl ShardState for Cheat {
            type Msg = ();
            fn accept(&mut self, _: SimTime, _msg: ()) {}
            fn advance(&mut self, _horizon: SimTime, outbox: &mut Outbox<()>) {
                if self.0 {
                    // Arrives at t=1ms — inside the 5ms epoch that sent it.
                    outbox.send(1, SimTime::from_millis(1), ());
                    self.0 = false;
                }
            }
            fn next_event_time(&mut self) -> Option<SimTime> {
                None
            }
        }
        let mut shards = vec![Cheat(true), Cheat(false)];
        run_epochs(
            &mut shards,
            SimDuration::from_millis(5),
            SimTime::from_secs(1),
            1,
        );
    }

    #[test]
    #[should_panic(expected = "lookahead must be > 0")]
    fn zero_lookahead_with_multiple_shards_is_rejected() {
        let stop = SimTime::from_millis(10);
        let mut shards: Vec<Ring> = (0..2).map(|i| Ring::new(i, 2, stop)).collect();
        run_epochs(&mut shards, SimDuration::ZERO, SimTime::from_secs(1), 1);
    }

    #[test]
    fn report_accounts_busy_and_critical_time() {
        let stop = SimTime::from_millis(100);
        let mut shards: Vec<Ring> = (0..4).map(|i| Ring::new(i, 4, stop)).collect();
        let report = run_epochs(
            &mut shards,
            SimDuration::from_millis(10),
            SimTime::from_secs(1),
            2,
        );
        assert!(report.busy >= report.critical);
        assert!(report.critical_path_speedup() >= 1.0);
        assert!(report.peak_epoch_messages <= report.messages);
    }
}
