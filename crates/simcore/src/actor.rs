//! The actor-based discrete-event kernel.
//!
//! A [`Simulator`] owns a set of actors (protocol entities, hosts, routers…),
//! a shared world state `S` (topology, radio environment, statistics hub) and
//! the pending-event queue. Actors communicate *only* by scheduling messages
//! for each other; a message scheduled with zero delay is still delivered
//! through the queue, after the current handler returns. This gives every
//! simulation a single, deterministic total order of events.
//!
//! # Examples
//!
//! A two-actor ping-pong that counts rounds in shared state:
//!
//! ```
//! use fh_sim::{Actor, ActorId, Ctx, SimDuration, SimTime, Simulator};
//!
//! struct Player { peer: Option<ActorId> }
//!
//! impl Actor<&'static str, u32> for Player {
//!     fn handle(&mut self, ctx: &mut Ctx<'_, &'static str, u32>, msg: &'static str) {
//!         *ctx.shared += 1;
//!         if *ctx.shared < 10 {
//!             let peer = self.peer.unwrap();
//!             let reply = if msg == "ping" { "pong" } else { "ping" };
//!             ctx.send(peer, SimDuration::from_millis(1), reply);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(0u32, 42);
//! let a = sim.add_actor(Box::new(Player { peer: None }));
//! let b = sim.add_actor(Box::new(Player { peer: None }));
//! sim.actor_mut::<Player>(a).unwrap().peer = Some(b);
//! sim.actor_mut::<Player>(b).unwrap().peer = Some(a);
//! sim.schedule(SimTime::ZERO, a, "ping");
//! sim.run();
//! assert_eq!(sim.shared, 10);
//! assert_eq!(sim.now(), SimTime::from_millis(9));
//! ```

use std::any::Any;
use std::fmt;

use crate::queue::{EventKey, EventQueue, QueueKind};
use crate::rng::Rng64;
use crate::time::{SimDuration, SimTime};

/// Identifies an actor within one [`Simulator`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct ActorId(usize);

impl ActorId {
    /// The raw slot index (stable for the lifetime of the simulator).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds an id from a raw slot index. Only meaningful for the
    /// simulator whose [`Simulator::add_actor`] produced that index —
    /// exists for tests and trace tooling that label events by index.
    #[must_use]
    pub fn from_index(index: usize) -> ActorId {
        ActorId(index)
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

/// Object-safe access to `Any`, blanket-implemented for every `'static` type.
///
/// This exists so concrete actor types can be recovered from
/// `Box<dyn Actor<M, S>>` after a run (for reading final statistics) without
/// each implementation writing downcast boilerplate.
pub trait AsAny: Any {
    /// Upcasts to `&dyn Any`.
    fn as_any(&self) -> &dyn Any;
    /// Upcasts to `&mut dyn Any`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A simulation entity that reacts to messages of type `M` with access to
/// shared world state `S`.
pub trait Actor<M, S>: AsAny {
    /// Handles one message delivered at the current simulation time.
    fn handle(&mut self, ctx: &mut Ctx<'_, M, S>, msg: M);
}

/// The per-dispatch view an actor gets of the simulation world.
///
/// Borrowed access to the clock, the event queue (via `send*`), the shared
/// state and the deterministic RNG.
pub struct Ctx<'a, M, S> {
    now: SimTime,
    self_id: ActorId,
    events: &'a mut EventQueue<(ActorId, M)>,
    /// Shared world state (topology, statistics, radio environment, …).
    pub shared: &'a mut S,
    /// The simulation-wide deterministic random number generator.
    pub rng: &'a mut Rng64,
}

impl<'a, M, S> Ctx<'a, M, S> {
    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the actor currently being dispatched.
    #[must_use]
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Schedules `msg` for delivery to `to` after `delay`.
    pub fn send(&mut self, to: ActorId, delay: SimDuration, msg: M) {
        self.events.push(self.now + delay, (to, msg));
    }

    /// Schedules `msg` for delivery to `to` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the past.
    pub fn send_at(&mut self, to: ActorId, at: SimTime, msg: M) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        self.events.push(at, (to, msg));
    }

    /// Schedules `msg` back to the current actor after `delay`.
    pub fn send_self(&mut self, delay: SimDuration, msg: M) {
        self.send(self.self_id, delay, msg);
    }

    /// Schedules `msg` for `to` after `delay` and returns a key that can
    /// cancel the delivery until it fires (see [`Ctx::cancel`]).
    pub fn send_keyed(&mut self, to: ActorId, delay: SimDuration, msg: M) -> EventKey {
        self.events.push(self.now + delay, (to, msg))
    }

    /// Schedules a cancellable timer back to the current actor.
    pub fn send_self_keyed(&mut self, delay: SimDuration, msg: M) -> EventKey {
        self.send_keyed(self.self_id, delay, msg)
    }

    /// Cancels a pending delivery in O(1), returning its message.
    ///
    /// Returns `None` if the event already fired or was already cancelled.
    pub fn cancel(&mut self, key: EventKey) -> Option<M> {
        self.events.cancel(key).map(|(_, msg)| msg)
    }
}

/// A single-threaded deterministic discrete-event simulator.
pub struct Simulator<M, S> {
    now: SimTime,
    events: EventQueue<(ActorId, M)>,
    actors: Vec<Option<Box<dyn Actor<M, S>>>>,
    /// Shared world state, accessible between runs and from every actor.
    pub shared: S,
    rng: Rng64,
    processed: u64,
    event_limit: u64,
}

impl<M: 'static, S: 'static> Simulator<M, S> {
    /// Creates a simulator with the given shared state and RNG seed.
    #[must_use]
    pub fn new(shared: S, seed: u64) -> Self {
        Simulator::with_queue_kind(shared, seed, QueueKind::Heap)
    }

    /// Creates a simulator whose pending-event set uses the given backend.
    ///
    /// Both [`QueueKind`]s deliver events in the same order; this is a
    /// performance knob, not a behavioral one.
    #[must_use]
    pub fn with_queue_kind(shared: S, seed: u64, kind: QueueKind) -> Self {
        Simulator {
            now: SimTime::ZERO,
            events: EventQueue::with_kind(kind),
            actors: Vec::new(),
            shared,
            rng: Rng64::seed_from(seed),
            processed: 0,
            event_limit: u64::MAX,
        }
    }

    /// Registers an actor and returns its id.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M, S>>) -> ActorId {
        let id = ActorId(self.actors.len());
        self.actors.push(Some(actor));
        id
    }

    /// Schedules `msg` for `to` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the past.
    pub fn schedule(&mut self, at: SimTime, to: ActorId, msg: M) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.events.push(at, (to, msg));
    }

    /// Schedules `msg` for `to` after `delay` from now.
    pub fn schedule_in(&mut self, delay: SimDuration, to: ActorId, msg: M) {
        self.events.push(self.now + delay, (to, msg));
    }

    /// Schedules `msg` for `to` after `delay`, returning a cancellation key.
    pub fn schedule_keyed(&mut self, delay: SimDuration, to: ActorId, msg: M) -> EventKey {
        self.events.push(self.now + delay, (to, msg))
    }

    /// Cancels a pending delivery in O(1), returning its message.
    pub fn cancel(&mut self, key: EventKey) -> Option<M> {
        self.events.cancel(key).map(|(_, msg)| msg)
    }

    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events dispatched so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    #[must_use]
    pub fn events_pending(&self) -> usize {
        self.events.len()
    }

    /// Caps the total number of events a run may dispatch (runaway guard).
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Typed shared-state accessor (convenience for chained setup).
    #[must_use]
    pub fn shared_mut(&mut self) -> &mut S {
        &mut self.shared
    }

    /// Borrows a registered actor, downcast to its concrete type.
    ///
    /// Returns `None` if the id is unknown or the type does not match.
    #[must_use]
    pub fn actor<T: Actor<M, S>>(&self, id: ActorId) -> Option<&T> {
        // Deref through the Box explicitly: `Box<dyn Actor>` is itself
        // `'static` and would otherwise satisfy the `AsAny` blanket impl.
        let actor: &dyn Actor<M, S> = &**self.actors.get(id.0)?.as_ref()?;
        actor.as_any().downcast_ref::<T>()
    }

    /// Mutably borrows a registered actor, downcast to its concrete type.
    ///
    /// Returns `None` if the id is unknown or the type does not match.
    #[must_use]
    pub fn actor_mut<T: Actor<M, S>>(&mut self, id: ActorId) -> Option<&mut T> {
        let actor: &mut dyn Actor<M, S> = &mut **self.actors.get_mut(id.0)?.as_mut()?;
        actor.as_any_mut().downcast_mut::<T>()
    }

    /// Dispatches the next event, if any. Returns `false` when the queue is
    /// empty or the event limit has been reached.
    pub fn step(&mut self) -> bool {
        if self.processed >= self.event_limit {
            return false;
        }
        let Some((time, (to, msg))) = self.events.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "event queue went backwards");
        self.now = time;
        self.processed += 1;
        // Temporarily detach the actor so `Ctx` can borrow everything else.
        if let Some(mut actor) = self.actors.get_mut(to.0).and_then(Option::take) {
            let mut ctx = Ctx {
                now: self.now,
                self_id: to,
                events: &mut self.events,
                shared: &mut self.shared,
                rng: &mut self.rng,
            };
            actor.handle(&mut ctx, msg);
            self.actors[to.0] = Some(actor);
        }
        true
    }

    /// Runs until the event queue is empty (or the event limit is reached).
    /// Returns the number of events dispatched by this call.
    pub fn run(&mut self) -> u64 {
        let before = self.processed;
        while self.step() {}
        self.processed - before
    }

    /// Runs every event scheduled at or before `until`, then advances the
    /// clock to exactly `until`. Returns the number of events dispatched.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        let before = self.processed;
        while self.processed < self.event_limit {
            match self.events.peek_time() {
                Some(t) if t <= until => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < until {
            self.now = until;
        }
        self.processed - before
    }
}

impl<M: 'static, S: 'static + fmt::Debug> fmt::Debug for Simulator<M, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("actors", &self.actors.len())
            .field("pending", &self.events.len())
            .field("processed", &self.processed)
            .field("shared", &self.shared)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    enum Msg {
        Tick,
        Stop,
    }

    struct Ticker {
        ticks: u32,
        period: SimDuration,
    }

    impl Actor<Msg, Vec<SimTime>> for Ticker {
        fn handle(&mut self, ctx: &mut Ctx<'_, Msg, Vec<SimTime>>, msg: Msg) {
            match msg {
                Msg::Tick => {
                    self.ticks += 1;
                    ctx.shared.push(ctx.now());
                    ctx.send_self(self.period, Msg::Tick);
                }
                Msg::Stop => {}
            }
        }
    }

    #[test]
    fn run_until_advances_clock_exactly() {
        let mut sim: Simulator<Msg, Vec<SimTime>> = Simulator::new(Vec::new(), 1);
        let t = sim.add_actor(Box::new(Ticker {
            ticks: 0,
            period: SimDuration::from_millis(100),
        }));
        sim.schedule(SimTime::ZERO, t, Msg::Tick);
        sim.run_until(SimTime::from_millis(450));
        assert_eq!(sim.now(), SimTime::from_millis(450));
        // Ticks at 0, 100, 200, 300, 400.
        assert_eq!(sim.shared.len(), 5);
        assert_eq!(sim.actor::<Ticker>(t).unwrap().ticks, 5);
    }

    #[test]
    fn run_until_is_resumable() {
        let mut sim: Simulator<Msg, Vec<SimTime>> = Simulator::new(Vec::new(), 1);
        let t = sim.add_actor(Box::new(Ticker {
            ticks: 0,
            period: SimDuration::from_millis(10),
        }));
        sim.schedule(SimTime::ZERO, t, Msg::Tick);
        sim.run_until(SimTime::from_millis(25));
        let first = sim.shared.len();
        sim.run_until(SimTime::from_millis(55));
        assert_eq!(first, 3); // 0, 10, 20
        assert_eq!(sim.shared.len(), 6); // + 30, 40, 50
    }

    #[test]
    fn event_limit_stops_runaway() {
        let mut sim: Simulator<Msg, Vec<SimTime>> = Simulator::new(Vec::new(), 1);
        let t = sim.add_actor(Box::new(Ticker {
            ticks: 0,
            period: SimDuration::ZERO, // would loop forever at t=0
        }));
        sim.schedule(SimTime::ZERO, t, Msg::Tick);
        sim.set_event_limit(1000);
        let n = sim.run();
        assert_eq!(n, 1000);
    }

    #[test]
    fn messages_to_unknown_actors_are_dropped() {
        let mut sim: Simulator<Msg, Vec<SimTime>> = Simulator::new(Vec::new(), 1);
        let ghost = ActorId(17);
        sim.events.push(SimTime::from_secs(1), (ghost, Msg::Stop));
        let n = sim.run();
        assert_eq!(n, 1); // dispatched (and ignored) without panicking
        assert_eq!(sim.now(), SimTime::from_secs(1));
    }

    #[test]
    fn downcast_rejects_wrong_type() {
        struct Other;
        impl Actor<Msg, Vec<SimTime>> for Other {
            fn handle(&mut self, _: &mut Ctx<'_, Msg, Vec<SimTime>>, _: Msg) {}
        }
        let mut sim: Simulator<Msg, Vec<SimTime>> = Simulator::new(Vec::new(), 1);
        let id = sim.add_actor(Box::new(Other));
        assert!(sim.actor::<Ticker>(id).is_none());
        assert!(sim.actor::<Other>(id).is_some());
    }

    #[test]
    fn cancelled_timer_never_fires() {
        struct Arm;
        impl Actor<Msg, Vec<SimTime>> for Arm {
            fn handle(&mut self, ctx: &mut Ctx<'_, Msg, Vec<SimTime>>, msg: Msg) {
                match msg {
                    Msg::Tick => {
                        // Arm a timer, then immediately cancel it.
                        let key = ctx.send_self_keyed(SimDuration::from_millis(10), Msg::Stop);
                        assert!(matches!(ctx.cancel(key), Some(Msg::Stop)));
                        assert!(ctx.cancel(key).is_none(), "keys are single-use");
                    }
                    Msg::Stop => panic!("cancelled timer fired"),
                }
            }
        }
        let mut sim: Simulator<Msg, Vec<SimTime>> = Simulator::new(Vec::new(), 1);
        let a = sim.add_actor(Box::new(Arm));
        sim.schedule(SimTime::ZERO, a, Msg::Tick);
        assert_eq!(sim.run(), 1);
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn simulator_cancel_prunes_pending_count() {
        let mut sim: Simulator<Msg, Vec<SimTime>> = Simulator::new(Vec::new(), 1);
        let t = sim.add_actor(Box::new(Ticker {
            ticks: 0,
            period: SimDuration::from_millis(100),
        }));
        let key = sim.schedule_keyed(SimDuration::from_millis(5), t, Msg::Stop);
        assert_eq!(sim.events_pending(), 1);
        assert!(sim.cancel(key).is_some());
        assert_eq!(sim.events_pending(), 0);
        sim.run();
        assert_eq!(sim.events_processed(), 0);
    }

    #[test]
    fn same_seed_same_event_trace() {
        fn trace() -> Vec<SimTime> {
            struct Jitter;
            impl Actor<Msg, Vec<SimTime>> for Jitter {
                fn handle(&mut self, ctx: &mut Ctx<'_, Msg, Vec<SimTime>>, _: Msg) {
                    ctx.shared.push(ctx.now());
                    if ctx.shared.len() < 50 {
                        let d = SimDuration::from_micros(ctx.rng.gen_range_u64(1000) + 1);
                        ctx.send_self(d, Msg::Tick);
                    }
                }
            }
            let mut sim: Simulator<Msg, Vec<SimTime>> = Simulator::new(Vec::new(), 99);
            let a = sim.add_actor(Box::new(Jitter));
            sim.schedule(SimTime::ZERO, a, Msg::Tick);
            sim.run();
            sim.shared
        }
        assert_eq!(trace(), trace());
    }
}
