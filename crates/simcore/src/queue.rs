//! The pending-event set: a time-ordered priority queue with O(1) lazy
//! cancellation.
//!
//! Events scheduled for the same instant are delivered in FIFO order of
//! scheduling (a monotonically increasing sequence number breaks ties), which
//! keeps simulations deterministic regardless of heap internals.
//!
//! # Design
//!
//! The heap itself stores only small `Copy` entries — `(time, seq, slot)`,
//! 24 bytes — while event payloads live in a slot arena beside it. Sift
//! operations therefore move fixed-size records instead of whole events,
//! and [`EventQueue::cancel`] is O(1): it takes the payload out of its slot
//! and leaves the heap entry behind as a *stale* marker. `pop` (and
//! `peek_time`) purge stale markers as they surface. The `seq` stamp doubles
//! as a generation counter, so a recycled slot can never satisfy an old
//! [`EventKey`].
//!
//! # Examples
//!
//! ```
//! use fh_sim::{EventQueue, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::from_millis(2), "late");
//! q.push(SimTime::from_millis(1), "early");
//! let key = q.push(SimTime::from_millis(1), "cancelled");
//! assert_eq!(q.cancel(key), Some("cancelled"));
//! assert_eq!(q.cancel(key), None); // keys are single-use
//! assert_eq!(q.pop().unwrap().1, "early");
//! assert_eq!(q.pop().unwrap().1, "late");
//! assert!(q.pop().is_none());
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A single-use handle to a scheduled event, returned by
/// [`EventQueue::push`] and redeemed by [`EventQueue::cancel`].
///
/// Keys are generation-stamped: once the event fires or is cancelled, the
/// key is dead, and a key never aliases a later event that reuses the same
/// internal slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey {
    slot: u32,
    seq: u64,
}

/// An event queue ordered by time, then by insertion order.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    seq: u64,
    live: usize,
}

/// Payload storage for one scheduled event. `seq` identifies the push that
/// currently owns the slot; a mismatching heap entry or key is stale.
#[derive(Debug, Clone)]
struct Slot<E> {
    seq: u64,
    event: Option<E>,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    time: SimTime,
    seq: u64,
    slot: u32,
}

// Min-heap by (time, seq): invert the comparison.
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
            live: 0,
        }
    }

    /// Schedules `event` at absolute time `time`, returning a key that can
    /// cancel it until it fires.
    pub fn push(&mut self, time: SimTime, event: E) -> EventKey {
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Slot {
                    seq,
                    event: Some(event),
                };
                i
            }
            None => {
                assert!(
                    self.slots.len() < u32::MAX as usize,
                    "event queue slot overflow"
                );
                self.slots.push(Slot {
                    seq,
                    event: Some(event),
                });
                (self.slots.len() - 1) as u32
            }
        };
        self.live += 1;
        self.heap.push(Entry { time, seq, slot });
        EventKey { slot, seq }
    }

    /// Cancels a scheduled event in O(1), returning its payload.
    ///
    /// Returns `None` if the event already fired, was already cancelled, or
    /// the key belongs to another queue generation. The heap entry is left
    /// in place as a stale marker and purged when it reaches the top.
    pub fn cancel(&mut self, key: EventKey) -> Option<E> {
        let slot = self.slots.get_mut(key.slot as usize)?;
        if slot.seq != key.seq {
            return None;
        }
        let event = slot.event.take()?;
        self.free.push(key.slot);
        self.live -= 1;
        Some(event)
    }

    /// Removes and returns the earliest event, or `None` if empty.
    ///
    /// Stale heap entries left behind by [`cancel`](Self::cancel) are purged
    /// as they surface, so amortized cost stays O(log n) per scheduled event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            let slot = &mut self.slots[entry.slot as usize];
            if slot.seq != entry.seq {
                continue; // slot recycled by a later push
            }
            let Some(event) = slot.event.take() else {
                continue; // cancelled, slot not yet recycled
            };
            self.free.push(entry.slot);
            self.live -= 1;
            return Some((entry.time, event));
        }
        None
    }

    /// The timestamp of the earliest pending event, if any.
    ///
    /// Takes `&mut self` because stale cancelled entries at the top of the
    /// heap are purged before reading the time.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            let slot = &self.slots[entry.slot as usize];
            if slot.seq == entry.seq && slot.event.is_some() {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.slots.clear();
        self.free.clear();
        self.live = 0;
        // `seq` keeps counting so keys from before the clear stay dead.
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), 3);
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_in_fifo_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(5), ());
        q.push(SimTime::from_millis(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        let (t, ()) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(2));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(30), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_millis(20), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn cancel_removes_event_and_returns_payload() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(1), "keep");
        let key = q.push(SimTime::from_millis(2), "drop");
        q.push(SimTime::from_millis(3), "also-keep");
        assert_eq!(q.len(), 3);
        assert_eq!(q.cancel(key), Some("drop"));
        assert_eq!(q.len(), 2);
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["keep", "also-keep"]);
    }

    #[test]
    fn cancel_is_single_use() {
        let mut q = EventQueue::new();
        let key = q.push(SimTime::from_millis(1), 7);
        assert_eq!(q.cancel(key), Some(7));
        assert_eq!(q.cancel(key), None);
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn key_does_not_alias_recycled_slot() {
        let mut q = EventQueue::new();
        let stale = q.push(SimTime::from_millis(1), "first");
        assert_eq!(q.cancel(stale), Some("first"));
        // The slot is recycled by the next push; the old key must stay dead.
        let fresh = q.push(SimTime::from_millis(2), "second");
        assert_eq!(q.cancel(stale), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.cancel(fresh), Some("second"));
    }

    #[test]
    fn key_dead_after_pop() {
        let mut q = EventQueue::new();
        let key = q.push(SimTime::from_millis(1), 1);
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), 1)));
        assert_eq!(q.cancel(key), None);
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let early = q.push(SimTime::from_millis(1), "early");
        q.push(SimTime::from_millis(5), "late");
        assert_eq!(q.cancel(early), Some("early"));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(5)));
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn cancel_after_clear_is_none() {
        let mut q = EventQueue::new();
        let key = q.push(SimTime::from_millis(1), 1);
        q.clear();
        assert_eq!(q.cancel(key), None);
        // New pushes after clear get fresh generations.
        let k2 = q.push(SimTime::from_millis(1), 2);
        assert_eq!(q.cancel(key), None);
        assert_eq!(q.cancel(k2), Some(2));
    }

    #[test]
    fn heavy_cancel_churn_stays_consistent() {
        let mut q = EventQueue::new();
        let mut keys = Vec::new();
        for round in 0..50u64 {
            for i in 0..100u64 {
                keys.push(q.push(SimTime::from_micros(round * 1000 + i), (round, i)));
            }
            // Cancel every other event of this round.
            for k in keys.drain(..).skip(1).step_by(2) {
                assert!(q.cancel(k).is_some());
            }
        }
        assert_eq!(q.len(), 50 * 50);
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((t, (_, i))) = q.pop() {
            assert!(t >= last, "pop went backwards");
            assert_eq!(i % 2, 0, "cancelled event escaped");
            last = t;
            n += 1;
        }
        assert_eq!(n, 50 * 50);
    }

    #[test]
    fn heap_entry_stays_small() {
        // The hot path sifts `Entry` records; keep them at 24 bytes even for
        // large event payloads.
        assert_eq!(std::mem::size_of::<super::Entry>(), 24);
    }
}
