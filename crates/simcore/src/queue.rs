//! The pending-event set: a time-ordered priority queue.
//!
//! Events scheduled for the same instant are delivered in FIFO order of
//! scheduling (a monotonically increasing sequence number breaks ties), which
//! keeps simulations deterministic regardless of heap internals.
//!
//! # Examples
//!
//! ```
//! use fh_sim::{EventQueue, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::from_millis(2), "late");
//! q.push(SimTime::from_millis(1), "early");
//! q.push(SimTime::from_millis(1), "early-second");
//! assert_eq!(q.pop().unwrap().1, "early");
//! assert_eq!(q.pop().unwrap().1, "early-second");
//! assert_eq!(q.pop().unwrap().1, "late");
//! assert!(q.pop().is_none());
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event queue ordered by time, then by insertion order.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// Min-heap by (time, seq): invert the comparison.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), 3);
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_in_fifo_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(5), ());
        q.push(SimTime::from_millis(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        let (t, ()) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(2));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(30), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_millis(20), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }
}
