//! The pending-event set: a time-ordered priority queue with O(1) lazy
//! cancellation.
//!
//! Events scheduled for the same instant are delivered in FIFO order of
//! scheduling (a monotonically increasing sequence number breaks ties), which
//! keeps simulations deterministic regardless of heap internals.
//!
//! # Design
//!
//! The ordering structure stores only small `Copy` entries — `(time, seq,
//! slot)`, 24 bytes — while event payloads live in a slot arena beside it.
//! Sift operations therefore move fixed-size records instead of whole
//! events, and [`EventQueue::cancel`] is O(1): it takes the payload out of
//! its slot and leaves the ordering entry behind as a *stale* marker. `pop`
//! (and `peek_time`) purge stale markers as they surface. The `seq` stamp
//! doubles as a generation counter, so a recycled slot can never satisfy an
//! old [`EventKey`].
//!
//! Two interchangeable backends implement the ordering ([`QueueKind`]): the
//! default binary heap, and a calendar queue (the `calendar` module) with
//! O(1) amortized push/pop. Delivery order is bit-identical between them.
//!
//! # Examples
//!
//! ```
//! use fh_sim::{EventQueue, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::from_millis(2), "late");
//! q.push(SimTime::from_millis(1), "early");
//! let key = q.push(SimTime::from_millis(1), "cancelled");
//! assert_eq!(q.cancel(key), Some("cancelled"));
//! assert_eq!(q.cancel(key), None); // keys are single-use
//! assert_eq!(q.pop().unwrap().1, "early");
//! assert_eq!(q.pop().unwrap().1, "late");
//! assert!(q.pop().is_none());
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::calendar::Calendar;
use crate::time::SimTime;

/// Selects the ordering structure backing an [`EventQueue`].
///
/// Both backends share the slot arena, keyed cancellation, generation
/// stamps, and the exact `(time, seq)` delivery order — a simulation pops
/// the same events in the same order under either kind, so the choice is
/// purely a performance knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueKind {
    /// Binary heap of 24-byte entries: O(log n) push/pop, the conservative
    /// default.
    #[default]
    Heap,
    /// Calendar queue (time-sliced buckets): O(1) amortized push/pop when
    /// sized to the live population. See the `calendar` module docs.
    Calendar,
}

/// A single-use handle to a scheduled event, returned by
/// [`EventQueue::push`] and redeemed by [`EventQueue::cancel`].
///
/// Keys are generation-stamped: once the event fires or is cancelled, the
/// key is dead, and a key never aliases a later event that reuses the same
/// internal slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey {
    slot: u32,
    seq: u64,
}

/// An event queue ordered by time, then by insertion order.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    backend: Backend,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    seq: u64,
    live: usize,
}

/// The ordering structure holding `(time, seq, slot)` records; payloads stay
/// in the slot arena either way.
#[derive(Debug, Clone)]
enum Backend {
    Heap(BinaryHeap<Entry>),
    Calendar(Calendar),
}

/// Payload storage for one scheduled event. `seq` identifies the push that
/// currently owns the slot; a mismatching heap entry or key is stale.
#[derive(Debug, Clone)]
pub(crate) struct Slot<E> {
    pub(crate) seq: u64,
    pub(crate) event: Option<E>,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Entry {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) slot: u32,
}

// Min-heap by (time, seq): invert the comparison.
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl<E> EventQueue<E> {
    /// Creates an empty queue backed by the binary heap.
    #[must_use]
    pub fn new() -> Self {
        EventQueue::with_kind(QueueKind::Heap)
    }

    /// Creates an empty queue backed by the requested structure.
    #[must_use]
    pub fn with_kind(kind: QueueKind) -> Self {
        let backend = match kind {
            QueueKind::Heap => Backend::Heap(BinaryHeap::new()),
            QueueKind::Calendar => Backend::Calendar(Calendar::new()),
        };
        EventQueue {
            backend,
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
            live: 0,
        }
    }

    /// Which backend this queue was built with.
    #[must_use]
    pub fn kind(&self) -> QueueKind {
        match self.backend {
            Backend::Heap(_) => QueueKind::Heap,
            Backend::Calendar(_) => QueueKind::Calendar,
        }
    }

    /// Schedules `event` at absolute time `time`, returning a key that can
    /// cancel it until it fires.
    pub fn push(&mut self, time: SimTime, event: E) -> EventKey {
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Slot {
                    seq,
                    event: Some(event),
                };
                i
            }
            None => {
                assert!(
                    self.slots.len() < u32::MAX as usize,
                    "event queue slot overflow"
                );
                self.slots.push(Slot {
                    seq,
                    event: Some(event),
                });
                (self.slots.len() - 1) as u32
            }
        };
        self.live += 1;
        let entry = Entry { time, seq, slot };
        match &mut self.backend {
            Backend::Heap(heap) => heap.push(entry),
            Backend::Calendar(cal) => cal.push(entry, &self.slots),
        }
        EventKey { slot, seq }
    }

    /// Cancels a scheduled event in O(1), returning its payload.
    ///
    /// Returns `None` if the event already fired, was already cancelled, or
    /// the key belongs to another queue generation. The backend entry is
    /// left in place as a stale marker and purged when a pop or peek scan
    /// passes over it.
    pub fn cancel(&mut self, key: EventKey) -> Option<E> {
        let slot = self.slots.get_mut(key.slot as usize)?;
        if slot.seq != key.seq {
            return None;
        }
        let event = slot.event.take()?;
        self.free.push(key.slot);
        self.live -= 1;
        if let Backend::Calendar(cal) = &mut self.backend {
            cal.on_cancel(key.seq);
        }
        Some(event)
    }

    /// Removes and returns the earliest event, or `None` if empty.
    ///
    /// Stale entries left behind by [`cancel`](Self::cancel) are purged as
    /// they surface, so amortized cost stays O(log n) per scheduled event on
    /// the heap backend and O(1) on the calendar.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = match &mut self.backend {
            Backend::Heap(heap) => loop {
                let entry = heap.pop()?;
                let slot = &self.slots[entry.slot as usize];
                if slot.seq == entry.seq && slot.event.is_some() {
                    break entry;
                }
                // Stale: recycled by a later push, or cancelled.
            },
            Backend::Calendar(cal) => cal.pop_min(&self.slots)?,
        };
        let slot = &mut self.slots[entry.slot as usize];
        let event = slot.event.take().expect("backend returned a live entry");
        self.free.push(entry.slot);
        self.live -= 1;
        Some((entry.time, event))
    }

    /// The timestamp of the earliest pending event, if any.
    ///
    /// Takes `&mut self` because stale cancelled entries encountered on the
    /// way to the front are purged before reading the time.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.backend {
            Backend::Heap(heap) => {
                while let Some(entry) = heap.peek() {
                    let slot = &self.slots[entry.slot as usize];
                    if slot.seq == entry.seq && slot.event.is_some() {
                        return Some(entry.time);
                    }
                    heap.pop();
                }
                None
            }
            Backend::Calendar(cal) => cal.peek(&self.slots).map(|e| e.time),
        }
    }

    /// Number of pending (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Heap(heap) => heap.clear(),
            Backend::Calendar(cal) => cal.clear(),
        }
        self.slots.clear();
        self.free.clear();
        self.live = 0;
        // `seq` keeps counting so keys from before the clear stay dead.
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), 3);
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_in_fifo_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(5), ());
        q.push(SimTime::from_millis(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        let (t, ()) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(2));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(30), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_millis(20), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn cancel_removes_event_and_returns_payload() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(1), "keep");
        let key = q.push(SimTime::from_millis(2), "drop");
        q.push(SimTime::from_millis(3), "also-keep");
        assert_eq!(q.len(), 3);
        assert_eq!(q.cancel(key), Some("drop"));
        assert_eq!(q.len(), 2);
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["keep", "also-keep"]);
    }

    #[test]
    fn cancel_is_single_use() {
        let mut q = EventQueue::new();
        let key = q.push(SimTime::from_millis(1), 7);
        assert_eq!(q.cancel(key), Some(7));
        assert_eq!(q.cancel(key), None);
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn key_does_not_alias_recycled_slot() {
        let mut q = EventQueue::new();
        let stale = q.push(SimTime::from_millis(1), "first");
        assert_eq!(q.cancel(stale), Some("first"));
        // The slot is recycled by the next push; the old key must stay dead.
        let fresh = q.push(SimTime::from_millis(2), "second");
        assert_eq!(q.cancel(stale), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.cancel(fresh), Some("second"));
    }

    #[test]
    fn key_dead_after_pop() {
        let mut q = EventQueue::new();
        let key = q.push(SimTime::from_millis(1), 1);
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), 1)));
        assert_eq!(q.cancel(key), None);
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let early = q.push(SimTime::from_millis(1), "early");
        q.push(SimTime::from_millis(5), "late");
        assert_eq!(q.cancel(early), Some("early"));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(5)));
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn cancel_after_clear_is_none() {
        let mut q = EventQueue::new();
        let key = q.push(SimTime::from_millis(1), 1);
        q.clear();
        assert_eq!(q.cancel(key), None);
        // New pushes after clear get fresh generations.
        let k2 = q.push(SimTime::from_millis(1), 2);
        assert_eq!(q.cancel(key), None);
        assert_eq!(q.cancel(k2), Some(2));
    }

    #[test]
    fn heavy_cancel_churn_stays_consistent() {
        let mut q = EventQueue::new();
        let mut keys = Vec::new();
        for round in 0..50u64 {
            for i in 0..100u64 {
                keys.push(q.push(SimTime::from_micros(round * 1000 + i), (round, i)));
            }
            // Cancel every other event of this round.
            for k in keys.drain(..).skip(1).step_by(2) {
                assert!(q.cancel(k).is_some());
            }
        }
        assert_eq!(q.len(), 50 * 50);
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((t, (_, i))) = q.pop() {
            assert!(t >= last, "pop went backwards");
            assert_eq!(i % 2, 0, "cancelled event escaped");
            last = t;
            n += 1;
        }
        assert_eq!(n, 50 * 50);
    }

    #[test]
    fn heap_entry_stays_small() {
        // The hot path sifts `Entry` records; keep them at 24 bytes even for
        // large event payloads.
        assert_eq!(std::mem::size_of::<super::Entry>(), 24);
    }

    // ---- calendar backend -------------------------------------------------

    /// Every single-queue behavior above, replayed on the calendar backend.
    fn calendar() -> EventQueue<i32> {
        EventQueue::with_kind(QueueKind::Calendar)
    }

    #[test]
    fn calendar_pops_in_time_order_with_fifo_ties() {
        let mut q = calendar();
        q.push(SimTime::from_millis(30), 3);
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(20), 2);
        let t = SimTime::from_secs(1);
        for i in 100..200 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        let mut expected = vec![1, 2, 3];
        expected.extend(100..200);
        assert_eq!(order, expected);
    }

    #[test]
    fn calendar_cancel_and_key_semantics() {
        let mut q = calendar();
        let stale = q.push(SimTime::from_millis(1), 1);
        assert_eq!(q.cancel(stale), Some(1));
        let fresh = q.push(SimTime::from_millis(2), 2);
        assert_eq!(q.cancel(stale), None); // no aliasing of recycled slots
        assert_eq!(q.len(), 1);
        assert_eq!(q.cancel(fresh), Some(2));
        let popped = q.push(SimTime::from_millis(3), 3);
        assert_eq!(q.pop(), Some((SimTime::from_millis(3), 3)));
        assert_eq!(q.cancel(popped), None); // dead after pop
        assert!(q.is_empty());
    }

    #[test]
    fn calendar_peek_skips_cancelled_head() {
        let mut q = calendar();
        let early = q.push(SimTime::from_millis(1), 1);
        q.push(SimTime::from_millis(5), 5);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(q.cancel(early), Some(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(5)));
        // A later push that precedes the cached head must displace it.
        q.push(SimTime::from_millis(2), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(2), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_millis(5), 5)));
    }

    #[test]
    fn calendar_bucket_rollover_across_years() {
        // Spread events over many multiples of the initial bucket window so
        // pops must cross year boundaries and fold in overflow entries.
        let mut q = calendar();
        let mut expected = Vec::new();
        for i in 0..500i32 {
            // ~97 ms apart with a 16-bucket, ~1 ms-wide initial calendar:
            // every event lives in a different "year".
            q.push(SimTime::from_micros(i as u64 * 97_000), i);
            expected.push(i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn calendar_far_future_timer_waits_in_overflow() {
        let mut q = calendar();
        let doom = q.push(SimTime::from_nanos(u64::MAX), -1);
        let sentinel = q.push(SimTime::from_nanos(u64::MAX - 1), -2);
        for i in 0..200 {
            q.push(SimTime::from_micros(i as u64 * 13), i);
        }
        // Near events all pop first, in order.
        for i in 0..200 {
            assert_eq!(q.pop().unwrap().1, i);
        }
        // The far-future timer is still cancellable...
        assert_eq!(q.cancel(sentinel), Some(-2));
        // ...and the survivor surfaces at the end of time.
        assert_eq!(q.pop(), Some((SimTime::from_nanos(u64::MAX), -1)));
        assert!(q.pop().is_none());
        assert_eq!(q.cancel(doom), None);
    }

    #[test]
    fn calendar_interleaved_push_pop_after_rollover() {
        let mut q = calendar();
        let mut clock = 0u64;
        let mut popped = 0;
        for round in 0..50u64 {
            // March time forward aggressively so the cursor rolls over.
            for i in 0..20u64 {
                q.push(
                    SimTime::from_micros(clock + 1 + i * 1700),
                    (round * 20 + i) as i32,
                );
            }
            for _ in 0..15 {
                let (t, _) = q.pop().unwrap();
                assert!(t.as_nanos() >= clock * 1000);
                clock = t.as_nanos() / 1000;
                popped += 1;
            }
        }
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, 50 * 20);
    }

    #[test]
    fn calendar_matches_heap_under_random_churn() {
        use crate::rng::Rng64;
        let mut rng = Rng64::seed_from(0x0420_1337);
        let mut heap: EventQueue<u64> = EventQueue::new();
        let mut cal: EventQueue<u64> = EventQueue::with_kind(QueueKind::Calendar);
        let mut keys: Vec<(EventKey, EventKey)> = Vec::new();
        let mut clock = 0u64;
        for i in 0..30_000u64 {
            match rng.gen_range_u64(10) {
                // 60% push with a mix of near, far, and tied timestamps
                0..=5 => {
                    let t = match rng.gen_range_u64(20) {
                        0 => clock,                                // tie with "now"
                        1 => clock + 500_000_000,                  // half a second out
                        _ => clock + rng.gen_range_u64(3_000_000), // normal lookahead
                    };
                    let hk = heap.push(SimTime::from_nanos(t), i);
                    let ck = cal.push(SimTime::from_nanos(t), i);
                    keys.push((hk, ck));
                }
                // 20% pop from both; results must match exactly
                6..=7 => {
                    assert_eq!(heap.peek_time(), cal.peek_time());
                    let h = heap.pop();
                    assert_eq!(h, cal.pop());
                    if let Some((t, _)) = h {
                        clock = t.as_nanos();
                    }
                }
                // 20% cancel the same pending key on both sides
                _ => {
                    if !keys.is_empty() {
                        let idx = rng.gen_range_u64(keys.len() as u64) as usize;
                        let (hk, ck) = keys.swap_remove(idx);
                        assert_eq!(heap.cancel(hk), cal.cancel(ck));
                        assert_eq!(heap.len(), cal.len());
                    }
                }
            }
        }
        loop {
            let h = heap.pop();
            assert_eq!(h, cal.pop());
            if h.is_none() {
                break;
            }
        }
    }
}
