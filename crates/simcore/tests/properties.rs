//! Property tests for the simulation kernel.

use fh_sim::stats::{TimeSeries, Welford};
use fh_sim::{EventQueue, QueueKind, Rng64, SimDuration, SimTime};
use proptest::prelude::*;

/// One step of a randomized schedule/cancel/pop interleaving, applied in
/// lockstep to a heap-backed and a calendar-backed queue.
#[derive(Debug, Clone)]
enum QueueOp {
    /// Schedule at `clock + jitter` (index selects tie/near/far behavior).
    Push(u64),
    /// Pop from both queues; results must be identical.
    Pop,
    /// Cancel the pending key at `index % pending.len()` on both sides.
    Cancel(usize),
}

fn queue_op() -> impl Strategy<Value = QueueOp> {
    // Arms are repeated to weight the mix (the vendored prop_oneof! is
    // unweighted): mostly near pushes and pops, with ties, far-future
    // timers, and cancels sprinkled in.
    prop_oneof![
        (0u64..5_000_000).prop_map(QueueOp::Push),
        (0u64..5_000_000).prop_map(QueueOp::Push),
        (0u64..5_000_000).prop_map(QueueOp::Push),
        Just(QueueOp::Push(0)), // exact tie with now
        (1_000_000_000u64..3_000_000_000).prop_map(QueueOp::Push), // far future
        Just(QueueOp::Pop),
        Just(QueueOp::Pop),
        Just(QueueOp::Pop),
        any::<usize>().prop_map(QueueOp::Cancel),
        any::<usize>().prop_map(QueueOp::Cancel),
    ]
}

proptest! {
    /// Events pop in nondecreasing time order, FIFO within a timestamp.
    #[test]
    fn event_queue_pops_sorted_stable(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort(); // stable by (time, insertion index)
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t.as_nanos(), i));
        }
        prop_assert_eq!(got, expected);
    }

    /// Interleaved push/pop never yields an event earlier than one already
    /// delivered.
    #[test]
    fn event_queue_monotone_under_interleaving(
        ops in prop::collection::vec((0u64..1_000, prop::bool::ANY), 1..200)
    ) {
        let mut q = EventQueue::new();
        let mut last = 0u64;
        let mut clock = 0u64;
        for (jitter, pop) in ops {
            if pop {
                if let Some((t, ())) = q.pop() {
                    prop_assert!(t.as_nanos() >= last);
                    last = t.as_nanos();
                    clock = clock.max(last);
                }
            } else {
                // Schedule relative to the "current" time so the past is
                // never injected (mirrors Ctx::send).
                q.push(SimTime::from_nanos(clock + jitter), ());
            }
        }
    }

    /// `gen_range_u64` stays in bounds and the stream is seed-determined.
    #[test]
    fn rng_in_bounds_and_deterministic(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut a = Rng64::seed_from(seed);
        let mut b = Rng64::seed_from(seed);
        for _ in 0..100 {
            let x = a.gen_range_u64(n);
            prop_assert!(x < n);
            prop_assert_eq!(x, b.gen_range_u64(n));
        }
    }

    /// Welford merging any split equals processing the whole stream.
    #[test]
    fn welford_merge_is_split_invariant(
        xs in prop::collection::vec(-1e6f64..1e6, 1..300),
        cut in 0usize..300
    ) {
        let cut = cut.min(xs.len());
        let mut whole = Welford::new();
        for &x in &xs { whole.add(x); }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..cut] { left.add(x); }
        for &x in &xs[cut..] { right.add(x); }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-3);
    }

    /// Windowed rates conserve mass: Σ rate·bin = Σ in-range samples.
    #[test]
    fn windowed_rate_conserves_mass(
        samples in prop::collection::vec((0u64..10_000_000u64, 0.0f64..100.0), 0..200),
        bin_ms in 1u64..500
    ) {
        let mut sorted = samples.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut ts = TimeSeries::new();
        for &(t, v) in &sorted {
            ts.push(SimTime::from_micros(t), v);
        }
        let end = SimTime::from_secs(10);
        let rates = ts.windowed_rate(SimTime::ZERO, end, SimDuration::from_millis(bin_ms));
        let mass: f64 = rates.iter().map(|&(_, r)| r * (bin_ms as f64 / 1e3)).sum();
        let expected: f64 = sorted.iter().map(|&(_, v)| v).sum();
        prop_assert!((mass - expected).abs() < 1e-6 * (1.0 + expected.abs()),
                     "mass {} vs {}", mass, expected);
    }

    /// Instant/duration arithmetic round-trips.
    #[test]
    fn time_arithmetic_round_trips(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(a);
        let d = SimDuration::from_nanos(b);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
    }

    /// The calendar backend is observationally identical to the heap: pops,
    /// peeks, cancels, and lengths agree over any schedule/cancel/pop
    /// interleaving, including same-instant ties and far-future timers.
    #[test]
    fn calendar_queue_matches_heap(ops in prop::collection::vec(queue_op(), 1..400)) {
        let mut heap: EventQueue<u64> = EventQueue::with_kind(QueueKind::Heap);
        let mut cal: EventQueue<u64> = EventQueue::with_kind(QueueKind::Calendar);
        let mut pending = Vec::new();
        let mut clock = 0u64;
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                QueueOp::Push(jitter) => {
                    let t = SimTime::from_nanos(clock + jitter);
                    pending.push((heap.push(t, i as u64), cal.push(t, i as u64)));
                }
                QueueOp::Pop => {
                    prop_assert_eq!(heap.peek_time(), cal.peek_time());
                    let got = heap.pop();
                    prop_assert_eq!(got, cal.pop());
                    if let Some((t, _)) = got {
                        clock = t.as_nanos();
                    }
                }
                QueueOp::Cancel(raw) => {
                    if !pending.is_empty() {
                        let (hk, ck) = pending.swap_remove(raw % pending.len());
                        prop_assert_eq!(heap.cancel(hk), cal.cancel(ck));
                    }
                }
            }
            prop_assert_eq!(heap.len(), cal.len());
        }
        loop {
            let got = heap.pop();
            prop_assert_eq!(got, cal.pop());
            if got.is_none() {
                break;
            }
        }
    }

    /// Forked RNG children never mirror the parent stream.
    #[test]
    fn forked_rng_diverges(seed in any::<u64>()) {
        let mut parent = Rng64::seed_from(seed);
        let mut child = parent.fork();
        let same = (0..32).filter(|_| parent.next_u64() == child.next_u64()).count();
        prop_assert!(same < 2);
    }
}
