//! Network topology: nodes, links, prefix ownership and static routing.
//!
//! The topology lives in the simulation's shared state. Nodes are the same
//! ids as simulator actors; each node may own any number of IPv6 prefixes
//! (its subnets / interface addresses). Routing is static shortest-path
//! (Dijkstra over propagation delay, hop count as tie-break), recomputed
//! once after topology construction — the reproduction's networks are fixed
//! while mobile hosts move at the *radio* layer.
//!
//! # Examples
//!
//! ```
//! use fh_net::{LinkSpec, Topology, RouteDecision, doc_subnet};
//! use fh_sim::SimDuration;
//!
//! let mut topo = Topology::new();
//! let a = topo.add_node("a");
//! let b = topo.add_node("b");
//! let c = topo.add_node("c");
//! let spec = LinkSpec::new(100_000_000, SimDuration::from_millis(1), 50);
//! topo.add_link(a, b, spec);
//! let bc = topo.add_link(b, c, spec);
//! topo.add_prefix(doc_subnet(3), c);
//! topo.compute_routes();
//!
//! let dst = doc_subnet(3).host(1);
//! assert_eq!(topo.route(b, dst), RouteDecision::Forward(bc));
//! assert_eq!(topo.route(c, dst), RouteDecision::Local);
//! ```

use std::collections::BinaryHeap;
use std::net::Ipv6Addr;

use fh_sim::ActorId;

use crate::addr::Prefix;
use crate::link::{Link, LinkId, LinkSpec};

/// A node in the simulated network (the same id as its simulator actor).
pub type NodeId = ActorId;

/// Outcome of a routing lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteDecision {
    /// The destination address belongs to the querying node itself.
    Local,
    /// Forward on this link.
    Forward(LinkId),
    /// No route: the address is not owned by any reachable node.
    Unroutable,
}

#[derive(Debug, Clone, Default)]
struct NodeEntry {
    name: String,
    links: Vec<LinkId>,
    registered: bool,
}

/// The static network graph plus prefix ownership and forwarding tables.
#[derive(Debug, Default)]
pub struct Topology {
    nodes: Vec<NodeEntry>,
    links: Vec<Link>,
    prefixes: Vec<(Prefix, NodeId)>,
    /// `fwd[src][dst]` = outgoing link on the shortest path, `None` if
    /// unreachable or `src == dst`.
    fwd: Vec<Vec<Option<LinkId>>>,
    routes_fresh: bool,
    /// An ActorId registry used only when the topology itself allocates
    /// ids (`add_node`); scenario code normally registers simulator ids.
    next_synthetic: usize,
}

impl Topology {
    /// Creates an empty topology.
    #[must_use]
    pub fn new() -> Self {
        Topology::default()
    }

    fn ensure(&mut self, idx: usize) {
        if self.nodes.len() <= idx {
            self.nodes.resize(idx + 1, NodeEntry::default());
        }
    }

    /// Registers a simulator actor as a network node.
    pub fn register_node(&mut self, id: NodeId, name: impl Into<String>) {
        let idx = id.index();
        self.ensure(idx);
        self.nodes[idx].name = name.into();
        self.nodes[idx].registered = true;
        self.next_synthetic = self.next_synthetic.max(idx + 1);
        self.routes_fresh = false;
    }

    /// Allocates and registers a synthetic node id (useful in unit tests
    /// that do not run a simulator). Real scenarios should pass actor ids
    /// to [`Topology::register_node`] instead.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = synthetic_actor_id(self.next_synthetic);
        self.register_node(id, name);
        id
    }

    /// `true` if `id` has been registered.
    #[must_use]
    pub fn is_registered(&self, id: NodeId) -> bool {
        self.nodes.get(id.index()).is_some_and(|n| n.registered)
    }

    /// The registered name of a node (empty if unknown).
    #[must_use]
    pub fn node_name(&self, id: NodeId) -> &str {
        self.nodes.get(id.index()).map_or("", |n| n.name.as_str())
    }

    /// Number of registered nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.registered).count()
    }

    /// Connects two registered nodes with a duplex link.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is unregistered or the endpoints are equal.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> LinkId {
        assert!(a != b, "self-links are not allowed");
        assert!(
            self.is_registered(a) && self.is_registered(b),
            "both endpoints must be registered"
        );
        let id = LinkId(self.links.len());
        self.links.push(Link::new(a, b, spec));
        self.nodes[a.index()].links.push(id);
        self.nodes[b.index()].links.push(id);
        self.routes_fresh = false;
        id
    }

    /// Declares that `owner` owns (terminates) `prefix`.
    ///
    /// More-specific prefixes win lookups (longest prefix match).
    pub fn add_prefix(&mut self, prefix: Prefix, owner: NodeId) {
        assert!(self.is_registered(owner), "owner must be registered");
        self.prefixes.push((prefix, owner));
    }

    /// Immutable link access.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    #[must_use]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// Mutable link access (transmission mutates queue state).
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    #[must_use]
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.0]
    }

    /// All links, in creation order.
    #[must_use]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The node owning `addr` under longest-prefix match.
    #[must_use]
    pub fn owner_of(&self, addr: Ipv6Addr) -> Option<NodeId> {
        self.prefixes
            .iter()
            .filter(|(p, _)| p.contains(addr))
            .max_by_key(|(p, _)| p.len())
            .map(|&(_, owner)| owner)
    }

    /// (Re)computes all shortest-path forwarding tables. Must be called
    /// after the last `add_link` and before the first `route` query.
    pub fn compute_routes(&mut self) {
        let n = self.nodes.len();
        self.fwd = vec![vec![None; n]; n];
        for src in 0..n {
            if !self.nodes[src].registered {
                continue;
            }
            self.dijkstra_from(src);
        }
        self.routes_fresh = true;
    }

    fn dijkstra_from(&mut self, src: usize) {
        let n = self.nodes.len();
        // (cost_ns, hops) lexicographic.
        let mut best = vec![(u64::MAX, u32::MAX); n];
        let mut first_link: Vec<Option<LinkId>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        best[src] = (0, 0);
        heap.push(std::cmp::Reverse((0u64, 0u32, src, None::<LinkId>)));
        while let Some(std::cmp::Reverse((cost, hops, node, via))) = heap.pop() {
            if (cost, hops) > best[node] {
                continue;
            }
            if let Some(l) = via {
                if first_link[node].is_none() {
                    first_link[node] = Some(l);
                }
            }
            for &lid in &self.nodes[node].links.clone() {
                let link = &self.links[lid.0];
                let Some(peer) = link.peer(synthetic_actor_id(node)) else {
                    continue;
                };
                let peer = peer.index();
                let ncost = cost + link.spec.delay.as_nanos() + 1; // +1 biases toward fewer hops
                let nhops = hops + 1;
                if (ncost, nhops) < best[peer] {
                    best[peer] = (ncost, nhops);
                    let via0 = if node == src { Some(lid) } else { via };
                    first_link[peer] = via0;
                    heap.push(std::cmp::Reverse((ncost, nhops, peer, via0)));
                }
            }
        }
        for (dst, link) in first_link.iter().enumerate() {
            self.fwd[src][dst] = if dst == src { None } else { *link };
        }
    }

    /// Next-hop link from `from` toward node `to` (`None` if unreachable or
    /// identical).
    ///
    /// # Panics
    ///
    /// Panics if routes have not been computed since the last topology
    /// change.
    #[must_use]
    pub fn next_hop(&self, from: NodeId, to: NodeId) -> Option<LinkId> {
        assert!(
            self.routes_fresh,
            "call compute_routes() after building the topology"
        );
        self.fwd
            .get(from.index())
            .and_then(|row| row.get(to.index()))
            .copied()
            .flatten()
    }

    /// Full routing lookup: where should `from` send a packet for `dst`?
    ///
    /// # Panics
    ///
    /// Panics if routes have not been computed since the last topology
    /// change.
    #[must_use]
    pub fn route(&self, from: NodeId, dst: Ipv6Addr) -> RouteDecision {
        let Some(owner) = self.owner_of(dst) else {
            return RouteDecision::Unroutable;
        };
        if owner == from {
            return RouteDecision::Local;
        }
        match self.next_hop(from, owner) {
            Some(l) => RouteDecision::Forward(l),
            None => RouteDecision::Unroutable,
        }
    }
}

/// Builds an `ActorId` from a raw index without a simulator.
///
/// `ActorId` has no public constructor by design; the topology needs one for
/// synthetic test nodes, so it round-trips through a scratch simulator once.
fn synthetic_actor_id(index: usize) -> ActorId {
    struct Nop;
    impl fh_sim::Actor<(), ()> for Nop {
        fn handle(&mut self, _: &mut fh_sim::Ctx<'_, (), ()>, _: ()) {}
    }
    thread_local! {
        static IDS: std::cell::RefCell<Vec<ActorId>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    IDS.with(|ids| {
        let mut ids = ids.borrow_mut();
        while ids.len() <= index {
            // A scratch simulator only mints ids; it is never run.
            let mut sim: fh_sim::Simulator<(), ()> = fh_sim::Simulator::new((), 0);
            for _ in 0..=index {
                let id = sim.add_actor(Box::new(Nop));
                if id.index() >= ids.len() {
                    ids.push(id);
                }
            }
        }
        ids[index]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::doc_subnet;
    use fh_sim::SimDuration;

    fn spec_ms(ms: u64) -> LinkSpec {
        LinkSpec::new(100_000_000, SimDuration::from_millis(ms), 50)
    }

    /// CN — R — MAP — PAR/NAR style diamond:
    ///
    /// ```text
    ///        a
    ///       / \
    ///      b   c
    ///       \ /
    ///        d
    /// ```
    fn diamond() -> (Topology, [NodeId; 4], [LinkId; 4]) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        let d = t.add_node("d");
        let ab = t.add_link(a, b, spec_ms(1));
        let ac = t.add_link(a, c, spec_ms(5));
        let bd = t.add_link(b, d, spec_ms(1));
        let cd = t.add_link(c, d, spec_ms(1));
        t.add_prefix(doc_subnet(4), d);
        t.compute_routes();
        (t, [a, b, c, d], [ab, ac, bd, cd])
    }

    #[test]
    fn shortest_path_prefers_low_delay() {
        let (t, [a, _, _, d], [ab, _, bd, _]) = diamond();
        assert_eq!(t.next_hop(a, d), Some(ab));
        assert_eq!(t.next_hop(d, a), Some(bd));
    }

    #[test]
    fn route_decisions() {
        let (t, [a, _, _, d], [ab, ..]) = diamond();
        let dst = doc_subnet(4).host(7);
        assert_eq!(t.route(a, dst), RouteDecision::Forward(ab));
        assert_eq!(t.route(d, dst), RouteDecision::Local);
        assert_eq!(
            t.route(a, "fd00::1".parse().unwrap()),
            RouteDecision::Unroutable
        );
    }

    #[test]
    fn longest_prefix_match_wins() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        t.add_link(a, b, spec_ms(1));
        t.add_link(a, c, spec_ms(1));
        t.add_prefix(Prefix::new("2001:db8::".parse().unwrap(), 32), b);
        t.add_prefix(Prefix::new("2001:db8:5::".parse().unwrap(), 48), c);
        t.compute_routes();
        let generic = "2001:db8:4::1".parse().unwrap();
        let specific = "2001:db8:5::1".parse().unwrap();
        assert_eq!(t.owner_of(generic), Some(b));
        assert_eq!(t.owner_of(specific), Some(c));
    }

    #[test]
    fn disconnected_nodes_are_unroutable() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let island = t.add_node("island");
        t.add_link(a, b, spec_ms(1));
        t.add_prefix(doc_subnet(9), island);
        t.compute_routes();
        assert_eq!(t.route(a, doc_subnet(9).host(1)), RouteDecision::Unroutable);
        assert_eq!(t.next_hop(a, island), None);
    }

    #[test]
    fn next_hop_to_self_is_none() {
        let (t, [a, ..], _) = diamond();
        assert_eq!(t.next_hop(a, a), None);
    }

    #[test]
    #[should_panic(expected = "compute_routes")]
    fn stale_routes_panic() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_link(a, b, spec_ms(1));
        let _ = t.next_hop(a, b); // routes never computed
    }

    #[test]
    #[should_panic(expected = "registered")]
    fn link_to_unregistered_panics() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let ghost = synthetic_actor_id(40);
        t.add_link(a, ghost, spec_ms(1));
    }

    #[test]
    fn names_and_counts() {
        let (t, [a, ..], _) = diamond();
        assert_eq!(t.node_name(a), "a");
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.links().len(), 4);
    }

    #[test]
    fn multi_hop_chain_routes_end_to_end() {
        let mut t = Topology::new();
        let nodes: Vec<NodeId> = (0..6).map(|i| t.add_node(format!("n{i}"))).collect();
        let links: Vec<LinkId> = nodes
            .windows(2)
            .map(|w| t.add_link(w[0], w[1], spec_ms(2)))
            .collect();
        t.add_prefix(doc_subnet(42), nodes[5]);
        t.compute_routes();
        let dst = doc_subnet(42).host(1);
        // Every hop forwards on the next chain link.
        for i in 0..5 {
            assert_eq!(t.route(nodes[i], dst), RouteDecision::Forward(links[i]));
        }
        assert_eq!(t.route(nodes[5], dst), RouteDecision::Local);
    }
}
