//! # fh-net — network substrate for the fast-handover reproduction
//!
//! Everything the protocol crates share: IPv6-style addressing
//! ([`Prefix`]), traffic classes ([`ServiceClass`], Table 3.1 of the
//! thesis), packets and tunneling ([`Packet`]), the full signaling
//! vocabulary ([`msg::ControlMsg`]), duplex links with bandwidth /
//! propagation delay / drop-tail queues ([`Link`]), static shortest-path
//! routing ([`Topology`]), and the shared-world contract ([`NetWorld`])
//! with transmission helpers.
//!
//! The crate corresponds to the ns-2 core the original thesis built on:
//! nodes, links, queues, routing, and packet headers.
//!
//! ## Example — two routers exchanging a packet
//!
//! ```
//! use fh_net::{doc_subnet, LinkSpec, NetMsg, NetWorld, NetStats, Topology, Packet,
//!              FlowId, ServiceClass, send_from, NetCtx};
//! use fh_sim::{Actor, SimDuration, SimTime, Simulator};
//!
//! struct World { topo: Topology, stats: NetStats }
//! impl NetWorld for World {
//!     fn topology(&self) -> &Topology { &self.topo }
//!     fn topology_mut(&mut self) -> &mut Topology { &mut self.topo }
//!     fn stats(&self) -> &NetStats { &self.stats }
//!     fn stats_mut(&mut self) -> &mut NetStats { &mut self.stats }
//! }
//!
//! struct Router;
//! impl Actor<NetMsg, World> for Router {
//!     fn handle(&mut self, ctx: &mut NetCtx<'_, World>, msg: NetMsg) {
//!         if let NetMsg::LinkPacket { pkt, .. } = msg {
//!             let me = ctx.self_id();
//!             if send_from(ctx, me, pkt).is_some() {
//!                 ctx.shared.stats_mut().delivered += 1;
//!             }
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(World { topo: Topology::new(), stats: NetStats::new() }, 1);
//! let a = sim.add_actor(Box::new(Router));
//! let b = sim.add_actor(Box::new(Router));
//! sim.shared.topo.register_node(a, "a");
//! sim.shared.topo.register_node(b, "b");
//! sim.shared.topo.add_link(a, b, LinkSpec::new(8_000_000, SimDuration::from_millis(2), 50));
//! sim.shared.topo.add_prefix(doc_subnet(1), b);
//! sim.shared.topo.compute_routes();
//!
//! let pkt = Packet::data(FlowId(1), 0, doc_subnet(0).host(1), doc_subnet(1).host(1),
//!                        ServiceClass::RealTime, 160, SimTime::ZERO);
//! sim.schedule(SimTime::ZERO, a, NetMsg::LinkPacket { link: fh_net::LinkId(0), pkt });
//! sim.run();
//! assert_eq!(sim.shared.stats.delivered, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
pub mod boundary;
mod class;
pub mod fault;
mod link;
pub mod msg;
mod packet;
mod pool;
mod topology;
pub mod trace;
mod world;

pub use addr::{doc_subnet, Prefix};
pub use boundary::{BoundaryFabric, BoundaryLink, DomainId};
pub use class::{ParseClassError, PerHopBehavior, ServiceClass};
pub use fault::{FaultSpec, FaultState, FaultVerdict, GilbertElliott, NodeFaultSpec};
pub use link::{Link, LinkError, LinkId, LinkSpec};
pub use msg::{ApId, ControlMsg};
pub use packet::{ConnId, FlowId, Packet, Payload, TcpFlags, TcpSegment};
pub use pool::{PacketHandle, PacketPool, PacketSlot};
pub use topology::{NodeId, RouteDecision, Topology};
pub use trace::{TraceEvent, TraceLog};
pub use world::{
    record_control, record_drop, record_trace, send_control, send_from, start_timer, transmit_on,
    DropReason, FlowAudit, HandoverOutcome, L2Event, NetCtx, NetMsg, NetStats, NetWorld, TimerKind,
};
