//! Wire formats of every signaling message in the reproduction.
//!
//! This module is pure vocabulary: router discovery, Mobile IPv6 binding
//! management, HMIPv6, the FMIPv6 fast-handover messages (Fig 2.3), the
//! smooth-handover buffer-management messages (Fig 2.4), and the thesis'
//! piggybacked combinations (Fig 3.2). Protocol *behaviour* lives in the
//! `fh-mip` and `fh-core` crates.
//!
//! Each message knows its approximate on-wire size so the experiment harness
//! can account signaling overhead (thesis §3.3: "most of the control messages
//! are piggybacked … only the BF message is added").
//!
//! # Examples
//!
//! ```
//! use fh_net::msg::{BufferInit, ControlMsg};
//! use fh_sim::SimDuration;
//!
//! let bi = BufferInit {
//!     size: 20,
//!     start_time: SimDuration::from_millis(500),
//!     lifetime: SimDuration::from_secs(2),
//! };
//! let standalone = ControlMsg::BufferInit(bi.clone());
//! let piggybacked = ControlMsg::RtSolPr { target_ap: fh_net::ApId(1), bi: Some(bi) };
//! // Piggybacking saves one IPv6+ICMPv6 header relative to two messages.
//! assert!(piggybacked.wire_size() < ControlMsg::RtSolPr { target_ap: fh_net::ApId(1), bi: None }.wire_size() + standalone.wire_size());
//! ```

use std::net::Ipv6Addr;

use fh_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::addr::Prefix;

/// Link-layer identifier of a WLAN access point.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ApId(pub u32);

impl std::fmt::Display for ApId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ap{}", self.0)
    }
}

const ICMP_BASE: u32 = 8;
const ADDR: u32 = 16;
const PREFIX_OPT: u32 = 32;
const TIME_FIELD: u32 = 4;

/// Buffer Initialization option (thesis §3.2.2.1).
///
/// Piggybacked on RtSolPr (or sent standalone in the original smooth-handover
/// draft). Carries the requested buffer size, the time at which the router
/// should start buffering even without an FBU (protection against moving out
/// of range too fast), and the reservation lifetime. Both times zero cancels
/// a pending handover.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BufferInit {
    /// Requested buffer space, in packets.
    pub size: u32,
    /// Delay after which the router must start buffering on its own.
    pub start_time: SimDuration,
    /// How long the reservation stays valid.
    pub lifetime: SimDuration,
}

impl BufferInit {
    /// A cancel request: start time and lifetime both zero (§3.2.2.1).
    #[must_use]
    pub fn cancel() -> Self {
        BufferInit {
            size: 0,
            start_time: SimDuration::ZERO,
            lifetime: SimDuration::ZERO,
        }
    }

    /// `true` if this request cancels the handover.
    #[must_use]
    pub fn is_cancel(&self) -> bool {
        self.start_time.is_zero() && self.lifetime.is_zero()
    }

    fn wire_size(&self) -> u32 {
        4 + 2 * TIME_FIELD
    }
}

/// Buffer Request option — PAR→NAR inside HI, relaying the MH's request.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BufferRequest {
    /// Requested buffer space at the NAR, in packets.
    pub size: u32,
    /// Reservation lifetime.
    pub lifetime: SimDuration,
}

impl BufferRequest {
    fn wire_size(&self) -> u32 {
        4 + TIME_FIELD
    }
}

/// Buffer Acknowledgement option — whether buffer space was granted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BufferAck {
    /// Space granted at the NAR, in packets (0 = denied).
    pub nar_granted: u32,
    /// Space granted at the PAR, in packets (0 = denied).
    pub par_granted: u32,
}

impl BufferAck {
    fn wire_size(self) -> u32 {
        8
    }
}

/// Status code carried in HAck / FBAck / BindingAck.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AckStatus {
    /// Request accepted.
    #[default]
    Accepted,
    /// Request rejected.
    Rejected,
}

impl AckStatus {
    /// `true` for [`AckStatus::Accepted`].
    #[must_use]
    pub fn is_accepted(self) -> bool {
        matches!(self, AckStatus::Accepted)
    }
}

/// Who a Mobile IPv6 binding update is addressed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BindingKind {
    /// Home-agent registration (macro mobility): home address ↔ RCoA.
    HomeAgent,
    /// HMIPv6 local registration at the MAP: RCoA ↔ LCoA.
    Map,
    /// Route-optimization binding at a correspondent node.
    Correspondent,
}

/// Simple pre-shared handover authentication token (thesis future work:
/// "authentication mechanism is required before the NAR accepts handoffs").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AuthToken(pub u64);

/// Every signaling message the simulation exchanges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlMsg {
    // ---- Router discovery -------------------------------------------------
    /// Periodic router advertisement (RFC 4861), extended with the HMIPv6
    /// MAP option and the smooth-handover "B" (buffering-capable) flag.
    RouterAdvertisement {
        /// The on-link prefix mobile hosts form their LCoA from.
        prefix: Prefix,
        /// The advertising router's address.
        router: Ipv6Addr,
        /// The Mobility Anchor Point serving this access network, if any.
        map: Option<Ipv6Addr>,
        /// The "B" flag: this router offers handover buffering.
        buffering: bool,
    },
    /// Router solicitation.
    RouterSolicitation,

    // ---- FMIPv6 (Fig 2.3) with piggybacked buffer options (Fig 3.2) ------
    /// Router Solicitation for Proxy; `bi` piggybacks the Buffer
    /// Initialization option (RtSolPr+BI, Fig 3.3).
    RtSolPr {
        /// Link-layer id of the AP the MH intends to move to.
        target_ap: ApId,
        /// Piggybacked buffer request, if the MH wants buffering.
        bi: Option<BufferInit>,
    },
    /// Proxy Router Advertisement; answers RtSolPr with the NAR's prefix and
    /// address and (piggybacked) the result of the buffer negotiation.
    PrRtAdv {
        /// The AP the advertisement concerns.
        target_ap: ApId,
        /// Prefix of the new access router's subnet.
        nar_prefix: Prefix,
        /// The new access router's address.
        nar_addr: Ipv6Addr,
        /// Outcome of the PAR/NAR buffer negotiation.
        ba: Option<BufferAck>,
        /// Token the MH must present to the NAR when authentication is on.
        auth: Option<AuthToken>,
    },
    /// Handover Initiate, PAR→NAR; `br` piggybacks the Buffer Request
    /// (HI+BR).
    HandoverInitiate {
        /// The MH's current (previous) care-of address.
        pcoa: Ipv6Addr,
        /// The MH's link-layer address (FMIPv6 carries it so the NAR can
        /// reach the host before any IP binding exists). In the simulation
        /// the L2 address *is* the host's node id.
        mh_l2: crate::topology::NodeId,
        /// The MH's prospective new care-of address, when already formed.
        ncoa: Option<Ipv6Addr>,
        /// Piggybacked buffer request.
        br: Option<BufferRequest>,
        /// Class-of-service the MH asked buffering for, when the precise
        /// negotiation extension is active (future work §5): per-class
        /// packet counts requested at the NAR.
        per_class: Option<[u32; 3]>,
        /// Authentication token the NAR should expect in the FNA.
        auth: Option<AuthToken>,
    },
    /// Handover Acknowledge, NAR→PAR; `ba` piggybacks the Buffer
    /// Acknowledgement (HAck+BA).
    HandoverAck {
        /// The MH this acknowledgement concerns.
        pcoa: Ipv6Addr,
        /// Whether the NAR accepted the handover.
        status: AckStatus,
        /// Buffer space granted at the NAR.
        ba: Option<BufferAck>,
    },
    /// Fast Binding Update, MH→PAR: start redirecting traffic.
    FastBindingUpdate {
        /// Previous care-of address (source of the binding).
        pcoa: Ipv6Addr,
        /// New care-of address.
        ncoa: Ipv6Addr,
    },
    /// Fast Binding Acknowledgement, PAR→MH (old link) and PAR→NAR.
    FastBindingAck {
        /// The MH this acknowledgement concerns.
        pcoa: Ipv6Addr,
        /// Whether the fast binding was accepted.
        status: AckStatus,
    },
    /// Fast Neighbor Advertisement, MH→NAR on attach; `bf` piggybacks the
    /// Buffer Forward request (FNA+BF, Fig 3.4).
    FastNeighborAdvertisement {
        /// The MH's new care-of address.
        ncoa: Ipv6Addr,
        /// Previous care-of address, so the NAR can find the session.
        pcoa: Ipv6Addr,
        /// Piggybacked buffer-forward request.
        bf: bool,
        /// Authentication token, when the NAR demands one.
        auth: Option<AuthToken>,
    },

    // ---- Buffer management (Fig 2.4 + thesis additions) -------------------
    /// Standalone Buffer Initialization (smooth-handover draft, and the
    /// pure-L2 path of Fig 3.5 reuses RtSolPr+BI instead).
    BufferInit(BufferInit),
    /// Standalone Buffer Acknowledgement (smooth-handover draft).
    BufferAck(BufferAck),
    /// Buffer Forward: flush buffered packets to the MH. Sent MH→AR in the
    /// draft and pure-L2 case, and NAR→PAR in the proposed scheme (the only
    /// *new* standalone message, §3.3).
    BufferForward {
        /// The MH (previous care-of address) whose buffer should flush.
        pcoa: Ipv6Addr,
    },
    /// Buffer Full: NAR→PAR, case 1.b of Table 3.3 — the NAR ran out of
    /// space for high-priority packets, the PAR must buffer the rest.
    BufferFull {
        /// The MH (previous care-of address) whose NAR buffer filled up.
        pcoa: Ipv6Addr,
    },

    // ---- Mobile IPv6 / HMIPv6 ---------------------------------------------
    /// Binding update (home agent, MAP, or correspondent registration).
    BindingUpdate {
        /// Which binding is being updated.
        kind: BindingKind,
        /// The stable address (home address, or RCoA for MAP bindings).
        home: Ipv6Addr,
        /// The current care-of address (RCoA or LCoA).
        coa: Ipv6Addr,
        /// Registration lifetime (zero deregisters).
        lifetime: SimDuration,
    },
    /// Binding acknowledgement.
    BindingAck {
        /// Which binding was updated.
        kind: BindingKind,
        /// The stable address the update concerned.
        home: Ipv6Addr,
        /// Whether the registration was accepted.
        status: AckStatus,
    },
}

impl ControlMsg {
    /// Approximate on-wire size of the ICMPv6/MH message body in bytes
    /// (excluding the IPv6 header, which [`crate::Packet::control`] adds).
    #[must_use]
    pub fn wire_size(&self) -> u32 {
        match self {
            ControlMsg::RouterAdvertisement { map, .. } => {
                ICMP_BASE + PREFIX_OPT + map.map_or(0, |_| ADDR)
            }
            ControlMsg::RouterSolicitation => ICMP_BASE,
            ControlMsg::RtSolPr { bi, .. } => {
                ICMP_BASE + 8 + bi.as_ref().map_or(0, BufferInit::wire_size)
            }
            ControlMsg::PrRtAdv { ba, auth, .. } => {
                ICMP_BASE
                    + 8
                    + PREFIX_OPT
                    + ADDR
                    + ba.map_or(0, BufferAck::wire_size)
                    + auth.map_or(0, |_| 8)
            }
            ControlMsg::HandoverInitiate {
                ncoa,
                br,
                per_class,
                auth,
                ..
            } => {
                ICMP_BASE
                    + ADDR
                    + 8 // link-layer address option
                    + ncoa.map_or(0, |_| ADDR)
                    + br.as_ref().map_or(0, BufferRequest::wire_size)
                    + per_class.map_or(0, |_| 12)
                    + auth.map_or(0, |_| 8)
            }
            ControlMsg::HandoverAck { ba, .. } => {
                ICMP_BASE + ADDR + 1 + ba.map_or(0, BufferAck::wire_size)
            }
            ControlMsg::FastBindingUpdate { .. } => ICMP_BASE + 2 * ADDR,
            ControlMsg::FastBindingAck { .. } => ICMP_BASE + ADDR + 1,
            ControlMsg::FastNeighborAdvertisement { bf, auth, .. } => {
                ICMP_BASE + 2 * ADDR + u32::from(*bf) + auth.map_or(0, |_| 8)
            }
            ControlMsg::BufferInit(bi) => ICMP_BASE + bi.wire_size(),
            ControlMsg::BufferAck(ba) => ICMP_BASE + ba.wire_size(),
            ControlMsg::BufferForward { .. } => ICMP_BASE + ADDR,
            ControlMsg::BufferFull { .. } => ICMP_BASE + ADDR,
            ControlMsg::BindingUpdate { .. } => ICMP_BASE + 2 * ADDR + TIME_FIELD,
            ControlMsg::BindingAck { .. } => ICMP_BASE + ADDR + 1,
        }
    }

    /// Short name for statistics and traces.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            ControlMsg::RouterAdvertisement { .. } => "RA",
            ControlMsg::RouterSolicitation => "RS",
            ControlMsg::RtSolPr { .. } => "RtSolPr",
            ControlMsg::PrRtAdv { .. } => "PrRtAdv",
            ControlMsg::HandoverInitiate { .. } => "HI",
            ControlMsg::HandoverAck { .. } => "HAck",
            ControlMsg::FastBindingUpdate { .. } => "FBU",
            ControlMsg::FastBindingAck { .. } => "FBAck",
            ControlMsg::FastNeighborAdvertisement { .. } => "FNA",
            ControlMsg::BufferInit(_) => "BI",
            ControlMsg::BufferAck(_) => "BA",
            ControlMsg::BufferForward { .. } => "BF",
            ControlMsg::BufferFull { .. } => "BufferFull",
            ControlMsg::BindingUpdate { .. } => "BU",
            ControlMsg::BindingAck { .. } => "BAck",
        }
    }

    /// `true` if this message carries a piggybacked buffer-management option
    /// (the thesis' signaling-overhead argument, §3.3).
    #[must_use]
    pub fn has_piggyback(&self) -> bool {
        match self {
            ControlMsg::RtSolPr { bi, .. } => bi.is_some(),
            ControlMsg::PrRtAdv { ba, .. } => ba.is_some(),
            ControlMsg::HandoverInitiate { br, .. } => br.is_some(),
            ControlMsg::HandoverAck { ba, .. } => ba.is_some(),
            ControlMsg::FastNeighborAdvertisement { bf, .. } => *bf,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u16) -> Ipv6Addr {
        Ipv6Addr::new(0x2001, 0xdb8, n, 0, 0, 0, 0, 1)
    }

    #[test]
    fn cancel_semantics() {
        assert!(BufferInit::cancel().is_cancel());
        let live = BufferInit {
            size: 10,
            start_time: SimDuration::ZERO,
            lifetime: SimDuration::from_secs(1),
        };
        assert!(!live.is_cancel());
    }

    #[test]
    fn piggyback_grows_message_but_less_than_standalone() {
        let bi = BufferInit {
            size: 20,
            start_time: SimDuration::from_millis(100),
            lifetime: SimDuration::from_secs(1),
        };
        let bare = ControlMsg::RtSolPr {
            target_ap: ApId(1),
            bi: None,
        };
        let piggy = ControlMsg::RtSolPr {
            target_ap: ApId(1),
            bi: Some(bi.clone()),
        };
        let standalone = ControlMsg::BufferInit(bi);
        assert!(piggy.wire_size() > bare.wire_size());
        assert!(piggy.wire_size() < bare.wire_size() + standalone.wire_size());
        assert!(piggy.has_piggyback());
        assert!(!bare.has_piggyback());
    }

    #[test]
    fn every_message_has_positive_size_and_name() {
        let msgs = vec![
            ControlMsg::RouterAdvertisement {
                prefix: crate::addr::doc_subnet(1),
                router: a(1),
                map: Some(a(9)),
                buffering: true,
            },
            ControlMsg::RouterSolicitation,
            ControlMsg::RtSolPr {
                target_ap: ApId(2),
                bi: None,
            },
            ControlMsg::PrRtAdv {
                target_ap: ApId(2),
                nar_prefix: crate::addr::doc_subnet(2),
                nar_addr: a(2),
                ba: Some(BufferAck {
                    nar_granted: 20,
                    par_granted: 20,
                }),
                auth: Some(AuthToken(7)),
            },
            ControlMsg::HandoverInitiate {
                pcoa: a(1),
                mh_l2: crate::topology::Topology::new().add_node("mh"),
                ncoa: Some(a(2)),
                br: Some(BufferRequest {
                    size: 20,
                    lifetime: SimDuration::from_secs(1),
                }),
                per_class: Some([5, 10, 5]),
                auth: None,
            },
            ControlMsg::HandoverAck {
                pcoa: a(1),
                status: AckStatus::Accepted,
                ba: None,
            },
            ControlMsg::FastBindingUpdate {
                pcoa: a(1),
                ncoa: a(2),
            },
            ControlMsg::FastBindingAck {
                pcoa: a(1),
                status: AckStatus::Rejected,
            },
            ControlMsg::FastNeighborAdvertisement {
                ncoa: a(2),
                pcoa: a(1),
                bf: true,
                auth: None,
            },
            ControlMsg::BufferForward { pcoa: a(1) },
            ControlMsg::BufferFull { pcoa: a(1) },
            ControlMsg::BindingUpdate {
                kind: BindingKind::Map,
                home: a(3),
                coa: a(2),
                lifetime: SimDuration::from_secs(60),
            },
            ControlMsg::BindingAck {
                kind: BindingKind::Map,
                home: a(3),
                status: AckStatus::Accepted,
            },
        ];
        for m in msgs {
            assert!(m.wire_size() >= ICMP_BASE, "{} too small", m.kind_name());
            assert!(!m.kind_name().is_empty());
        }
    }

    #[test]
    fn ack_status_predicate() {
        assert!(AckStatus::Accepted.is_accepted());
        assert!(!AckStatus::Rejected.is_accepted());
        assert_eq!(AckStatus::default(), AckStatus::Accepted);
    }

    #[test]
    fn fna_piggyback_flag() {
        let m = ControlMsg::FastNeighborAdvertisement {
            ncoa: a(2),
            pcoa: a(1),
            bf: true,
            auth: None,
        };
        assert!(m.has_piggyback());
        let m2 = ControlMsg::FastNeighborAdvertisement {
            ncoa: a(2),
            pcoa: a(1),
            bf: false,
            auth: None,
        };
        assert!(!m2.has_piggyback());
    }
}
