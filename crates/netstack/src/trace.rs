//! Protocol event tracing (the ns-2 trace-file analog).
//!
//! When enabled, the [`TraceLog`] inside [`crate::NetStats`] records every
//! control message sent, every packet drop (with its reason), and the
//! link-layer events of the mobile hosts — timestamped, in global event
//! order. Rendering the log reads like a protocol analyzer's view of a
//! handover:
//!
//! ```text
//! 1.200000s  ctrl RtSolPr 60B piggyback
//! 1.206842s  ctrl FBU 88B
//! 1.209422s  l2 actor#4 LinkDown { ap: ap0 }
//! 1.409422s  l2 actor#4 LinkUp { ap: ap1 }
//! ```
//!
//! Tracing is off by default (zero overhead beyond a branch); enable it
//! with [`TraceLog::enable`] before the run.

use fh_sim::SimTime;

use crate::packet::FlowId;
use crate::world::{DropReason, L2Event};
use crate::NodeId;

/// One traced protocol event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A signaling message entered the network.
    ControlSent {
        /// Message kind (`"RtSolPr"`, `"HI"`, …).
        kind: &'static str,
        /// On-wire size including the IPv6 header.
        bytes: u32,
        /// Whether a buffer-management option rode along.
        piggybacked: bool,
    },
    /// A data or control packet was lost.
    Drop {
        /// The flow the packet belonged to (0 = control plane).
        flow: FlowId,
        /// Why it was lost.
        reason: DropReason,
    },
    /// A link-layer event at a mobile host.
    L2 {
        /// The host.
        mh: NodeId,
        /// The event.
        event: L2Event,
    },
}

/// A bounded, timestamped protocol event log.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    enabled: bool,
    cap: usize,
    events: Vec<(SimTime, TraceEvent)>,
    truncated: u64,
}

impl TraceLog {
    /// Switches tracing on, keeping at most `cap` events (further events
    /// are counted but not stored).
    pub fn enable(&mut self, cap: usize) {
        self.enabled = true;
        self.cap = cap;
    }

    /// `true` while tracing is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op unless enabled).
    pub fn push(&mut self, now: SimTime, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.cap {
            self.truncated += 1;
            return;
        }
        self.events.push((now, event));
    }

    /// The recorded events, in order.
    #[must_use]
    pub fn events(&self) -> &[(SimTime, TraceEvent)] {
        &self.events
    }

    /// Events that arrived after the log filled up.
    #[must_use]
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    /// Renders the log as one line per event.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (t, ev) in &self.events {
            match ev {
                TraceEvent::ControlSent {
                    kind,
                    bytes,
                    piggybacked,
                } => {
                    let _ = writeln!(
                        out,
                        "{t}  ctrl {kind} {bytes}B{}",
                        if *piggybacked { " piggyback" } else { "" }
                    );
                }
                TraceEvent::Drop { flow, reason } => {
                    let _ = writeln!(out, "{t}  drop {flow} {reason:?}");
                }
                TraceEvent::L2 { mh, event } => {
                    let _ = writeln!(out, "{t}  l2 {mh} {event:?}");
                }
            }
        }
        if self.truncated > 0 {
            let _ = writeln!(out, "… {} further events not stored", self.truncated);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_stores_nothing() {
        let mut log = TraceLog::default();
        log.push(
            SimTime::ZERO,
            TraceEvent::Drop {
                flow: FlowId(1),
                reason: DropReason::RadioDetached,
            },
        );
        assert!(!log.is_enabled());
        assert!(log.events().is_empty());
        assert_eq!(log.truncated(), 0);
    }

    #[test]
    fn cap_is_respected_and_counted() {
        let mut log = TraceLog::default();
        log.enable(2);
        for i in 0..5 {
            log.push(
                SimTime::from_millis(i),
                TraceEvent::ControlSent {
                    kind: "RA",
                    bytes: 80,
                    piggybacked: false,
                },
            );
        }
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.truncated(), 3);
        assert!(log.render().contains("3 further events"));
    }

    #[test]
    fn render_formats_each_kind() {
        let mut log = TraceLog::default();
        log.enable(10);
        log.push(
            SimTime::from_millis(1),
            TraceEvent::ControlSent {
                kind: "HI",
                bytes: 120,
                piggybacked: true,
            },
        );
        log.push(
            SimTime::from_millis(2),
            TraceEvent::Drop {
                flow: FlowId(3),
                reason: DropReason::BufferOverflow,
            },
        );
        let s = log.render();
        assert!(s.contains("ctrl HI 120B piggyback"));
        assert!(s.contains("drop flow3 BufferOverflow"));
    }
}
