//! Protocol event tracing (the ns-2 trace-file analog).
//!
//! When enabled, the [`TraceLog`] inside [`crate::NetStats`] records the
//! structured simulation events — control messages sent / received /
//! retransmitted, packet drops with their reason, link-layer events,
//! per-class buffer admissions / evictions / flushes, injected faults
//! and soft-state expiry — timestamped, in global event order. Rendering
//! the log reads like a protocol analyzer's view of a handover:
//!
//! ```text
//! 1.200000s  ctrl RtSolPr 60B piggyback
//! 1.206842s  ctrl FBU 88B
//! 1.209422s  l2 actor#4 LinkDown { ap: ap0 }
//! 1.409422s  l2 actor#4 LinkUp { ap: ap1 }
//! ```
//!
//! The log is an [`fh_telemetry::FlightRecorder`] ring buffer: when it
//! fills, the **oldest** events are overwritten (and counted), so the
//! most recent history is always available. Tracing is off by default
//! (zero overhead beyond a branch); enable it with [`TraceLog::enable`]
//! before the run. Each [`TraceEvent`] implements
//! [`fh_telemetry::TraceInstant`], so a recorded log exports straight to
//! Chrome-trace or JSONL via `fh_telemetry::export`.

use fh_sim::SimTime;
use fh_telemetry::{FlightRecorder, TraceInstant};

use crate::class::ServiceClass;
use crate::packet::FlowId;
use crate::world::{DropReason, L2Event};
use crate::NodeId;

/// One traced protocol event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A signaling message entered the network.
    ControlSent {
        /// Message kind (`"RtSolPr"`, `"HI"`, …).
        kind: &'static str,
        /// On-wire size including the IPv6 header.
        bytes: u32,
        /// Whether a buffer-management option rode along.
        piggybacked: bool,
    },
    /// A signaling message reached a protocol agent.
    ControlReceived {
        /// Message kind.
        kind: &'static str,
        /// The node whose agent consumed it.
        at: NodeId,
    },
    /// A signaling exchange timed out and was retransmitted.
    ControlRetransmit {
        /// Message kind being retried.
        kind: &'static str,
        /// The node that retransmitted.
        by: NodeId,
    },
    /// A data or control packet was lost.
    Drop {
        /// The flow the packet belonged to (0 = control plane).
        flow: FlowId,
        /// Why it was lost.
        reason: DropReason,
    },
    /// A link-layer event at a mobile host.
    L2 {
        /// The host.
        mh: NodeId,
        /// The event.
        event: L2Event,
    },
    /// A handover buffer accepted a packet.
    BufferAdmit {
        /// The buffering access router.
        ar: NodeId,
        /// Service class of the admitted packet.
        class: ServiceClass,
        /// The packet's flow.
        flow: FlowId,
    },
    /// A handover buffer pushed out a queued packet to admit a more
    /// important one (Table 3.3 drop-front).
    BufferEvict {
        /// The buffering access router.
        ar: NodeId,
        /// Service class of the *evicted* packet.
        class: ServiceClass,
        /// The evicted packet's flow.
        flow: FlowId,
    },
    /// A handover buffer started draining toward the mobile host.
    BufferFlush {
        /// The flushing access router.
        ar: NodeId,
        /// Which flush path (`"par"`, `"nar"`, `"local"`).
        path: &'static str,
        /// Packets queued at flush start.
        pkts: usize,
    },
    /// The fault-injection layer fired a scheduled node fault.
    FaultFired {
        /// The faulted node.
        node: NodeId,
        /// What happened (`"crash"`, `"restart"`, `"power-off"`).
        what: &'static str,
    },
    /// A piece of soft state reached its lifetime without a refresh.
    StateExpired {
        /// The node holding the state.
        node: NodeId,
        /// What expired (`"host-route"`, `"reservation"`, …).
        what: &'static str,
    },
    /// Dead-peer or crash cleanup reclaimed buffered state.
    StateReclaimed {
        /// The node that reclaimed.
        node: NodeId,
        /// Packets released by the reclaim.
        pkts: usize,
    },
    /// The overload-control layer shed a parked packet to relieve byte
    /// pressure.
    PressureShed {
        /// The shedding access router.
        ar: NodeId,
        /// Shed-ladder rung that fired (`"best-effort"`, `"drop-front"`,
        /// `"force-flush"`).
        rung: &'static str,
        /// Service class of the shed packet.
        class: ServiceClass,
        /// The shed packet's flow.
        flow: FlowId,
    },
    /// The handover watchdog force-resolved a wedged buffering session.
    WatchdogFired {
        /// The router whose session was wedged.
        node: NodeId,
        /// Packets re-accounted by the forced resolution.
        pkts: usize,
    },
}

impl TraceEvent {
    /// The node a timeline should attribute the event to (`None` for
    /// network-global events such as sends and drops, which are recorded
    /// at the statistics hub rather than at a node).
    #[must_use]
    pub fn node(&self) -> Option<NodeId> {
        match *self {
            TraceEvent::ControlSent { .. } | TraceEvent::Drop { .. } => None,
            TraceEvent::ControlReceived { at: n, .. }
            | TraceEvent::ControlRetransmit { by: n, .. }
            | TraceEvent::L2 { mh: n, .. }
            | TraceEvent::BufferAdmit { ar: n, .. }
            | TraceEvent::BufferEvict { ar: n, .. }
            | TraceEvent::BufferFlush { ar: n, .. }
            | TraceEvent::FaultFired { node: n, .. }
            | TraceEvent::StateExpired { node: n, .. }
            | TraceEvent::StateReclaimed { node: n, .. }
            | TraceEvent::PressureShed { ar: n, .. }
            | TraceEvent::WatchdogFired { node: n, .. } => Some(n),
        }
    }
}

impl TraceInstant for TraceEvent {
    fn name(&self) -> &'static str {
        match self {
            TraceEvent::ControlSent { .. } => "ctrl-sent",
            TraceEvent::ControlReceived { .. } => "ctrl-recv",
            TraceEvent::ControlRetransmit { .. } => "ctrl-rtx",
            TraceEvent::Drop { .. } => "drop",
            TraceEvent::L2 { .. } => "l2",
            TraceEvent::BufferAdmit { .. } => "buffer-admit",
            TraceEvent::BufferEvict { .. } => "buffer-evict",
            TraceEvent::BufferFlush { .. } => "buffer-flush",
            TraceEvent::FaultFired { .. } => "fault",
            TraceEvent::StateExpired { .. } => "state-expired",
            TraceEvent::StateReclaimed { .. } => "state-reclaimed",
            TraceEvent::PressureShed { .. } => "pressure-shed",
            TraceEvent::WatchdogFired { .. } => "watchdog",
        }
    }

    fn track(&self) -> u64 {
        self.node().map_or(0, |n| n.index() as u64)
    }

    fn args_json(&self) -> String {
        match *self {
            TraceEvent::ControlSent {
                kind,
                bytes,
                piggybacked,
            } => format!("{{\"kind\":\"{kind}\",\"bytes\":{bytes},\"piggyback\":{piggybacked}}}"),
            TraceEvent::ControlReceived { kind, at } => {
                format!("{{\"kind\":\"{kind}\",\"at\":{}}}", at.index())
            }
            TraceEvent::ControlRetransmit { kind, by } => {
                format!("{{\"kind\":\"{kind}\",\"by\":{}}}", by.index())
            }
            TraceEvent::Drop { flow, reason } => {
                format!("{{\"flow\":{},\"reason\":\"{}\"}}", flow.0, reason.label())
            }
            TraceEvent::L2 { mh, event } => {
                format!("{{\"mh\":{},\"event\":\"{event:?}\"}}", mh.index())
            }
            TraceEvent::BufferAdmit { ar, class, flow } => format!(
                "{{\"ar\":{},\"class\":\"{class}\",\"flow\":{}}}",
                ar.index(),
                flow.0
            ),
            TraceEvent::BufferEvict { ar, class, flow } => format!(
                "{{\"ar\":{},\"class\":\"{class}\",\"flow\":{}}}",
                ar.index(),
                flow.0
            ),
            TraceEvent::BufferFlush { ar, path, pkts } => format!(
                "{{\"ar\":{},\"path\":\"{path}\",\"pkts\":{pkts}}}",
                ar.index()
            ),
            TraceEvent::FaultFired { node, what } => {
                format!("{{\"node\":{},\"what\":\"{what}\"}}", node.index())
            }
            TraceEvent::StateExpired { node, what } => {
                format!("{{\"node\":{},\"what\":\"{what}\"}}", node.index())
            }
            TraceEvent::StateReclaimed { node, pkts } => {
                format!("{{\"node\":{},\"pkts\":{pkts}}}", node.index())
            }
            TraceEvent::PressureShed {
                ar,
                rung,
                class,
                flow,
            } => format!(
                "{{\"ar\":{},\"rung\":\"{rung}\",\"class\":\"{class}\",\"flow\":{}}}",
                ar.index(),
                flow.0
            ),
            TraceEvent::WatchdogFired { node, pkts } => {
                format!("{{\"node\":{},\"pkts\":{pkts}}}", node.index())
            }
        }
    }
}

/// A bounded, timestamped protocol event log — a thin facade over
/// [`FlightRecorder`] that owns the network-layer event vocabulary.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    rec: FlightRecorder<TraceEvent>,
}

impl TraceLog {
    /// Switches tracing on, keeping the most recent `cap` events (the
    /// ring overwrites the oldest ones, counting what it loses).
    pub fn enable(&mut self, cap: usize) {
        self.rec.enable(cap);
    }

    /// `true` while tracing is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.rec.is_enabled()
    }

    /// Records an event (no-op unless enabled).
    pub fn push(&mut self, now: SimTime, event: TraceEvent) {
        self.rec.record(now, event);
    }

    /// The recorded events, oldest surviving first.
    pub fn events(&self) -> impl Iterator<Item = &(SimTime, TraceEvent)> {
        self.rec.events()
    }

    /// Events matching `pred`, oldest surviving first — e.g. only buffer
    /// events, or only one router's events.
    pub fn filtered<'a, F>(&'a self, pred: F) -> impl Iterator<Item = &'a (SimTime, TraceEvent)>
    where
        F: FnMut(&TraceEvent) -> bool + 'a,
    {
        self.rec.filtered(pred)
    }

    /// Number of events currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rec.len()
    }

    /// `true` when nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rec.is_empty()
    }

    /// Events lost to ring wraparound.
    #[must_use]
    pub fn overwritten(&self) -> u64 {
        self.rec.overwritten()
    }

    /// Borrow of the underlying recorder (for exporters).
    #[must_use]
    pub fn recorder(&self) -> &FlightRecorder<TraceEvent> {
        &self.rec
    }

    /// Renders the log as one line per event.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.rec.overwritten() > 0 {
            let _ = writeln!(
                out,
                "… {} earlier events overwritten",
                self.rec.overwritten()
            );
        }
        for (t, ev) in self.rec.events() {
            match ev {
                TraceEvent::ControlSent {
                    kind,
                    bytes,
                    piggybacked,
                } => {
                    let _ = writeln!(
                        out,
                        "{t}  ctrl {kind} {bytes}B{}",
                        if *piggybacked { " piggyback" } else { "" }
                    );
                }
                TraceEvent::ControlReceived { kind, at } => {
                    let _ = writeln!(out, "{t}  recv {kind} @{at}");
                }
                TraceEvent::ControlRetransmit { kind, by } => {
                    let _ = writeln!(out, "{t}  rtx {kind} by {by}");
                }
                TraceEvent::Drop { flow, reason } => {
                    let _ = writeln!(out, "{t}  drop {flow} {reason:?}");
                }
                TraceEvent::L2 { mh, event } => {
                    let _ = writeln!(out, "{t}  l2 {mh} {event:?}");
                }
                TraceEvent::BufferAdmit { ar, class, flow } => {
                    let _ = writeln!(out, "{t}  buf+ {ar} {class} {flow}");
                }
                TraceEvent::BufferEvict { ar, class, flow } => {
                    let _ = writeln!(out, "{t}  buf- {ar} {class} {flow}");
                }
                TraceEvent::BufferFlush { ar, path, pkts } => {
                    let _ = writeln!(out, "{t}  flush {ar} {path} {pkts}pkt");
                }
                TraceEvent::FaultFired { node, what } => {
                    let _ = writeln!(out, "{t}  fault {node} {what}");
                }
                TraceEvent::StateExpired { node, what } => {
                    let _ = writeln!(out, "{t}  expire {node} {what}");
                }
                TraceEvent::StateReclaimed { node, pkts } => {
                    let _ = writeln!(out, "{t}  reclaim {node} {pkts}pkt");
                }
                TraceEvent::PressureShed {
                    ar,
                    rung,
                    class,
                    flow,
                } => {
                    let _ = writeln!(out, "{t}  shed {ar} {rung} {class} {flow}");
                }
                TraceEvent::WatchdogFired { node, pkts } => {
                    let _ = writeln!(out, "{t}  watchdog {node} {pkts}pkt");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_stores_nothing() {
        let mut log = TraceLog::default();
        log.push(
            SimTime::ZERO,
            TraceEvent::Drop {
                flow: FlowId(1),
                reason: DropReason::RadioDetached,
            },
        );
        assert!(!log.is_enabled());
        assert!(log.is_empty());
        assert_eq!(log.overwritten(), 0);
    }

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let mut log = TraceLog::default();
        log.enable(2);
        for i in 0..5 {
            log.push(
                SimTime::from_millis(i),
                TraceEvent::ControlReceived {
                    kind: "RA",
                    at: NodeId::from_index(0),
                },
            );
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.overwritten(), 3);
        // The survivors are the *latest* two pushes.
        let times: Vec<u64> = log.events().map(|&(t, _)| t.as_nanos()).collect();
        assert_eq!(times, vec![3_000_000, 4_000_000]);
        assert!(log.render().contains("3 earlier events overwritten"));
    }

    #[test]
    fn capacity_zero_counts_without_storing() {
        let mut log = TraceLog::default();
        log.enable(0);
        log.push(
            SimTime::ZERO,
            TraceEvent::FaultFired {
                node: NodeId::from_index(0),
                what: "crash",
            },
        );
        assert!(log.is_empty());
        assert_eq!(log.overwritten(), 1);
    }

    #[test]
    fn filtered_subscription_selects_by_event_kind() {
        let mut log = TraceLog::default();
        log.enable(16);
        log.push(
            SimTime::from_millis(1),
            TraceEvent::BufferAdmit {
                ar: NodeId::from_index(0),
                class: ServiceClass::RealTime,
                flow: FlowId(7),
            },
        );
        log.push(
            SimTime::from_millis(2),
            TraceEvent::Drop {
                flow: FlowId(7),
                reason: DropReason::Policy,
            },
        );
        log.push(
            SimTime::from_millis(3),
            TraceEvent::BufferEvict {
                ar: NodeId::from_index(0),
                class: ServiceClass::BestEffort,
                flow: FlowId(7),
            },
        );
        let buffer_events: Vec<&TraceEvent> = log
            .filtered(|e| {
                matches!(
                    e,
                    TraceEvent::BufferAdmit { .. } | TraceEvent::BufferEvict { .. }
                )
            })
            .map(|(_, e)| e)
            .collect();
        assert_eq!(buffer_events.len(), 2);
        assert!(matches!(buffer_events[0], TraceEvent::BufferAdmit { .. }));
        assert!(matches!(buffer_events[1], TraceEvent::BufferEvict { .. }));
    }

    #[test]
    fn render_formats_each_kind() {
        let mut log = TraceLog::default();
        log.enable(32);
        let node = NodeId::from_index(0);
        log.push(
            SimTime::from_millis(1),
            TraceEvent::ControlSent {
                kind: "HI",
                bytes: 120,
                piggybacked: true,
            },
        );
        log.push(
            SimTime::from_millis(2),
            TraceEvent::Drop {
                flow: FlowId(3),
                reason: DropReason::BufferOverflow,
            },
        );
        log.push(
            SimTime::from_millis(3),
            TraceEvent::BufferAdmit {
                ar: node,
                class: ServiceClass::RealTime,
                flow: FlowId(3),
            },
        );
        log.push(
            SimTime::from_millis(4),
            TraceEvent::BufferFlush {
                ar: node,
                path: "nar",
                pkts: 9,
            },
        );
        log.push(
            SimTime::from_millis(5),
            TraceEvent::StateReclaimed { node, pkts: 4 },
        );
        log.push(
            SimTime::from_millis(6),
            TraceEvent::PressureShed {
                ar: node,
                rung: "best-effort",
                class: ServiceClass::BestEffort,
                flow: FlowId(3),
            },
        );
        log.push(
            SimTime::from_millis(7),
            TraceEvent::WatchdogFired { node, pkts: 2 },
        );
        let s = log.render();
        assert!(s.contains("ctrl HI 120B piggyback"));
        assert!(s.contains("drop flow3 BufferOverflow"));
        assert!(s.contains("buf+ actor#0 real-time flow3"));
        assert!(s.contains("flush actor#0 nar 9pkt"));
        assert!(s.contains("reclaim actor#0 4pkt"));
        assert!(s.contains("shed actor#0 best-effort best-effort flow3"));
        assert!(s.contains("watchdog actor#0 2pkt"));
    }

    #[test]
    fn trace_events_export_as_instants() {
        let ev = TraceEvent::BufferAdmit {
            ar: NodeId::from_index(0),
            class: ServiceClass::HighPriority,
            flow: FlowId(2),
        };
        assert_eq!(ev.name(), "buffer-admit");
        assert_eq!(ev.track(), 0);
        assert_eq!(
            ev.args_json(),
            "{\"ar\":0,\"class\":\"high-priority\",\"flow\":2}"
        );
        let send = TraceEvent::ControlSent {
            kind: "FBU",
            bytes: 88,
            piggybacked: false,
        };
        assert_eq!(send.node(), None);
        assert_eq!(
            send.args_json(),
            "{\"kind\":\"FBU\",\"bytes\":88,\"piggyback\":false}"
        );
        let shed = TraceEvent::PressureShed {
            ar: NodeId::from_index(1),
            rung: "drop-front",
            class: ServiceClass::RealTime,
            flow: FlowId(5),
        };
        assert_eq!(shed.name(), "pressure-shed");
        assert_eq!(shed.track(), 1);
        assert_eq!(
            shed.args_json(),
            "{\"ar\":1,\"rung\":\"drop-front\",\"class\":\"real-time\",\"flow\":5}"
        );
        let wd = TraceEvent::WatchdogFired {
            node: NodeId::from_index(2),
            pkts: 3,
        };
        assert_eq!(wd.name(), "watchdog");
        assert_eq!(wd.args_json(), "{\"node\":2,\"pkts\":3}");
    }
}
