//! The shared-world contract and the network message vocabulary.
//!
//! Every simulation in this repository instantiates
//! `fh_sim::Simulator<NetMsg, S>` where `S` implements [`NetWorld`] (and
//! usually richer traits from higher crates). This module defines:
//!
//! * [`NetMsg`] — everything a node actor can receive: wired packet
//!   arrivals, radio packet arrivals, timers, link-layer trigger events.
//! * [`NetWorld`] — access to the [`Topology`] and the [`NetStats`] hub.
//! * transmission helpers ([`transmit_on`], [`send_from`], [`send_control`])
//!   that do the link math, statistics accounting and event scheduling.
//!
//! # Examples
//!
//! See the crate-level documentation for a two-node end-to-end example.

use std::collections::HashMap;
use std::net::Ipv6Addr;

use fh_sim::{Ctx, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::link::LinkId;
use crate::msg::{ApId, ControlMsg};
use crate::packet::{FlowId, Packet};
use crate::topology::{NodeId, RouteDecision, Topology};

/// Convenience alias for the dispatch context every node actor sees.
pub type NetCtx<'a, S> = Ctx<'a, NetMsg, S>;

/// Link-layer events delivered to a mobile host (and mirrored to interested
/// routers by the radio environment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Event {
    /// L2 source trigger (L2-ST): the radio predicts a handoff toward
    /// `next`, typically on entering the coverage overlap.
    SourceTrigger {
        /// The AP the MH is currently attached to.
        current: ApId,
        /// The AP the MH is about to move to.
        next: ApId,
    },
    /// The radio lost its association (start of the L2 black-out).
    LinkDown {
        /// The AP the MH detached from.
        ap: ApId,
    },
    /// The radio (re)associated with `ap` (end of the L2 black-out).
    LinkUp {
        /// The AP the MH attached to.
        ap: ApId,
    },
}

/// What a timer event means to its receiving actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// Periodic router advertisement beacon.
    RouterAdvertisement,
    /// Mobility-model position update.
    Mobility,
    /// CBR source: emit the next packet.
    CbrSend,
    /// TCP coarse clock tick (500 ms in the reproduction, as in BSD/ns-2).
    TcpTick,
    /// Application-level custom timer.
    App(u32),
    /// The radio completes a detach at this instant.
    Detach,
    /// The radio completes an attach at this instant.
    Attach,
    /// Buffer reservation: auto-start buffering (BI start-time field).
    BufferStart,
    /// Buffer reservation: lifetime expired, release resources.
    BufferLifetime,
    /// Paced flush of a handover buffer: send the next buffered packet.
    FlushStep,
    /// Mobile IP binding lifetime expiry.
    BindingLifetime,
    /// Retransmission timer for an unanswered RtSolPr+BI (mobile host).
    RtxSolicit,
    /// Retransmission timer for an unanswered HI+BR (previous AR).
    RtxHi,
    /// Retransmission timer for an unacknowledged FNA/binding update
    /// (mobile host, after attaching to the new AR).
    RtxFna,
    /// Scheduled node fault: an access router crashes (volatile state lost).
    NodeCrash,
    /// Scheduled node fault: a crashed access router comes back up.
    NodeRestart,
    /// Scheduled node fault: a mobile host loses power permanently.
    PowerOff,
    /// Soft-state sweep: a host route installed at an access router
    /// reached its lifetime without a refresh.
    HostRouteExpiry,
    /// Soft-state sweep: periodic dead-peer scan over handover sessions
    /// whose remote router has gone silent.
    DeadPeerSweep,
    /// Handover watchdog: a buffering session's deadline elapsed without
    /// a flush or an expiry — force-resolve it.
    HandoverWatchdog,
}

/// Every event a network node actor can receive.
#[derive(Debug, Clone)]
pub enum NetMsg {
    /// A packet arrived over a wired link.
    LinkPacket {
        /// The link it arrived on.
        link: LinkId,
        /// The packet.
        pkt: Packet,
    },
    /// A packet arrived over the air.
    RadioPacket {
        /// The AP whose cell carried the frame.
        ap: ApId,
        /// The transmitting node (the 802.11 source-address analog):
        /// the mobile host on the uplink, the AP's router on the downlink.
        from: NodeId,
        /// The packet.
        pkt: Packet,
    },
    /// A scheduled timer fired. `token` disambiguates timer instances
    /// (flow ids, session numbers, …) and lets stale timers be ignored.
    Timer {
        /// What the timer means.
        kind: TimerKind,
        /// Caller-chosen discriminator.
        token: u64,
    },
    /// A link-layer event from the radio environment.
    L2(L2Event),
    /// Kick-off event sent once to every actor at simulation start.
    Start,
}

/// Why a packet was lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DropReason {
    /// Drop-tail queue overflow on a wired link.
    QueueOverflow,
    /// Sent over the air while the MH was detached (L2 black-out).
    RadioDetached,
    /// A handover buffer had no space left.
    BufferOverflow,
    /// The buffering policy chose to drop (e.g. Table 3.3 case 4 best
    /// effort, or the best-effort `a` threshold).
    Policy,
    /// No route to the destination.
    Unroutable,
    /// A buffer reservation expired with packets still queued.
    LifetimeExpired,
    /// The IPv6 hop limit reached zero (a forwarding loop or an absurdly
    /// long path).
    HopLimitExceeded,
    /// The deterministic fault-injection layer discarded the packet at
    /// link entry (seeded loss, burst loss, or a scheduled outage).
    FaultInjected,
    /// A piece of soft state (host route, guard-buffer episode, dead-peer
    /// session) expired without a refresh and its queued packets were
    /// released.
    Expired,
    /// A node fault reclaimed the packet: it was buffered at a router
    /// that crashed, or arrived at a node that is down.
    Reclaimed,
    /// The overload-control layer shed the packet to relieve memory
    /// pressure (byte budget high-watermark crossed). Distinct from
    /// overflow rejection: the packet *was* admitted, then sacrificed.
    PressureShed,
}

impl DropReason {
    /// Every drop reason, in declaration order. Audit and CSV code
    /// iterates this instead of pattern-matching with a `_` arm, so a new
    /// variant cannot be silently uncounted.
    pub const ALL: [DropReason; 11] = [
        DropReason::QueueOverflow,
        DropReason::RadioDetached,
        DropReason::BufferOverflow,
        DropReason::Policy,
        DropReason::Unroutable,
        DropReason::LifetimeExpired,
        DropReason::HopLimitExceeded,
        DropReason::FaultInjected,
        DropReason::Expired,
        DropReason::Reclaimed,
        DropReason::PressureShed,
    ];

    /// Stable short label for tables and CSV columns. Exhaustive on
    /// purpose — adding a variant without a label is a compile error.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DropReason::QueueOverflow => "queue_overflow",
            DropReason::RadioDetached => "radio_detached",
            DropReason::BufferOverflow => "buffer_overflow",
            DropReason::Policy => "policy",
            DropReason::Unroutable => "unroutable",
            DropReason::LifetimeExpired => "lifetime_expired",
            DropReason::HopLimitExceeded => "hop_limit",
            DropReason::FaultInjected => "fault_injected",
            DropReason::Expired => "expired",
            DropReason::Reclaimed => "reclaimed",
            DropReason::PressureShed => "pressure_shed",
        }
    }
}

/// How one handover attempt resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HandoverOutcome {
    /// The anticipated FMIPv6 exchange completed: the MH moved with a
    /// pre-established binding and (where configured) pre-armed buffers.
    Predictive,
    /// Anticipation failed (lost signaling, exhausted retries) but the MH
    /// recovered reactively after attaching: FNA/BF first, bindings after.
    Reactive,
    /// The attempt never resolved — the MH ended the run without
    /// re-establishing connectivity.
    Failed,
}

impl HandoverOutcome {
    const ALL: [HandoverOutcome; 3] = [
        HandoverOutcome::Predictive,
        HandoverOutcome::Reactive,
        HandoverOutcome::Failed,
    ];

    fn index(self) -> usize {
        match self {
            HandoverOutcome::Predictive => 0,
            HandoverOutcome::Reactive => 1,
            HandoverOutcome::Failed => 2,
        }
    }

    /// Stable short label for spans, tables and CSV columns.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            HandoverOutcome::Predictive => "predictive",
            HandoverOutcome::Reactive => "reactive",
            HandoverOutcome::Failed => "failed",
        }
    }
}

/// Global statistics hub, one per simulation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NetStats {
    /// Optional protocol event trace (off by default).
    #[serde(skip)]
    pub trace: crate::trace::TraceLog,
    /// Optional handover span store (off by default): one span per
    /// handover attempt, with the protocol phases as timestamped marks.
    #[serde(skip)]
    pub spans: fh_telemetry::SpanStore,
    drops: HashMap<DropReason, u64>,
    per_flow_drops: HashMap<FlowId, u64>,
    /// Data packets delivered to their final destination.
    pub delivered: u64,
    /// Control messages sent, by kind name.
    control_sent: HashMap<String, u64>,
    /// Total control bytes sent (bodies + IPv6 headers).
    pub control_bytes: u64,
    /// Control messages that carried a piggybacked buffer option.
    pub piggybacked: u64,
    /// Per-flow data packets entering the network (recorded at the source).
    per_flow_sent: HashMap<FlowId, u64>,
    /// Per-flow data packets reaching their application sink.
    per_flow_delivered: HashMap<FlowId, u64>,
    /// Per-flow extra copies created by fault-injected duplication.
    per_flow_duplicated: HashMap<FlowId, u64>,
    /// Handover outcome tally, indexed by [`HandoverOutcome`].
    outcomes: [u64; 3],
    /// Named metrics mirrored from node-local components. Iteration is
    /// sorted by name, so any rendering of it is deterministic.
    #[serde(skip)]
    metrics: fh_telemetry::MetricsRegistry,
}

/// End-of-run packet-conservation snapshot for one flow.
///
/// Once all queues and handover buffers have drained, every packet that
/// entered the network (plus every fault-injected duplicate) must either
/// have reached its sink or be accounted to a [`DropReason`]:
/// `sent + duplicated == delivered + dropped`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowAudit {
    /// Packets the source pushed into the network.
    pub sent: u64,
    /// Packets the sink received.
    pub delivered: u64,
    /// Extra copies created by fault-injected duplication.
    pub duplicated: u64,
    /// Packets accounted to any [`DropReason`].
    pub dropped: u64,
}

impl FlowAudit {
    /// `true` if every packet is accounted for.
    #[must_use]
    pub fn conserved(&self) -> bool {
        self.sent + self.duplicated == self.delivered + self.dropped
    }
}

impl NetStats {
    /// Creates an empty hub.
    #[must_use]
    pub fn new() -> Self {
        NetStats::default()
    }

    /// Records the loss of a data packet. Control-plane losses are counted
    /// under flow 0.
    pub fn record_drop(&mut self, now: SimTime, flow: FlowId, reason: DropReason) {
        *self.drops.entry(reason).or_insert(0) += 1;
        *self.per_flow_drops.entry(flow).or_insert(0) += 1;
        self.trace
            .push(now, crate::trace::TraceEvent::Drop { flow, reason });
    }

    /// Records a sent control message.
    pub fn record_control(&mut self, now: SimTime, msg: &ControlMsg) {
        *self
            .control_sent
            .entry(msg.kind_name().to_owned())
            .or_insert(0) += 1;
        self.control_bytes += u64::from(msg.wire_size()) + u64::from(Packet::IPV6_HEADER);
        if msg.has_piggyback() {
            self.piggybacked += 1;
        }
        self.trace.push(
            now,
            crate::trace::TraceEvent::ControlSent {
                kind: msg.kind_name(),
                bytes: msg.wire_size() + Packet::IPV6_HEADER,
                piggybacked: msg.has_piggyback(),
            },
        );
    }

    /// Total drops for one reason.
    #[must_use]
    pub fn drops(&self, reason: DropReason) -> u64 {
        self.drops.get(&reason).copied().unwrap_or(0)
    }

    /// Total drops across all reasons.
    #[must_use]
    pub fn total_drops(&self) -> u64 {
        self.drops.values().sum()
    }

    /// The full per-reason drop breakdown, in [`DropReason::ALL`] order.
    /// Iterating the exhaustive constant (instead of the internal map)
    /// guarantees every variant shows up in tables, zero or not.
    #[must_use]
    pub fn drops_by_reason(&self) -> [(DropReason, u64); DropReason::ALL.len()] {
        DropReason::ALL.map(|r| (r, self.drops(r)))
    }

    /// Drops attributed to one flow.
    #[must_use]
    pub fn flow_drops(&self, flow: FlowId) -> u64 {
        self.per_flow_drops.get(&flow).copied().unwrap_or(0)
    }

    /// Number of control messages of the given kind sent so far.
    #[must_use]
    pub fn control_count(&self, kind: &str) -> u64 {
        self.control_sent.get(kind).copied().unwrap_or(0)
    }

    /// Total control messages sent.
    #[must_use]
    pub fn control_total(&self) -> u64 {
        self.control_sent.values().sum()
    }

    /// Records a data packet entering the network on `flow`.
    pub fn record_sent(&mut self, flow: FlowId) {
        *self.per_flow_sent.entry(flow).or_insert(0) += 1;
    }

    /// Records a data packet reaching its application sink on `flow`.
    pub fn record_delivered(&mut self, flow: FlowId) {
        self.delivered += 1;
        *self.per_flow_delivered.entry(flow).or_insert(0) += 1;
    }

    /// Records a fault-injected duplicate created on `flow`.
    pub fn record_duplicate(&mut self, flow: FlowId) {
        *self.per_flow_duplicated.entry(flow).or_insert(0) += 1;
    }

    /// Packets recorded as sent on `flow`.
    #[must_use]
    pub fn flow_sent(&self, flow: FlowId) -> u64 {
        self.per_flow_sent.get(&flow).copied().unwrap_or(0)
    }

    /// Packets recorded as delivered on `flow`.
    #[must_use]
    pub fn flow_delivered(&self, flow: FlowId) -> u64 {
        self.per_flow_delivered.get(&flow).copied().unwrap_or(0)
    }

    /// The packet-conservation snapshot for one flow.
    #[must_use]
    pub fn flow_audit(&self, flow: FlowId) -> FlowAudit {
        FlowAudit {
            sent: self.flow_sent(flow),
            delivered: self.flow_delivered(flow),
            duplicated: self.per_flow_duplicated.get(&flow).copied().unwrap_or(0),
            dropped: self.flow_drops(flow),
        }
    }

    /// All flows with recorded sends, sorted (the audit set).
    #[must_use]
    pub fn audited_flows(&self) -> Vec<FlowId> {
        let mut flows: Vec<FlowId> = self.per_flow_sent.keys().copied().collect();
        flows.sort();
        flows
    }

    /// The flows whose conservation equation does not balance, with their
    /// audits — the non-panicking form of
    /// [`NetStats::assert_conservation`], used by expectation engines that
    /// want to report violations instead of aborting. Empty means every
    /// audited flow conserved. Call only after queues and buffers have
    /// drained (traffic stopped, reservations expired).
    #[must_use]
    pub fn conservation_violations(&self) -> Vec<(FlowId, FlowAudit)> {
        self.audited_flows()
            .into_iter()
            .map(|flow| (flow, self.flow_audit(flow)))
            .filter(|(_, audit)| !audit.conserved())
            .collect()
    }

    /// Asserts `sent + duplicated == delivered + Σ drops` for every flow
    /// with recorded sends. Call only after queues and buffers have
    /// drained (traffic stopped, reservations expired).
    ///
    /// # Panics
    ///
    /// Panics with the offending flow's [`FlowAudit`] if conservation is
    /// violated.
    pub fn assert_conservation(&self) {
        if let Some((flow, audit)) = self.conservation_violations().first() {
            panic!("packet conservation violated on {flow:?}: {audit:?}");
        }
    }

    /// Records the resolution of one handover attempt.
    pub fn record_outcome(&mut self, outcome: HandoverOutcome) {
        self.outcomes[outcome.index()] += 1;
    }

    /// Handover attempts that resolved as `outcome`.
    #[must_use]
    pub fn outcome_count(&self, outcome: HandoverOutcome) -> u64 {
        self.outcomes[outcome.index()]
    }

    /// The full outcome tally as `(outcome, count)` pairs.
    #[must_use]
    pub fn outcomes(&self) -> [(HandoverOutcome, u64); 3] {
        HandoverOutcome::ALL.map(|o| (o, self.outcomes[o.index()]))
    }

    /// Adds `delta` to the named counter (creating it at zero).
    ///
    /// Node-local components mirror their failure counters here — e.g.
    /// `"map.intercept_failures"` — so runs can assert on shared stats
    /// instead of reaching into node structs. Components on a hot path
    /// should instead register a handle once via
    /// [`NetStats::metrics_mut`] and bump through it.
    pub fn bump(&mut self, name: &str, delta: u64) {
        let id = self.metrics.counter(name);
        self.metrics.add(id, delta);
    }

    /// Reads a named counter (zero if never bumped).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics.counter_value(name)
    }

    /// All named counters in sorted order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.metrics.counters()
    }

    /// The underlying metrics registry (counters, gauges, histograms).
    #[must_use]
    pub fn metrics(&self) -> &fh_telemetry::MetricsRegistry {
        &self.metrics
    }

    /// Mutable registry access, for components that register handles.
    pub fn metrics_mut(&mut self) -> &mut fh_telemetry::MetricsRegistry {
        &mut self.metrics
    }
}

/// Shared-state contract required by the network layer.
pub trait NetWorld: 'static {
    /// The network graph.
    fn topology(&self) -> &Topology;
    /// Mutable network graph (links mutate on transmission).
    fn topology_mut(&mut self) -> &mut Topology;
    /// The statistics hub.
    fn stats(&self) -> &NetStats;
    /// Mutable statistics hub.
    fn stats_mut(&mut self) -> &mut NetStats;
}

/// Transmits `pkt` from `from` on the given link, scheduling its arrival at
/// the peer. Returns `false` (and records the drop) when the link refused
/// the packet — queue overflow or an injected fault, each under its own
/// [`DropReason`]. Fault-injected duplicates are scheduled as a second
/// arrival of the same packet.
pub fn transmit_on<S: NetWorld>(
    ctx: &mut NetCtx<'_, S>,
    link_id: LinkId,
    from: NodeId,
    pkt: Packet,
) -> bool {
    let now = ctx.now();
    let link = ctx.shared.topology_mut().link_mut(link_id);
    let peer = link
        .peer(from)
        .expect("transmit_on: node not attached to link");
    let result = link.try_transmit(now, from, pkt.size);
    let dup_arrival = if result.is_ok() {
        link.take_duplicate(from)
    } else {
        None
    };
    match result {
        Ok(arrival) => {
            if let Some(at) = dup_arrival {
                ctx.shared.stats_mut().record_duplicate(pkt.flow);
                ctx.send_at(
                    peer,
                    at,
                    NetMsg::LinkPacket {
                        link: link_id,
                        pkt: pkt.clone(),
                    },
                );
            }
            ctx.send_at(peer, arrival, NetMsg::LinkPacket { link: link_id, pkt });
            true
        }
        Err(crate::link::LinkError::Faulted) => {
            record_drop(ctx, pkt.flow, DropReason::FaultInjected);
            false
        }
        Err(_) => {
            record_drop(ctx, pkt.flow, DropReason::QueueOverflow);
            false
        }
    }
}

/// Routes and transmits `pkt` from node `from`.
///
/// Returns `Some(pkt)` when the destination is local to `from` (the caller
/// must consume it); `None` when the packet was forwarded or dropped
/// (drops are recorded in the statistics hub).
#[must_use]
pub fn send_from<S: NetWorld>(
    ctx: &mut NetCtx<'_, S>,
    from: NodeId,
    mut pkt: Packet,
) -> Option<Packet> {
    match ctx.shared.topology().route(from, pkt.dst) {
        RouteDecision::Local => Some(pkt),
        RouteDecision::Forward(link) => {
            match pkt.hop_limit.checked_sub(1) {
                Some(h) if h > 0 => pkt.hop_limit = h,
                _ => {
                    record_drop(ctx, pkt.flow, DropReason::HopLimitExceeded);
                    return None;
                }
            }
            transmit_on(ctx, link, from, pkt);
            None
        }
        RouteDecision::Unroutable => {
            record_drop(ctx, pkt.flow, DropReason::Unroutable);
            None
        }
    }
}

/// Builds a control packet, accounts it, and routes it from node `from`.
///
/// Returns `Some(pkt)` if the destination is local (loopback control, which
/// callers usually treat as an immediate self-delivery).
pub fn send_control<S: NetWorld>(
    ctx: &mut NetCtx<'_, S>,
    from: NodeId,
    src: Ipv6Addr,
    dst: Ipv6Addr,
    msg: ControlMsg,
) -> Option<Packet> {
    record_control(ctx, &msg);
    let pkt = Packet::control(src, dst, msg, ctx.now());
    send_from(ctx, from, pkt)
}

/// Schedules a timer for the current actor.
pub fn start_timer<S>(ctx: &mut NetCtx<'_, S>, delay: SimDuration, kind: TimerKind, token: u64) {
    ctx.send_self(delay, NetMsg::Timer { kind, token });
}

/// Records a drop with the current simulation time (avoids the borrow
/// dance at call sites).
pub fn record_drop<S: NetWorld>(ctx: &mut NetCtx<'_, S>, flow: FlowId, reason: DropReason) {
    let now = ctx.now();
    ctx.shared.stats_mut().record_drop(now, flow, reason);
}

/// Records a sent control message with the current simulation time.
pub fn record_control<S: NetWorld>(ctx: &mut NetCtx<'_, S>, msg: &ControlMsg) {
    let now = ctx.now();
    ctx.shared.stats_mut().record_control(now, msg);
}

/// Records a structured trace event with the current simulation time.
///
/// The closure only runs while tracing is enabled, so instrumentation in
/// hot paths (buffer admits, flush steps) costs one branch when off —
/// no event construction, no string work.
pub fn record_trace<S, F>(ctx: &mut NetCtx<'_, S>, make: F)
where
    S: NetWorld,
    F: FnOnce() -> crate::trace::TraceEvent,
{
    let now = ctx.now();
    let stats = ctx.shared.stats_mut();
    if stats.trace.is_enabled() {
        stats.trace.push(now, make());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::doc_subnet;
    use crate::class::ServiceClass;
    use crate::link::LinkSpec;
    use fh_sim::{Actor, SimTime, Simulator};

    /// Minimal world for tests.
    #[derive(Default)]
    struct World {
        topo: Topology,
        stats: NetStats,
    }

    impl NetWorld for World {
        fn topology(&self) -> &Topology {
            &self.topo
        }
        fn topology_mut(&mut self) -> &mut Topology {
            &mut self.topo
        }
        fn stats(&self) -> &NetStats {
            &self.stats
        }
        fn stats_mut(&mut self) -> &mut NetStats {
            &mut self.stats
        }
    }

    /// A node that forwards anything not local and counts local deliveries.
    struct Node {
        delivered: u64,
    }

    impl Actor<NetMsg, World> for Node {
        fn handle(&mut self, ctx: &mut NetCtx<'_, World>, msg: NetMsg) {
            if let NetMsg::LinkPacket { pkt, .. } = msg {
                let me = ctx.self_id();
                if let Some(local) = send_from(ctx, me, pkt) {
                    let _ = local;
                    self.delivered += 1;
                    ctx.shared.stats_mut().delivered += 1;
                }
            }
        }
    }

    fn build_chain(n: usize) -> (Simulator<NetMsg, World>, Vec<NodeId>) {
        let mut sim = Simulator::new(World::default(), 7);
        let ids: Vec<NodeId> = (0..n)
            .map(|_| sim.add_actor(Box::new(Node { delivered: 0 })))
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            sim.shared.topo.register_node(id, format!("n{i}"));
        }
        let spec = LinkSpec::new(8_000_000, SimDuration::from_millis(2), 50);
        for w in ids.windows(2) {
            sim.shared.topo.add_link(w[0], w[1], spec);
        }
        sim.shared.topo.add_prefix(doc_subnet(0), ids[0]);
        sim.shared
            .topo
            .add_prefix(doc_subnet((n - 1) as u16), ids[n - 1]);
        sim.shared.topo.compute_routes();
        (sim, ids)
    }

    fn data_packet(n: usize) -> Packet {
        Packet::data(
            FlowId(1),
            0,
            doc_subnet(0).host(1),
            doc_subnet((n - 1) as u16).host(1),
            ServiceClass::BestEffort,
            1000,
            SimTime::ZERO,
        )
    }

    #[test]
    fn packet_crosses_a_three_hop_chain() {
        let (mut sim, ids) = build_chain(4);
        let pkt = data_packet(4);
        // Inject at node 0 as if it had arrived on a link.
        sim.schedule(
            SimTime::ZERO,
            ids[0],
            NetMsg::LinkPacket {
                link: LinkId(0),
                pkt,
            },
        );
        sim.run();
        assert_eq!(sim.shared.stats.delivered, 1);
        assert_eq!(sim.actor::<Node>(ids[3]).unwrap().delivered, 1);
        // 3 hops * (1 ms serialization + 2 ms propagation).
        assert_eq!(sim.now(), SimTime::from_millis(9));
    }

    #[test]
    fn unroutable_packets_are_counted() {
        let (mut sim, ids) = build_chain(2);
        let mut pkt = data_packet(2);
        pkt.dst = "fd00::1".parse().unwrap();
        sim.schedule(
            SimTime::ZERO,
            ids[0],
            NetMsg::LinkPacket {
                link: LinkId(0),
                pkt,
            },
        );
        sim.run();
        assert_eq!(sim.shared.stats.drops(DropReason::Unroutable), 1);
        assert_eq!(sim.shared.stats.flow_drops(FlowId(1)), 1);
        assert_eq!(sim.shared.stats.delivered, 0);
    }

    #[test]
    fn queue_overflow_is_counted() {
        let (mut sim, ids) = build_chain(2);
        // Shrink the queue to zero and saturate it.
        sim.shared.topo.link_mut(LinkId(0)).spec.queue_limit = 0;
        for _ in 0..3 {
            let pkt = data_packet(2);
            sim.schedule(
                SimTime::ZERO,
                ids[0],
                NetMsg::LinkPacket {
                    link: LinkId(0),
                    pkt,
                },
            );
        }
        sim.run();
        assert_eq!(sim.shared.stats.drops(DropReason::QueueOverflow), 2);
        assert_eq!(sim.shared.stats.delivered, 1);
    }

    #[test]
    fn control_accounting() {
        let (mut sim, ids) = build_chain(2);
        struct Sender;
        impl Actor<NetMsg, World> for Sender {
            fn handle(&mut self, ctx: &mut NetCtx<'_, World>, msg: NetMsg) {
                if let NetMsg::Start = msg {
                    let me = ctx.self_id();
                    let _ = send_control(
                        ctx,
                        me,
                        doc_subnet(0).host(9),
                        doc_subnet(1).host(1),
                        ControlMsg::RouterSolicitation,
                    );
                }
            }
        }
        // Sender shares node 0's position by registering its own node id.
        let s = sim.add_actor(Box::new(Sender));
        sim.shared.topo.register_node(s, "sender");
        let spec = LinkSpec::new(8_000_000, SimDuration::from_millis(1), 10);
        sim.shared.topo.add_link(s, ids[0], spec);
        sim.shared.topo.compute_routes();
        sim.schedule(SimTime::ZERO, s, NetMsg::Start);
        sim.run();
        assert_eq!(sim.shared.stats.control_count("RS"), 1);
        assert_eq!(sim.shared.stats.control_total(), 1);
        assert!(sim.shared.stats.control_bytes >= 48);
        assert_eq!(sim.shared.stats.piggybacked, 0);
    }

    #[test]
    fn fault_injected_drops_have_their_own_reason() {
        let (mut sim, ids) = build_chain(2);
        sim.shared
            .topo
            .link_mut(LinkId(0))
            .set_fault(ids[0], crate::FaultSpec::with_loss(1.0), 13);
        let pkt = data_packet(2);
        sim.shared.stats.record_sent(pkt.flow);
        sim.schedule(
            SimTime::ZERO,
            ids[0],
            NetMsg::LinkPacket {
                link: LinkId(0),
                pkt,
            },
        );
        sim.run();
        assert_eq!(sim.shared.stats.drops(DropReason::FaultInjected), 1);
        assert_eq!(sim.shared.stats.drops(DropReason::QueueOverflow), 0);
        assert_eq!(sim.shared.stats.delivered, 0);
        sim.shared.stats.assert_conservation();
    }

    #[test]
    fn duplicated_packets_arrive_twice_and_conserve() {
        let (mut sim, ids) = build_chain(2);
        sim.shared.topo.link_mut(LinkId(0)).set_fault(
            ids[0],
            crate::FaultSpec::default().duplicate(1.0),
            5,
        );
        let pkt = data_packet(2);
        sim.shared.stats.record_sent(pkt.flow);
        sim.schedule(
            SimTime::ZERO,
            ids[0],
            NetMsg::LinkPacket {
                link: LinkId(0),
                pkt,
            },
        );
        sim.run();
        // The test Node bumps `delivered` but not the per-flow ledger, so
        // mirror it here: both copies reached the far node.
        assert_eq!(sim.actor::<Node>(ids[1]).unwrap().delivered, 2);
        sim.shared.stats.record_delivered(FlowId(1));
        sim.shared.stats.record_delivered(FlowId(1));
        let audit = sim.shared.stats.flow_audit(FlowId(1));
        assert_eq!(audit.sent, 1);
        assert_eq!(audit.duplicated, 1);
        assert_eq!(audit.delivered, 2);
        assert!(audit.conserved());
    }

    #[test]
    fn conservation_audit_catches_a_missing_packet() {
        let mut stats = NetStats::new();
        stats.record_sent(FlowId(3));
        let audit = stats.flow_audit(FlowId(3));
        assert!(!audit.conserved(), "unaccounted packet must fail the audit");
        stats.record_drop(SimTime::ZERO, FlowId(3), DropReason::BufferOverflow);
        assert!(stats.flow_audit(FlowId(3)).conserved());
        stats.assert_conservation();
    }

    #[test]
    fn every_drop_reason_round_trips_through_the_audit() {
        // One flow per variant: a packet recorded as sent and then dropped
        // for that reason must balance the conservation equation, and the
        // exhaustive breakdown must attribute it to exactly that reason.
        for (i, reason) in DropReason::ALL.into_iter().enumerate() {
            let mut stats = NetStats::new();
            let flow = FlowId(u32::try_from(i).unwrap() + 1);
            stats.record_sent(flow);
            stats.record_drop(SimTime::ZERO, flow, reason);
            assert!(stats.flow_audit(flow).conserved(), "{reason:?}");
            stats.assert_conservation();
            for (r, n) in stats.drops_by_reason() {
                assert_eq!(n, u64::from(r == reason), "{reason:?} vs {r:?}");
            }
        }
        // Labels are unique (no copy-paste aliasing two variants).
        let labels: std::collections::HashSet<&str> =
            DropReason::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), DropReason::ALL.len());
    }

    #[test]
    fn outcome_tally_and_named_counters() {
        let mut stats = NetStats::new();
        stats.record_outcome(HandoverOutcome::Predictive);
        stats.record_outcome(HandoverOutcome::Predictive);
        stats.record_outcome(HandoverOutcome::Reactive);
        assert_eq!(stats.outcome_count(HandoverOutcome::Predictive), 2);
        assert_eq!(stats.outcome_count(HandoverOutcome::Reactive), 1);
        assert_eq!(stats.outcome_count(HandoverOutcome::Failed), 0);
        let tally = stats.outcomes();
        assert_eq!(tally[0], (HandoverOutcome::Predictive, 2));
        stats.bump("map.intercept_failures", 1);
        stats.bump("map.intercept_failures", 2);
        assert_eq!(stats.counter("map.intercept_failures"), 3);
        assert_eq!(stats.counter("never.bumped"), 0);
        let names: Vec<&str> = stats.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["map.intercept_failures"]);
    }

    #[test]
    fn local_destination_is_returned_to_caller() {
        let (mut sim, ids) = build_chain(2);
        let mut pkt = data_packet(2);
        pkt.dst = doc_subnet(0).host(5); // owned by node 0 itself
        sim.schedule(
            SimTime::ZERO,
            ids[0],
            NetMsg::LinkPacket {
                link: LinkId(0),
                pkt,
            },
        );
        sim.run();
        assert_eq!(sim.actor::<Node>(ids[0]).unwrap().delivered, 1);
    }
}
