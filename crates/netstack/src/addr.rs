//! IPv6-style addressing for the simulated network.
//!
//! The simulator reuses [`std::net::Ipv6Addr`] as its address type and adds a
//! [`Prefix`] (address + prefix length) for subnet ownership and longest
//! prefix matching, plus small helpers for deriving host addresses inside a
//! prefix — the way an access router hands out on-link care-of-addresses.
//!
//! # Examples
//!
//! ```
//! use fh_net::Prefix;
//!
//! let subnet = Prefix::new("2001:db8:1::".parse().unwrap(), 48);
//! let coa = subnet.host(0x42);
//! assert!(subnet.contains(coa));
//! assert_eq!(coa.to_string(), "2001:db8:1::42");
//! ```

use std::net::Ipv6Addr;

use serde::{Deserialize, Serialize};

/// An IPv6 network prefix: a base address and a prefix length in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Prefix {
    addr: Ipv6Addr,
    len: u8,
}

impl Prefix {
    /// Creates a prefix from a base address and a length in bits.
    ///
    /// The base address is masked down to the prefix, so
    /// `Prefix::new(2001:db8::1, 32)` and `Prefix::new(2001:db8::, 32)` are
    /// equal.
    ///
    /// # Panics
    ///
    /// Panics if `len > 128`.
    #[must_use]
    pub fn new(addr: Ipv6Addr, len: u8) -> Self {
        assert!(len <= 128, "prefix length must be at most 128");
        Prefix {
            addr: mask(addr, len),
            len,
        }
    }

    /// The (masked) base address.
    #[must_use]
    pub fn base(&self) -> Ipv6Addr {
        self.addr
    }

    /// The prefix length in bits.
    ///
    /// (Not a container length — there is deliberately no `is_empty`.)
    #[must_use]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// `true` only for the zero-length (match-everything) prefix.
    #[must_use]
    pub fn is_default_route(&self) -> bool {
        self.len == 0
    }

    /// `true` if `addr` falls inside this prefix.
    #[must_use]
    pub fn contains(&self, addr: Ipv6Addr) -> bool {
        mask(addr, self.len) == self.addr
    }

    /// Derives the host address with interface identifier `iid` inside this
    /// prefix (stateless address autoconfiguration in miniature).
    #[must_use]
    pub fn host(&self, iid: u64) -> Ipv6Addr {
        let base = u128::from(self.addr);
        Ipv6Addr::from(base | u128::from(iid))
    }
}

impl std::fmt::Display for Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

fn mask(addr: Ipv6Addr, len: u8) -> Ipv6Addr {
    if len == 0 {
        return Ipv6Addr::UNSPECIFIED;
    }
    let bits = u128::from(addr);
    let m = u128::MAX << (128 - u32::from(len));
    Ipv6Addr::from(bits & m)
}

/// Builds the `n`-th documentation subnet `2001:db8:n::/48`.
///
/// Convenient for laying out simulated topologies.
///
/// # Examples
///
/// ```
/// let p = fh_net::doc_subnet(3);
/// assert_eq!(p.to_string(), "2001:db8:3::/48");
/// ```
#[must_use]
pub fn doc_subnet(n: u16) -> Prefix {
    Prefix::new(Ipv6Addr::new(0x2001, 0xdb8, n, 0, 0, 0, 0, 0), 48)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_is_masked() {
        let p = Prefix::new("2001:db8::dead:beef".parse().unwrap(), 32);
        assert_eq!(p.base(), "2001:db8::".parse::<Ipv6Addr>().unwrap());
        assert_eq!(p.len(), 32);
    }

    #[test]
    fn contains_matches_prefix_bits() {
        let p = doc_subnet(1);
        assert!(p.contains("2001:db8:1::1".parse().unwrap()));
        assert!(p.contains("2001:db8:1:ffff::1".parse().unwrap()));
        assert!(!p.contains("2001:db8:2::1".parse().unwrap()));
    }

    #[test]
    fn zero_length_prefix_matches_everything() {
        let p = Prefix::new(Ipv6Addr::LOCALHOST, 0);
        assert!(p.is_default_route());
        assert!(p.contains(Ipv6Addr::UNSPECIFIED));
        assert!(p.contains("ffff::1".parse().unwrap()));
    }

    #[test]
    fn full_length_prefix_matches_only_itself() {
        let a: Ipv6Addr = "2001:db8::7".parse().unwrap();
        let p = Prefix::new(a, 128);
        assert!(p.contains(a));
        assert!(!p.contains("2001:db8::8".parse().unwrap()));
    }

    #[test]
    fn host_derivation() {
        let p = doc_subnet(5);
        assert_eq!(p.host(1).to_string(), "2001:db8:5::1");
        assert_eq!(p.host(0xabcd).to_string(), "2001:db8:5::abcd");
        assert!(p.contains(p.host(u64::MAX)));
    }

    #[test]
    fn equality_ignores_host_bits() {
        let a = Prefix::new("2001:db8:9::1".parse().unwrap(), 48);
        let b = Prefix::new("2001:db8:9::2".parse().unwrap(), 48);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at most 128")]
    fn oversized_length_panics() {
        let _ = Prefix::new(Ipv6Addr::UNSPECIFIED, 129);
    }

    #[test]
    fn display_format() {
        assert_eq!(doc_subnet(2).to_string(), "2001:db8:2::/48");
    }
}
