//! Traffic classes — Table 3.1 of the thesis.
//!
//! The proposed scheme reads a packet's priority from the IPv6 *class of
//! service* (traffic class) field. The thesis defines the field values in
//! Table 3.1; value 0 (unspecified) is treated as best effort.
//!
//! As the thesis' future-work section suggests, the classes also map onto
//! DiffServ per-hop behaviours so the scheme can run inside a DiffServ
//! domain: see [`ServiceClass::phb`].
//!
//! # Examples
//!
//! ```
//! use fh_net::ServiceClass;
//!
//! assert_eq!(ServiceClass::from_field(1), ServiceClass::RealTime);
//! assert_eq!(ServiceClass::from_field(0).effective(), ServiceClass::BestEffort);
//! assert_eq!(ServiceClass::RealTime.field(), 1);
//! ```

use serde::{Deserialize, Serialize};

/// A packet's class of service (IPv6 traffic-class field, Table 3.1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum ServiceClass {
    /// Field value 0 — no class specified; treated as best effort.
    #[default]
    Unspecified,
    /// Field value 1 — delay-sensitive packets; useless if they arrive late,
    /// never retransmitted.
    RealTime,
    /// Field value 2 — the most important packets; drop rate must be
    /// minimized.
    HighPriority,
    /// Field value 3 — low-priority packets; may be delayed or dropped when
    /// buffers run out.
    BestEffort,
}

/// DiffServ per-hop behaviour groups, for running the scheme inside a
/// DiffServ domain (thesis §3.3 / future work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PerHopBehavior {
    /// Expedited forwarding — low delay, low jitter.
    Expedited,
    /// Assured forwarding — low loss.
    Assured,
    /// Default forwarding.
    Default,
}

impl ServiceClass {
    /// All four field values, in Table 3.1 order.
    pub const ALL: [ServiceClass; 4] = [
        ServiceClass::Unspecified,
        ServiceClass::RealTime,
        ServiceClass::HighPriority,
        ServiceClass::BestEffort,
    ];

    /// Decodes the IPv6 class-of-service field (Table 3.1). Unknown values
    /// decode to [`ServiceClass::Unspecified`].
    #[must_use]
    pub fn from_field(value: u8) -> Self {
        match value {
            1 => ServiceClass::RealTime,
            2 => ServiceClass::HighPriority,
            3 => ServiceClass::BestEffort,
            _ => ServiceClass::Unspecified,
        }
    }

    /// Encodes this class as the IPv6 class-of-service field value.
    #[must_use]
    pub fn field(self) -> u8 {
        match self {
            ServiceClass::Unspecified => 0,
            ServiceClass::RealTime => 1,
            ServiceClass::HighPriority => 2,
            ServiceClass::BestEffort => 3,
        }
    }

    /// The class the buffer manager actually applies: `Unspecified` is
    /// "treated as best effort packets" (Table 3.1).
    #[must_use]
    pub fn effective(self) -> Self {
        match self {
            ServiceClass::Unspecified => ServiceClass::BestEffort,
            other => other,
        }
    }

    /// Maps the class to a DiffServ per-hop behaviour.
    #[must_use]
    pub fn phb(self) -> PerHopBehavior {
        match self.effective() {
            ServiceClass::RealTime => PerHopBehavior::Expedited,
            ServiceClass::HighPriority => PerHopBehavior::Assured,
            _ => PerHopBehavior::Default,
        }
    }

    /// Maps a DiffServ per-hop behaviour back onto a buffering class.
    #[must_use]
    pub fn from_phb(phb: PerHopBehavior) -> Self {
        match phb {
            PerHopBehavior::Expedited => ServiceClass::RealTime,
            PerHopBehavior::Assured => ServiceClass::HighPriority,
            PerHopBehavior::Default => ServiceClass::BestEffort,
        }
    }
}

impl ServiceClass {
    /// The lowercase name used by [`std::fmt::Display`] and parsed back by
    /// [`std::str::FromStr`] — the vocabulary scenario plans use.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ServiceClass::Unspecified => "unspecified",
            ServiceClass::RealTime => "real-time",
            ServiceClass::HighPriority => "high-priority",
            ServiceClass::BestEffort => "best-effort",
        }
    }
}

impl std::fmt::Display for ServiceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when a string names no [`ServiceClass`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseClassError(String);

impl std::fmt::Display for ParseClassError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown service class \"{}\" (expected one of: ", self.0)?;
        for (i, c) in ServiceClass::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(c.name())?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for ParseClassError {}

impl std::str::FromStr for ServiceClass {
    type Err = ParseClassError;

    /// Parses the Table 3.1 name (`real-time`, `high-priority`,
    /// `best-effort`, `unspecified`), case-insensitively — the exact
    /// round trip of [`ServiceClass::name`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ServiceClass::ALL
            .into_iter()
            .find(|c| c.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| ParseClassError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_3_1_round_trip() {
        for class in ServiceClass::ALL {
            assert_eq!(ServiceClass::from_field(class.field()), class);
        }
    }

    #[test]
    fn unknown_field_values_are_unspecified() {
        for v in 4..=255u8 {
            assert_eq!(ServiceClass::from_field(v), ServiceClass::Unspecified);
        }
    }

    #[test]
    fn unspecified_is_best_effort_in_effect() {
        assert_eq!(
            ServiceClass::Unspecified.effective(),
            ServiceClass::BestEffort
        );
        assert_eq!(ServiceClass::RealTime.effective(), ServiceClass::RealTime);
        assert_eq!(
            ServiceClass::HighPriority.effective(),
            ServiceClass::HighPriority
        );
    }

    #[test]
    fn diffserv_mapping_is_consistent() {
        assert_eq!(ServiceClass::RealTime.phb(), PerHopBehavior::Expedited);
        assert_eq!(ServiceClass::HighPriority.phb(), PerHopBehavior::Assured);
        assert_eq!(ServiceClass::BestEffort.phb(), PerHopBehavior::Default);
        assert_eq!(ServiceClass::Unspecified.phb(), PerHopBehavior::Default);
        for phb in [
            PerHopBehavior::Expedited,
            PerHopBehavior::Assured,
            PerHopBehavior::Default,
        ] {
            assert_eq!(ServiceClass::from_phb(phb).phb(), phb);
        }
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(ServiceClass::RealTime.to_string(), "real-time");
        assert_eq!(ServiceClass::HighPriority.to_string(), "high-priority");
    }

    #[test]
    fn names_round_trip_through_from_str() {
        for class in ServiceClass::ALL {
            assert_eq!(class.name().parse::<ServiceClass>(), Ok(class));
            assert_eq!(
                class.name().to_uppercase().parse::<ServiceClass>(),
                Ok(class)
            );
        }
        let err = "bulk".parse::<ServiceClass>().unwrap_err();
        assert!(err.to_string().contains("best-effort"), "{err}");
    }
}
